/**
 * @file
 * Randomized property tests over deterministic seeds: mapping-coverage
 * invariants, allocator optimality against brute force, quantization
 * algebra, printer/parser round trips on generated ops, and
 * cross-scheduler orderings.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "common/rng.h"
#include "graph/models.h"
#include "mop/parser.h"
#include "sched/cg.h"
#include "sched/mapping.h"
#include "sched/multi_level.h"
#include "tensor/quantize.h"

namespace cimmlc {
namespace {

// ----- VxbGrid coverage invariants ------------------------------------------

class GridPropertyTest : public testing::TestWithParam<int>
{
};

TEST_P(GridPropertyTest, TilesExactlyCoverTheMatrix)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const CimArchitecture arch = presets::isaacBaseline();
    for (int trial = 0; trial < 50; ++trial) {
        WeightMatrixShape matrix;
        matrix.rows = rng.uniformInt(1, 5000);
        matrix.cols = rng.uniformInt(1, 4096);
        const VxbGrid grid = computeVxbGrid(matrix, arch);

        // Tile counts cover the matrix with no overshoot beyond one tile.
        EXPECT_GE(grid.tiles_r * grid.rows_per_tile, matrix.rows);
        EXPECT_LT((grid.tiles_r - 1) * grid.rows_per_tile, matrix.rows);
        EXPECT_GE(grid.tiles_c * grid.logical_cols_per_tile,
                  matrix.cols);
        EXPECT_LT((grid.tiles_c - 1) * grid.logical_cols_per_tile,
                  matrix.cols);
        // Last-tile remainders are consistent.
        EXPECT_EQ(grid.rows_last_tile,
                  matrix.rows - (grid.tiles_r - 1) * grid.rows_per_tile);
        EXPECT_GT(grid.rows_last_tile, 0);
        EXPECT_LE(grid.rows_last_tile, grid.rows_per_tile);
        EXPECT_GT(grid.cols_last_tile, 0);
        // Physical arrays = VXBs x bit planes.
        EXPECT_EQ(grid.physicalCrossbars(),
                  grid.vxbCount() * grid.bit_planes);
    }
}

TEST_P(GridPropertyTest, BitPlanesScaleArraysByCellsPerWeight)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    const CimArchitecture arch = presets::isaacBaseline();
    for (int trial = 0; trial < 30; ++trial) {
        WeightMatrixShape matrix;
        matrix.rows = rng.uniformInt(1, 2000);
        matrix.cols = rng.uniformInt(1, 2000);
        const VxbGrid packed = computeVxbGrid(
            matrix, arch, DimensionBinding::bitsToColumns());
        const VxbGrid planes = computeVxbGrid(
            matrix, arch, DimensionBinding::bitsToCrossbars());
        EXPECT_EQ(planes.bit_planes, arch.cellsPerWeight());
        // Bit planes widen logical columns by exactly cellsPerWeight.
        EXPECT_EQ(planes.logical_cols_per_tile,
                  packed.logical_cols_per_tile * arch.cellsPerWeight());
        EXPECT_EQ(planes.tiles_r, packed.tiles_r);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridPropertyTest,
                         testing::Values(1, 2, 3));

// ----- allocator vs brute force (3 stages) -----------------------------------

double
bruteForce3(const std::vector<double> &l, const std::vector<std::int64_t> &c,
            std::int64_t budget, bool pipelined)
{
    double best = 1e300;
    for (std::int64_t d0 = 1; d0 * c[0] <= budget; ++d0) {
        for (std::int64_t d1 = 1; d0 * c[0] + d1 * c[1] <= budget; ++d1) {
            for (std::int64_t d2 = 1;
                 d0 * c[0] + d1 * c[1] + d2 * c[2] <= budget; ++d2) {
                const double s0 = l[0] / static_cast<double>(d0);
                const double s1 = l[1] / static_cast<double>(d1);
                const double s2 = l[2] / static_cast<double>(d2);
                const double value =
                    pipelined ? std::max({s0, s1, s2}) : s0 + s1 + s2;
                best = std::min(best, value);
            }
        }
    }
    return best;
}

class AllocatorPropertyTest : public testing::TestWithParam<int>
{
};

TEST_P(AllocatorPropertyTest, NearOptimalOnRandomInstances)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<double> l = {rng.uniform(10.0, 1000.0),
                                 rng.uniform(10.0, 1000.0),
                                 rng.uniform(10.0, 1000.0)};
        std::vector<std::int64_t> c = {rng.uniformInt(1, 3),
                                       rng.uniformInt(1, 3),
                                       rng.uniformInt(1, 3)};
        // Segmentation guarantees the un-duplicated stages fit; generate
        // only such instances.
        const std::int64_t budget =
            std::max<std::int64_t>(c[0] + c[1] + c[2],
                                   rng.uniformInt(6, 18));
        for (bool pipelined : {false, true}) {
            const auto dup =
                allocateDuplication(l, c, budget, pipelined);
            std::int64_t used = 0;
            for (std::size_t i = 0; i < 3; ++i)
                used += dup[i] * c[i];
            ASSERT_LE(used, budget);
            const double s0 = l[0] / static_cast<double>(dup[0]);
            const double s1 = l[1] / static_cast<double>(dup[1]);
            const double s2 = l[2] / static_cast<double>(dup[2]);
            const double achieved =
                pipelined ? std::max({s0, s1, s2}) : s0 + s1 + s2;
            const double optimal = bruteForce3(l, c, budget, pipelined);
            // Within 25% of the exhaustive optimum (integer rounding and
            // greedy tie-breaks account for the slack).
            EXPECT_LE(achieved, optimal * 1.25)
                << "trial " << trial << " pipelined " << pipelined;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         testing::Values(1, 2, 3, 4));

// ----- quantization algebra ----------------------------------------------------

TEST(QuantPropertyTest, ShiftRoundIsOddAndMonotone)
{
    Rng rng(31);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::int32_t v =
            static_cast<std::int32_t>(rng.uniformInt(-1'000'000,
                                                     1'000'000));
        const int shift = static_cast<int>(rng.uniformInt(0, 12));
        // Odd symmetry: round(-v) == -round(v).
        EXPECT_EQ(shiftRound(-v, shift), -shiftRound(v, shift));
        // Monotone: v <= w implies round(v) <= round(w).
        const std::int32_t w = v + static_cast<std::int32_t>(
                                       rng.uniformInt(0, 1000));
        EXPECT_LE(shiftRound(v, shift), shiftRound(w, shift));
        // Bounded error: |round(v) * 2^shift - v| <= 2^(shift-1).
        if (shift > 0) {
            const std::int64_t back =
                static_cast<std::int64_t>(shiftRound(v, shift)) << shift;
            EXPECT_LE(std::abs(back - v), 1LL << (shift - 1));
        }
    }
}

TEST(QuantPropertyTest, ChosenShiftIsMinimalFeasible)
{
    Rng rng(32);
    for (int trial = 0; trial < 200; ++trial) {
        Int32Tensor acc(TensorShape({16}));
        for (std::int64_t i = 0; i < 16; ++i) {
            acc[i] = static_cast<std::int32_t>(
                rng.uniformInt(-2'000'000, 2'000'000));
        }
        const int shift = chooseRequantShift(acc).shift;
        std::int64_t max_abs = 0;
        for (std::int64_t i = 0; i < 16; ++i) {
            const std::int64_t v = std::abs(
                static_cast<std::int64_t>(acc[i]));
            max_abs = std::max(max_abs, v);
        }
        EXPECT_LE(max_abs >> shift, 127);
        if (shift > 0) {
            EXPECT_GT(max_abs >> (shift - 1), 127);
        }
    }
}

// ----- printer/parser round trip on generated ops ------------------------------

TEST(MopPropertyTest, RandomReadOpsRoundTrip)
{
    Rng rng(77);
    for (int trial = 0; trial < 300; ++trial) {
        MetaOp op;
        op.kind = rng.uniform() < 0.5 ? MetaOpKind::kReadXb
                                      : MetaOpKind::kReadRow;
        op.core = rng.uniformInt(0, 767);
        op.xb = rng.uniformInt(0, 15);
        op.row = rng.uniformInt(0, 120);
        op.len = rng.uniformInt(1, 16);
        op.rows = rng.uniformInt(1, 128);
        op.cols = rng.uniformInt(1, 32);
        op.src = {rng.uniform() < 0.5 ? MemSpace::kL0 : MemSpace::kL1,
                  rng.uniformInt(0, 767), rng.uniformInt(0, 100000)};
        op.dst = {MemSpace::kL0, 0, rng.uniformInt(0, 100000)};
        auto parsed = parseOpLine(op.toString());
        ASSERT_TRUE(parsed.isOk()) << op.toString();
        EXPECT_EQ(parsed.value().toString(), op.toString());
    }
}

// ----- cross-scheduler orderings over random-ish architectures ------------------

class ArchSweepOrderingTest : public testing::TestWithParam<int>
{
};

TEST_P(ArchSweepOrderingTest, FullStackNeverLosesToNoOpt)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
    const Graph g = models::lenet5();
    for (int trial = 0; trial < 8; ++trial) {
        CimArchitecture arch = presets::isaacBaseline();
        arch.chip.core_rows = rng.uniformInt(2, 8);
        arch.chip.core_cols = rng.uniformInt(2, 8);
        arch.core.xb_cols = rng.uniformInt(1, 4);
        arch.xbar.rows = 64 << rng.uniformInt(0, 2);
        arch.xbar.cols = 64 << rng.uniformInt(0, 2);
        arch.xbar.parallel_row =
            std::min<std::int64_t>(arch.xbar.rows,
                                   8 << rng.uniformInt(0, 3));
        ASSERT_TRUE(arch.validate().isOk());
        auto none = scheduleGraph(g, arch, ScheduleOptions::none());
        auto full = scheduleGraph(g, arch, ScheduleOptions::full());
        ASSERT_TRUE(none.isOk() && full.isOk());
        EXPECT_LE(full.value().total_latency_cycles,
                  none.value().total_latency_cycles * 1.0001)
            << arch.toString();
        EXPECT_LE(full.value().peak_active_xbs, arch.totalCrossbars());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchSweepOrderingTest,
                         testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace cimmlc
