/**
 * @file
 * Tests for the schedule auto-tuner: candidate enumeration clamped per
 * ComputeMode, encoding stability, thread-count-independent results,
 * cache-hit behavior, and the regression pin that the tuned
 * configuration is never worse than the ScheduleOptions{} defaults.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "arch/presets.h"
#include "compiler/batch.h"
#include "graph/models.h"
#include "sched/autotune.h"

namespace cimmlc {
namespace {

// ----- objective parsing -------------------------------------------------

TEST(TuneObjectiveTest, ParsesKnownNames)
{
    EXPECT_EQ(parseTuneObjective("latency").value(),
              TuneObjective::kLatency);
    EXPECT_EQ(parseTuneObjective("ENERGY").value(),
              TuneObjective::kEnergy);
    EXPECT_EQ(parseTuneObjective(" edp ").value(), TuneObjective::kEdp);
}

TEST(TuneObjectiveTest, RejectsUnknownNames)
{
    auto parsed = parseTuneObjective("throughput");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ----- encoding ----------------------------------------------------------

TEST(TuneEncodingTest, RoundTripsEveryCandidate)
{
    for (ComputeMode mode :
         {ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM}) {
        for (const ScheduleOptions &options :
             AutoTuner::enumerateCandidates(mode)) {
            const std::uint32_t encoding =
                AutoTuner::encodeOptions(options);
            const ScheduleOptions decoded =
                AutoTuner::decodeOptions(encoding);
            EXPECT_EQ(AutoTuner::encodeOptions(decoded), encoding);
            EXPECT_EQ(decoded.toString(), options.toString());
        }
    }
}

TEST(TuneEncodingTest, CandidatesAscendByEncoding)
{
    const auto candidates =
        AutoTuner::enumerateCandidates(ComputeMode::kWLM);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        EXPECT_LT(AutoTuner::encodeOptions(candidates[i - 1]),
                  AutoTuner::encodeOptions(candidates[i]));
    }
}

// ----- candidate enumeration / mode clamping -----------------------------

TEST(TuneCandidateTest, CmChipsNeverGetMvmOrVvmKnobs)
{
    const auto candidates =
        AutoTuner::enumerateCandidates(ComputeMode::kCM);
    // 2 CG toggles x binding x 4 segment caps x dual-mode x host-offload.
    EXPECT_EQ(candidates.size(), 128u);
    for (const ScheduleOptions &options : candidates) {
        EXPECT_FALSE(options.mvm_duplication);
        EXPECT_FALSE(options.mvm_pipeline);
        EXPECT_FALSE(options.vvm_remap);
    }
}

TEST(TuneCandidateTest, XbmChipsNeverGetVvmKnob)
{
    const auto candidates =
        AutoTuner::enumerateCandidates(ComputeMode::kXBM);
    EXPECT_EQ(candidates.size(), 512u);
    for (const ScheduleOptions &options : candidates)
        EXPECT_FALSE(options.vvm_remap);
}

TEST(TuneCandidateTest, WlmChipsGetTheFullSpace)
{
    EXPECT_EQ(AutoTuner::enumerateCandidates(ComputeMode::kWLM).size(),
              1024u);
}

TEST(TuneCandidateTest, TunedConfigOnCmChipRespectsClamp)
{
    const AutoTuner tuner(AutoTuneConfig{TuneObjective::kLatency, 1});
    auto result =
        tuner.tune(models::byName("lenet5"), presets::jiaIsscc21());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    for (const TuneCandidate &candidate : result.value().candidates) {
        EXPECT_FALSE(candidate.options.mvm_duplication);
        EXPECT_FALSE(candidate.options.mvm_pipeline);
        EXPECT_FALSE(candidate.options.vvm_remap);
    }
    EXPECT_FALSE(result.value().best().options.vvm_remap);
}

// ----- determinism across thread counts ----------------------------------

TEST(TuneDeterminismTest, SerialAndParallelRunsAreByteIdentical)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = presets::byName("jain").value();

    const AutoTuner serial(AutoTuneConfig{TuneObjective::kLatency, 1});
    const AutoTuner parallel(AutoTuneConfig{TuneObjective::kLatency, 4});
    auto a = serial.tune(graph, arch);
    auto b = parallel.tune(graph, arch);
    ASSERT_TRUE(a.isOk()) << a.status().toString();
    ASSERT_TRUE(b.isOk()) << b.status().toString();

    EXPECT_EQ(a.value().best_index, b.value().best_index);
    EXPECT_EQ(a.value().best().encoding, b.value().best().encoding);
    EXPECT_EQ(a.value().table(), b.value().table());
    EXPECT_EQ(a.value().summary(), b.value().summary());
}

// ----- cache -------------------------------------------------------------

TEST(TuneCacheTest, SecondRunIsServedFromTheCache)
{
    const Graph graph = models::byName("macro_cnn");
    const CimArchitecture arch = presets::byName("jia").value();

    TuneCache cache;
    const AutoTuner tuner(
        AutoTuneConfig{TuneObjective::kLatency, 1, &cache});

    auto first = tuner.tune(graph, arch);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    EXPECT_EQ(first.value().cache_hits, 0);
    EXPECT_EQ(cache.size(), first.value().candidates.size());

    auto second = tuner.tune(graph, arch);
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    EXPECT_EQ(second.value().cache_hits,
              static_cast<std::int64_t>(
                  second.value().candidates.size()));
    // Cached values are bit-identical to fresh ones.
    EXPECT_EQ(first.value().table(), second.value().table());
    EXPECT_EQ(first.value().best().encoding,
              second.value().best().encoding);
}

TEST(TuneCacheTest, FingerprintSeparatesArchCandidates)
{
    // A DSE sweep shares one cache across arch candidates; any swept
    // parameter must change the memo key. xb_size is the satellite pin;
    // the NoC topology, xb_noc_bandwidth, and buffer sizes are the
    // parameters the original key actually omitted.
    const Graph graph = models::byName("lenet5");
    const CimArchitecture base = presets::jainJssc21();

    CimArchitecture xb_size = base;
    xb_size.xbar.rows = 128;
    xb_size.xbar.cols = 128;
    EXPECT_NE(TuneCache::fingerprint(graph, base, 0),
              TuneCache::fingerprint(graph, xb_size, 0));

    CimArchitecture noc = base;
    noc.chip.core_noc = NocType::kMesh;
    EXPECT_NE(TuneCache::fingerprint(graph, base, 0),
              TuneCache::fingerprint(graph, noc, 0));

    CimArchitecture xb_noc_bw = base;
    xb_noc_bw.core.xb_noc_bandwidth = 64.0;
    EXPECT_NE(TuneCache::fingerprint(graph, base, 0),
              TuneCache::fingerprint(graph, xb_noc_bw, 0));

    CimArchitecture l0 = base;
    l0.chip.l0_size_kib = 96.0;
    EXPECT_NE(TuneCache::fingerprint(graph, base, 0),
              TuneCache::fingerprint(graph, l0, 0));

    CimArchitecture cost = base;
    const std::size_t cores =
        static_cast<std::size_t>(cost.chip.coreNumber());
    cost.chip.core_noc_cost.assign(cores * cores, 2.0);
    EXPECT_NE(TuneCache::fingerprint(graph, base, 0),
              TuneCache::fingerprint(graph, cost, 0));
}

TEST(TuneCacheTest, ArchCandidatesWithDifferentXbSizeNeverShareEntries)
{
    const Graph graph = models::byName("lenet5");
    CimArchitecture small = presets::jainJssc21();
    CimArchitecture large = presets::jainJssc21();
    large.xbar.rows = 128;
    large.xbar.cols = 128;

    TuneCache cache;
    const AutoTuner tuner(
        AutoTuneConfig{TuneObjective::kLatency, 1, &cache});
    auto first = tuner.tune(graph, small);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    auto second = tuner.tune(graph, large);
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    // Same graph, same candidate encodings — but a different crossbar:
    // nothing may alias.
    EXPECT_EQ(second.value().cache_hits, 0);
    EXPECT_EQ(cache.size(), first.value().candidates.size()
                                + second.value().candidates.size());
}

// ----- cross-process persistence -----------------------------------------

TEST(TuneCachePersistTest, RoundTripMatchesAWarmInMemoryCache)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = presets::byName("jain").value();
    const std::string path = "test_autotune_cache_roundtrip.json";

    TuneCache original;
    const AutoTuner tuner_a(
        AutoTuneConfig{TuneObjective::kLatency, 1, &original});
    auto cold = tuner_a.tune(graph, arch);
    ASSERT_TRUE(cold.isOk()) << cold.status().toString();
    ASSERT_TRUE(original.saveToFile(path).isOk());

    // In-memory warm reference: every candidate served from the memo.
    auto warm_memory = tuner_a.tune(graph, arch);
    ASSERT_TRUE(warm_memory.isOk());

    TuneCache reloaded;
    ASSERT_TRUE(reloaded.loadFromFile(path).isOk());
    EXPECT_EQ(reloaded.size(), original.size());
    const AutoTuner tuner_b(
        AutoTuneConfig{TuneObjective::kLatency, 1, &reloaded});
    auto warm_disk = tuner_b.tune(graph, arch);
    ASSERT_TRUE(warm_disk.isOk()) << warm_disk.status().toString();

    // Hit counts identical to the in-memory warm cache, values
    // bit-identical to the cold run.
    EXPECT_EQ(warm_disk.value().cache_hits,
              warm_memory.value().cache_hits);
    EXPECT_EQ(warm_disk.value().cache_hits,
              static_cast<std::int64_t>(
                  warm_disk.value().candidates.size()));
    EXPECT_EQ(warm_disk.value().table(), cold.value().table());
    EXPECT_EQ(warm_disk.value().best().encoding,
              cold.value().best().encoding);
    std::remove(path.c_str());
}

TEST(TuneCachePersistTest, CorruptFileDegradesToAColdCache)
{
    const std::string path = "test_autotune_cache_corrupt.json";
    {
        std::ofstream out(path);
        out << "this is not kvjson {{{";
    }
    TuneCache cache;
    const Status loaded = cache.loadFromFile(path);
    EXPECT_FALSE(loaded.isOk());
    EXPECT_EQ(cache.size(), 0u);

    // The degraded cache still works — as a cold one.
    const AutoTuner tuner(
        AutoTuneConfig{TuneObjective::kLatency, 1, &cache});
    auto result = tuner.tune(models::byName("conv_relu_toy"),
                             presets::byName("tutorial").value());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().cache_hits, 0);
    EXPECT_EQ(cache.size(), result.value().candidates.size());
    std::remove(path.c_str());
}

TEST(TuneCachePersistTest, StaleSchemaOrTruncatedEntriesAreRejected)
{
    TuneCache cache;
    // Pre-populate so a failed load demonstrably empties the memo
    // instead of leaving stale entries behind.
    cache.insert("sentinel", TuneCache::Entry{Status::ok(), 1, 2, 2});

    auto wrong_schema = parseConfig(
        R"({"schema": "cimmlc.tunecache.v0", "entries": []})");
    ASSERT_TRUE(wrong_schema.isOk());
    EXPECT_FALSE(cache.loadFromConfig(wrong_schema.value()).isOk());
    EXPECT_EQ(cache.size(), 0u);

    cache.insert("sentinel", TuneCache::Entry{Status::ok(), 1, 2, 2});
    auto truncated = parseConfig(R"({
        "schema": "cimmlc.tunecache.v1",
        "entries": [{"key": "k", "code": 0, "latency_cycles": 1}]
    })");
    ASSERT_TRUE(truncated.isOk());
    EXPECT_FALSE(cache.loadFromConfig(truncated.value()).isOk());
    EXPECT_EQ(cache.size(), 0u);

    cache.insert("sentinel", TuneCache::Entry{Status::ok(), 1, 2, 2});
    auto bad_code = parseConfig(R"({
        "schema": "cimmlc.tunecache.v1",
        "entries": [{"key": "k", "code": 99, "latency_cycles": 1,
                     "energy_pj": 1, "edp": 1}]
    })");
    ASSERT_TRUE(bad_code.isOk());
    EXPECT_FALSE(cache.loadFromConfig(bad_code.value()).isOk());
    EXPECT_EQ(cache.size(), 0u);

    // A wrong-typed metric must be rejected, not loaded as 0.0 (a
    // zero-latency entry would win every warm Pareto front).
    cache.insert("sentinel", TuneCache::Entry{Status::ok(), 1, 2, 2});
    auto mistyped = parseConfig(R"({
        "schema": "cimmlc.tunecache.v1",
        "entries": [{"key": "k", "code": 0, "latency_cycles": "oops",
                     "energy_pj": 1, "edp": 1}]
    })");
    ASSERT_TRUE(mistyped.isOk());
    EXPECT_FALSE(cache.loadFromConfig(mistyped.value()).isOk());
    EXPECT_EQ(cache.size(), 0u);

    EXPECT_FALSE(cache.loadFromFile("no_such_cache_file.json").isOk());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TuneCachePersistTest, FailedEvaluationsSurviveTheRoundTrip)
{
    // Failure entries matter: a warm cache must also skip re-running
    // infeasible candidates, and their Status must come back intact.
    TuneCache cache;
    cache.insert("ok", TuneCache::Entry{Status::ok(), 10.0, 20.0, 200.0});
    cache.insert("bad",
                 TuneCache::Entry{resourceExhausted("too big"), 0, 0, 0});
    TuneCache reloaded;
    ASSERT_TRUE(reloaded.loadFromConfig(cache.toConfig()).isOk());
    ASSERT_EQ(reloaded.size(), 2u);
    auto ok_entry = reloaded.lookup("ok");
    ASSERT_TRUE(ok_entry.has_value());
    EXPECT_TRUE(ok_entry->status.isOk());
    EXPECT_DOUBLE_EQ(ok_entry->latency_cycles, 10.0);
    auto bad_entry = reloaded.lookup("bad");
    ASSERT_TRUE(bad_entry.has_value());
    EXPECT_EQ(bad_entry->status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(bad_entry->status.message(), "too big");
}

TEST(TuneCacheTest, DifferentArchesDoNotCollide)
{
    const Graph graph = models::byName("lenet5");
    TuneCache cache;
    const AutoTuner tuner(
        AutoTuneConfig{TuneObjective::kLatency, 1, &cache});

    auto on_jia = tuner.tune(graph, presets::byName("jia").value());
    auto on_tutorial =
        tuner.tune(graph, presets::byName("tutorial").value());
    ASSERT_TRUE(on_jia.isOk());
    ASSERT_TRUE(on_tutorial.isOk());
    EXPECT_EQ(on_tutorial.value().cache_hits, 0);
    EXPECT_NE(on_jia.value().best().latency_cycles,
              on_tutorial.value().best().latency_cycles);
}

// ----- regression pin: proxy fingerprints never alias full ones ----------

TEST(TuneCacheTest, ProxyFidelityNeverAliasesFullEvaluations)
{
    // A halving rung evaluates the same (graph, arch, options) point at
    // proxy fidelity (workload prefix and/or forced opt=none). Its memo
    // key must differ from the full evaluation's, for every proxy mode,
    // or a warm cache would poison full runs with proxy metrics.
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = presets::byName("jain").value();
    const std::uint32_t encoding =
        AutoTuner::encodeOptions(ScheduleOptions::none());

    const std::string full =
        TuneCache::fingerprint(graph, arch, encoding);
    SearchFidelity prefix;
    prefix.prefix_nodes = 4;
    SearchFidelity opt_none;
    opt_none.forced_opt_none = true;
    SearchFidelity both = prefix;
    both.forced_opt_none = true;
    const std::string with_prefix =
        TuneCache::fingerprint(graph, arch, encoding, prefix);
    const std::string with_opt_none =
        TuneCache::fingerprint(graph, arch, encoding, opt_none);
    const std::string with_both =
        TuneCache::fingerprint(graph, arch, encoding, both);

    EXPECT_NE(full, with_prefix);
    EXPECT_NE(full, with_opt_none);
    EXPECT_NE(full, with_both);
    EXPECT_NE(with_prefix, with_opt_none);
    EXPECT_NE(with_prefix, with_both);
    EXPECT_NE(with_opt_none, with_both);
    // Distinct prefix lengths are distinct fidelities.
    SearchFidelity longer = prefix;
    longer.prefix_nodes = 5;
    EXPECT_NE(with_prefix,
              TuneCache::fingerprint(graph, arch, encoding, longer));
    // The default fidelity is the full evaluation: byte-identical key,
    // so every pre-budget cache file stays valid.
    EXPECT_EQ(full,
              TuneCache::fingerprint(graph, arch, encoding,
                                     SearchFidelity{}));

    // End to end: a proxy entry in a warm cache is invisible to the
    // full-fidelity lookup path.
    TuneCache cache;
    cache.insert(with_prefix,
                 TuneCache::Entry{Status::ok(), 1.0, 1.0, 1.0});
    EXPECT_FALSE(cache.lookup(full).has_value());
}

// ----- regression pin: tuned never worse than the defaults ---------------

TEST(TuneRegressionTest, TunedNeverWorseThanDefaultOptions)
{
    for (const char *model : {"lenet5", "macro_cnn"}) {
        for (const char *preset : {"jain", "jia"}) {
            for (TuneObjective objective :
                 {TuneObjective::kLatency, TuneObjective::kEnergy,
                  TuneObjective::kEdp}) {
                const AutoTuner tuner(AutoTuneConfig{objective, 1});
                auto result = tuner.tune(
                    models::byName(model),
                    presets::byName(preset).value());
                ASSERT_TRUE(result.isOk())
                    << model << " x " << preset << ": "
                    << result.status().toString();
                const TuneResult &r = result.value();
                ASSERT_TRUE(r.defaults().status.isOk());
                EXPECT_LE(r.best().objectiveValue(objective),
                          r.defaults().objectiveValue(objective))
                    << model << " x " << preset << " objective "
                    << tuneObjectiveName(objective);
            }
        }
    }
}

TEST(TuneRegressionTest, TunerStrictlyBeatsDefaultsSomewhere)
{
    // The pinned wins of this cost model: segmentation granularity
    // (seg<=N) trades a cheap reload for more duplication budget on
    // jain and jia. If the cost model changes and these stop being
    // strict wins, retune and re-pin.
    struct Pin {
        const char *model;
        const char *preset;
    };
    for (const Pin &pin : {Pin{"macro_cnn", "jain"},
                           Pin{"vgg7", "jia"}}) {
        const AutoTuner tuner(
            AutoTuneConfig{TuneObjective::kLatency, 1});
        auto result = tuner.tune(models::byName(pin.model),
                                 presets::byName(pin.preset).value());
        ASSERT_TRUE(result.isOk()) << result.status().toString();
        EXPECT_LT(result.value().best().latency_cycles,
                  result.value().defaults().latency_cycles)
            << pin.model << " x " << pin.preset;
        EXPECT_GT(result.value().speedupOverDefault(), 1.0);
    }
}

// ----- report ------------------------------------------------------------

TEST(TuneReportTest, TableMarksBestAndDefault)
{
    const AutoTuner tuner(AutoTuneConfig{TuneObjective::kLatency, 1});
    auto result = tuner.tune(models::byName("conv_relu_toy"),
                             presets::byName("tutorial").value());
    ASSERT_TRUE(result.isOk());
    const std::string table = result.value().table();
    EXPECT_NE(table.find("<- best"), std::string::npos);
    EXPECT_NE(table.find("default"), std::string::npos);
    EXPECT_NE(result.value().summary().find("autotune[latency]"),
              std::string::npos);
}

// ----- batch sweep integration -------------------------------------------

TEST(TuneSweepTest, SweepFileParsesTuneKeys)
{
    auto sweep = sweepFromText(R"({
        "models": ["lenet5"],
        "archs": ["jain"],
        "tune": true,
        "objective": "edp"
    })");
    ASSERT_TRUE(sweep.isOk()) << sweep.status().toString();
    EXPECT_TRUE(sweep.value().tune);
    EXPECT_EQ(sweep.value().objective, TuneObjective::kEdp);
}

TEST(TuneSweepTest, SweepFileDefaultsToNoTuning)
{
    auto sweep = sweepFromText(R"({
        "models": ["lenet5"],
        "archs": ["jain"]
    })");
    ASSERT_TRUE(sweep.isOk());
    EXPECT_FALSE(sweep.value().tune);
    EXPECT_EQ(sweep.value().objective, TuneObjective::kLatency);
}

TEST(TuneSweepTest, SweepFileRejectsUnknownObjective)
{
    auto sweep = sweepFromText(R"({
        "models": ["lenet5"],
        "archs": ["jain"],
        "objective": "throughput"
    })");
    EXPECT_FALSE(sweep.isOk());
}

TEST(TuneSweepTest, TunedBatchMatchesSerialAndBeatsFixedOptions)
{
    auto jobs = BatchCompiler::crossProduct({"lenet5", "macro_cnn"},
                                            {"jain", "jia"});
    ASSERT_TRUE(jobs.isOk());

    BatchCompiler serial(ScheduleOptions::full(), /*threads=*/1);
    serial.setTuning(true, TuneObjective::kLatency);
    BatchCompiler parallel(ScheduleOptions::full(), /*threads=*/4);
    parallel.setTuning(true, TuneObjective::kLatency);

    auto a = serial.run(jobs.value());
    auto b = parallel.run(jobs.value());
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(a.value().table(), b.value().table());

    BatchCompiler fixed(ScheduleOptions::full(), /*threads=*/1);
    auto baseline = fixed.run(jobs.value());
    ASSERT_TRUE(baseline.isOk());
    for (std::size_t i = 0; i < a.value().entries.size(); ++i) {
        const BatchEntry &tuned = a.value().entries[i];
        const BatchEntry &untuned = baseline.value().entries[i];
        ASSERT_TRUE(tuned.status.isOk()) << tuned.status.toString();
        EXPECT_TRUE(tuned.tuned);
        EXPECT_LE(tuned.perf.latency_cycles,
                  untuned.perf.latency_cycles)
            << tuned.job.model << " x " << tuned.job.arch;
    }
}

} // namespace
} // namespace cimmlc
