/**
 * @file
 * Socket-level tests for the compile daemon: handshake, report
 * byte-identity against an in-process session, the warm artifact memo,
 * admission rejection under a full queue, cancel-on-disconnect, stats,
 * shutdown, and tune-cache snapshotting. Each test runs its own
 * DaemonServer on a unique /tmp Unix socket (or ephemeral TCP port);
 * deterministic in-flight blocking uses the server's test-only
 * compile hook.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <regex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "compiler/session.h"
#include "daemon/client.h"
#include "daemon/server.h"

namespace cimmlc {
namespace {

std::string
uniqueSocketPath(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/tmp/cimmlcd_t" + std::to_string(::getpid()) + "_" + tag
           + std::to_string(counter.fetch_add(1)) + ".sock";
}

/** Strips the nondeterministic per-stage timing from a report so two
 * runs of the same compile can be compared byte for byte. */
std::string
normalizeWallMs(const std::string &report)
{
    static const std::regex wall("\"wall_ms\": [0-9.eE+-]+");
    return std::regex_replace(report, wall, "\"wall_ms\": X");
}

/** Additionally strips the per-stage "cached" provenance tag, so a
 * cold report and a stage-cache-replayed warm report of the same
 * request can be compared byte for byte. */
std::string
normalizeProvenance(const std::string &report)
{
    static const std::regex cached("\"cached\": (true|false)");
    return std::regex_replace(normalizeWallMs(report),
                              cached, "\"cached\": X");
}

RpcCompileRequest
toyRequest(const std::string &model = "conv_relu_toy",
           const std::string &arch = "tutorial")
{
    RpcCompileRequest request;
    request.model = model;
    request.arch = arch;
    return request;
}

/** The in-process reference: what `cimmlc --report json` prints. */
std::string
localReport(const RpcCompileRequest &request)
{
    auto mapped = request.toCompileRequest(nullptr);
    EXPECT_TRUE(mapped.isOk()) << mapped.status().toString();
    CompilerSession session(std::move(mapped).value());
    auto result = session.run();
    EXPECT_TRUE(result.isOk()) << result.status().toString();
    return result.value().toConfig().dump(/*pretty=*/true);
}

/** Polls @p predicate for up to five seconds. */
bool
eventually(const std::function<bool()> &predicate)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

TEST(DaemonServerTest, RejectsConfigWithoutTransport)
{
    DaemonConfig config; // neither unix_path nor tcp_port
    DaemonServer server(std::move(config));
    EXPECT_FALSE(server.start().isOk());
}

TEST(DaemonServerTest, HandshakeCarriesSchemaAndVersion)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("hello");
    config.threads = 1;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());

    auto client = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client.isOk()) << client.status().toString();
    EXPECT_EQ(client.value().serverSchema(), kRpcSchema);
    EXPECT_FALSE(client.value().versionSkew());
    server.stop();
}

TEST(DaemonServerTest, ReportMatchesInProcessSession)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("ident");
    config.threads = 2;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());

    const RpcCompileRequest request = toyRequest();
    auto client = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client.isOk());
    std::int64_t events = 0;
    auto response = client.value().compile(
        request, [&events](const std::string &, const std::string &,
                           double, const std::string &) { ++events; });
    ASSERT_TRUE(response.isOk()) << response.status().toString();
    EXPECT_FALSE(response.value().cached);
    // Every pipeline stage streamed a trace event before the report.
    EXPECT_GE(events, 5);
    EXPECT_EQ(normalizeWallMs(response.value().report_json),
              normalizeWallMs(localReport(request)));
    server.stop();
}

TEST(DaemonServerTest, TcpTransportServesTheSameReport)
{
    DaemonConfig config;
    config.tcp_port = 0; // ephemeral
    config.threads = 1;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());
    ASSERT_GT(server.boundTcpPort(), 0);

    auto client =
        DaemonClient::connectTcpSocket("127.0.0.1", server.boundTcpPort());
    ASSERT_TRUE(client.isOk()) << client.status().toString();
    const RpcCompileRequest request = toyRequest();
    auto response = client.value().compile(request);
    ASSERT_TRUE(response.isOk()) << response.status().toString();
    EXPECT_EQ(normalizeWallMs(response.value().report_json),
              normalizeWallMs(localReport(request)));
    server.stop();
}

TEST(DaemonServerTest, WarmMemoServesRepeatByteIdentical)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("memo");
    config.threads = 1;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());

    auto client = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client.isOk());
    auto cold = client.value().compile(toyRequest());
    ASSERT_TRUE(cold.isOk());
    EXPECT_FALSE(cold.value().cached);

    // Same request again — and from a different connection, to prove
    // the memo is process-wide, not per-client.
    auto client2 = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client2.isOk());
    auto warm = client2.value().compile(toyRequest());
    ASSERT_TRUE(warm.isOk());
    EXPECT_TRUE(warm.value().cached);
    // Stage replays recompute nothing, so the warm report matches the
    // cold one byte for byte once the timing and the per-stage cache
    // provenance (the whole point of the warm run) are masked out.
    EXPECT_EQ(normalizeProvenance(warm.value().report_json),
              normalizeProvenance(cold.value().report_json));
    // The cold run computed every stage; the warm run replayed every
    // stage past load from the process-wide artifact cache.
    EXPECT_EQ(cold.value().report_json.find("\"cached\": true"),
              std::string::npos);
    std::size_t replays = 0;
    for (std::size_t at = warm.value().report_json.find("\"cached\": true");
         at != std::string::npos;
         at = warm.value().report_json.find("\"cached\": true", at + 1))
        ++replays;
    EXPECT_GE(replays, 4u); // validate, schedule, codegen, perf
    server.stop();
}

TEST(DaemonServerTest, ConcurrentMixedClientsStayByteIdentical)
{
    const std::vector<RpcCompileRequest> mix = {
        toyRequest("conv_relu_toy", "tutorial"),
        toyRequest("mlp", "jain"),
        toyRequest("lenet5", "tutorial"),
    };
    std::vector<std::string> expected;
    for (const RpcCompileRequest &request : mix)
        expected.push_back(normalizeWallMs(localReport(request)));

    for (int threads : {1, 2, 8}) {
        DaemonConfig config;
        config.unix_path = uniqueSocketPath("mix");
        config.threads = threads;
        config.max_inflight = threads;
        DaemonServer server(std::move(config));
        ASSERT_TRUE(server.start().isOk());

        std::vector<std::string> got(mix.size());
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            clients.emplace_back([&, i] {
                auto client = DaemonClient::connectUnixSocket(
                    server.config().unix_path);
                ASSERT_TRUE(client.isOk());
                auto response = client.value().compile(mix[i]);
                ASSERT_TRUE(response.isOk())
                    << response.status().toString();
                got[i] = normalizeWallMs(response.value().report_json);
            });
        }
        for (std::thread &thread : clients)
            thread.join();
        for (std::size_t i = 0; i < mix.size(); ++i)
            EXPECT_EQ(got[i], expected[i])
                << "threads=" << threads << " request " << i;
        server.stop();
    }
}

TEST(DaemonServerTest, FullQueueRejectsWithResourceExhausted)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("adm");
    config.threads = 2;
    config.max_inflight = 1;
    config.max_queue_depth = 1;
    DaemonServer server(std::move(config));

    // Gate: the first dispatched compile blocks inside the hook until
    // released, pinning the single in-flight slot deterministically.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    int entered = 0;
    bool release = false;
    server.setCompileHook([&](const std::string &) {
        std::unique_lock<std::mutex> lock(gate_mutex);
        ++entered;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return release; });
    });
    ASSERT_TRUE(server.start().isOk());
    const std::string path = server.config().unix_path;

    std::thread blocked([&] {
        auto client = DaemonClient::connectUnixSocket(path);
        ASSERT_TRUE(client.isOk());
        auto response = client.value().compile(toyRequest());
        EXPECT_TRUE(response.isOk()) << response.status().toString();
    });
    {
        std::unique_lock<std::mutex> lock(gate_mutex);
        ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                     [&] { return entered == 1; }));
    }

    std::thread queued([&] {
        auto client = DaemonClient::connectUnixSocket(path);
        ASSERT_TRUE(client.isOk());
        auto response =
            client.value().compile(toyRequest("mlp", "jain"));
        EXPECT_TRUE(response.isOk()) << response.status().toString();
    });
    ASSERT_TRUE(eventually([&] { return server.queueDepth() == 1; }));

    // In-flight slot pinned, queue full: the third client is rejected.
    auto client = DaemonClient::connectUnixSocket(path);
    ASSERT_TRUE(client.isOk());
    auto rejected =
        client.value().compile(toyRequest("lenet5", "tutorial"));
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();
    blocked.join();
    queued.join();
    server.stop();
}

TEST(DaemonServerTest, DisconnectMidCompileCancelsCleanly)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("cancel");
    config.threads = 2;
    config.max_inflight = 1;
    DaemonServer server(std::move(config));

    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    int entered = 0;
    bool release = false;
    server.setCompileHook([&](const std::string &) {
        std::unique_lock<std::mutex> lock(gate_mutex);
        ++entered;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return release; });
    });
    ASSERT_TRUE(server.start().isOk());
    const std::string path = server.config().unix_path;

    // A raw connection (no DaemonClient, which would block in compile):
    // handshake, submit, then vanish while the job is in flight.
    {
        auto socket = connectUnix(path);
        ASSERT_TRUE(socket.isOk());
        ASSERT_TRUE(recvFrame(socket.value()).isOk()); // hello
        RpcCompileRequest request = toyRequest();
        request.id = 1;
        ASSERT_TRUE(
            sendFrame(socket.value(), request.toConfig()).isOk());
        {
            std::unique_lock<std::mutex> lock(gate_mutex);
            ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                         [&] { return entered == 1; }));
        }
        // Socket closes here: the daemon must cancel, not crash.
    }
    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();

    // The canceled session frees the slot; a fresh client is served.
    auto client = DaemonClient::connectUnixSocket(path);
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE(eventually([&] {
        auto stats = client.value().stats();
        return stats.isOk() && stats.value().getIntOr("canceled", 0) >= 1;
    }));
    auto response = client.value().compile(toyRequest("mlp", "jain"));
    ASSERT_TRUE(response.isOk()) << response.status().toString();
    server.stop();
}

TEST(DaemonServerTest, StatsSnapshotCountsTraffic)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("stats");
    config.threads = 1;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());

    auto client = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client.isOk());
    ASSERT_TRUE(client.value().compile(toyRequest()).isOk());
    ASSERT_TRUE(client.value().compile(toyRequest()).isOk()); // memo hit
    // The in-flight slot is released on the pool thread after the
    // report frame goes out; wait for the gauge to settle.
    ASSERT_TRUE(eventually([&] { return server.inflight() == 0; }));

    auto stats = client.value().stats();
    ASSERT_TRUE(stats.isOk()) << stats.status().toString();
    const ConfigValue &doc = stats.value();
    EXPECT_EQ(doc.getStringOr("schema", ""), "cimmlc.stats.v1");
    EXPECT_EQ(doc.getIntOr("admitted", 0), 2);
    EXPECT_EQ(doc.getIntOr("completed", 0), 2);
    EXPECT_EQ(doc.getIntOr("queue_depth", -1), 0);
    EXPECT_EQ(doc.getIntOr("inflight", -1), 0);
    ASSERT_TRUE(doc.has("artifact_memo"));
    const ConfigValue memo = doc.get("artifact_memo").value();
    EXPECT_EQ(memo.getIntOr("hits", 0), 1);
    EXPECT_EQ(memo.getIntOr("misses", 0), 1);
    EXPECT_DOUBLE_EQ(memo.getNumberOr("hit_rate", 0.0), 0.5);
    ASSERT_TRUE(doc.has("latency"));
    EXPECT_EQ(doc.get("latency").value().getIntOr("count", 0), 2);
    // Per-stage histograms exist for the pipeline's stages.
    ASSERT_TRUE(doc.has("stage_latency"));
    EXPECT_TRUE(doc.get("stage_latency").value().has("schedule"));
    server.stop();
}

TEST(DaemonServerTest, ShutdownRequestStopsTheServer)
{
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("bye");
    config.threads = 1;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());

    auto client = DaemonClient::connectUnixSocket(server.config().unix_path);
    ASSERT_TRUE(client.isOk());
    EXPECT_TRUE(client.value().shutdownServer().isOk());
    // serveForever() would now return; stop() drains and is idempotent.
    server.stop();
    server.stop();
}

TEST(DaemonServerTest, TunedCompilesShareTheWarmCacheAndSnapshot)
{
    const std::string cache_path =
        uniqueSocketPath("cachefile") + ".kvjson";
    {
        DaemonConfig config;
        config.unix_path = uniqueSocketPath("tune");
        config.threads = 1;
        config.tune_cache_path = cache_path;
        config.snapshot_every = 1;
        DaemonServer server(std::move(config));
        ASSERT_TRUE(server.start().isOk());

        RpcCompileRequest request = toyRequest();
        request.tune = true;
        request.objective = "edp";
        auto client =
            DaemonClient::connectUnixSocket(server.config().unix_path);
        ASSERT_TRUE(client.isOk());
        auto response = client.value().compile(request);
        ASSERT_TRUE(response.isOk()) << response.status().toString();
        EXPECT_GT(server.tuneCache().size(), 0u);
        // snapshot_every=1 persists the cache right after that compile
        // (on the pool thread, after the reply frame — so poll).
        TuneCache reloaded;
        ASSERT_TRUE(eventually([&] {
            return reloaded.loadFromFile(cache_path).isOk();
        }));
        EXPECT_EQ(reloaded.size(), server.tuneCache().size());
        server.stop();
    }
    // A second daemon generation starts warm from the snapshot.
    DaemonConfig config;
    config.unix_path = uniqueSocketPath("tune2");
    config.threads = 1;
    config.tune_cache_path = cache_path;
    DaemonServer server(std::move(config));
    ASSERT_TRUE(server.start().isOk());
    EXPECT_GT(server.tuneCache().size(), 0u);
    server.stop();
    std::remove(cache_path.c_str());
}

} // namespace
} // namespace cimmlc
