/**
 * @file
 * Tests for the baseline compilers: Poly-Schedule's greedy behaviour and
 * the ordering invariants the paper's comparisons rest on
 * (no-opt >= Poly-Schedule >= CIM-MLC in latency; vendor flows behave
 * like their published policies).
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "baselines/poly_schedule.h"
#include "baselines/vendor.h"
#include "graph/models.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

TEST(PolyScheduleTest, ProducesValidSchedule)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = polySchedule(g, arch);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const Schedule &s = result.value().schedule;
    EXPECT_GT(s.total_latency_cycles, 0.0);
    EXPECT_EQ(s.ops.size(), g.nodeCount());
    for (const Segment &segment : s.segments)
        EXPECT_LE(segment.cores_used, arch.chip.coreNumber());
    EXPECT_GT(result.value().batch_interval_cycles, 0.0);
}

TEST(PolyScheduleTest, GreedyDuplicationHelps)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto none = noOptSchedule(g, arch);
    auto poly = polySchedule(g, arch);
    ASSERT_TRUE(none.isOk() && poly.isOk());
    EXPECT_LT(poly.value().schedule.total_latency_cycles,
              none.value().total_latency_cycles);
}

TEST(PolyScheduleTest, BatchIntervalBeatsPerImageLatency)
{
    // The batch pipeline's steady-state interval is at most the
    // per-image latency (different images overlap).
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto poly = polySchedule(g, arch);
    ASSERT_TRUE(poly.isOk());
    EXPECT_LE(poly.value().batch_interval_cycles,
              poly.value().schedule.total_latency_cycles);
}

class OrderingTest : public testing::TestWithParam<std::string>
{
};

TEST_P(OrderingTest, CimMlcBeatsPolyBeatsNoOpt)
{
    const Graph g = models::byName(GetParam());
    const CimArchitecture arch = presets::isaacBaseline();
    auto none = noOptSchedule(g, arch);
    auto poly = polySchedule(g, arch);
    auto ours = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(none.isOk() && poly.isOk() && ours.isOk());
    const double l_none = none.value().total_latency_cycles;
    const double l_poly = poly.value().schedule.total_latency_cycles;
    const double l_ours = ours.value().total_latency_cycles;
    EXPECT_LE(l_poly, l_none * 1.0001) << GetParam();
    EXPECT_LE(l_ours, l_poly * 1.0001) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, OrderingTest,
                         testing::Values("resnet18", "resnet50",
                                         "vgg11", "vgg16"));

TEST(VendorTest, JiaIsUnoptimized)
{
    const Graph g = models::vgg11();
    const CimArchitecture arch = presets::jiaIsscc21();
    auto vendor = jiaVendorSchedule(g, arch);
    auto none = noOptSchedule(g, arch);
    ASSERT_TRUE(vendor.isOk() && none.isOk());
    EXPECT_DOUBLE_EQ(vendor.value().total_latency_cycles,
                     none.value().total_latency_cycles);
}

TEST(VendorTest, PumaPipelinesButDoesNotStagger)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::puma();
    auto vendor = pumaVendorSchedule(g, arch);
    ASSERT_TRUE(vendor.isOk());
    EXPECT_TRUE(vendor.value().options.cg_pipeline);
    EXPECT_TRUE(vendor.value().options.cg_duplication);
    EXPECT_FALSE(vendor.value().options.mvm_pipeline);
    // Staggering off means peak activation equals the mapped total in
    // the busiest segment.
    auto ours = scheduleGraph(g, arch, ScheduleOptions::cgMvm());
    ASSERT_TRUE(ours.isOk());
    EXPECT_LE(ours.value().peak_active_xbs,
              vendor.value().peak_active_xbs);
}

TEST(VendorTest, JainVendorIsSerial)
{
    const Graph g = models::macroCnn();
    const CimArchitecture arch = presets::jainJssc21();
    auto vendor = jainVendorSchedule(g, arch);
    ASSERT_TRUE(vendor.isOk());
    for (const OperatorMapping &m : vendor.value().ops) {
        EXPECT_EQ(m.duplication, 1);
        EXPECT_EQ(m.vvm_spread, 1);
    }
}

TEST(PolyScheduleTest, ChipExceedingOperatorSerializesForBoth)
{
    // A single operator larger than the whole chip executes in serial
    // chunks with reprogramming; both compilers survive it, and neither
    // can duplicate it.
    Graph g("huge");
    TensorId in = g.addInput("in", {1, 25088});
    g.markOutput(g.linear(in, 4096));
    const CimArchitecture arch = presets::puma();
    auto poly = polySchedule(g, arch);
    auto ours = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(poly.isOk() && ours.isOk());
    EXPECT_EQ(poly.value().schedule.ops.at(1).duplication, 1);
    EXPECT_GT(ours.value().ops.at(1).chip_splits, 1);
}

} // namespace
} // namespace cimmlc
