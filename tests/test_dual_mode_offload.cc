/**
 * @file
 * Tests for the two scheduling axes added on top of the CG level:
 * dual-mode arrays ("Be CIM or Be Memory" — segments pinned resident so
 * their crossbars stay programmed across segment switches) and hybrid
 * host/CIM offload (digital regions priced against a host-CPU model).
 *
 * Covers the schedule invariants both passes must uphold, the pinned
 * workload x architecture pairs where the auto-tuner selects each knob
 * and strictly beats every knob-off candidate, codegen's init-section
 * weight writes for resident segments, the host flag's round-trip
 * through the meta-op text syntax, cache-fingerprint non-aliasing for
 * the new encoding bits, and byte-identical batch output across thread
 * counts with both knobs forced on.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "arch/serialize.h"
#include "cache/artifact_cache.h"
#include "compiler/batch.h"
#include "compiler/session.h"
#include "graph/models.h"
#include "mop/parser.h"
#include "sched/autotune.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

/**
 * ReRAM chip shaped so residency is a real trade: small crossbars force
 * multi-crossbar cores (16 arrays behind one set of write drivers, so a
 * segment reload is volume, not a constant), and the 6-core budget
 * makes lenet5 split into segments small enough that pinning one still
 * leaves room for the rest.
 */
CimArchitecture
dualWinArch()
{
    auto arch = archFromText(R"({
      "name": "dual-win", "computing_mode": "XBM",
      "chip_tier": {"core_grid": [2, 3], "core_noc": "mesh",
                    "core_noc_bandwidth": 256, "alu": 64,
                    "l0_size_kib": 256, "l0_bandwidth": 256},
      "core_tier": {"xb_grid": [4, 4], "xb_noc": "ideal",
                    "alu": 32, "l1_size_kib": 64, "l1_bandwidth": 128},
      "xb_tier": {"xb_size": [64, 64], "parallel_row": 64,
                  "dac": 1, "adc": 8, "type": "ReRAM", "precision": 2}})");
    EXPECT_TRUE(arch.isOk()) << arch.status().toString();
    return arch.value();
}

/** Chip whose vector ALU is so slow that digital regions price better
 * on the host CPU even after launch overhead and boundary transfers. */
CimArchitecture
weakAluArch()
{
    auto arch = archFromText(R"({
      "name": "weak-alu", "computing_mode": "XBM",
      "chip_tier": {"core_grid": [3, 3], "core_noc": "mesh",
                    "core_noc_bandwidth": 256, "alu": 0.25,
                    "l0_size_kib": 256, "l0_bandwidth": 256},
      "core_tier": {"xb_grid": [2, 2], "xb_noc": "ideal",
                    "alu": 0, "l1_size_kib": 64, "l1_bandwidth": 128},
      "xb_tier": {"xb_size": [128, 128], "parallel_row": 128,
                  "dac": 1, "adc": 8, "type": "ReRAM", "precision": 2}})");
    EXPECT_TRUE(arch.isOk()) << arch.status().toString();
    return arch.value();
}

ScheduleOptions
dualOptions()
{
    ScheduleOptions options = ScheduleOptions::full();
    options.segment_max_nodes = 4;
    options.dual_mode = true;
    return options;
}

// ----- dual-mode schedule invariants -------------------------------------

TEST(DualModeTest, ResidentSegmentsSkipReloadAndStackCores)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = dualWinArch();
    auto schedule = scheduleGraph(graph, arch, dualOptions());
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    const Schedule &s = schedule.value();

    std::size_t resident_count = 0;
    bool saw_nonresident_reload = false;
    for (std::size_t i = 0; i < s.segments.size(); ++i) {
        const Segment &segment = s.segments[i];
        if (segment.resident) {
            ++resident_count;
            EXPECT_EQ(segment.reload_cycles, 0.0)
                << "resident segment " << i << " must never reload";
            EXPECT_GT(i, 0u) << "segment 0 never needs pinning";
        } else if (i > 0) {
            saw_nonresident_reload |= segment.reload_cycles > 0.0;
        }
    }
    EXPECT_GT(resident_count, 0u)
        << "the pinned pair must actually pin on this architecture";
    EXPECT_TRUE(saw_nonresident_reload)
        << "non-resident later segments still pay their reload";

    // Resident core ranges live at the top of the core space and never
    // collide with the per-segment ranges non-resident segments reuse.
    for (const OperatorMapping &a : s.ops) {
        if (!a.is_cim || !a.resident)
            continue;
        const std::int64_t a_lo = a.core_base;
        const std::int64_t a_hi =
            a.core_base + a.duplication * a.cores_per_replica;
        EXPECT_LE(a_hi, arch.chip.coreNumber());
        for (const OperatorMapping &b : s.ops) {
            if (!b.is_cim || b.resident)
                continue;
            const std::int64_t b_hi =
                b.core_base + b.duplication * b.cores_per_replica;
            EXPECT_TRUE(b_hi <= a_lo || b.core_base >= a_hi)
                << "resident cores [" << a_lo << "," << a_hi
                << ") collide with non-resident [" << b.core_base << ","
                << b_hi << ")";
        }
    }
}

TEST(DualModeTest, KnobOffProducesNoResidentSegments)
{
    const Graph graph = models::byName("lenet5");
    ScheduleOptions options = dualOptions();
    options.dual_mode = false;
    auto schedule = scheduleGraph(graph, dualWinArch(), options);
    ASSERT_TRUE(schedule.isOk());
    for (const Segment &segment : schedule.value().segments)
        EXPECT_FALSE(segment.resident);
}

// The pinned improvement of ISSUE acceptance: on this workload x arch
// pair the tuner's global best enables dual-mode and strictly beats
// every candidate that leaves it off. If the cost model changes and
// this stops holding, re-run the arch-shape sweep and re-pin.
TEST(DualModeTest, TunerSelectsDualAndStrictlyBeatsNonDual)
{
    const AutoTuner tuner(AutoTuneConfig{TuneObjective::kLatency, 1});
    auto result = tuner.tune(models::byName("lenet5"), dualWinArch());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const TuneResult &r = result.value();

    EXPECT_TRUE(r.best().options.dual_mode);
    double best_without = std::numeric_limits<double>::infinity();
    for (const TuneCandidate &candidate : r.candidates) {
        if (candidate.status.isOk() && !candidate.options.dual_mode)
            best_without =
                std::min(best_without, candidate.latency_cycles);
    }
    EXPECT_LT(r.best().latency_cycles, best_without)
        << "dual-mode must strictly improve over the whole knob-off "
           "lattice, not just the default";
}

TEST(DualModeTest, CodegenMovesResidentWritesToInit)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = dualWinArch();

    auto dual = scheduleGraph(graph, arch, dualOptions());
    ScheduleOptions off = dualOptions();
    off.dual_mode = false;
    auto plain = scheduleGraph(graph, arch, off);
    ASSERT_TRUE(dual.isOk() && plain.isOk());

    CodegenOptions codegen;
    codegen.unroll = false; // shape-only flow; no weights installed
    auto dual_prog = generateProgram(graph, arch, dual.value(), codegen);
    ASSERT_TRUE(dual_prog.isOk()) << dual_prog.status().toString();
    const MopProgram &program = dual_prog.value().program;

    // Segment 0 and resident segments program once at init; every
    // other segment's crossbars are reprogrammed in the compute flow.
    const Schedule &ds = dual.value();
    std::int64_t expected_init = 0;
    std::int64_t expected_compute = 0;
    for (const OperatorMapping &op : ds.ops) {
        if (!op.is_cim)
            continue;
        const bool at_init =
            op.segment == 0 ||
            ds.segments[static_cast<std::size_t>(op.segment)].resident;
        (at_init ? expected_init : expected_compute) +=
            op.totalCrossbars();
    }
    EXPECT_GT(expected_init, 0);
    EXPECT_GT(expected_compute, 0)
        << "non-resident segments should still reprogram";
    EXPECT_EQ(static_cast<std::int64_t>(program.init().size()),
              expected_init);
    EXPECT_EQ(program.counts().cim_writes,
              expected_init + expected_compute);

    // The knob-off program on the same architecture front-loads only
    // segment 0 (plain.value() exists to pin that contrast).
    ASSERT_TRUE(plain.isOk());
    for (const Segment &segment : plain.value().segments)
        EXPECT_FALSE(segment.resident);
}

// ----- hybrid host offload ------------------------------------------------

TEST(HostOffloadTest, WeakAluChipOffloadsWinningRegions)
{
    const Graph graph = models::byName("lenet5");
    ScheduleOptions options = ScheduleOptions::full();
    options.host_offload = true;
    auto schedule = scheduleGraph(graph, weakAluArch(), options);
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    const Schedule &s = schedule.value();

    ASSERT_FALSE(s.host_regions.empty());
    for (const HostRegion &region : s.host_regions) {
        EXPECT_FALSE(region.nodes.empty());
        // The scheduler only moves a region when the host total
        // (launch + transfer + compute) strictly beats the chip ALU.
        EXPECT_LT(region.host_cycles, region.chip_cycles);
        EXPECT_GT(region.transfer_bits, 0.0);
        for (NodeId node : region.nodes) {
            const OperatorMapping &mapping = s.mapping(node);
            EXPECT_TRUE(mapping.on_host);
            EXPECT_FALSE(mapping.is_cim)
                << "only digital nodes may leave the crossbars";
        }
    }
    // Nodes outside every region stay on chip.
    std::size_t flagged = 0;
    for (const OperatorMapping &mapping : s.ops)
        flagged += mapping.on_host ? 1 : 0;
    std::size_t in_regions = 0;
    for (const HostRegion &region : s.host_regions)
        in_regions += region.nodes.size();
    EXPECT_EQ(flagged, in_regions);
}

TEST(HostOffloadTest, TunerSelectsHostOffloadAndStrictlyBeatsChipOnly)
{
    const AutoTuner tuner(AutoTuneConfig{TuneObjective::kLatency, 1});
    auto result = tuner.tune(models::byName("lenet5"), weakAluArch());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const TuneResult &r = result.value();

    EXPECT_TRUE(r.best().options.host_offload);
    double best_without = std::numeric_limits<double>::infinity();
    for (const TuneCandidate &candidate : r.candidates) {
        if (candidate.status.isOk() && !candidate.options.host_offload)
            best_without =
                std::min(best_without, candidate.latency_cycles);
    }
    EXPECT_LT(r.best().latency_cycles, best_without);
}

TEST(HostOffloadTest, HostOpsRoundTripThroughText)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = weakAluArch();
    ScheduleOptions options = ScheduleOptions::full();
    options.host_offload = true;
    auto schedule = scheduleGraph(graph, arch, options);
    ASSERT_TRUE(schedule.isOk());
    CodegenOptions codegen;
    codegen.unroll = false; // shape-only flow; no weights installed
    auto result = generateProgram(graph, arch, schedule.value(), codegen);
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    std::size_t host_ops = 0;
    result.value().program.forEachOp([&](const MetaOp &op) {
        if (!op.host)
            return;
        ++host_ops;
        auto parsed = parseOpLine(op.toString());
        ASSERT_TRUE(parsed.isOk())
            << op.toString() << ": " << parsed.status().toString();
        EXPECT_TRUE(parsed.value().host)
            << "host marker lost in round-trip: " << op.toString();
    });
    EXPECT_GT(host_ops, 0u);
}

// ----- cache fingerprints never alias the new knobs (satellite) ----------

TEST(FingerprintTest, DualAndHostBitsNeverAliasInTuneCache)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch = dualWinArch();

    ScheduleOptions base = ScheduleOptions::full();
    ScheduleOptions dual = base;
    dual.dual_mode = true;
    ScheduleOptions host = base;
    host.host_offload = true;

    const std::string fp_base = TuneCache::fingerprint(
        graph, arch, AutoTuner::encodeOptions(base));
    const std::string fp_dual = TuneCache::fingerprint(
        graph, arch, AutoTuner::encodeOptions(dual));
    const std::string fp_host = TuneCache::fingerprint(
        graph, arch, AutoTuner::encodeOptions(host));
    EXPECT_NE(fp_base, fp_dual);
    EXPECT_NE(fp_base, fp_host);
    EXPECT_NE(fp_dual, fp_host);

    // A non-default host model changes the fingerprint of host-offload
    // evaluations: two compiles that price regions differently can
    // never alias in a shared (or persisted) cache.
    HostModel slow;
    slow.alu_ops_per_cycle = 8.0;
    EXPECT_NE(TuneCache::fingerprint(graph, arch,
                                     AutoTuner::encodeOptions(host), {},
                                     slow.cacheTag()),
              fp_host);
}

TEST(FingerprintTest, WarmArtifactCacheMissesAcrossKnobChanges)
{
    ArtifactCache cache(64);
    auto makeRequest = [&cache](bool dual, bool host) {
        CompileRequest request;
        request.model = "lenet5";
        request.arch = "jain";
        request.threads = 1;
        ScheduleOptions options = ScheduleOptions::full();
        options.dual_mode = dual;
        options.host_offload = host;
        request.options = options;
        request.artifact_cache = &cache;
        return request;
    };

    auto cold = CompilerSession(makeRequest(false, false)).run();
    ASSERT_TRUE(cold.isOk()) << cold.status().toString();
    EXPECT_EQ(CompilerSession::cachedStageCount(cold.value()), 0u);

    // Identical request: the warm cache replays stages (sanity check
    // that the cache is live at all).
    auto warm = CompilerSession(makeRequest(false, false)).run();
    ASSERT_TRUE(warm.isOk());
    EXPECT_GT(CompilerSession::cachedStageCount(warm.value()), 0u);

    // Same model, same arch, same everything — except one knob. Even
    // when the knob happens not to change the schedule on this preset,
    // the fingerprints must not alias: every knob-dependent stage
    // (schedule and everything downstream of it) misses. The load
    // stage may still replay — the resolved graph and arch genuinely
    // do not depend on the knobs.
    auto knobDependentCached = [](const CompileArtifacts &artifacts) {
        std::size_t cached = 0;
        for (const StageTrace &trace : artifacts.stages) {
            if (trace.cached && trace.stage >= CompileStage::kTune)
                ++cached;
        }
        return cached;
    };
    auto dual = CompilerSession(makeRequest(true, false)).run();
    ASSERT_TRUE(dual.isOk());
    EXPECT_EQ(knobDependentCached(dual.value()), 0u);

    auto host = CompilerSession(makeRequest(false, true)).run();
    ASSERT_TRUE(host.isOk());
    EXPECT_EQ(knobDependentCached(host.value()), 0u);
}

// ----- determinism with the knobs on -------------------------------------

TEST(DeterminismTest, KnobbedBatchIsByteIdenticalAcrossThreads)
{
    std::vector<BatchJob> jobs;
    for (const char *model : {"lenet5", "mlp", "macro_cnn"})
        for (const char *arch : {"jain", "puma"})
            jobs.push_back(BatchJob{model, arch});

    ScheduleOptions options = ScheduleOptions::full();
    options.dual_mode = true;
    options.host_offload = true;

    std::string reference;
    for (int threads : {1, 2, 8}) {
        const BatchCompiler batch(options, threads);
        auto result = batch.run(jobs);
        ASSERT_TRUE(result.isOk()) << result.status().toString();
        if (reference.empty())
            reference = result.value().table();
        else
            EXPECT_EQ(result.value().table(), reference)
                << "threads=" << threads;
    }
}

} // namespace
} // namespace cimmlc
