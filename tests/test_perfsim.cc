/**
 * @file
 * Tests for the performance simulator: energy model, analytic schedule
 * evaluation, the event-driven trace engine, and cross-checks between
 * the two.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "common/rng.h"
#include "graph/models.h"
#include "perfsim/energy.h"
#include "perfsim/perf_model.h"
#include "perfsim/trace_engine.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

TEST(EnergyModelTest, PositiveComponents)
{
    const EnergyModel model(presets::isaacBaseline());
    EXPECT_GT(model.xbarActivationPj(), 0.0);
    EXPECT_GT(model.conversionPj(), 0.0);
    EXPECT_GT(model.activeCrossbarPowerMw(), 0.0);
    EXPECT_GT(model.movementPj(1024.0), 0.0);
    EXPECT_GT(model.aluPj(100.0), 0.0);
    EXPECT_GT(model.writePj(10.0), 0.0);
}

TEST(EnergyModelTest, ParallelRowScalesActivationEnergy)
{
    CimArchitecture narrow = presets::isaacBaseline(); // 8 rows
    CimArchitecture wide = presets::isaacBaseline();
    wide.xbar.parallel_row = 128;
    EXPECT_LT(EnergyModel(narrow).xbarActivationPj(),
              EnergyModel(wide).xbarActivationPj());
}

TEST(EnergyModelTest, IdealNocMovesFreeOfHops)
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.chip.core_noc = NocType::kIdeal;
    const EnergyModel ideal(arch);
    const EnergyModel mesh(presets::isaacBaseline());
    EXPECT_LT(ideal.movementPj(1000.0), mesh.movementPj(1000.0));
}

TEST(PerfModelTest, ReportFieldsPopulated)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    auto report = evaluateSchedule(g, arch, schedule.value());
    ASSERT_TRUE(report.isOk());
    const PerfReport &r = report.value();
    EXPECT_GT(r.latency_cycles, 0.0);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.xbar_pj, 0.0);
    EXPECT_GT(r.energy.adc_dac_pj, 0.0);
    EXPECT_GT(r.energy.movement_pj, 0.0);
    EXPECT_GT(r.peak_power_mw, 0.0);
    EXPECT_GT(r.avg_power_mw, 0.0);
    EXPECT_GT(r.crossbars_mapped, 0);
    EXPECT_GT(r.crossbar_utilization, 0.0);
    EXPECT_LE(r.crossbar_utilization, 1.0);
    EXPECT_NE(r.toString().find("latency"), std::string::npos);
}

TEST(PerfModelTest, EnergyIndependentOfScheduleLevel)
{
    // Scheduling changes time, not the work performed: total crossbar
    // energy stays within a few percent across levels (movement and
    // reload differences aside, identical here because no segmentation).
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto none = scheduleGraph(g, arch, ScheduleOptions::none());
    auto full = scheduleGraph(g, arch, ScheduleOptions::full());
    auto r0 = evaluateSchedule(g, arch, none.value());
    auto r1 = evaluateSchedule(g, arch, full.value());
    ASSERT_TRUE(r0.isOk() && r1.isOk());
    EXPECT_NEAR(r0.value().energy.xbar_pj, r1.value().energy.xbar_pj,
                r0.value().energy.xbar_pj * 0.01);
}

TEST(PerfModelTest, XbarEnergyDominatesOnReram)
{
    // PUMA's full-row activation makes the analog array the dominant
    // consumer (Figure 20(b)'s 83% share); narrow-parallel-row designs
    // shift the balance toward the ADC.
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::puma();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    auto report = evaluateSchedule(g, arch, schedule.value());
    ASSERT_TRUE(report.isOk());
    const EnergyBreakdown &e = report.value().energy;
    EXPECT_GT(e.xbar_pj, e.adc_dac_pj);
    EXPECT_GT(e.xbar_pj, e.movement_pj);
}

TEST(PerfModelTest, SegmentedModelPaysWriteEnergy)
{
    const CimArchitecture arch = presets::isaacBaseline();
    auto small = scheduleGraph(models::resnet18(), arch,
                               ScheduleOptions::full());
    auto large =
        scheduleGraph(models::vgg16(), arch, ScheduleOptions::full());
    auto r_small =
        evaluateSchedule(models::resnet18(), arch, small.value());
    auto r_large =
        evaluateSchedule(models::vgg16(), arch, large.value());
    ASSERT_TRUE(r_small.isOk() && r_large.isOk());
    EXPECT_DOUBLE_EQ(r_small.value().energy.write_pj, 0.0);
    EXPECT_GT(r_large.value().energy.write_pj, 0.0);
}

// ----- trace engine -----------------------------------------------------------

TEST(TraceDurationTest, ReadXbBitSerialCycles)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MetaOp op;
    op.kind = MetaOpKind::kReadXb;
    op.len = 1;
    op.rows = 128;
    // 8 DAC phases x 16 row groups x 1-cycle ReRAM read.
    EXPECT_DOUBLE_EQ(metaOpDurationCycles(op, arch), 128.0);
}

TEST(TraceDurationTest, ReadRowSinglePhase)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MetaOp op;
    op.kind = MetaOpKind::kReadRow;
    op.len = 8;
    EXPECT_DOUBLE_EQ(metaOpDurationCycles(op, arch), 8.0);
}

TEST(TraceDurationTest, WriteScalesWithRowsAndDevice)
{
    const CimArchitecture arch = presets::isaacBaseline(); // ReRAM: 50
    MetaOp op;
    op.kind = MetaOpKind::kWriteRow;
    op.len = 4;
    EXPECT_DOUBLE_EQ(metaOpDurationCycles(op, arch), 200.0);
}

TEST(TraceDurationTest, MovLimitedByBandwidth)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MetaOp op;
    op.kind = MetaOpKind::kMov;
    op.len = 384;
    op.count = 1;
    // 384 elements x 8 bits / 384 b-per-cycle = 8 cycles.
    EXPECT_DOUBLE_EQ(metaOpDurationCycles(op, arch), 8.0);
}

TEST(TraceEngineTest, ParallelBlockTakesMaxMemberTime)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MopProgram program("p", "XBM");
    MetaOp fast;
    fast.kind = MetaOpKind::kReadRow;
    fast.len = 8;
    fast.cols = 4;
    MetaOp slow;
    slow.kind = MetaOpKind::kReadXb;
    slow.len = 1;
    slow.rows = 128;
    slow.cols = 4;
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(fast), Stmt::makeOp(slow)}));
    auto report = traceProgram(program, arch);
    ASSERT_TRUE(report.isOk());
    EXPECT_DOUBLE_EQ(report.value().cycles, 128.0);
    EXPECT_EQ(report.value().peak_active_xbs, 2);
}

TEST(TraceEngineTest, RepeatScalesTimeAndEnergy)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MetaOp read;
    read.kind = MetaOpKind::kReadRow;
    read.len = 8;
    read.cols = 4;

    MopProgram once("p", "WLM");
    once.emit(read);
    MopProgram repeated("p", "WLM");
    repeated.compute().push_back(
        Stmt::makeRepeat(10, {Stmt::makeOp(read)}));

    auto r1 = traceProgram(once, arch);
    auto r10 = traceProgram(repeated, arch);
    ASSERT_TRUE(r1.isOk() && r10.isOk());
    EXPECT_NEAR(r10.value().cycles, 10.0 * r1.value().cycles, 1e-9);
    EXPECT_NEAR(r10.value().energy.total(),
                10.0 * r1.value().energy.total(), 1e-6);
    // Peak concurrency does not grow with sequential repetition.
    EXPECT_EQ(r10.value().peak_active_xbs,
              r1.value().peak_active_xbs);
}

TEST(TraceEngineTest, CompiledToyFlowTraces)
{
    Graph g = models::convReluToy();
    Rng rng(3);
    g.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    auto code = generateProgram(g, arch, schedule.value());
    ASSERT_TRUE(code.isOk());
    auto report = traceProgram(code.value().program, arch);
    ASSERT_TRUE(report.isOk());
    EXPECT_GT(report.value().cycles, 0.0);
    EXPECT_GT(report.value().energy.total(), 0.0);
    // At most the whole chip can be active.
    EXPECT_LE(report.value().peak_active_xbs, arch.totalCrossbars());
    EXPECT_NE(report.value().toString().find("trace:"),
              std::string::npos);
}

TEST(TraceEngineTest, TraceAndAnalyticAgreeOnOrderOfMagnitude)
{
    Graph g = models::convReluToy();
    Rng rng(3);
    g.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    auto code = generateProgram(g, arch, schedule.value());
    auto trace = traceProgram(code.value().program, arch);
    auto analytic = evaluateSchedule(g, arch, schedule.value());
    ASSERT_TRUE(trace.isOk() && analytic.isOk());
    // The trace serializes movs the analytic model hides behind compute,
    // so agreement within ~10x is the expectation; the crossbar energy
    // matches much more tightly.
    const double ratio = trace.value().cycles /
                         analytic.value().latency_cycles;
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 30.0);
    EXPECT_NEAR(trace.value().energy.xbar_pj,
                analytic.value().energy.xbar_pj,
                analytic.value().energy.xbar_pj * 0.5);
}

} // namespace
} // namespace cimmlc
