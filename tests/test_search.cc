/**
 * @file
 * Property tests for the src/search/ primitives of the budgeted search
 * engine: strict-partial-order laws for Pareto dominance and the
 * enabled-knob subset order, order-independence of the dominance
 * pruner, halving-ladder shape invariants (monotone non-increasing
 * rung sizes), survivor-selection guarantees, and the SearchBudget /
 * SearchFidelity parsing and tagging contracts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "search/dominance.h"
#include "search/halving.h"
#include "search/search_budget.h"
#include "sched/autotune.h"

namespace cimmlc {
namespace {

std::vector<MetricPoint>
randomPoints(std::size_t count, std::uint64_t seed)
{
    // A coarse value grid on purpose: collisions and per-component ties
    // must occur so the order laws are exercised on equal coordinates,
    // not just on points in general position.
    Rng rng(seed);
    std::vector<MetricPoint> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        points.push_back(
            MetricPoint{static_cast<double>(rng.uniformInt(0, 7)),
                        static_cast<double>(rng.uniformInt(0, 7))});
    return points;
}

// ----- Pareto dominance is a strict partial order ------------------------

TEST(DominanceOrderTest, Irreflexive)
{
    for (const MetricPoint &p : randomPoints(64, 1))
        EXPECT_FALSE(strictlyDominates(p, p));
}

TEST(DominanceOrderTest, AntisymmetricOnDistinctPoints)
{
    const std::vector<MetricPoint> points = randomPoints(48, 2);
    for (const MetricPoint &a : points) {
        for (const MetricPoint &b : points) {
            if (strictlyDominates(a, b))
                EXPECT_FALSE(strictlyDominates(b, a));
        }
    }
}

TEST(DominanceOrderTest, Transitive)
{
    const std::vector<MetricPoint> points = randomPoints(32, 3);
    for (const MetricPoint &a : points)
        for (const MetricPoint &b : points)
            for (const MetricPoint &c : points)
                if (strictlyDominates(a, b) && strictlyDominates(b, c))
                    EXPECT_TRUE(strictlyDominates(a, c));
}

TEST(DominanceOrderTest, TiesNeverDominate)
{
    const MetricPoint a{3.0, 5.0};
    EXPECT_FALSE(strictlyDominates(a, a));
    EXPECT_TRUE(strictlyDominates(MetricPoint{3.0, 4.0}, a));
    EXPECT_TRUE(strictlyDominates(MetricPoint{2.0, 5.0}, a));
    EXPECT_FALSE(strictlyDominates(MetricPoint{2.0, 6.0}, a));
}

// ----- the enabled-knob subset order is a strict partial order -----------

TEST(KnobSubsetOrderTest, StrictPartialOrderOnTunerEncodings)
{
    const KnobSubsetOrder order(kTuneKnobMask, kTuneContextMask);
    for (std::uint32_t a = 0; a < 256; ++a) {
        EXPECT_FALSE(order.below(a, a)); // irreflexive
        for (std::uint32_t b = 0; b < 256; ++b) {
            if (order.below(a, b))
                EXPECT_FALSE(order.below(b, a)); // antisymmetric
        }
    }
    // Transitivity over the full 256-point encoding space.
    for (std::uint32_t a = 0; a < 256; ++a)
        for (std::uint32_t b = 0; b < 256; ++b) {
            if (!order.below(a, b))
                continue;
            for (std::uint32_t c = 0; c < 256; ++c)
                if (order.below(b, c))
                    EXPECT_TRUE(order.below(a, c));
        }
}

TEST(KnobSubsetOrderTest, ContextBitsMustAgree)
{
    const KnobSubsetOrder order(kTuneKnobMask, kTuneContextMask);
    // Same knobs, different binding bit: incomparable.
    EXPECT_FALSE(order.below(0x01, 0x21));
    EXPECT_FALSE(order.below(0x21, 0x01));
    // Same context, proper knob subset: ordered.
    EXPECT_TRUE(order.below(0x21, 0x23));
    // Different segment-cap field: incomparable.
    EXPECT_FALSE(order.below(0x01, 0x43));
}

// ----- dominance pruner --------------------------------------------------

TEST(DominancePrunerTest, CondemnsOnSubsetDominationOnly)
{
    DominancePruner pruner(
        KnobSubsetOrder(kTuneKnobMask, kTuneContextMask));
    // {} scores (10, 10); {bit0} regresses latency without an energy
    // win -> condemned; every superset of {bit0} is prunable.
    pruner.record(0x00, MetricPoint{10.0, 10.0}, true);
    pruner.record(0x01, MetricPoint{12.0, 10.0}, true);
    EXPECT_TRUE(pruner.shouldPrune(0x03).has_value());
    EXPECT_EQ(pruner.shouldPrune(0x03).value(), 0x01u);
    // {bit1} improved latency -> not condemned, supersets of it alone
    // stay evaluable.
    pruner.record(0x02, MetricPoint{8.0, 10.0}, true);
    EXPECT_FALSE(pruner.shouldPrune(0x06).has_value());
    // A trade (better latency, worse energy) is not domination.
    pruner.record(0x04, MetricPoint{9.0, 11.0}, true);
    EXPECT_FALSE(pruner.shouldPrune(0x0C).has_value());
}

TEST(DominancePrunerTest, TiesAndInfeasiblesCarryNoEvidence)
{
    DominancePruner pruner(
        KnobSubsetOrder(kTuneKnobMask, kTuneContextMask));
    pruner.record(0x00, MetricPoint{10.0, 10.0}, true);
    // A metric-identical knob is a no-op, not a regression.
    pruner.record(0x01, MetricPoint{10.0, 10.0}, true);
    EXPECT_FALSE(pruner.shouldPrune(0x03).has_value());
    // Infeasible points never condemn anything.
    pruner.record(0x02, MetricPoint{0.0, 0.0}, false);
    EXPECT_FALSE(pruner.shouldPrune(0x06).has_value());
}

TEST(DominancePrunerTest, VerdictIndependentOfRecordingOrder)
{
    // Any permutation of the same evaluation set must yield identical
    // prune verdicts for every encoding.
    struct Sample {
        std::uint32_t encoding;
        MetricPoint metrics;
        bool feasible;
    };
    Rng rng(7);
    std::vector<Sample> samples;
    for (std::uint32_t e = 0; e < 32; ++e)
        samples.push_back(
            Sample{e,
                   MetricPoint{
                       static_cast<double>(rng.uniformInt(1, 6)),
                       static_cast<double>(rng.uniformInt(1, 6))},
                   rng.uniformInt(0, 9) != 0});

    auto verdicts = [&samples](const std::vector<std::size_t> &order) {
        DominancePruner pruner(
            KnobSubsetOrder(kTuneKnobMask, kTuneContextMask));
        for (std::size_t i : order)
            pruner.record(samples[i].encoding, samples[i].metrics,
                          samples[i].feasible);
        std::vector<std::uint32_t> out;
        for (std::uint32_t e = 0; e < 256; ++e)
            out.push_back(pruner.shouldPrune(e).value_or(0xFFFFFFFFu));
        return out;
    };

    std::vector<std::size_t> order(samples.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const std::vector<std::uint32_t> reference = verdicts(order);
    for (int round = 0; round < 5; ++round) {
        // Fisher-Yates on the deterministic Rng.
        for (std::size_t i = order.size(); i-- > 1;)
            std::swap(order[i],
                      order[static_cast<std::size_t>(
                          rng.uniformInt(0, static_cast<std::int64_t>(i)))]);
        EXPECT_EQ(verdicts(order), reference);
    }
}

// ----- halving schedules -------------------------------------------------

TEST(HalvingScheduleTest, RungSizesMonotonicallyNonIncreasing)
{
    for (std::int64_t total : {0, 1, 2, 5, 9, 18, 100, 1000}) {
        for (std::int64_t budget : {0, 1, 2, 5, 9, 17, 18, 64, 5000}) {
            auto schedule = makeHalvingSchedule(total, budget);
            ASSERT_TRUE(schedule.isOk());
            const std::vector<std::int64_t> &rungs =
                schedule.value().rungs;
            ASSERT_FALSE(rungs.empty());
            EXPECT_EQ(rungs.front(), total);
            for (std::size_t i = 1; i < rungs.size(); ++i)
                EXPECT_LE(rungs[i], rungs[i - 1]);
            if (budget <= 0 || budget >= total) {
                EXPECT_EQ(rungs.size(), 1u); // exhaustive
            } else {
                EXPECT_EQ(rungs.back(), budget);
            }
            // Full-fidelity work never exceeds the exhaustive count.
            EXPECT_LE(schedule.value().fullEvalCount(), total);
        }
    }
    EXPECT_FALSE(makeHalvingSchedule(-1, 4).isOk());
}

TEST(HalvingScheduleTest, LaddersHalveDownToTheBudget)
{
    auto schedule = makeHalvingSchedule(18, 9);
    ASSERT_TRUE(schedule.isOk());
    EXPECT_EQ(schedule.value().rungs,
              (std::vector<std::int64_t>{18, 9}));
    EXPECT_EQ(schedule.value().proxyRungCount(), 1u);

    schedule = makeHalvingSchedule(100, 10);
    ASSERT_TRUE(schedule.isOk());
    EXPECT_EQ(schedule.value().rungs,
              (std::vector<std::int64_t>{100, 50, 25, 13, 10}));
    EXPECT_EQ(schedule.value().proxyRungCount(), 4u);
}

TEST(HalvingScheduleTest, ProxyFidelityLadderIsMonotone)
{
    SearchBudget budget;
    budget.max_full_evals = 4;
    budget.proxy_prefix_fraction = 0.25;
    budget.proxy_opt_none = true;
    std::int64_t previous = 0;
    for (std::size_t rung = 0; rung < 4; ++rung) {
        const SearchFidelity fidelity =
            proxyFidelity(budget, 40, rung, 4);
        EXPECT_TRUE(fidelity.forced_opt_none);
        EXPECT_GE(fidelity.prefix_nodes, 1);
        EXPECT_LE(fidelity.prefix_nodes, 40);
        EXPECT_GE(fidelity.prefix_nodes, previous);
        previous = fidelity.prefix_nodes;
    }
    // No prefix configured: proxies price the whole graph.
    budget.proxy_prefix_fraction = 0.0;
    EXPECT_EQ(proxyFidelity(budget, 40, 0, 2).prefix_nodes, 0);
}

// ----- survivor selection ------------------------------------------------

std::vector<SearchPoint>
randomSearchPoints(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SearchPoint> points;
    for (std::size_t i = 0; i < count; ++i) {
        SearchPoint point;
        point.id = i;
        point.metrics =
            MetricPoint{static_cast<double>(rng.uniformInt(1, 9)),
                        static_cast<double>(rng.uniformInt(1, 9))};
        point.objective = point.metrics.latency_cycles;
        point.feasible = rng.uniformInt(0, 9) != 0;
        points.push_back(point);
    }
    return points;
}

TEST(SelectSurvivorsTest, RespectsKeepAndFeasibility)
{
    const std::vector<SearchPoint> points = randomSearchPoints(40, 11);
    std::set<std::size_t> feasible;
    for (const SearchPoint &point : points)
        if (point.feasible)
            feasible.insert(point.id);
    for (std::int64_t keep : {0, 1, 5, 20, 100}) {
        const std::vector<std::size_t> survivors =
            selectSurvivors(points, keep);
        EXPECT_LE(survivors.size(),
                  static_cast<std::size_t>(std::max<std::int64_t>(keep, 0)));
        EXPECT_LE(survivors.size(), feasible.size());
        for (std::size_t id : survivors)
            EXPECT_TRUE(feasible.count(id)) << "selected infeasible " << id;
        EXPECT_TRUE(std::is_sorted(survivors.begin(), survivors.end()));
    }
}

TEST(SelectSurvivorsTest, ParetoFrontSurvivesWheneverItFits)
{
    const std::vector<SearchPoint> points = randomSearchPoints(30, 13);
    const std::vector<std::size_t> ranks = paretoRanks(points);
    std::set<std::size_t> front_ids;
    for (std::size_t i = 0; i < points.size(); ++i)
        if (points[i].feasible && ranks[i] == 0)
            front_ids.insert(points[i].id);
    const std::vector<std::size_t> survivors = selectSurvivors(
        points, static_cast<std::int64_t>(front_ids.size()));
    // With keep == |front|, the survivors are exactly the rank-0 set:
    // rank sorts before everything else.
    EXPECT_EQ(std::set<std::size_t>(survivors.begin(), survivors.end()),
              front_ids);
}

TEST(SelectSurvivorsTest, InvariantUnderInputPermutation)
{
    std::vector<SearchPoint> points = randomSearchPoints(25, 17);
    const std::vector<std::size_t> reference =
        selectSurvivors(points, 8);
    Rng rng(19);
    for (int round = 0; round < 5; ++round) {
        for (std::size_t i = points.size(); i-- > 1;)
            std::swap(points[i],
                      points[static_cast<std::size_t>(
                          rng.uniformInt(0, static_cast<std::int64_t>(i)))]);
        EXPECT_EQ(selectSurvivors(points, 8), reference);
    }
}

// ----- budget parsing and fidelity tags ----------------------------------

StatusOr<SearchBudget>
budgetFromJson(const std::string &text)
{
    auto doc = parseConfig(text);
    if (!doc.isOk())
        return doc.status();
    return searchBudgetFromConfig(doc.value());
}

TEST(SearchBudgetTest, ParsesNumberAndObjectForms)
{
    auto bare = budgetFromJson("9");
    ASSERT_TRUE(bare.isOk()) << bare.status().toString();
    EXPECT_EQ(bare.value().max_full_evals, 9);
    EXPECT_TRUE(bare.value().enabled());

    auto object = budgetFromJson(R"({
        "evals": 4,
        "proxy_opt_none": true,
        "proxy_prefix_fraction": 0.25
    })");
    ASSERT_TRUE(object.isOk()) << object.status().toString();
    EXPECT_EQ(object.value().max_full_evals, 4);
    EXPECT_TRUE(object.value().proxy_opt_none);
    EXPECT_DOUBLE_EQ(object.value().proxy_prefix_fraction, 0.25);

    auto disabled = budgetFromJson("0");
    ASSERT_TRUE(disabled.isOk());
    EXPECT_FALSE(disabled.value().enabled());
}

TEST(SearchBudgetTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(budgetFromJson("-3").isOk());
    EXPECT_FALSE(budgetFromJson("2.5").isOk());
    EXPECT_FALSE(budgetFromJson("\"nine\"").isOk());
    EXPECT_FALSE(budgetFromJson("[9]").isOk());
    EXPECT_FALSE(budgetFromJson(R"({"proxy_opt_none": true})").isOk());
    EXPECT_FALSE(budgetFromJson(R"({"evals": 9, "typo": 1})").isOk());
    EXPECT_FALSE(
        budgetFromJson(R"({"evals": 9, "proxy_opt_none": 1})").isOk());
    EXPECT_FALSE(
        budgetFromJson(R"({"evals": 9, "proxy_prefix_fraction": 1.5})")
            .isOk());
    // Out-of-int64-range counts must error, not hit undefined casts.
    EXPECT_FALSE(budgetFromJson("1e300").isOk());
    EXPECT_FALSE(budgetFromJson(R"({"evals": 1e300})").isOk());
}

TEST(SearchBudgetTest, DegenerateProxyOnlyFailsTheHalvingCheck)
{
    // A proxy identical to full fidelity is fine for the tuner (which
    // never runs proxies) but cannot drive halving.
    auto budget = budgetFromJson(R"({
        "evals": 9,
        "proxy_opt_none": false,
        "proxy_prefix_fraction": 0
    })");
    ASSERT_TRUE(budget.isOk()) << budget.status().toString();
    EXPECT_TRUE(budget.value().validate().isOk());
    EXPECT_FALSE(budget.value().validateForHalving().isOk());
    // Disabled budgets pass both: no rung would ever run.
    EXPECT_TRUE(SearchBudget{}.validateForHalving().isOk());
}

TEST(SearchFidelityTest, TagsDistinguishEveryProxyMode)
{
    const SearchFidelity full;
    EXPECT_FALSE(full.isProxy());
    EXPECT_EQ(full.tag(), "");
    SearchFidelity none_only;
    none_only.forced_opt_none = true;
    SearchFidelity prefix_only;
    prefix_only.prefix_nodes = 5;
    SearchFidelity both = prefix_only;
    both.forced_opt_none = true;
    const std::set<std::string> tags{full.tag(), none_only.tag(),
                                     prefix_only.tag(), both.tag()};
    EXPECT_EQ(tags.size(), 4u) << "fidelity tags must be pairwise distinct";
}

} // namespace
} // namespace cimmlc
