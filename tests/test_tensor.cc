/**
 * @file
 * Unit and property tests for the tensor substrate: shapes, the tensor
 * container, reference operators (including the conv == im2col+matmul
 * equivalence the crossbar mapping relies on), and quantization.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace cimmlc {
namespace {

TEST(ShapeTest, Basics)
{
    TensorShape s({2, 3, 4});
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.dim(1), 3);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_TRUE(s.isValid());
    EXPECT_EQ(s.toString(), "[2, 3, 4]");
}

TEST(ShapeTest, InvalidWhenNonPositive)
{
    EXPECT_FALSE(TensorShape({2, 0}).isValid());
    EXPECT_FALSE(TensorShape({-1}).isValid());
}

TEST(ShapeTest, Equality)
{
    EXPECT_EQ(TensorShape({1, 2}), TensorShape({1, 2}));
    EXPECT_NE(TensorShape({1, 2}), TensorShape({2, 1}));
}

TEST(ShapeTest, ConvOutDim)
{
    EXPECT_EQ(convOutDim(32, 3, 1, 1), 32); // same padding
    EXPECT_EQ(convOutDim(32, 3, 1, 0), 30);
    EXPECT_EQ(convOutDim(224, 7, 2, 3), 112);
    EXPECT_EQ(convOutDim(32, 2, 2, 0), 16); // pooling style
}

TEST(ShapeTest, Conv2dOutputShape)
{
    const TensorShape out = conv2dOutputShape(
        TensorShape({1, 3, 32, 32}), TensorShape({32, 3, 3, 3}), 1, 1);
    EXPECT_EQ(out, TensorShape({1, 32, 32, 32}));
}

TEST(TensorTest, FlatAndMultiDimAccessAgree)
{
    Int8Tensor t(TensorShape({1, 2, 3, 4}));
    t.at4(0, 1, 2, 3) = 42;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 42);
    Int32Tensor m(TensorShape({3, 5}));
    m.at2(2, 4) = -7;
    EXPECT_EQ(m[14], -7);
}

TEST(TensorTest, FillAndEquality)
{
    Int8Tensor a(TensorShape({4}));
    a.fill(3);
    Int8Tensor b(TensorShape({4}), {3, 3, 3, 3});
    EXPECT_EQ(a, b);
}

TEST(TensorTest, FillRandomWithinRange)
{
    Rng rng(1);
    Int8Tensor t(TensorShape({100}));
    t.fillRandom(rng, -5, 5);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t[i], -5);
        EXPECT_LE(t[i], 5);
    }
}

// ----- reference operators ------------------------------------------

class ConvEquivalenceTest
    : public testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(ConvEquivalenceTest, DirectEqualsIm2colMatmul)
{
    const auto [channels, kernel, stride, padding] = GetParam();
    Rng rng(static_cast<std::uint64_t>(channels * 100 + kernel));
    Int8Tensor input(TensorShape({1, channels, 12, 12}));
    input.fillRandom(rng, -20, 20);
    Int8Tensor weight(TensorShape({5, channels, kernel, kernel}));
    weight.fillRandom(rng, -10, 10);

    const Int32Tensor direct = ops::conv2d(input, weight, stride,
                                           padding);
    const Int32Tensor via_im2col =
        ops::conv2dIm2col(input, weight, stride, padding);
    EXPECT_EQ(direct, via_im2col);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvEquivalenceTest,
    testing::Values(std::make_tuple(1, 3, 1, 1),
                    std::make_tuple(3, 3, 1, 0),
                    std::make_tuple(2, 5, 1, 2),
                    std::make_tuple(4, 3, 2, 1),
                    std::make_tuple(3, 1, 1, 0),
                    std::make_tuple(2, 7, 2, 3)));

TEST(OpsTest, Im2colShape)
{
    Int8Tensor input(TensorShape({1, 3, 8, 8}));
    const Int8Tensor patches = ops::im2col(input, 3, 3, 1, 1);
    EXPECT_EQ(patches.shape(), TensorShape({64, 27}));
}

TEST(OpsTest, Im2colZeroPadsBoundary)
{
    Int8Tensor input(TensorShape({1, 1, 2, 2}));
    input.fill(1);
    const Int8Tensor patches = ops::im2col(input, 3, 3, 1, 1);
    // Top-left window: only positions overlapping the image are 1.
    EXPECT_EQ(patches.at2(0, 0), 0); // padding corner
    EXPECT_EQ(patches.at2(0, 4), 1); // image (0,0)
}

TEST(OpsTest, LinearMatchesManual)
{
    Int8Tensor x(TensorShape({1, 3}), {1, 2, 3});
    Int8Tensor w(TensorShape({2, 3}), {1, 0, -1, 2, 2, 2});
    const Int32Tensor y = ops::linear(x, w);
    EXPECT_EQ(y.at2(0, 0), 1 - 3);
    EXPECT_EQ(y.at2(0, 1), 2 + 4 + 6);
}

TEST(OpsTest, MatmulMatchesManual)
{
    Int8Tensor a(TensorShape({2, 2}), {1, 2, 3, 4});
    Int8Tensor b(TensorShape({2, 2}), {5, 6, 7, 8});
    const Int32Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c.at2(0, 0), 19);
    EXPECT_EQ(c.at2(0, 1), 22);
    EXPECT_EQ(c.at2(1, 0), 43);
    EXPECT_EQ(c.at2(1, 1), 50);
}

TEST(OpsTest, ReluClampsNegatives)
{
    Int32Tensor t(TensorShape({3}), {-5, 0, 5});
    const Int32Tensor r = ops::relu(t);
    EXPECT_EQ(r[0], 0);
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[2], 5);
}

TEST(OpsTest, AddSaturates)
{
    Int8Tensor a(TensorShape({2}), {120, -120});
    Int8Tensor b(TensorShape({2}), {20, -20});
    const Int8Tensor s = ops::addSaturating(a, b);
    EXPECT_EQ(s[0], 127);
    EXPECT_EQ(s[1], -128);
}

TEST(OpsTest, MaxPoolPicksMaximum)
{
    Int8Tensor t(TensorShape({1, 1, 2, 2}), {1, 5, 3, 2});
    const Int8Tensor p = ops::maxPool2d(t, 2, 2, 0);
    EXPECT_EQ(p.shape(), TensorShape({1, 1, 1, 1}));
    EXPECT_EQ(p[0], 5);
}

TEST(OpsTest, AvgPoolRounds)
{
    Int8Tensor t(TensorShape({1, 1, 2, 2}), {1, 2, 3, 4});
    const Int8Tensor p = ops::avgPool2d(t, 2, 2, 0);
    EXPECT_EQ(p[0], 3); // 10/4 = 2.5 -> round half up
}

TEST(OpsTest, GlobalAvgPool)
{
    Int8Tensor t(TensorShape({1, 2, 2, 2}));
    for (std::int64_t i = 0; i < 4; ++i)
        t[i] = 4; // channel 0
    for (std::int64_t i = 4; i < 8; ++i)
        t[i] = -8; // channel 1
    const Int8Tensor p = ops::globalAvgPool(t);
    EXPECT_EQ(p.shape(), TensorShape({1, 2, 1, 1}));
    EXPECT_EQ(p[0], 4);
    EXPECT_EQ(p[1], -8);
}

TEST(OpsTest, SoftmaxRowsSumToOne)
{
    FloatTensor t(TensorShape({2, 4}));
    Rng rng(5);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    const FloatTensor s = ops::softmax(t);
    for (int r = 0; r < 2; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < 4; ++c)
            sum += s.at2(r, c);
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(OpsTest, LayerNormZeroMeanUnitVar)
{
    FloatTensor t(TensorShape({1, 64}));
    Rng rng(6);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-3.0, 5.0));
    const FloatTensor n = ops::layerNorm(t);
    float mean = 0.0f, var = 0.0f;
    for (std::int64_t i = 0; i < n.numel(); ++i)
        mean += n[i];
    mean /= 64.0f;
    for (std::int64_t i = 0; i < n.numel(); ++i)
        var += (n[i] - mean) * (n[i] - mean);
    var /= 64.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
}

TEST(OpsTest, GeluKnownValues)
{
    FloatTensor t(TensorShape({3}), {0.0f, 10.0f, -10.0f});
    const FloatTensor g = ops::gelu(t);
    EXPECT_NEAR(g[0], 0.0f, 1e-6f);
    EXPECT_NEAR(g[1], 10.0f, 1e-3f);
    EXPECT_NEAR(g[2], 0.0f, 1e-3f);
}

TEST(OpsTest, BiasAddPerChannel)
{
    Int32Tensor acc(TensorShape({1, 2, 1, 2}));
    Int32Tensor bias(TensorShape({2}), {10, -10});
    ops::addBiasNchw(&acc, bias);
    EXPECT_EQ(acc[0], 10);
    EXPECT_EQ(acc[1], 10);
    EXPECT_EQ(acc[2], -10);
}

// ----- quantization ---------------------------------------------------

TEST(QuantizeTest, ShiftRoundHalfAwayFromZero)
{
    EXPECT_EQ(shiftRound(3, 1), 2);  // 1.5 -> 2
    EXPECT_EQ(shiftRound(-3, 1), -2);
    EXPECT_EQ(shiftRound(5, 2), 1);  // 1.25 -> 1
    EXPECT_EQ(shiftRound(6, 2), 2);  // 1.5 -> 2
    EXPECT_EQ(shiftRound(100, 0), 100);
}

TEST(QuantizeTest, RequantizeClampsToInt8)
{
    Int32Tensor acc(TensorShape({3}), {100000, -100000, 64});
    const Int8Tensor q = requantize(acc, RequantParams{6});
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -128);
    EXPECT_EQ(q[2], 1);
}

TEST(QuantizeTest, ChooseShiftAvoidsOverflow)
{
    Int32Tensor acc(TensorShape({2}), {1016, -40});
    const RequantParams params = chooseRequantShift(acc);
    EXPECT_EQ(params.shift, 3); // 1016 >> 3 = 127
    const Int8Tensor q = requantize(acc, params);
    EXPECT_EQ(q[0], 127);
}

TEST(QuantizeTest, ChooseShiftZeroWhenSmall)
{
    Int32Tensor acc(TensorShape({2}), {100, -90});
    EXPECT_EQ(chooseRequantShift(acc).shift, 0);
}

TEST(QuantizeTest, FloatRoundTripWithinOneStep)
{
    Rng rng(11);
    FloatTensor t(TensorShape({32}));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
    const float scale = 1.0f / 16.0f;
    const FloatTensor back = dequantize(quantizeFloat(t, scale), scale);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_NEAR(back[i], t[i], scale);
}

} // namespace
} // namespace cimmlc
