/**
 * @file
 * Tests for the reference executor (the oracle): correctness against
 * hand-computed cases and the shift-calibration contract.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/models.h"
#include "graph/reference.h"
#include "tensor/ops.h"

namespace cimmlc {
namespace {

TEST(ReferenceTest, LinearChainMatchesDirectOps)
{
    Graph g("chain");
    TensorId in = g.addInput("in", {1, 4});
    TensorId out = g.linear(in, 3, "fc");
    g.markOutput(out);
    const NodeId fc = g.tensor(out).producer;
    Int8Tensor w(TensorShape({3, 4}),
                 {1, 2, 3, 4, -1, -2, -3, -4, 0, 1, 0, 1});
    g.setWeight(fc, w);

    Int8Tensor x(TensorShape({1, 4}), {1, 1, 1, 1});
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    // acc = [10, -10, 2]; max |acc| = 10 < 128 -> shift 0.
    const Int8Tensor &y = result.value().output(g);
    EXPECT_EQ(y[0], 10);
    EXPECT_EQ(y[1], -10);
    EXPECT_EQ(y[2], 2);
    EXPECT_EQ(result.value().shifts.at(fc).shift, 0);
}

TEST(ReferenceTest, ShiftCalibratedWhenAccumulatorsOverflowInt8)
{
    Graph g("big");
    TensorId in = g.addInput("in", {1, 64});
    TensorId out = g.linear(in, 1, "fc");
    g.markOutput(out);
    const NodeId fc = g.tensor(out).producer;
    Int8Tensor w(TensorShape({1, 64}));
    w.fill(8);
    g.setWeight(fc, w);
    Int8Tensor x(TensorShape({1, 64}));
    x.fill(16); // acc = 64 * 128 = 8192
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk());
    EXPECT_GT(result.value().shifts.at(fc).shift, 0);
    EXPECT_LE(result.value().output(g)[0], 127);
}

TEST(ReferenceTest, ReluAppliedAfterRequant)
{
    Graph g("relu");
    TensorId in = g.addInput("in", {1, 2});
    TensorId fc = g.linear(in, 2, "fc");
    TensorId out = g.relu(fc);
    g.markOutput(out);
    Int8Tensor w(TensorShape({2, 2}), {1, 0, -1, 0});
    g.setWeight(g.tensor(fc).producer, w);
    Int8Tensor x(TensorShape({1, 2}), {5, 0});
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().output(g)[0], 5);
    EXPECT_EQ(result.value().output(g)[1], 0); // -5 clamped by relu
}

TEST(ReferenceTest, MissingInputRejected)
{
    Graph g = models::convReluToy();
    Rng rng(1);
    g.randomizeWeights(rng);
    EXPECT_FALSE(runReference(g, {}).isOk());
}

TEST(ReferenceTest, WrongInputShapeRejected)
{
    Graph g = models::convReluToy();
    Rng rng(1);
    g.randomizeWeights(rng);
    Int8Tensor bad(TensorShape({1, 3, 16, 16}));
    EXPECT_FALSE(runReference(g, {{g.inputs()[0], bad}}).isOk());
}

TEST(ReferenceTest, MissingWeightsRejected)
{
    Graph g = models::convReluToy(); // weights not installed
    Int8Tensor x(TensorShape({1, 3, 32, 32}));
    EXPECT_FALSE(runReference(g, {{g.inputs()[0], x}}).isOk());
}

TEST(ReferenceTest, ConvMatchesOpsDirectly)
{
    Graph g("conv");
    TensorId in = g.addInput("in", {1, 2, 6, 6});
    TensorId out = g.conv2d(in, 3, 3, 1, 1, "conv");
    g.markOutput(out);
    Rng rng(4);
    g.randomizeWeights(rng);
    Int8Tensor x(TensorShape({1, 2, 6, 6}));
    x.fillRandom(rng, -10, 10);
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk());

    const NodeId conv = g.tensor(out).producer;
    const Int32Tensor acc = ops::conv2d(x, g.weight(conv), 1, 1);
    const Int8Tensor expected =
        requantize(acc, result.value().shifts.at(conv));
    EXPECT_EQ(result.value().output(g), expected);
}

TEST(ReferenceTest, FlattenReshapePreserveData)
{
    Graph g("shape");
    TensorId in = g.addInput("in", {1, 2, 2, 2});
    TensorId flat = g.flatten(in);
    TensorId back = g.reshape(flat, {2, 4});
    g.markOutput(back);
    Int8Tensor x(TensorShape({1, 2, 2, 2}), {1, 2, 3, 4, 5, 6, 7, 8});
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk());
    const Int8Tensor &y = result.value().output(g);
    for (std::int64_t i = 0; i < 8; ++i)
        EXPECT_EQ(y[i], static_cast<std::int8_t>(i + 1));
}

TEST(ReferenceTest, ConcatStacksChannels)
{
    Graph g("cat");
    TensorId in = g.addInput("in", {1, 1, 2, 2});
    TensorId a = g.relu(in);
    TensorId b = g.relu(in);
    g.markOutput(g.concat({a, b}));
    Int8Tensor x(TensorShape({1, 1, 2, 2}), {1, -2, 3, -4});
    auto result = runReference(g, {{in, x}});
    ASSERT_TRUE(result.isOk());
    const Int8Tensor &y = result.value().output(g);
    ASSERT_EQ(y.numel(), 8);
    EXPECT_EQ(y[0], 1);
    EXPECT_EQ(y[1], 0);
    EXPECT_EQ(y[4], 1); // second channel copy
}

TEST(ReferenceTest, VitTinyExecutesEndToEnd)
{
    // The full transformer path (layernorm, matmul, softmax, gelu).
    Graph g = models::vitTiny();
    Rng rng(2);
    g.randomizeWeights(rng, -2, 2);
    Int8Tensor x(TensorShape({1, 3, 224, 224}));
    x.fillRandom(rng, -4, 4);
    auto result = runReference(g, {{g.inputs()[0], x}});
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().output(g).numel(), 196 * 1000);
}

} // namespace
} // namespace cimmlc
