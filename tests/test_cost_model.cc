/**
 * @file
 * Tests for the analytic cost model: per-node costs, the pipeline
 * latency formula, streaming floors, and bandwidth bounds.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/presets.h"
#include "graph/models.h"
#include "sched/cost_model.h"

namespace cimmlc {
namespace {

Graph
toyGraph()
{
    return models::convReluToy();
}

TEST(NodeCostTest, ConvOnIsaacBaseline)
{
    const Graph g = toyGraph();
    const CimArchitecture arch = presets::isaacBaseline();
    const NodeCost cost = computeNodeCost(g, 1, arch);
    EXPECT_TRUE(cost.is_cim);
    EXPECT_EQ(cost.windows, 1024);
    // 8 DAC cycles x ceil(27 / 8 parallel rows) = 8 * 4 = 32.
    EXPECT_DOUBLE_EQ(cost.cycles_per_window, 32.0);
    EXPECT_DOUBLE_EQ(cost.base_latency, 1024.0 * 32.0);
    EXPECT_EQ(cost.cores_per_replica, 1);
    EXPECT_EQ(cost.chip_splits, 1);
    EXPECT_EQ(cost.halo_reuse, 3);
    // Fresh column: 3 channels x 3 rows x stride 1 x 8 bits.
    EXPECT_DOUBLE_EQ(cost.transfer_bits_per_window, 72.0);
}

TEST(NodeCostTest, VvmRemapBalancesRowGroups)
{
    const Graph g = toyGraph();
    CimArchitecture arch = presets::isaacBaseline();
    // Naive: ceil(27/8) = 4 groups; balanced over 1 tile x spread 2:
    // ceil(4/2) = 2 groups.
    const NodeCost naive = computeNodeCost(g, 1, arch, 0);
    const NodeCost remapped = computeNodeCost(g, 1, arch, 2);
    EXPECT_DOUBLE_EQ(naive.cycles_per_window, 8.0 * 4.0);
    EXPECT_DOUBLE_EQ(remapped.cycles_per_window, 8.0 * 2.0);
}

TEST(NodeCostTest, VvmBalancingHelpsUnevenTiles)
{
    // 147 rows on 128-row arrays: naive fullest crossbar serializes 16
    // groups; balanced across the 2 vertical tiles: ceil(19/2)=10.
    Graph g("t");
    TensorId in = g.addInput("in", {1, 3, 112, 112});
    g.markOutput(g.conv2d(in, 64, 7, 2, 3));
    const CimArchitecture arch = presets::isaacBaseline();
    const NodeCost naive = computeNodeCost(g, 1, arch, 0);
    const NodeCost balanced = computeNodeCost(g, 1, arch, 1);
    EXPECT_DOUBLE_EQ(naive.cycles_per_window, 8.0 * 16.0);
    EXPECT_DOUBLE_EQ(balanced.cycles_per_window, 8.0 * 10.0);
}

TEST(NodeCostTest, DigitalNodeUsesAggregateAlu)
{
    const Graph g = toyGraph();
    CimArchitecture arch = presets::isaacBaseline();
    const NodeCost relu = computeNodeCost(g, 2, arch);
    EXPECT_FALSE(relu.is_cim);
    EXPECT_TRUE(relu.is_stage);
    // 32768 elements over (1024 chip + 1024 x 768 core) ops/cycle.
    const double rate = 1024.0 + 1024.0 * 768.0;
    EXPECT_NEAR(relu.alu_cycles, 32768.0 / rate, 1e-9);
}

TEST(NodeCostTest, IdealAluIsFree)
{
    const Graph g = toyGraph();
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    const NodeCost relu = computeNodeCost(g, 2, arch);
    EXPECT_DOUBLE_EQ(relu.alu_cycles, 0.0);
    EXPECT_FALSE(relu.is_stage);
}

TEST(NodeCostTest, ChipSplitsWhenOperatorExceedsChip)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 25088});
    g.markOutput(g.linear(in, 4096)); // VGG16 fc0: ~100M weights
    CimArchitecture arch = presets::puma(); // 276 crossbars total
    const NodeCost cost = computeNodeCost(g, 1, arch);
    EXPECT_GT(cost.chip_splits, 1);
    EXPECT_EQ(cost.cores_per_replica, arch.chip.coreNumber());
}

TEST(NodeCostTest, LinearFillIsFull)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 64});
    g.markOutput(g.linear(in, 10));
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_DOUBLE_EQ(computeNodeCost(g, 1, arch).fill_fraction, 1.0);
}

TEST(NodeCostTest, ConvFillIsKernelOverHeight)
{
    const Graph g = toyGraph();
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_NEAR(computeNodeCost(g, 1, arch).fill_fraction, 3.0 / 32.0,
                1e-12);
}

// ----- segment latency -----------------------------------------------------

TEST(SegmentLatencyTest, SerialIsSum)
{
    const SegmentLatency out = segmentLatency(
        {{0, 100.0, 0.1, 0.0}, {1, 50.0, 0.1, 0.0}});
    EXPECT_DOUBLE_EQ(out.serial, 150.0);
    EXPECT_DOUBLE_EQ(out.bottleneck, 100.0);
}

TEST(SegmentLatencyTest, PipelinedIsBottleneckPlusFills)
{
    const SegmentLatency out = segmentLatency(
        {{0, 100.0, 0.1, 0.0}, {1, 50.0, 0.2, 0.0}});
    EXPECT_DOUBLE_EQ(out.pipelined, 100.0 + 50.0 * 0.2);
}

TEST(SegmentLatencyTest, FullFillSerializes)
{
    const SegmentLatency out = segmentLatency(
        {{0, 100.0, 1.0, 0.0}, {1, 80.0, 1.0, 0.0}});
    EXPECT_DOUBLE_EQ(out.pipelined, 180.0); // == serial
}

TEST(SegmentLatencyTest, OnlyOneTieSkipsFill)
{
    const SegmentLatency out = segmentLatency(
        {{0, 100.0, 0.5, 0.0}, {1, 100.0, 0.5, 0.0}});
    // One bottleneck excluded, the tied stage pays its fill.
    EXPECT_DOUBLE_EQ(out.pipelined, 150.0);
}

TEST(SegmentLatencyTest, StageFloorBindsLatency)
{
    const SegmentLatency out =
        segmentLatency({{0, 10.0, 0.0, 40.0}}, 0.0);
    EXPECT_DOUBLE_EQ(out.bottleneck, 40.0);
    EXPECT_DOUBLE_EQ(out.pipelined, 40.0);
}

TEST(SegmentLatencyTest, TransferFloorBounds)
{
    const SegmentLatency out =
        segmentLatency({{0, 10.0, 0.0, 0.0}}, 25.0);
    EXPECT_DOUBLE_EQ(out.pipelined, 25.0);
    EXPECT_DOUBLE_EQ(out.serial, 25.0);
}

TEST(SegmentLatencyTest, PipelinedNeverExceedsSerial)
{
    const SegmentLatency out = segmentLatency(
        {{0, 10.0, 1.0, 0.0}, {1, 10.0, 1.0, 0.0}, {2, 10.0, 1.0, 0.0}});
    EXPECT_LE(out.pipelined, out.serial);
}

// ----- bandwidth helpers ----------------------------------------------------

TEST(BandwidthTest, ChipLimitPicksNarrowest)
{
    CimArchitecture arch = presets::isaacBaseline();
    EXPECT_DOUBLE_EQ(chipBandwidthLimit(arch), 384.0);
    arch.chip.core_noc_bandwidth = 128.0;
    EXPECT_DOUBLE_EQ(chipBandwidthLimit(arch), 128.0);
    arch.chip.l0_bandwidth = 0.0;
    EXPECT_DOUBLE_EQ(chipBandwidthLimit(arch), 128.0);
}

TEST(BandwidthTest, BoundedCyclesPerWindow)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 25088});
    g.markOutput(g.linear(in, 10));
    const CimArchitecture arch = presets::isaacBaseline();
    const NodeCost cost = computeNodeCost(g, 1, arch);
    // Streaming 25088 activations through 384 b/cycle exceeds the
    // compute time.
    const double bounded = bandwidthBoundCyclesPerWindow(cost, arch);
    EXPECT_GT(bounded, cost.cycles_per_window);
    EXPECT_NEAR(bounded, 25088.0 * 8.0 / 384.0, 1.0);
}

TEST(BandwidthTest, StageFloorZeroWhenIdeal)
{
    const Graph g = toyGraph();
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    const NodeCost cost = computeNodeCost(g, 1, arch);
    EXPECT_DOUBLE_EQ(stageFloorCycles(cost, arch), 0.0);
}

TEST(BandwidthTest, StageFloorCountsWindows)
{
    const Graph g = toyGraph();
    const CimArchitecture arch = presets::isaacBaseline();
    const NodeCost cost = computeNodeCost(g, 1, arch);
    EXPECT_NEAR(stageFloorCycles(cost, arch),
                1024.0 * 72.0 / 384.0, 1e-9);
}

TEST(BandwidthTest, BoundUsesTheSharedChipLimit)
{
    // bandwidthBoundCyclesPerWindow must agree with chipBandwidthLimit
    // for every L0/NoC combination (it used to re-implement the min
    // logic and could silently diverge).
    const Graph g = toyGraph();
    const struct {
        double l0;
        double noc;
    } cases[] = {{0.0, 0.0}, {384.0, 0.0}, {0.0, 256.0}, {384.0, 256.0},
                 {128.0, 512.0}};
    for (const auto &c : cases) {
        CimArchitecture arch = presets::isaacBaseline();
        arch.chip.l0_bandwidth = c.l0;
        arch.chip.core_noc_bandwidth = c.noc;
        const NodeCost cost = computeNodeCost(g, 1, arch);
        const double limit = chipBandwidthLimit(arch);
        const double expected =
            limit <= 0.0 ? cost.cycles_per_window
                         : std::max(cost.cycles_per_window,
                                    cost.transfer_bits_per_window
                                        / limit);
        EXPECT_DOUBLE_EQ(bandwidthBoundCyclesPerWindow(cost, arch),
                         expected)
            << "l0=" << c.l0 << " noc=" << c.noc;
    }
}

} // namespace
} // namespace cimmlc
