/**
 * @file
 * Tests for the architecture DSE explorer: sweep-spec parsing (explicit
 * lists, log2 ranges, error paths), the arch mutation helpers, Pareto
 * dominance properties (non-front points dominated, front mutually
 * non-dominating, order/thread-count invariance), and the pinned
 * regression that the jain-class cheap-write crossbar lands on the
 * lenet5 front.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "arch/presets.h"
#include "arch/serialize.h"
#include "dse/arch_explorer.h"
#include "sched/autotune.h"

namespace cimmlc {
namespace {

// ----- sweep-spec parsing ------------------------------------------------

StatusOr<ArchSweepSpec>
sweepFromJson(const std::string &text)
{
    auto doc = parseConfig(text);
    if (!doc.isOk())
        return doc.status();
    return sweepSpecFromConfig(doc.value());
}

TEST(SweepSpecTest, ParsesExplicitListsInCanonicalOrder)
{
    // kvjson objects iterate alphabetically (core_grid before xb_size);
    // the parsed axes must come back in canonical ArchParam order.
    auto spec = sweepFromJson(R"({
        "core_grid": [[2, 2], 4],
        "xb_size": [[256, 64], [128, 128]],
        "core_noc": ["mesh", "htree"]
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    const ArchSweepSpec &sweep = spec.value();
    ASSERT_EQ(sweep.axes.size(), 3u);
    EXPECT_EQ(sweep.axes[0].param, ArchParam::kXbSize);
    EXPECT_EQ(sweep.axes[1].param, ArchParam::kCoreGrid);
    EXPECT_EQ(sweep.axes[2].param, ArchParam::kCoreNoc);
    EXPECT_EQ(sweep.candidateCount(), 2u * 2u * 2u);
    // Scalar grid shorthand expands to a square.
    EXPECT_EQ(sweep.axes[1].values[1].rows, 4);
    EXPECT_EQ(sweep.axes[1].values[1].cols, 4);
    // NoC names are canonicalized at parse time.
    EXPECT_EQ(sweep.axes[2].values[0].name,
              nocTypeName(NocType::kMesh));
}

TEST(SweepSpecTest, ExpandsLog2Ranges)
{
    auto spec = sweepFromJson(R"({
        "core_grid": {"log2": [1, 8]},
        "l1_bandwidth": {"log2": [64, 256]}
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    const ArchAxis &grid = spec.value().axes[0];
    ASSERT_EQ(grid.values.size(), 4u); // 1, 2, 4, 8 -> square grids
    EXPECT_EQ(grid.values[3].rows, 8);
    EXPECT_EQ(grid.values[3].cols, 8);
    const ArchAxis &bandwidth = spec.value().axes[1];
    ASSERT_EQ(bandwidth.values.size(), 3u); // 64, 128, 256
    EXPECT_DOUBLE_EQ(bandwidth.values[2].number, 256.0);
}

TEST(SweepSpecTest, RejectsMalformedAxes)
{
    // Unknown parameter name.
    EXPECT_FALSE(sweepFromJson(R"({"adc_precision": [6, 8]})").isOk());
    // Empty value list.
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": []})").isOk());
    // Non-positive grid dimension.
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": [[0, 64]]})").isOk());
    // Grid entry of the wrong shape.
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": [[1, 2, 3]]})").isOk());
    // Negative bandwidth.
    EXPECT_FALSE(sweepFromJson(R"({"l0_bandwidth": [-1]})").isOk());
    // Unknown NoC name.
    EXPECT_FALSE(sweepFromJson(R"({"core_noc": ["torus"]})").isOk());
    // log2 range on an enumeration axis.
    EXPECT_FALSE(sweepFromJson(R"({"core_noc": {"log2": [1, 4]}})").isOk());
    // log2 bounds out of order / non-positive.
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": {"log2": [8, 4]}})").isOk());
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": {"log2": [0, 4]}})").isOk());
    // Axis that is neither a list nor a log2 range.
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": "128x128"})").isOk());
    // Fractional values must be rejected, not truncated.
    EXPECT_FALSE(sweepFromJson(R"({"core_grid": [2.5]})").isOk());
    EXPECT_FALSE(sweepFromJson(R"({"xb_size": [[2.5, 64]]})").isOk());
    EXPECT_FALSE(
        sweepFromJson(R"({"xb_size": {"log2": [1.9, 4]}})").isOk());
    // A huge hi bound must fail fast, not hang the doubling loop.
    EXPECT_FALSE(sweepFromJson(
                     R"({"l1_bandwidth":
                         {"log2": [1, 4611686018427387904]}})")
                     .isOk());
    // Bit-width axes take positive integers, not fractions or zeros.
    EXPECT_FALSE(sweepFromJson(R"({"adc_bits": [6.5]})").isOk());
    EXPECT_FALSE(sweepFromJson(R"({"dac_bits": [0]})").isOk());
    EXPECT_FALSE(sweepFromJson(R"({"cell_bits": [-2]})").isOk());
    // Unknown cell-type name; ranges on a name axis.
    EXPECT_FALSE(sweepFromJson(R"({"cell_type": ["FeFET"]})").isOk());
    EXPECT_FALSE(
        sweepFromJson(R"({"cell_type": {"log2": [1, 4]}})").isOk());
}

TEST(SweepSpecTest, ParsesConverterAndCellAxes)
{
    auto spec = sweepFromJson(R"({
        "adc_bits": {"log2": [4, 8]},
        "dac_bits": [1, 2],
        "cell_type": ["SRAM", "ReRAM"],
        "cell_bits": [1, 2, 4]
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    const ArchSweepSpec &sweep = spec.value();
    ASSERT_EQ(sweep.axes.size(), 4u);
    EXPECT_EQ(sweep.axes[0].param, ArchParam::kDacBits);
    EXPECT_EQ(sweep.axes[1].param, ArchParam::kAdcBits);
    EXPECT_EQ(sweep.axes[2].param, ArchParam::kCellType);
    EXPECT_EQ(sweep.axes[3].param, ArchParam::kCellBits);
    EXPECT_EQ(sweep.candidateCount(), 2u * 2u * 2u * 3u);
    ASSERT_EQ(sweep.axes[1].values.size(), 2u); // 4, 8
    EXPECT_EQ(sweep.axes[1].values[1].rows, 8);
    EXPECT_EQ(archParamValueToString(ArchParam::kAdcBits,
                                     sweep.axes[1].values[1]),
              "8");
    // Cell-type names canonicalize through the device vocabulary.
    EXPECT_EQ(sweep.axes[2].values[1].name,
              cellTypeName(CellType::kReram));

    CimArchitecture arch = presets::jiaIsscc21();
    EXPECT_TRUE(applyArchParam(&arch, ArchParam::kAdcBits,
                               sweep.axes[1].values[1])
                    .isOk());
    EXPECT_EQ(arch.xbar.adc_bits, 8);
    EXPECT_TRUE(applyArchParam(&arch, ArchParam::kCellType,
                               sweep.axes[2].values[1])
                    .isOk());
    EXPECT_EQ(arch.xbar.cell_type, CellType::kReram);
    EXPECT_TRUE(applyArchParam(&arch, ArchParam::kCellBits,
                               sweep.axes[3].values[2])
                    .isOk());
    EXPECT_EQ(arch.xbar.cell_bits, 4);
    EXPECT_TRUE(arch.validate().isOk());
}

// ----- mutation helpers --------------------------------------------------

TEST(ApplyArchParamTest, XbSizeClampsParallelRow)
{
    CimArchitecture arch = presets::jainJssc21(); // 256 rows, 32 parallel
    ArchParamValue value;
    value.rows = 16;
    value.cols = 64;
    ASSERT_TRUE(
        applyArchParam(&arch, ArchParam::kXbSize, value).isOk());
    EXPECT_EQ(arch.xbar.rows, 16);
    EXPECT_EQ(arch.xbar.cols, 64);
    EXPECT_EQ(arch.xbar.parallel_row, 16);
    EXPECT_TRUE(arch.validate().isOk()) << arch.validate().toString();
}

TEST(ApplyArchParamTest, CoreGridDropsStaleNocCostMatrix)
{
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kWLM);
    const std::size_t cores =
        static_cast<std::size_t>(arch.chip.coreNumber());
    arch.chip.core_noc_cost.assign(cores * cores, 1.0);
    ASSERT_TRUE(arch.validate().isOk());

    ArchParamValue value;
    value.rows = 4;
    value.cols = 4;
    ASSERT_TRUE(
        applyArchParam(&arch, ArchParam::kCoreGrid, value).isOk());
    EXPECT_EQ(arch.chip.coreNumber(), 16);
    // The matrix was sized for the old grid; keeping it would fail
    // validation (or worse, silently misprice hops).
    EXPECT_TRUE(arch.chip.core_noc_cost.empty());
    EXPECT_TRUE(arch.validate().isOk()) << arch.validate().toString();
}

TEST(ApplyArchParamTest, CoreNocBandwidthDropsOverridingCostMatrix)
{
    // NocModel lets an explicit cost matrix fully override the
    // bandwidth parameter; sweeping core_noc_bandwidth over such a base
    // design would otherwise be a silent no-op axis.
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kWLM);
    const std::size_t cores =
        static_cast<std::size_t>(arch.chip.coreNumber());
    arch.chip.core_noc_cost.assign(cores * cores, 1.0);

    ArchParamValue value;
    value.number = 64.0;
    ASSERT_TRUE(
        applyArchParam(&arch, ArchParam::kCoreNocBandwidth, value)
            .isOk());
    EXPECT_DOUBLE_EQ(arch.chip.core_noc_bandwidth, 64.0);
    EXPECT_TRUE(arch.chip.core_noc_cost.empty());
}

TEST(ApplyArchParamTest, ComputeModeAndBandwidthApply)
{
    CimArchitecture arch = presets::puma();
    ArchParamValue mode;
    mode.name = "WLM";
    ASSERT_TRUE(
        applyArchParam(&arch, ArchParam::kComputeMode, mode).isOk());
    EXPECT_EQ(arch.mode, ComputeMode::kWLM);

    ArchParamValue bandwidth;
    bandwidth.number = 512.0;
    ASSERT_TRUE(
        applyArchParam(&arch, ArchParam::kL0Bandwidth, bandwidth).isOk());
    EXPECT_DOUBLE_EQ(arch.chip.l0_bandwidth, 512.0);
}

// ----- Pareto dominance properties ---------------------------------------

DseCandidate
point(std::size_t index, double latency, double energy, bool ok = true)
{
    DseCandidate candidate;
    candidate.index = index;
    candidate.latency_cycles = latency;
    candidate.energy_pj = energy;
    candidate.edp = latency * energy;
    if (!ok)
        candidate.status = resourceExhausted("infeasible");
    return candidate;
}

bool
dominatesPair(const DseCandidate &a, const DseCandidate &b)
{
    return a.latency_cycles <= b.latency_cycles
           && a.energy_pj <= b.energy_pj
           && (a.latency_cycles < b.latency_cycles
               || a.energy_pj < b.energy_pj);
}

std::vector<DseCandidate>
randomPoints(std::size_t count, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> metric(1, 20);
    std::vector<DseCandidate> candidates;
    for (std::size_t i = 0; i < count; ++i) {
        candidates.push_back(point(i, 100.0 * metric(rng),
                                   1000.0 * metric(rng),
                                   /*ok=*/i % 7 != 3));
    }
    return candidates;
}

TEST(ParetoFrontTest, EveryNonFrontPointIsDominatedByAFrontPoint)
{
    const std::vector<DseCandidate> candidates = randomPoints(40, 1234);
    const std::vector<std::size_t> front =
        paretoFrontIndices(candidates);
    ASSERT_FALSE(front.empty());
    const std::set<std::size_t> members(front.begin(), front.end());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!candidates[i].status.isOk() || members.count(i))
            continue;
        bool dominated = false;
        for (std::size_t f : front)
            dominated = dominated
                        || dominatesPair(candidates[f], candidates[i]);
        EXPECT_TRUE(dominated) << "non-front point " << i
                               << " is not dominated by the front";
    }
}

TEST(ParetoFrontTest, NoFrontPointDominatesAnother)
{
    const std::vector<DseCandidate> candidates = randomPoints(40, 99);
    const std::vector<std::size_t> front =
        paretoFrontIndices(candidates);
    for (std::size_t a : front)
        for (std::size_t b : front)
            if (a != b)
                EXPECT_FALSE(dominatesPair(candidates[a], candidates[b]))
                    << a << " dominates " << b;
}

TEST(ParetoFrontTest, FrontIsInvariantUnderCandidateOrderShuffling)
{
    std::vector<DseCandidate> candidates = randomPoints(32, 7);
    auto frontMetrics = [](const std::vector<DseCandidate> &points) {
        std::multiset<std::pair<double, double>> metrics;
        for (std::size_t index : paretoFrontIndices(points))
            metrics.emplace(points[index].latency_cycles,
                            points[index].energy_pj);
        return metrics;
    };
    const auto reference = frontMetrics(candidates);
    std::mt19937 rng(2026);
    for (int round = 0; round < 5; ++round) {
        std::shuffle(candidates.begin(), candidates.end(), rng);
        for (std::size_t i = 0; i < candidates.size(); ++i)
            candidates[i].index = i; // identity follows position
        EXPECT_EQ(frontMetrics(candidates), reference)
            << "front changed after shuffle round " << round;
    }
}

TEST(ParetoFrontTest, InfeasiblePointsNeverJoinTheFront)
{
    // The infeasible point would dominate everything if admitted.
    std::vector<DseCandidate> candidates;
    candidates.push_back(point(0, 1.0, 1.0, /*ok=*/false));
    candidates.push_back(point(1, 10.0, 20.0));
    candidates.push_back(point(2, 20.0, 10.0));
    const std::vector<std::size_t> front =
        paretoFrontIndices(candidates);
    EXPECT_EQ(front, (std::vector<std::size_t>{1, 2}));
}

TEST(ParetoFrontTest, DuplicateMetricPointsAreBothKept)
{
    std::vector<DseCandidate> candidates;
    candidates.push_back(point(0, 10.0, 10.0));
    candidates.push_back(point(1, 10.0, 10.0));
    candidates.push_back(point(2, 30.0, 30.0));
    const std::vector<std::size_t> front =
        paretoFrontIndices(candidates);
    EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

// ----- DSE spec parsing --------------------------------------------------

TEST(DseSpecTest, ResolvesPresetBaseArch)
{
    auto spec = dseSpecFromText(R"({
        "model": "lenet5",
        "arch": "jain",
        "sweep": {"xb_size": [[256, 64]]}
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    EXPECT_EQ(spec.value().base_arch.name, "jain-jssc21");
    EXPECT_FALSE(spec.value().tune);
    EXPECT_EQ(spec.value().objective, TuneObjective::kLatency);
}

TEST(DseSpecTest, RejectsBadSpecs)
{
    // No workload.
    EXPECT_FALSE(dseSpecFromText(
                     R"({"sweep": {"xb_size": [[256, 64]]}})")
                     .isOk());
    // Conflicting workload sources.
    EXPECT_FALSE(dseSpecFromText(R"({
        "model": "lenet5", "model_file": "net.json",
        "sweep": {"xb_size": [[256, 64]]}
    })")
                     .isOk());
    // Missing sweep.
    EXPECT_FALSE(dseSpecFromText(R"({"model": "lenet5"})").isOk());
    // Empty sweep.
    EXPECT_FALSE(
        dseSpecFromText(R"({"model": "lenet5", "sweep": {}})").isOk());
    // Unknown objective.
    EXPECT_FALSE(dseSpecFromText(R"({
        "model": "lenet5", "objective": "throughput",
        "sweep": {"xb_size": [[256, 64]]}
    })")
                     .isOk());
    // Unknown base preset.
    EXPECT_FALSE(dseSpecFromText(R"({
        "model": "lenet5", "arch": "no-such-chip",
        "sweep": {"xb_size": [[256, 64]]}
    })")
                     .isOk());
    // Negative thread budget.
    EXPECT_FALSE(dseSpecFromText(R"({
        "model": "lenet5", "threads": -1,
        "sweep": {"xb_size": [[256, 64]]}
    })")
                     .isOk());
}

// ----- end-to-end exploration --------------------------------------------

DseSpec
toySpec(int threads)
{
    auto spec = dseSpecFromText(R"({
        "model": "conv_relu_toy",
        "arch": "tutorial",
        "sweep": {
            "xb_size": [[32, 128], [64, 128]],
            "core_grid": [[2, 1], [2, 2]]
        }
    })");
    EXPECT_TRUE(spec.isOk()) << spec.status().toString();
    DseSpec result = spec.value();
    result.threads = threads;
    return result;
}

TEST(ArchExplorerTest, EnumerationIsRowMajorAndLabelled)
{
    const ArchExplorer explorer(toySpec(1));
    const std::vector<DseCandidate> candidates = explorer.enumerate();
    ASSERT_EQ(candidates.size(), 4u);
    EXPECT_EQ(candidates[0].label, "xb_size=32x128 core_grid=2x1");
    EXPECT_EQ(candidates[1].label, "xb_size=32x128 core_grid=2x2");
    EXPECT_EQ(candidates[2].label, "xb_size=64x128 core_grid=2x1");
    EXPECT_EQ(candidates[3].label, "xb_size=64x128 core_grid=2x2");
    for (std::size_t i = 0; i < candidates.size(); ++i)
        EXPECT_EQ(candidates[i].index, i);
}

TEST(ArchExplorerTest, FrontPropertiesHoldOnRealEvaluations)
{
    const ArchExplorer explorer(toySpec(1));
    auto result = explorer.explore();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const DseResult &r = result.value();
    ASSERT_FALSE(r.front.empty());
    const std::set<std::size_t> members(r.front.begin(), r.front.end());
    for (const DseCandidate &candidate : r.candidates) {
        if (!candidate.status.isOk()) {
            EXPECT_FALSE(candidate.on_front);
            continue;
        }
        if (members.count(candidate.index)) {
            EXPECT_TRUE(candidate.on_front);
            continue;
        }
        bool dominated = false;
        for (std::size_t f : r.front)
            dominated = dominated
                        || dominatesPair(r.candidates[f], candidate);
        EXPECT_TRUE(dominated) << candidate.label;
    }
    for (std::size_t a : r.front)
        for (std::size_t b : r.front)
            if (a != b)
                EXPECT_FALSE(
                    dominatesPair(r.candidates[a], r.candidates[b]));
}

TEST(ArchExplorerTest, SerialAndParallelRunsAreByteIdentical)
{
    auto serial = ArchExplorer(toySpec(1)).explore();
    auto parallel = ArchExplorer(toySpec(4)).explore();
    ASSERT_TRUE(serial.isOk()) << serial.status().toString();
    ASSERT_TRUE(parallel.isOk()) << parallel.status().toString();
    EXPECT_EQ(serial.value().front, parallel.value().front);
    EXPECT_EQ(serial.value().table(), parallel.value().table());
    EXPECT_EQ(serial.value().summary(), parallel.value().summary());
    EXPECT_EQ(serial.value().toConfig().dump(true),
              parallel.value().toConfig().dump(true));
}

TEST(ArchExplorerTest, SharedCacheWarmsTheSecondRun)
{
    TuneCache cache;
    const ArchExplorer explorer(toySpec(1));
    auto cold = explorer.explore(&cache);
    ASSERT_TRUE(cold.isOk()) << cold.status().toString();
    EXPECT_EQ(cold.value().cache_hits, 0);

    auto warm = explorer.explore(&cache);
    ASSERT_TRUE(warm.isOk());
    EXPECT_EQ(warm.value().cache_hits,
              static_cast<std::int64_t>(warm.value().candidates.size()));
    // Cached values are bit-identical to fresh ones.
    EXPECT_EQ(cold.value().table(), warm.value().table());
}

TEST(ArchExplorerTest, DuplicateSweepPointsHitDeterministically)
{
    // The scalar grid shorthand can alias an explicit pair; duplicates
    // must be served from the first occurrence's evaluation with a hit
    // count that does not depend on thread timing.
    const char *spec_text = R"({
        "model": "conv_relu_toy",
        "arch": "tutorial",
        "sweep": {"core_grid": [[2, 2], 2, [4, 4]]}
    })";
    auto run = [&](int threads) {
        auto spec = dseSpecFromText(spec_text);
        EXPECT_TRUE(spec.isOk()) << spec.status().toString();
        spec.value().threads = threads;
        TuneCache cache;
        return ArchExplorer(spec.value()).explore(&cache);
    };
    auto serial = run(1);
    auto parallel = run(4);
    ASSERT_TRUE(serial.isOk()) << serial.status().toString();
    ASSERT_TRUE(parallel.isOk()) << parallel.status().toString();
    // [2,2] and the scalar 2 are the same candidate: one duplicate hit.
    EXPECT_EQ(serial.value().cache_hits, 1);
    EXPECT_EQ(parallel.value().cache_hits, 1);
    EXPECT_EQ(serial.value().candidates[0].latency_cycles,
              serial.value().candidates[1].latency_cycles);
    EXPECT_EQ(serial.value().toConfig().dump(true),
              parallel.value().toConfig().dump(true));
}

TEST(ArchExplorerTest, InfeasibleGeometryIsReportedPerCandidate)
{
    // tutorial stores 8-bit weights in 2-bit cells -> 4 cells per
    // weight; a 4x2 crossbar cannot hold even one weight, so that
    // candidate must fail validation while the sweep still succeeds.
    auto spec = dseSpecFromText(R"({
        "model": "conv_relu_toy",
        "arch": "tutorial",
        "sweep": {"xb_size": [[32, 128], [4, 2]]}
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    spec.value().threads = 1;
    auto result = ArchExplorer(spec.value()).explore();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const DseResult &r = result.value();
    ASSERT_EQ(r.candidates.size(), 2u);
    EXPECT_TRUE(r.candidates[0].status.isOk());
    EXPECT_FALSE(r.candidates[1].status.isOk());
    EXPECT_FALSE(r.candidates[1].on_front);
    EXPECT_EQ(r.feasibleCount(), 1);
    EXPECT_EQ(r.front, (std::vector<std::size_t>{0}));
    // The failure is visible in the report.
    EXPECT_NE(r.table().find("weight"), std::string::npos);
}

TEST(ArchExplorerTest, AllCandidatesInfeasibleFailsWithContext)
{
    auto spec = dseSpecFromText(R"({
        "model": "conv_relu_toy",
        "arch": "tutorial",
        "sweep": {"xb_size": [[4, 2]]}
    })");
    ASSERT_TRUE(spec.isOk());
    spec.value().threads = 1;
    auto result = ArchExplorer(spec.value()).explore();
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("no feasible candidate"),
              std::string::npos);
}

TEST(ArchExplorerTest, TunedSweepReportsTunedConfigs)
{
    auto spec = dseSpecFromText(R"({
        "model": "conv_relu_toy",
        "arch": "tutorial",
        "tune": true,
        "objective": "edp",
        "sweep": {"xb_size": [[32, 128], [64, 128]]}
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    spec.value().threads = 1;
    auto result = ArchExplorer(spec.value()).explore();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    for (const DseCandidate &candidate : result.value().candidates) {
        ASSERT_TRUE(candidate.status.isOk());
        EXPECT_TRUE(candidate.tuned);
        EXPECT_FALSE(candidate.config.empty());
    }
    EXPECT_NE(result.value().table().find("tuned: "), std::string::npos);
}

// ----- report schema -----------------------------------------------------

TEST(DseReportTest, ConfigCarriesSchemaFrontAndEvaluatedSet)
{
    auto result = ArchExplorer(toySpec(1)).explore();
    ASSERT_TRUE(result.isOk());
    const ConfigValue doc = result.value().toConfig();
    EXPECT_EQ(doc.getStringOr("schema", ""), "cimmlc.dse.v1");
    ASSERT_TRUE(doc.get("evaluated").value().isArray());
    EXPECT_EQ(doc.get("evaluated").value().asArray().size(),
              result.value().candidates.size());
    ASSERT_TRUE(doc.get("front").value().isArray());
    EXPECT_EQ(doc.get("front").value().asArray().size(),
              result.value().front.size());
    // The dump must parse back through our own kvjson reader.
    auto reparsed = parseConfig(doc.dump(true));
    ASSERT_TRUE(reparsed.isOk()) << reparsed.status().toString();
    EXPECT_EQ(reparsed.value().getStringOr("schema", ""),
              "cimmlc.dse.v1");
}

// ----- pinned regression -------------------------------------------------

TEST(DseRegressionTest, JainClassCrossbarLandsOnTheLenet5Front)
{
    // The jain-jssc21 SRAM macro's 256x64 crossbar is the cheap-write
    // design of the paper's Figure 19; on lenet5 it is the lowest-
    // energy region of this sweep, so it must survive on the Pareto
    // front against the larger 128x128 and smaller 64x64 variants.
    // (Same sweep as examples/dse_lenet5.json.) If the cost model
    // changes and this stops holding, re-run the example and re-pin.
    auto spec = dseSpecFromText(R"({
        "model": "lenet5",
        "arch": "jain",
        "sweep": {
            "xb_size": [[256, 64], [128, 128], [64, 64]],
            "core_grid": {"log2": [1, 4]},
            "core_noc_bandwidth": [0, 128]
        }
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    spec.value().threads = 1;
    auto result = ArchExplorer(spec.value()).explore();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const DseResult &r = result.value();
    EXPECT_EQ(r.candidates.size(), 18u);
    bool jain_on_front = false;
    for (std::size_t index : r.front) {
        for (const auto &[param, value] : r.candidates[index].params)
            if (param == "xb_size" && value == "256x64")
                jain_on_front = true;
    }
    EXPECT_TRUE(jain_on_front)
        << "expected a 256x64 (jain-class) point on the front:\n"
        << r.table();
}

} // namespace
} // namespace cimmlc
