/**
 * @file
 * Tests for the PerfEngine interface and the discrete-event simulation
 * backend: closed-form wrapper fidelity, event-vs-trace equivalence on
 * contention-free programs, the pinned event-vs-closed-form agreement
 * bands on congestion-free flows, contention regressions where the
 * event engine is strictly slower, determinism, report-schema tagging,
 * and the budgeted DSE's closed-form proxy rung below event.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "arch/serialize.h"
#include "common/rng.h"
#include "compiler/batch.h"
#include "compiler/session.h"
#include "dse/arch_explorer.h"
#include "graph/models.h"
#include "perfsim/event/event_engine.h"
#include "perfsim/perf_engine.h"
#include "perfsim/trace_engine.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

MetaOp
readRowOp(std::int64_t core, std::int64_t xb, std::int64_t len)
{
    MetaOp op;
    op.kind = MetaOpKind::kReadRow;
    op.core = core;
    op.xb = xb;
    op.len = len;
    op.cols = 4;
    return op;
}

/** Compiles a bundled model for an architecture and returns the flow. */
CodegenResult
compileFlow(const Graph &graph, const CimArchitecture &arch)
{
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    EXPECT_TRUE(schedule.isOk()) << schedule.status().toString();
    auto code = generateProgram(graph, arch, schedule.value(),
                                compressedCodegenOptions());
    EXPECT_TRUE(code.isOk()) << code.status().toString();
    return code.value();
}

// ----- engine vocabulary ----------------------------------------------------

TEST(PerfEngineKindTest, NamesRoundTrip)
{
    EXPECT_STREQ(perfEngineName(PerfEngineKind::kClosedForm),
                 "closed_form");
    EXPECT_STREQ(perfEngineName(PerfEngineKind::kEvent), "event");
    auto closed = parsePerfEngineKind("closed_form");
    auto event = parsePerfEngineKind(" Event ");
    ASSERT_TRUE(closed.isOk() && event.isOk());
    EXPECT_EQ(closed.value(), PerfEngineKind::kClosedForm);
    EXPECT_EQ(event.value(), PerfEngineKind::kEvent);
    EXPECT_FALSE(parsePerfEngineKind("analytic").isOk());
    EXPECT_FALSE(parsePerfEngineKind("").isOk());
}

TEST(PerfEngineInterfaceTest, ClosedFormMatchesEvaluateSchedule)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    auto direct = evaluateSchedule(g, arch, schedule.value());
    ASSERT_TRUE(direct.isOk());

    const auto engine = makePerfEngine(PerfEngineKind::kClosedForm);
    EXPECT_EQ(engine->kind(), PerfEngineKind::kClosedForm);
    PerfInput input;
    input.graph = &g;
    input.arch = &arch;
    input.schedule = &schedule.value();
    auto wrapped = engine->evaluate(input);
    ASSERT_TRUE(wrapped.isOk());
    EXPECT_EQ(wrapped.value().engine, PerfEngineKind::kClosedForm);
    EXPECT_DOUBLE_EQ(wrapped.value().latency_cycles,
                     direct.value().latency_cycles);
    EXPECT_DOUBLE_EQ(wrapped.value().energy.total(),
                     direct.value().energy.total());
    EXPECT_EQ(wrapped.value().crossbars_mapped,
              direct.value().crossbars_mapped);
    EXPECT_TRUE(wrapped.value().resources.empty());
}

TEST(PerfEngineInterfaceTest, MissingInputsAreInvalidArgument)
{
    PerfInput empty;
    EXPECT_FALSE(makePerfEngine(PerfEngineKind::kClosedForm)
                     ->evaluate(empty)
                     .isOk());
    EXPECT_FALSE(
        makePerfEngine(PerfEngineKind::kEvent)->evaluate(empty).isOk());
}

// ----- event engine vs trace engine -----------------------------------------

TEST(EventEngineTest, SequentialOpsMatchTraceExactly)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MopProgram program("p", "WLM");
    program.emit(readRowOp(0, 0, 8));
    program.emit(readRowOp(0, 0, 8));
    program.emit(readRowOp(0, 1, 4));

    auto trace = traceProgram(program, arch);
    auto event = simulateProgramEvents(program, arch);
    ASSERT_TRUE(trace.isOk() && event.isOk());
    EXPECT_DOUBLE_EQ(event.value().cycles, trace.value().cycles);
    // kReadRow duration is DAC-phase bound on isaac: 8 cycles each.
    EXPECT_DOUBLE_EQ(event.value().cycles, 24.0);
    EXPECT_DOUBLE_EQ(event.value().stall_cycles, 0.0);
    EXPECT_EQ(event.value().ops, trace.value().ops);
    EXPECT_DOUBLE_EQ(event.value().energy.total(),
                     trace.value().energy.total());
}

TEST(EventEngineTest, DisjointParallelArmsMatchTrace)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MopProgram program("p", "WLM");
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(readRowOp(0, 0, 8)),
         Stmt::makeOp(readRowOp(0, 1, 8)),
         Stmt::makeOp(readRowOp(1, 0, 4))}));

    auto trace = traceProgram(program, arch);
    auto event = simulateProgramEvents(program, arch);
    ASSERT_TRUE(trace.isOk() && event.isOk());
    // No two arms share a crossbar: the event engine degenerates to the
    // trace's start-together/max-member semantics.
    EXPECT_DOUBLE_EQ(event.value().cycles, trace.value().cycles);
    EXPECT_DOUBLE_EQ(event.value().cycles, 8.0);
    EXPECT_DOUBLE_EQ(event.value().stall_cycles, 0.0);
    EXPECT_EQ(event.value().peak_active_xbs,
              trace.value().peak_active_xbs);
}

TEST(EventEngineTest, SharedCrossbarSerializesParallelArms)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MopProgram program("p", "WLM");
    // Both arms activate rows of crossbar (0, 0): physically one array,
    // so the second activation must wait for the first.
    program.compute().push_back(
        Stmt::makeParallel({Stmt::makeOp(readRowOp(0, 0, 8)),
                            Stmt::makeOp(readRowOp(0, 0, 8))}));

    auto trace = traceProgram(program, arch);
    auto event = simulateProgramEvents(program, arch);
    ASSERT_TRUE(trace.isOk() && event.isOk());
    EXPECT_DOUBLE_EQ(trace.value().cycles, 8.0);
    EXPECT_DOUBLE_EQ(event.value().cycles, 16.0);
    EXPECT_DOUBLE_EQ(event.value().stall_cycles, 8.0);
    // Contention changes time, never the work: energy is identical.
    EXPECT_DOUBLE_EQ(event.value().energy.total(),
                     trace.value().energy.total());

    ASSERT_EQ(event.value().resources.size(), 1u);
    const ResourceUsage &xbar = event.value().resources.front();
    EXPECT_EQ(xbar.name, "xbar");
    EXPECT_EQ(xbar.instances, 1);
    EXPECT_EQ(xbar.ops, 2);
    EXPECT_DOUBLE_EQ(xbar.busy_cycles, 16.0);
    EXPECT_DOUBLE_EQ(xbar.stall_cycles, 8.0);
    EXPECT_DOUBLE_EQ(xbar.utilization, 1.0);
}

TEST(EventEngineTest, RepeatExtrapolatesPeriodAndStall)
{
    const CimArchitecture arch = presets::isaacBaseline();
    MopProgram plain("p", "WLM");
    plain.compute().push_back(
        Stmt::makeRepeat(10, {Stmt::makeOp(readRowOp(0, 0, 8))}));
    auto trace = traceProgram(plain, arch);
    auto event = simulateProgramEvents(plain, arch);
    ASSERT_TRUE(trace.isOk() && event.isOk());
    EXPECT_DOUBLE_EQ(event.value().cycles, trace.value().cycles);
    EXPECT_DOUBLE_EQ(event.value().cycles, 80.0);
    EXPECT_NEAR(event.value().energy.total(),
                trace.value().energy.total(), 1e-9);

    // Contention inside the repeated body: each iteration serializes
    // its two arms (period 16, stall 8), and the extrapolation carries
    // the repeat weight into the stall statistics.
    MopProgram contended("p", "WLM");
    contended.compute().push_back(Stmt::makeRepeat(
        3, {Stmt::makeParallel({Stmt::makeOp(readRowOp(0, 0, 8)),
                                Stmt::makeOp(readRowOp(0, 0, 8))})}));
    auto rep = simulateProgramEvents(contended, arch);
    ASSERT_TRUE(rep.isOk());
    EXPECT_DOUBLE_EQ(rep.value().cycles, 48.0);
    EXPECT_DOUBLE_EQ(rep.value().stall_cycles, 24.0);
}

TEST(EventEngineTest, NeverFasterThanTraceOnCompiledFlows)
{
    const std::vector<std::string> model_names = {"mlp", "lenet5",
                                                  "conv_relu_toy"};
    const std::vector<std::string> arch_names = {"isaac", "jia", "puma",
                                                 "jain", "tutorial"};
    for (const std::string &model_name : model_names) {
        for (const std::string &arch_name : arch_names) {
            auto graph = models::byNameChecked(model_name);
            auto arch = presets::byName(arch_name);
            ASSERT_TRUE(graph.isOk() && arch.isOk());
            const CodegenResult code =
                compileFlow(graph.value(), arch.value());
            auto trace = traceProgram(code.program, arch.value());
            auto event =
                simulateProgramEvents(code.program, arch.value());
            ASSERT_TRUE(trace.isOk() && event.isOk())
                << model_name << " x " << arch_name;
            // Contention can only delay ops, never accelerate them.
            EXPECT_GE(event.value().cycles,
                      trace.value().cycles - 1e-6)
                << model_name << " x " << arch_name;
            EXPECT_GE(event.value().stall_cycles, 0.0);
            // Same flow, same energy accounting, different timing.
            EXPECT_NEAR(event.value().energy.total(),
                        trace.value().energy.total(),
                        trace.value().energy.total() * 1e-9)
                << model_name << " x " << arch_name;
            EXPECT_EQ(event.value().ops, trace.value().ops)
                << model_name << " x " << arch_name;
        }
    }
}

// ----- agreement with the closed-form model ---------------------------------

/**
 * The validation contract from the two-engine design: on congestion-free
 * flows (no stall anywhere) the event engine's compute-phase latency
 * must be at least the closed-form estimate (the analytic model assumes
 * perfect overlap) and within a pinned band of it. The jia-isscc21
 * preset compiles these models congestion-free, with compute-phase
 * ratios between 1.004x and 1.93x (pinned 2025-08 on the bundled
 * models; weight-programming time is excluded — the closed-form model
 * prices it separately as reload cycles).
 */
TEST(EngineAgreementTest, CongestionFreeFlowsWithinPinnedBand)
{
    const std::vector<std::string> model_names = {
        "mlp", "lenet5", "conv_relu_toy", "macro_cnn"};
    auto arch = presets::byName("jia");
    ASSERT_TRUE(arch.isOk());
    for (const std::string &model_name : model_names) {
        auto graph = models::byNameChecked(model_name);
        ASSERT_TRUE(graph.isOk());
        auto schedule = scheduleGraph(graph.value(), arch.value(),
                                      ScheduleOptions::full());
        ASSERT_TRUE(schedule.isOk());
        auto closed = evaluateSchedule(graph.value(), arch.value(),
                                       schedule.value());
        auto code = generateProgram(graph.value(), arch.value(),
                                    schedule.value(),
                                    compressedCodegenOptions());
        ASSERT_TRUE(closed.isOk() && code.isOk());
        auto event =
            simulateProgramEvents(code.value().program, arch.value());
        ASSERT_TRUE(event.isOk());

        EXPECT_DOUBLE_EQ(event.value().stall_cycles, 0.0)
            << model_name << ": expected a congestion-free flow";
        const double compute =
            event.value().cycles - event.value().init_cycles;
        const double ratio =
            compute / closed.value().latency_cycles;
        // Never below: the event engine replays real movs and partial
        // sums the analytic model overlaps perfectly.
        EXPECT_GE(ratio, 1.0 - 1e-9) << model_name;
        EXPECT_LE(ratio, 2.5) << model_name;
    }
}

TEST(EngineAgreementTest, ContentionMakesEventStrictlySlower)
{
    // mlp on jain-jssc21 shares L1 ports across parallel duplication
    // arms: the event engine must report real stall and a strictly
    // larger makespan than the contention-blind trace.
    auto graph = models::byNameChecked("mlp");
    auto arch = presets::byName("jain");
    ASSERT_TRUE(graph.isOk() && arch.isOk());
    const CodegenResult code = compileFlow(graph.value(), arch.value());
    auto trace = traceProgram(code.program, arch.value());
    auto event = simulateProgramEvents(code.program, arch.value());
    ASSERT_TRUE(trace.isOk() && event.isOk());
    EXPECT_GT(event.value().stall_cycles, 0.0);
    EXPECT_GT(event.value().cycles, trace.value().cycles);

    // The stall is attributed to concrete resource classes.
    double resource_stall = 0.0;
    for (const ResourceUsage &row : event.value().resources)
        resource_stall += row.stall_cycles;
    EXPECT_NEAR(resource_stall, event.value().stall_cycles,
                1e-6 * std::max(1.0, event.value().stall_cycles));
}

TEST(EngineAgreementTest, SingleCoreVariantStaysCongestionFree)
{
    // Force a single-core tutorial chip via the DSE mutation helper:
    // everything serializes through one core's resources, which the
    // event engine must price without inventing contention (a single
    // fiber chain never overlaps with itself).
    auto arch = presets::byName("tutorial");
    ASSERT_TRUE(arch.isOk());
    ArchParamValue one_core;
    one_core.rows = 1;
    one_core.cols = 1;
    ASSERT_TRUE(applyArchParam(&arch.value(), ArchParam::kCoreGrid,
                               one_core)
                    .isOk());
    ASSERT_TRUE(arch.value().validate().isOk());

    const Graph graph = models::convReluToy();
    const CodegenResult code = compileFlow(graph, arch.value());
    auto trace = traceProgram(code.program, arch.value());
    auto event = simulateProgramEvents(code.program, arch.value());
    ASSERT_TRUE(trace.isOk() && event.isOk());
    EXPECT_DOUBLE_EQ(event.value().stall_cycles, 0.0);
    EXPECT_DOUBLE_EQ(event.value().cycles, trace.value().cycles);
}

// ----- determinism ----------------------------------------------------------

TEST(EventEngineTest, RepeatedSimulationIsBitIdentical)
{
    auto graph = models::byNameChecked("lenet5");
    auto arch = presets::byName("jain");
    ASSERT_TRUE(graph.isOk() && arch.isOk());
    const CodegenResult code = compileFlow(graph.value(), arch.value());
    auto first = simulateProgramEvents(code.program, arch.value());
    auto second = simulateProgramEvents(code.program, arch.value());
    ASSERT_TRUE(first.isOk() && second.isOk());
    EXPECT_EQ(first.value().cycles, second.value().cycles);
    EXPECT_EQ(first.value().stall_cycles, second.value().stall_cycles);
    EXPECT_EQ(first.value().energy.total(),
              second.value().energy.total());
    ASSERT_EQ(first.value().resources.size(),
              second.value().resources.size());
    for (std::size_t i = 0; i < first.value().resources.size(); ++i) {
        const ResourceUsage &a = first.value().resources[i];
        const ResourceUsage &b = second.value().resources[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.ops, b.ops);
        EXPECT_EQ(a.busy_cycles, b.busy_cycles);
        EXPECT_EQ(a.stall_cycles, b.stall_cycles);
        EXPECT_EQ(a.utilization, b.utilization);
    }
}

TEST(EventEngineTest, BatchTableByteIdenticalAcrossThreadCounts)
{
    std::vector<BatchJob> jobs;
    for (const char *model : {"mlp", "lenet5", "conv_relu_toy"})
        for (const char *arch : {"jia", "jain", "tutorial"})
            jobs.push_back({model, arch});

    std::string serial_table;
    {
        BatchCompiler batch(ScheduleOptions::full(), 1);
        batch.setPerfEngine(PerfEngineKind::kEvent);
        auto result = batch.run(jobs);
        ASSERT_TRUE(result.isOk());
        serial_table = result.value().table();
    }
    for (int threads : {2, 8}) {
        BatchCompiler batch(ScheduleOptions::full(), threads);
        batch.setPerfEngine(PerfEngineKind::kEvent);
        auto result = batch.run(jobs);
        ASSERT_TRUE(result.isOk());
        EXPECT_EQ(result.value().table(), serial_table)
            << "threads=" << threads;
    }
}

// ----- session integration --------------------------------------------------

TEST(SessionPerfEngineTest, EventEngineAutoEnablesCodegen)
{
    CompileRequest request;
    request.model = "lenet5";
    request.arch = "jain";
    request.perf_engine = PerfEngineKind::kEvent;
    request.outputs.flow = false; // DSE-style caller: no flow artifact
    request.stop_after = CompileStage::kPerf;
    CompilerSession session(std::move(request));
    auto artifacts = session.run();
    ASSERT_TRUE(artifacts.isOk()) << artifacts.status().toString();
    ASSERT_TRUE(artifacts.value().perf.has_value());
    EXPECT_EQ(artifacts.value().perf->engine, PerfEngineKind::kEvent);
    EXPECT_FALSE(artifacts.value().perf->resources.empty());
    EXPECT_GT(artifacts.value().perf->latency_cycles, 0.0);
}

TEST(SessionPerfEngineTest, ReportSchemaTagsEngineAndResources)
{
    auto run = [](PerfEngineKind engine) {
        CompileRequest request;
        request.model = "mlp";
        request.arch = "jain";
        request.perf_engine = engine;
        request.stop_after = CompileStage::kPerf;
        CompilerSession session(std::move(request));
        auto artifacts = session.run();
        EXPECT_TRUE(artifacts.isOk());
        return artifacts.value().toConfig();
    };

    const ConfigValue event_doc = run(PerfEngineKind::kEvent);
    const ConfigValue closed_doc = run(PerfEngineKind::kClosedForm);
    ASSERT_TRUE(event_doc.has("perf") && closed_doc.has("perf"));
    const ConfigValue event_perf = event_doc.get("perf").value();
    const ConfigValue closed_perf = closed_doc.get("perf").value();

    EXPECT_EQ(event_perf.getStringOr("engine", ""), "event");
    EXPECT_EQ(closed_perf.getStringOr("engine", ""), "closed_form");
    ASSERT_TRUE(event_perf.has("resources"));
    EXPECT_TRUE(event_perf.has("stall_cycles"));
    EXPECT_FALSE(closed_perf.has("resources"));

    const ConfigValue resources = event_perf.get("resources").value();
    ASSERT_TRUE(resources.isArray());
    ASSERT_FALSE(resources.asArray().empty());
    for (const ConfigValue &row : resources.asArray()) {
        EXPECT_TRUE(row.has("name"));
        EXPECT_TRUE(row.has("instances"));
        EXPECT_TRUE(row.has("ops"));
        EXPECT_TRUE(row.has("busy_cycles"));
        EXPECT_TRUE(row.has("stall_cycles"));
        EXPECT_TRUE(row.has("utilization"));
    }
}

// ----- budgeted DSE: closed-form proxy rung below event ---------------------

TEST(DsePerfEngineTest, SpecParsesEngineAndRejectsUnknown)
{
    auto spec = dseSpecFromText(
        "{\"model\": \"lenet5\", \"arch\": \"jain\", "
        "\"perf_engine\": \"event\", "
        "\"sweep\": {\"xb_size\": [[256, 64], [128, 128]]}}");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    EXPECT_EQ(spec.value().perf_engine, PerfEngineKind::kEvent);

    auto bad = dseSpecFromText(
        "{\"model\": \"lenet5\", \"arch\": \"jain\", "
        "\"perf_engine\": \"bogus\", "
        "\"sweep\": {\"xb_size\": [[256, 64]]}}");
    EXPECT_FALSE(bad.isOk());
}

TEST(DsePerfEngineTest, HalvingUsesClosedFormProxyBelowEvent)
{
    auto spec = dseSpecFromText(
        "{\"model\": \"lenet5\", \"arch\": \"jain\", "
        "\"perf_engine\": \"event\", \"threads\": 1, "
        "\"budget\": 3, "
        "\"sweep\": {\"xb_size\": [[256, 64], [128, 128], [64, 64]], "
        "\"core_grid\": [[2, 2], [4, 4]]}}");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    ArchExplorer explorer(spec.value());
    auto result = explorer.explore(nullptr);
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    EXPECT_EQ(result.value().perf_engine, PerfEngineKind::kEvent);
    EXPECT_EQ(result.value().full_evals, 3);
    EXPECT_GT(result.value().proxy_evals, 0);
    // The closed-form proxy rung prices candidates more optimistically
    // than the event engine's full evaluation: every promoted candidate
    // carries both metrics, and full (event) latency >= proxy latency.
    for (const DseCandidate &candidate : result.value().candidates) {
        if (!candidate.full_eval || !candidate.status.isOk())
            continue;
        EXPECT_TRUE(candidate.on_front || candidate.latency_cycles > 0);
        if (candidate.proxied)
            EXPECT_GE(candidate.latency_cycles,
                      candidate.proxy_latency_cycles);
    }
    const ConfigValue doc = result.value().toConfig();
    EXPECT_EQ(doc.getStringOr("perf_engine", ""), "event");
}

TEST(DsePerfEngineTest, SharedCacheKeepsEnginesApart)
{
    // One cache across an event sweep and a closed-form sweep of the
    // same space: the "+engine:event" key tag must keep the two result
    // sets from aliasing each other.
    const std::string sweep =
        "\"sweep\": {\"xb_size\": [[256, 64], [128, 128]]}";
    auto event_spec = dseSpecFromText(
        "{\"model\": \"mlp\", \"arch\": \"jain\", \"threads\": 1, "
        "\"perf_engine\": \"event\", "
        + sweep + "}");
    auto closed_spec = dseSpecFromText(
        "{\"model\": \"mlp\", \"arch\": \"jain\", \"threads\": 1, "
        + sweep + "}");
    ASSERT_TRUE(event_spec.isOk() && closed_spec.isOk());

    TuneCache cache;
    auto event_result = ArchExplorer(event_spec.value()).explore(&cache);
    auto shared_closed =
        ArchExplorer(closed_spec.value()).explore(&cache);
    auto fresh_closed =
        ArchExplorer(closed_spec.value()).explore(nullptr);
    ASSERT_TRUE(event_result.isOk() && shared_closed.isOk()
                && fresh_closed.isOk());

    ASSERT_EQ(shared_closed.value().candidates.size(),
              fresh_closed.value().candidates.size());
    for (std::size_t i = 0;
         i < shared_closed.value().candidates.size(); ++i) {
        const DseCandidate &shared = shared_closed.value().candidates[i];
        const DseCandidate &fresh = fresh_closed.value().candidates[i];
        const DseCandidate &event = event_result.value().candidates[i];
        EXPECT_EQ(shared.latency_cycles, fresh.latency_cycles);
        // The event engine prices the same candidate strictly higher
        // here (real data movement), so aliasing would be visible.
        if (shared.status.isOk() && event.status.isOk())
            EXPECT_NE(shared.latency_cycles, event.latency_cycles);
    }
}

} // namespace
} // namespace cimmlc
