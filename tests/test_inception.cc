/**
 * @file
 * Tests for branching-DAG workloads (GoogLeNet / inception): graph
 * structure, scheduling across all presets, and end-to-end bit-exact
 * functional verification of a concat-bearing flow — the one graph
 * topology the chain-style CNNs do not exercise.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "common/rng.h"
#include "funcsim/verify.h"
#include "graph/models.h"
#include "graph/serialize.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

TEST(InceptionTest, GooglenetStructure)
{
    const Graph g = models::googlenet();
    EXPECT_TRUE(g.validate().isOk());
    int concats = 0, convs = 0;
    for (const Node &n : g.nodes()) {
        concats += n.kind == OpKind::kConcat;
        convs += n.kind == OpKind::kConv2d;
    }
    EXPECT_EQ(concats, 9);  // nine inception modules
    EXPECT_EQ(convs, 3 + 9 * 6); // stem + six convs per module
    // GoogLeNet v1 is famously compact: ~6M weights.
    EXPECT_NEAR(static_cast<double>(g.totalWeights()), 6.0e6, 1.5e6);
}

TEST(InceptionTest, BranchOutputsConcatToExpectedChannels)
{
    const Graph g = models::googlenet();
    // Inception 3a concatenates 64 + 128 + 32 + 32 = 256 channels.
    for (const Node &n : g.nodes()) {
        if (n.kind == OpKind::kConcat && n.name == "i3a_concat") {
            EXPECT_EQ(g.tensor(n.output).dims[1], 256);
            return;
        }
    }
    FAIL() << "i3a_concat not found";
}

class InceptionScheduleTest : public testing::TestWithParam<std::string>
{
};

TEST_P(InceptionScheduleTest, SchedulesOnEveryPreset)
{
    const Graph g = models::googlenet();
    const CimArchitecture arch = presets::byName(GetParam()).value();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    EXPECT_GT(schedule.value().total_latency_cycles, 0.0);
    for (const Segment &segment : schedule.value().segments)
        EXPECT_LE(segment.cores_used, arch.chip.coreNumber());
}

INSTANTIATE_TEST_SUITE_P(Presets, InceptionScheduleTest,
                         testing::Values("isaac-baseline", "puma",
                                         "jia-isscc21"));

TEST(InceptionTest, ParallelBranchesPipelineTogether)
{
    // Branches of one module are independent stages; the pipeline must
    // not serialize them against each other more than the serial bound.
    const Graph g = models::googlenet();
    const CimArchitecture arch = presets::isaacBaseline();
    auto serial = scheduleGraph(g, arch, ScheduleOptions::none());
    auto pipe = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(serial.isOk() && pipe.isOk());
    EXPECT_LT(pipe.value().total_latency_cycles,
              serial.value().total_latency_cycles);
}

class InceptionVerifyTest : public testing::TestWithParam<ComputeMode>
{
};

TEST_P(InceptionVerifyTest, ToyBlockIsBitExact)
{
    Graph g = models::inceptionToy();
    Rng rng(21);
    g.randomizeWeights(rng);
    CimArchitecture arch = presets::tutorialTable2(GetParam());
    arch.chip.core_rows = 8;
    arch.xbar.rows = 64;
    arch.xbar.parallel_row = 16;
    Int8Tensor image(TensorShape({1, 4, 8, 8}));
    image.fillRandom(rng, -12, 12);
    auto report = verifyCompiledFlow(g, arch, ScheduleOptions::full(),
                                     {{g.inputs()[0], image}});
    ASSERT_TRUE(report.isOk()) << report.status().toString();
    EXPECT_TRUE(report.value().match) << report.value().first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Modes, InceptionVerifyTest,
                         testing::Values(ComputeMode::kCM,
                                         ComputeMode::kXBM,
                                         ComputeMode::kWLM));

TEST(InceptionTest, SerializationRoundTrip)
{
    const Graph original = models::googlenet();
    auto restored = graphFromConfig(graphToConfig(original));
    ASSERT_TRUE(restored.isOk()) << restored.status().toString();
    EXPECT_EQ(restored.value().totalWeights(), original.totalWeights());
    EXPECT_EQ(restored.value().totalMacs(), original.totalMacs());
}

} // namespace
} // namespace cimmlc
