/**
 * @file
 * Tests for the MVM-grained (Equation 1, staggered pipeline) and
 * VVM-grained (row remapping) optimization levels, including the
 * Section 3.4 walkthrough numbers.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "graph/models.h"
#include "sched/cg.h"
#include "sched/mvm.h"
#include "sched/multi_level.h"
#include "sched/vvm.h"

namespace cimmlc {
namespace {

// ----- Equation (1) ----------------------------------------------------------

TEST(Eq1Test, PaperWalkthroughTwoToFour)
{
    // Table 2 chip: 2 crossbars per core, operator needs 1 VXB, CG gave
    // D = 2 on 1 core each -> D' = floor(1 * 2 * 2 / 1) = 4.
    EXPECT_EQ(mvmDuplicationUpdate(1, 2, 2, 1), 4);
}

TEST(Eq1Test, ExactFitStaysPut)
{
    // Operator exactly fills its cores: 36 cores x 16 slots = 576 VXBs.
    EXPECT_EQ(mvmDuplicationUpdate(36, 1, 16, 576), 1);
}

TEST(Eq1Test, RoundingSlackRecovered)
{
    // 10 VXBs in a 16-slot core: D' = floor(1 * 1 * 16 / 10) = 1;
    // with D=2 over 2 cores: floor(1 * 2 * 16 / 10) = 3.
    EXPECT_EQ(mvmDuplicationUpdate(1, 1, 16, 10), 1);
    EXPECT_EQ(mvmDuplicationUpdate(1, 2, 16, 10), 3);
}

TEST(Eq1Test, NeverDecreases)
{
    for (std::int64_t vxbs = 1; vxbs <= 40; ++vxbs) {
        for (std::int64_t d = 1; d <= 4; ++d) {
            const std::int64_t cores = (vxbs + 15) / 16;
            EXPECT_GE(mvmDuplicationUpdate(cores, d, 16, vxbs), d);
        }
    }
}

// ----- VVM spread choice -------------------------------------------------------

TEST(VvmSpreadTest, SingleGroupNeedsNoRemap)
{
    const VvmDecision d = chooseVvmSpread(8, 16, 4, 8);
    EXPECT_EQ(d.row_groups, 1);
    EXPECT_EQ(d.spread, 1);
    EXPECT_EQ(d.remapped_groups, 1);
}

TEST(VvmSpreadTest, SpareArraysEnableSpread)
{
    // 32 rows at parallel_row 16 -> 2 groups; 1 used, 1 spare array.
    const VvmDecision d = chooseVvmSpread(32, 16, 1, 2);
    EXPECT_EQ(d.row_groups, 2);
    EXPECT_EQ(d.spread, 2);
    EXPECT_EQ(d.remapped_groups, 1);
}

TEST(VvmSpreadTest, SpreadBoundedByGroups)
{
    // Plenty of spares but only 2 groups: spread capped at 2.
    const VvmDecision d = chooseVvmSpread(32, 16, 1, 10);
    EXPECT_EQ(d.spread, 2);
}

TEST(VvmSpreadTest, NoSpareNoSpread)
{
    const VvmDecision d = chooseVvmSpread(128, 8, 16, 16);
    EXPECT_EQ(d.row_groups, 16);
    EXPECT_EQ(d.spread, 1);
    EXPECT_EQ(d.remapped_groups, 16);
}

// ----- level composition over real schedules -------------------------------------

class LevelMonotonicityTest : public testing::TestWithParam<std::string>
{
};

TEST_P(LevelMonotonicityTest, DeeperLevelsNeverSlowDown)
{
    const Graph g = models::byName(GetParam());
    const CimArchitecture arch = presets::isaacBaseline();
    auto cg = scheduleGraph(g, arch, ScheduleOptions::cgOnly());
    auto mvm = scheduleGraph(g, arch, ScheduleOptions::cgMvm());
    auto full = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(cg.isOk() && mvm.isOk() && full.isOk());
    EXPECT_LE(mvm.value().total_latency_cycles,
              cg.value().total_latency_cycles * 1.0001);
    EXPECT_LE(full.value().total_latency_cycles,
              mvm.value().total_latency_cycles * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Models, LevelMonotonicityTest,
                         testing::Values("resnet18", "resnet50",
                                         "vgg11", "vit_tiny",
                                         "lenet5"));

TEST(MvmTest, StaggeringReducesPeakActivation)
{
    const Graph g = models::resnet50();
    const CimArchitecture arch = presets::isaacBaseline();
    ScheduleOptions no_stagger = ScheduleOptions::cgMvm();
    no_stagger.mvm_pipeline = false;
    auto all_at_once = scheduleGraph(g, arch, no_stagger);
    auto staggered =
        scheduleGraph(g, arch, ScheduleOptions::cgMvm());
    ASSERT_TRUE(all_at_once.isOk() && staggered.isOk());
    EXPECT_LT(staggered.value().peak_active_xbs,
              all_at_once.value().peak_active_xbs);
}

TEST(MvmTest, TutorialDuplicationReachesFour)
{
    const Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    const OperatorMapping &conv = schedule.value().ops.at(1);
    EXPECT_EQ(conv.duplication, 2);
    EXPECT_EQ(conv.mvm_duplication, 4);
}

TEST(VvmTest, TutorialRemapUsesSpreadTwo)
{
    const Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    const OperatorMapping &conv = schedule.value().ops.at(1);
    // The Figure 16(e) walkthrough: replicas traded for a 2-way remap,
    // halving per-window row groups.
    EXPECT_GE(conv.vvm_spread, 2);
    EXPECT_DOUBLE_EQ(conv.cycles_per_window, 1.0);
}

TEST(VvmTest, RemapNoopWhenFullParallelRows)
{
    const Graph g = models::convReluToy();
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kWLM);
    arch.xbar.parallel_row = arch.xbar.rows;
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    const OperatorMapping &conv = schedule.value().ops.at(1);
    EXPECT_DOUBLE_EQ(conv.cycles_per_window, 1.0);
}

TEST(VvmTest, SmallerParallelRowBenefitsMoreFromRemap)
{
    const Graph g = models::vitTiny();
    double recovery_at_32 = 0.0;
    double recovery_at_8 = 0.0;
    for (std::int64_t rows : {32, 8}) {
        CimArchitecture arch = presets::isaacBaseline();
        arch.xbar.cols = 256;
        arch.xbar.parallel_row = rows;
        ScheduleOptions mvm_only = ScheduleOptions::cgMvm();
        auto mvm = scheduleGraph(g, arch, mvm_only);
        auto full = scheduleGraph(g, arch, ScheduleOptions::full());
        ASSERT_TRUE(mvm.isOk() && full.isOk());
        const double recovery = mvm.value().total_latency_cycles /
                                full.value().total_latency_cycles;
        (rows == 32 ? recovery_at_32 : recovery_at_8) = recovery;
    }
    // The paper reports ~20% recovery at parallel_row 8; the remap must
    // pay off clearly at both settings (exact monotonicity is broken by
    // ceil effects in the group math).
    EXPECT_GT(recovery_at_8, 1.1);
    EXPECT_GT(recovery_at_32, 1.0);
}

} // namespace
} // namespace cimmlc
