/**
 * @file
 * Tests for the staged compilation-session API: CompileRequest
 * validation, stage planning (stop_after, requested outputs), the
 * observer hook, artifact completeness, the kvjson report round-trip,
 * and equivalence with the deprecated CimCompiler shim.
 */
#include <gtest/gtest.h>

#include <vector>

#include "arch/presets.h"
#include "common/config.h"
#include "common/version.h"
#include "compiler/compiler.h"
#include "compiler/session.h"
#include "graph/models.h"

namespace cimmlc {
namespace {

CompileRequest
borrowedRequest(const Graph &graph, const CimArchitecture &arch)
{
    CompileRequest request;
    request.graph = &graph;
    request.arch_ref = &arch;
    request.threads = 1;
    return request;
}

// ----- CompileRequest validation -----------------------------------------

TEST(CompileRequestTest, RejectsMissingWorkloadSource)
{
    CompileRequest request;
    const Status status = request.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("no workload source"),
              std::string::npos);
}

TEST(CompileRequestTest, RejectsConflictingWorkloadSources)
{
    CompileRequest request;
    request.model = "lenet5";
    request.model_file = "net.json";
    const Status status = request.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("conflicting workload sources"),
              std::string::npos);
    // The message names the offenders.
    EXPECT_NE(status.message().find("model_file"), std::string::npos);
}

TEST(CompileRequestTest, RejectsBorrowedGraphPlusNamedModel)
{
    const Graph graph = models::convReluToy();
    CompileRequest request;
    request.graph = &graph;
    request.model = "lenet5";
    EXPECT_FALSE(request.validate().isOk());
}

TEST(CompileRequestTest, RejectsConflictingArchSources)
{
    CompileRequest request;
    request.model = "lenet5";
    request.arch = "isaac-baseline";
    request.arch_file = "chip.json";
    const Status status = request.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("conflicting architecture sources"),
              std::string::npos);
}

TEST(CompileRequestTest, RejectsUnknownOptLevel)
{
    CompileRequest request;
    request.model = "lenet5";
    request.opt = "turbo";
    EXPECT_FALSE(request.validate().isOk());
    // An explicit ScheduleOptions makes the opt name irrelevant.
    request.options = ScheduleOptions::full();
    EXPECT_TRUE(request.validate().isOk());
}

TEST(CompileRequestTest, RejectsNegativeThreadsAndFlowLimit)
{
    CompileRequest request;
    request.model = "lenet5";
    request.threads = -1;
    EXPECT_FALSE(request.validate().isOk());
    request.threads = 0;
    request.outputs.flow_limit = -5;
    EXPECT_FALSE(request.validate().isOk());
}

TEST(CompileRequestTest, DefaultRequestWithModelIsValid)
{
    CompileRequest request;
    request.model = "lenet5";
    EXPECT_TRUE(request.validate().isOk());
}

// ----- stage planning ------------------------------------------------------

TEST(CompilerSessionTest, RunProducesAllArtifactsAndStageTraces)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch = presets::isaacBaseline();
    CompilerSession session(borrowedRequest(graph, arch));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const CompileArtifacts &artifacts = result.value();

    EXPECT_EQ(artifacts.workload, graph.name());
    EXPECT_EQ(artifacts.nodes,
              static_cast<std::int64_t>(graph.nodeCount()));
    EXPECT_EQ(artifacts.weights, graph.totalWeights());
    EXPECT_EQ(artifacts.arch_name, arch.name);

    ASSERT_TRUE(artifacts.schedule.has_value());
    ASSERT_TRUE(artifacts.code.has_value());
    ASSERT_TRUE(artifacts.perf.has_value());
    EXPECT_FALSE(artifacts.verify.has_value());
    EXPECT_FALSE(artifacts.tuned);
    EXPECT_GT(artifacts.flowStatements(), 0);

    const std::vector<CompileStage> expected = {
        CompileStage::kLoad, CompileStage::kValidate,
        CompileStage::kSchedule, CompileStage::kCodegen,
        CompileStage::kPerf};
    ASSERT_EQ(artifacts.stages.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(artifacts.stages[i].stage, expected[i]);
        EXPECT_TRUE(artifacts.stages[i].status.isOk());
        EXPECT_GE(artifacts.stages[i].wall_ms, 0.0);
        EXPECT_FALSE(artifacts.stages[i].detail.empty());
    }
}

TEST(CompilerSessionTest, StopAfterScheduleSubsumesScheduleOnly)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch = presets::isaacBaseline();
    CompileRequest request = borrowedRequest(graph, arch);
    request.stop_after = CompileStage::kSchedule;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_TRUE(result.value().schedule.has_value());
    EXPECT_FALSE(result.value().code.has_value());
    EXPECT_FALSE(result.value().perf.has_value());
    EXPECT_EQ(result.value().stages.back().stage,
              CompileStage::kSchedule);
}

TEST(CompilerSessionTest, FlowDisabledSkipsCodegenButKeepsPerf)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch = presets::isaacBaseline();
    CompileRequest request = borrowedRequest(graph, arch);
    request.outputs.flow = false;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result.value().code.has_value());
    ASSERT_TRUE(result.value().perf.has_value());
    EXPECT_GT(result.value().perf->latency_cycles, 0.0);
    for (const StageTrace &trace : result.value().stages)
        EXPECT_NE(trace.stage, CompileStage::kCodegen);
}

TEST(CompilerSessionTest, RequestedReportsAreMaterialized)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch = presets::isaacBaseline();
    CompileRequest request = borrowedRequest(graph, arch);
    request.outputs.schedule_report = true;
    request.outputs.flow_text = true;
    request.outputs.flow_limit = 8;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result.value().schedule_report.empty());
    EXPECT_FALSE(result.value().flow_text.empty());
}

TEST(CompilerSessionTest, ObserverSeesStagesInOrder)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch = presets::isaacBaseline();
    CompilerSession session(borrowedRequest(graph, arch));
    std::vector<CompileStage> seen;
    session.setObserver(
        [&seen](const StageTrace &trace, const CompileArtifacts &) {
            seen.push_back(trace.stage);
        });
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    ASSERT_EQ(seen.size(), result.value().stages.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], result.value().stages[i].stage);
}

// ----- workload / architecture resolution ---------------------------------

TEST(CompilerSessionTest, LoadsModelAndArchByPresetName)
{
    CompileRequest request;
    request.model = "conv_relu_toy";
    request.arch = "tutorial";
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().workload, "conv_relu_toy");
}

TEST(CompilerSessionTest, UnknownModelFailsAtLoadWithNotFound)
{
    CompileRequest request;
    request.model = "resnet9000";
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    EXPECT_NE(result.status().message().find("load"), std::string::npos);
}

TEST(CompilerSessionTest, InlineModelTextLoads)
{
    CompileRequest request;
    request.model_text = R"({
        "name": "inline_toy",
        "inputs": [{"name": "x", "dims": [1, 16]}],
        "nodes": [{"op": "linear", "name": "fc", "inputs": ["x"],
                   "out_features": 4}],
        "outputs": ["fc"]
    })";
    request.arch = "tutorial";
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().workload, "inline_toy");
}

TEST(CompilerSessionTest, EmptyArchDefaultsToIsaacBaseline)
{
    CompileRequest request;
    request.model = "conv_relu_toy";
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().arch_name, "isaac-baseline");
}

// ----- tuning / verification stages ---------------------------------------

TEST(CompilerSessionTest, TuneStageSelectsTunedOptions)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    CompileRequest request = borrowedRequest(graph, arch);
    request.tune = true;
    request.objective = TuneObjective::kEdp;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().tuned);
    ASSERT_TRUE(result.value().tune.has_value());
    EXPECT_EQ(result.value().tune->objective, TuneObjective::kEdp);
    EXPECT_EQ(result.value().options.toString(),
              result.value().tune->best().options.toString());
}

TEST(CompilerSessionTest, VerifyStageReportsBitExactMatch)
{
    const Graph graph = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    CompileRequest request = borrowedRequest(graph, arch);
    request.outputs.verify = true;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_TRUE(result.value().verify.has_value());
    EXPECT_TRUE(result.value().verify->match);
    EXPECT_GT(result.value().verify->elements_checked, 0);
    EXPECT_EQ(result.value().stages.back().stage, CompileStage::kVerify);
}

// ----- kvjson report -------------------------------------------------------

TEST(CompilerSessionTest, ReportRoundTripsThroughKvjsonReader)
{
    const Graph graph = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();
    CompilerSession session(borrowedRequest(graph, arch));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    const CompileArtifacts &artifacts = result.value();

    const std::string dumped = artifacts.toConfig().dump(true);
    auto parsed = parseConfig(dumped);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const ConfigValue &doc = parsed.value();

    EXPECT_EQ(doc.getStringOr("schema", ""), "cimmlc.report.v1");
    auto perf = doc.get("perf");
    ASSERT_TRUE(perf.isOk());
    // %.17g round-trips doubles exactly: the parsed latency must be
    // bit-identical to the in-memory perf report, not approximately so.
    EXPECT_EQ(perf.value().getNumberOr("latency_cycles", -1.0),
              artifacts.perf->latency_cycles);
    auto energy = perf.value().get("energy");
    ASSERT_TRUE(energy.isOk());
    EXPECT_EQ(energy.value().getNumberOr("total_pj", -1.0),
              artifacts.perf->energy.total());
    EXPECT_EQ(perf.value().getStringOr("text", ""),
              artifacts.perf->toString());

    auto stages = doc.get("stages");
    ASSERT_TRUE(stages.isOk());
    ASSERT_TRUE(stages.value().isArray());
    EXPECT_EQ(stages.value().asArray().size(), artifacts.stages.size());
    EXPECT_EQ(stages.value().asArray()[0].getStringOr("stage", ""),
              "load");

    auto flow = doc.get("flow");
    ASSERT_TRUE(flow.isOk());
    EXPECT_EQ(flow.value().getIntOr("statements", -1),
              artifacts.flowStatements());
}

TEST(CompilerSessionTest, ReportCarriesTheCompilerVersion)
{
    CompileRequest request;
    request.model = "conv_relu_toy";
    request.arch = "tutorial";
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk());
    // The version key lets a daemon client detect skew between the
    // serving binary and its own; it must match this process's.
    EXPECT_EQ(result.value().toConfig().getStringOr("compiler_version",
                                                    ""),
              cimmlcVersion());
}

TEST(CompilerSessionTest, CancelCheckAbortsAtStageBoundary)
{
    CompileRequest request;
    request.model = "conv_relu_toy";
    request.arch = "tutorial";
    CompilerSession session(std::move(request));
    int polls = 0;
    // Cancel before the third stage: load and validate run, the rest
    // never start (the daemon wires this to client disconnect).
    session.setCancelCheck([&polls] { return ++polls >= 3; });
    std::vector<CompileStage> seen;
    session.setObserver(
        [&seen](const StageTrace &trace, const CompileArtifacts &) {
            seen.push_back(trace.stage);
        });
    auto result = session.run();
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().message().find("canceled"),
              std::string::npos);
    EXPECT_EQ(seen, (std::vector<CompileStage>{CompileStage::kLoad,
                                               CompileStage::kValidate}));
}

TEST(CompilerSessionTest, UntriggeredCancelCheckDoesNotPerturb)
{
    CompileRequest request;
    request.model = "conv_relu_toy";
    request.arch = "tutorial";
    CompilerSession session(std::move(request));
    session.setCancelCheck([] { return false; });
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().perf.has_value());
}

// ----- lint stage ----------------------------------------------------------

TEST(CompileRequestTest, LintStrictRequiresLintAndFlow)
{
    CompileRequest strict_only;
    strict_only.model = "lenet5";
    strict_only.lint_strict = true;
    EXPECT_FALSE(strict_only.validate().isOk());

    CompileRequest no_flow;
    no_flow.model = "lenet5";
    no_flow.lint = true;
    no_flow.outputs.flow = false;
    EXPECT_FALSE(no_flow.validate().isOk());
}

TEST(CompilerSessionTest, LintStageProducesArtifactsTraceAndReport)
{
    const Graph graph = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();
    CompileRequest request = borrowedRequest(graph, arch);
    request.lint = true;
    request.lint_strict = true;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const CompileArtifacts &artifacts = result.value();

    ASSERT_TRUE(artifacts.lint.has_value());
    EXPECT_TRUE(artifacts.lint->clean()) << artifacts.lint->table();
    EXPECT_GT(artifacts.lint->statements, 0);
    EXPECT_GT(artifacts.lint->crossbars_programmed, 0);

    // The stage trace carries the mopcheck summary line.
    bool saw_lint = false;
    for (const StageTrace &trace : artifacts.stages) {
        if (trace.stage != CompileStage::kLint)
            continue;
        saw_lint = true;
        EXPECT_TRUE(trace.status.isOk());
        EXPECT_NE(trace.detail.find("mopcheck"), std::string::npos);
    }
    EXPECT_TRUE(saw_lint);

    // report.v1 gains a "lint" section with counters + diagnostics.
    auto parsed = parseConfig(artifacts.toConfig().dump(true));
    ASSERT_TRUE(parsed.isOk());
    auto lint = parsed.value().get("lint");
    ASSERT_TRUE(lint.isOk()) << "report has no lint section";
    EXPECT_EQ(lint.value().getIntOr("errors", -1), 0);
    EXPECT_EQ(lint.value().getIntOr("warnings", -1), 0);
    EXPECT_EQ(lint.value().getIntOr("statements", -1),
              artifacts.lint->statements);
    auto diags = lint.value().get("diagnostics");
    ASSERT_TRUE(diags.isOk());
    EXPECT_TRUE(diags.value().isArray());
}

TEST(CompilerSessionTest, LintStrictFailsOnUncompilableScratchpad)
{
    const Graph graph = models::lenet5();
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kWLM);
    arch.core.l1_size_kib = 0.015625; // 4 elements: nothing fits
    CompileRequest request = borrowedRequest(graph, arch);
    request.lint = true;
    request.lint_strict = true;
    CompilerSession session(std::move(request));
    auto result = session.run();
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("mopcheck"),
              std::string::npos)
        << result.status().toString();

    // Without strict mode the same findings are reported, not fatal.
    CompileRequest advisory = borrowedRequest(graph, arch);
    advisory.lint = true;
    CompilerSession relaxed(std::move(advisory));
    auto soft = relaxed.run();
    ASSERT_TRUE(soft.isOk()) << soft.status().toString();
    ASSERT_TRUE(soft.value().lint.has_value());
    EXPECT_GT(soft.value().lint->errors(), 0);
}

// ----- stage naming --------------------------------------------------------

TEST(CompileStageTest, NamesRoundTrip)
{
    for (CompileStage stage :
         {CompileStage::kLoad, CompileStage::kValidate, CompileStage::kTune,
          CompileStage::kSchedule, CompileStage::kCodegen,
          CompileStage::kPerf, CompileStage::kVerify}) {
        auto parsed = parseCompileStage(compileStageName(stage));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value(), stage);
    }
    EXPECT_FALSE(parseCompileStage("link").isOk());
}

// ----- deprecated shim -----------------------------------------------------

TEST(CompilerSessionTest, CimCompilerShimMatchesSessionBitForBit)
{
    const Graph graph = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();

    CimCompiler compiler(arch);
    auto legacy = compiler.compile(graph);
    ASSERT_TRUE(legacy.isOk());

    CompilerSession session(borrowedRequest(graph, arch));
    auto staged = session.run();
    ASSERT_TRUE(staged.isOk());

    EXPECT_EQ(legacy.value().perf.latency_cycles,
              staged.value().perf->latency_cycles);
    EXPECT_EQ(legacy.value().perf.energy.total(),
              staged.value().perf->energy.total());
    EXPECT_EQ(legacy.value().schedule.total_latency_cycles,
              staged.value().schedule->total_latency_cycles);
    EXPECT_EQ(legacy.value().code.program.counts().total(),
              staged.value().code->program.counts().total());
}

} // namespace
} // namespace cimmlc
