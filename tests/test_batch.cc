/**
 * @file
 * Tests for the batch compilation driver: sweep parsing, cross-product
 * validation, per-job error isolation, and — the property the parallel
 * driver stands on — byte-identical results between the serial loop and
 * the concurrent run.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/batch.h"

namespace cimmlc {
namespace {

std::vector<BatchJob>
smokeJobs()
{
    auto jobs = BatchCompiler::crossProduct(
        {"mlp", "lenet5", "conv_relu_toy", "macro_cnn"},
        {"isaac", "puma", "jia"});
    EXPECT_TRUE(jobs.isOk()) << jobs.status().toString();
    return jobs.value();
}

// ----- crossProduct ------------------------------------------------------

TEST(BatchCompilerTest, CrossProductEnumeratesModelsTimesArchs)
{
    const std::vector<BatchJob> jobs = smokeJobs();
    ASSERT_EQ(jobs.size(), 12u);
    EXPECT_EQ(jobs[0].model, "mlp");
    EXPECT_EQ(jobs[0].arch, "isaac");
    EXPECT_EQ(jobs[11].model, "macro_cnn");
    EXPECT_EQ(jobs[11].arch, "jia");
}

TEST(BatchCompilerTest, CrossProductRejectsUnknownModel)
{
    auto jobs = BatchCompiler::crossProduct({"resnet9000"}, {"isaac"});
    ASSERT_FALSE(jobs.isOk());
    EXPECT_EQ(jobs.status().code(), StatusCode::kNotFound);
}

TEST(BatchCompilerTest, CrossProductRejectsUnknownArch)
{
    auto jobs = BatchCompiler::crossProduct({"mlp"}, {"tpu"});
    ASSERT_FALSE(jobs.isOk());
    EXPECT_EQ(jobs.status().code(), StatusCode::kNotFound);
}

TEST(BatchCompilerTest, CrossProductRejectsEmptyAxes)
{
    EXPECT_FALSE(BatchCompiler::crossProduct({}, {"isaac"}).isOk());
    EXPECT_FALSE(BatchCompiler::crossProduct({"mlp"}, {}).isOk());
}

// ----- run ---------------------------------------------------------------

TEST(BatchCompilerTest, EmptyJobListIsAnError)
{
    const BatchCompiler batch;
    EXPECT_FALSE(batch.run({}).isOk());
}

TEST(BatchCompilerTest, SerialRunCompilesEveryJob)
{
    const BatchCompiler batch(ScheduleOptions::full(), /*threads=*/1);
    auto result = batch.run(smokeJobs());
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().entries.size(), 12u);
    EXPECT_EQ(result.value().okCount(), 12);
    for (const BatchEntry &entry : result.value().entries) {
        EXPECT_TRUE(entry.status.isOk()) << entry.status.toString();
        EXPECT_GT(entry.perf.latency_cycles, 0.0);
        EXPECT_GT(entry.flow_statements, 0);
        EXPECT_GT(entry.nodes, 0);
    }
}

TEST(BatchCompilerTest, ParallelRunMatchesSerialByteForByte)
{
    const std::vector<BatchJob> jobs = smokeJobs();
    const BatchCompiler serial(ScheduleOptions::full(), /*threads=*/1);
    const BatchCompiler parallel(ScheduleOptions::full(), /*threads=*/4);

    auto serial_result = serial.run(jobs);
    auto parallel_result = parallel.run(jobs);
    ASSERT_TRUE(serial_result.isOk());
    ASSERT_TRUE(parallel_result.isOk());

    // The rendered table is the user-visible artifact; identical tables
    // mean identical ordering, statuses, and every formatted metric.
    EXPECT_EQ(serial_result.value().table(),
              parallel_result.value().table());

    // Belt and braces: the raw numbers match exactly, not just their
    // 6-significant-digit formatting.
    ASSERT_EQ(serial_result.value().entries.size(),
              parallel_result.value().entries.size());
    for (std::size_t i = 0; i < serial_result.value().entries.size();
         ++i) {
        const BatchEntry &a = serial_result.value().entries[i];
        const BatchEntry &b = parallel_result.value().entries[i];
        EXPECT_EQ(a.job.model, b.job.model);
        EXPECT_EQ(a.job.arch, b.job.arch);
        EXPECT_EQ(a.perf.latency_cycles, b.perf.latency_cycles);
        EXPECT_EQ(a.perf.energy.total(), b.perf.energy.total());
        EXPECT_EQ(a.perf.avg_power_mw, b.perf.avg_power_mw);
        EXPECT_EQ(a.flow_statements, b.flow_statements);
    }
}

TEST(BatchCompilerTest, ParallelRunIsStableAcrossRepeats)
{
    const std::vector<BatchJob> jobs = smokeJobs();
    const BatchCompiler batch(ScheduleOptions::full(), /*threads=*/4);
    auto first = batch.run(jobs);
    auto second = batch.run(jobs);
    ASSERT_TRUE(first.isOk());
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(first.value().table(), second.value().table());
}

TEST(BatchCompilerTest, PerJobFailureDoesNotPoisonTheBatch)
{
    // A bad job (unknown architecture) must fail alone while its
    // neighbours succeed. (Capacity overflow cannot fail here: the
    // scheduler falls back to weight reloading, so every model/preset
    // pair compiles.)
    const std::vector<BatchJob> jobs = {
        {"mlp", "isaac"}, {"vgg7", "npu-9000"}, {"macro_cnn", "jain"}};
    const BatchCompiler batch(ScheduleOptions::full(), /*threads=*/2);
    auto result = batch.run(jobs);
    ASSERT_TRUE(result.isOk());
    ASSERT_EQ(result.value().entries.size(), 3u);
    EXPECT_TRUE(result.value().entries[0].status.isOk());
    EXPECT_FALSE(result.value().entries[1].status.isOk());
    EXPECT_TRUE(result.value().entries[2].status.isOk());
    EXPECT_EQ(result.value().okCount(), 2);
    // The failed row still renders (with its status) in the table.
    EXPECT_NE(result.value().table().find("vgg7"), std::string::npos);
}

TEST(BatchCompilerTest, UnknownModelInJobIsIsolated)
{
    const std::vector<BatchJob> jobs = {{"mlp", "isaac"},
                                        {"not_a_model", "isaac"}};
    const BatchCompiler batch(ScheduleOptions::full(), /*threads=*/2);
    auto result = batch.run(jobs);
    ASSERT_TRUE(result.isOk());
    EXPECT_TRUE(result.value().entries[0].status.isOk());
    EXPECT_EQ(result.value().entries[1].status.code(),
              StatusCode::kNotFound);
}

TEST(BatchCompilerTest, OptionsChangeTheSchedule)
{
    const std::vector<BatchJob> jobs = {{"lenet5", "isaac"}};
    const BatchCompiler full(ScheduleOptions::full(), 1);
    const BatchCompiler none(ScheduleOptions::none(), 1);
    auto full_result = full.run(jobs);
    auto none_result = none.run(jobs);
    ASSERT_TRUE(full_result.isOk());
    ASSERT_TRUE(none_result.isOk());
    // Unoptimized latency must be strictly worse.
    EXPECT_GT(none_result.value().entries[0].perf.latency_cycles,
              full_result.value().entries[0].perf.latency_cycles);
}

// ----- sweep parsing -----------------------------------------------------

TEST(SweepParseTest, ParsesFullSweep)
{
    auto sweep = sweepFromText(R"({
        "models": ["mlp", "lenet5"],  # comments are kvjson extensions
        "archs": ["isaac"],
        "opt": "cg",
        "threads": 3
    })");
    ASSERT_TRUE(sweep.isOk()) << sweep.status().toString();
    EXPECT_EQ(sweep.value().jobs.size(), 2u);
    EXPECT_EQ(sweep.value().threads, 3);
    EXPECT_FALSE(sweep.value().options.mvm_pipeline);
    EXPECT_TRUE(sweep.value().options.cg_pipeline);
}

TEST(SweepParseTest, DefaultsToFullOptAndAutoThreads)
{
    auto sweep = sweepFromText(
        R"({"models": ["mlp"], "archs": ["puma"]})");
    ASSERT_TRUE(sweep.isOk());
    EXPECT_EQ(sweep.value().threads, 0);
    EXPECT_TRUE(sweep.value().options.vvm_remap);
}

TEST(SweepParseTest, RejectsMissingOrEmptyAxes)
{
    EXPECT_FALSE(sweepFromText(R"({"archs": ["isaac"]})").isOk());
    EXPECT_FALSE(
        sweepFromText(R"({"models": [], "archs": ["isaac"]})").isOk());
    EXPECT_FALSE(
        sweepFromText(R"({"models": ["mlp"], "archs": [3]})").isOk());
}

TEST(SweepParseTest, RejectsBadOptAndThreads)
{
    EXPECT_FALSE(sweepFromText(
                     R"({"models": ["mlp"], "archs": ["isaac"],
                         "opt": "turbo"})")
                     .isOk());
    EXPECT_FALSE(sweepFromText(
                     R"({"models": ["mlp"], "archs": ["isaac"],
                         "threads": -2})")
                     .isOk());
}

TEST(SweepParseTest, RejectsUnknownNamesUpFront)
{
    auto sweep = sweepFromText(
        R"({"models": ["mlp", "alexnet"], "archs": ["isaac"]})");
    ASSERT_FALSE(sweep.isOk());
    EXPECT_EQ(sweep.status().code(), StatusCode::kNotFound);
}

TEST(SweepParseTest, MissingModelsKeyNamesTheKey)
{
    auto sweep = sweepFromText(R"({"archs": ["isaac"]})");
    ASSERT_FALSE(sweep.isOk());
    EXPECT_NE(sweep.status().message().find("models"),
              std::string::npos);
}

TEST(SweepParseTest, MissingArchsKeyNamesTheKey)
{
    auto sweep = sweepFromText(R"({"models": ["mlp"]})");
    ASSERT_FALSE(sweep.isOk());
    EXPECT_NE(sweep.status().message().find("archs"), std::string::npos);
}

TEST(SweepParseTest, RejectsBadObjective)
{
    auto sweep = sweepFromText(
        R"({"models": ["mlp"], "archs": ["isaac"],
            "tune": true, "objective": "throughput"})");
    ASSERT_FALSE(sweep.isOk());
    EXPECT_EQ(sweep.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(sweep.status().message().find("throughput"),
              std::string::npos);
}

TEST(SweepParseTest, RejectsNegativeThreads)
{
    auto sweep = sweepFromText(
        R"({"models": ["mlp"], "archs": ["isaac"], "threads": -1})");
    ASSERT_FALSE(sweep.isOk());
    EXPECT_EQ(sweep.status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepParseTest, NonObjectDocumentIsAParseError)
{
    EXPECT_FALSE(sweepFromText(R"(["mlp", "isaac"])").isOk());
}

} // namespace
} // namespace cimmlc
