/**
 * @file
 * Unit tests for the work-stealing thread pool behind the batch
 * compilation driver: completion of every submitted task, wait()
 * semantics, nested submission, load imbalance (stealing), and reuse
 * of one pool across generations of work.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/threadpool.h"

namespace cimmlc {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
    ThreadPool one(1);
    EXPECT_EQ(one.threadCount(), 1);
    ThreadPool four(4);
    EXPECT_EQ(four.threadCount(), 4);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, EachTaskRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(256);
    for (auto &hit : hits)
        hit.store(0);
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    pool.wait();
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
    SUCCEED();
}

TEST(ThreadPoolTest, PoolIsReusableAcrossGenerations)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPoolTest, TasksMaySubmitFurtherTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            count.fetch_add(1);
            for (int j = 0; j < 4; ++j)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPoolTest, UnevenWorkIsStolenAcrossWorkers)
{
    // All tasks land round-robin, but the long task pins one worker;
    // with stealing, the remaining short tasks still finish quickly.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::set<std::thread::id> seen_ids;
    std::mutex ids_mutex;
    pool.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    for (int i = 0; i < 64; ++i) {
        pool.submit([&count, &seen_ids, &ids_mutex] {
            std::lock_guard<std::mutex> lock(ids_mutex);
            seen_ids.insert(std::this_thread::get_id());
            count.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 64);
    // The 64 short tasks were seeded across all 4 deques; at least one
    // other worker must have executed some of them.
    EXPECT_GE(seen_ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork)
{
    // The daemon relies on this for shutdown: work still queued when
    // the pool dies must run to completion, not be dropped.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                count.fetch_add(1);
            });
        }
        // No wait(): destruction races a mostly-full queue.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsNestedSubmissions)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i) {
            pool.submit([&pool, &count] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                count.fetch_add(1);
                pool.submit([&count] { count.fetch_add(1); });
            });
        }
    }
    EXPECT_EQ(count.load(), 8 * 2);
}

TEST(ThreadPoolTest, WaitThenDestructionIsQuiescent)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), 64);
        // Nothing left: the destructor must not hang on an idle pool.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SingleThreadPoolCompletesEverything)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex order_mutex;
    for (int i = 0; i < 16; ++i) {
        pool.submit([&order, &order_mutex, i] {
            std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(i);
        });
    }
    pool.wait();
    ASSERT_EQ(order.size(), 16u);
}

} // namespace
} // namespace cimmlc
