/**
 * @file
 * Tests for cross-process sweep sharding: the I/N spec parser, the
 * index partition, shard-file envelope validation (schema, spec digest,
 * coverage), and — the property the subsystem stands on — a sharded
 * run's merge being byte-identical to the single-process sweep.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "compiler/shard.h"

namespace cimmlc {
namespace {

BatchSweep
smokeSweep()
{
    auto sweep = sweepFromText(R"({
      "models": ["mlp", "lenet5", "conv_relu_toy"],
      "archs": ["isaac", "puma"],
      "opt": "full",
      "threads": 1
    })");
    EXPECT_TRUE(sweep.isOk()) << sweep.status().toString();
    return sweep.value();
}

DseSpec
smokeDseSpec()
{
    auto spec = dseSpecFromText(R"({
      "model": "lenet5",
      "arch": "jain",
      "opt": "full",
      "threads": 1,
      "sweep": {
        "xb_size": [[128, 128], [64, 64]],
        "core_grid": {"log2": [1, 2]}
      }
    })");
    EXPECT_TRUE(spec.isOk()) << spec.status().toString();
    return spec.value();
}

/** Runs the sweep's shard @p shard of @p count and writes its file. */
std::string
runBatchShard(const BatchSweep &sweep, int index, int count)
{
    const ShardSpec shard{index, count};
    std::vector<std::size_t> owned;
    std::vector<BatchJob> slice;
    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        if (shard.owns(i)) {
            owned.push_back(i);
            slice.push_back(sweep.jobs[i]);
        }
    }
    BatchCompiler batch(sweep.options, 1);
    batch.setLint(sweep.lint, sweep.lint_strict);
    auto result = batch.run(slice);
    EXPECT_TRUE(result.isOk()) << result.status().toString();
    const std::string path = testing::TempDir() + "/cimmlc_shard_"
                             + std::to_string(::getpid()) + "_"
                             + std::to_string(index) + "of"
                             + std::to_string(count) + ".json";
    EXPECT_TRUE(saveConfigFile(path,
                               batchShardToConfig(sweep, shard, owned,
                                                  result.value().entries))
                    .isOk());
    return path;
}

// ----- parseShardSpec ----------------------------------------------------

TEST(ShardSpecTest, ParsesIndexSlashCount)
{
    auto shard = parseShardSpec("2/4");
    ASSERT_TRUE(shard.isOk());
    EXPECT_EQ(shard.value().index, 2);
    EXPECT_EQ(shard.value().count, 4);
    EXPECT_TRUE(shard.value().enabled());
    EXPECT_FALSE(parseShardSpec("0/1").value().enabled());
}

TEST(ShardSpecTest, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"", "3", "4/4", "5/4", "-1/4", "a/b", "1/0", "1/", "/4",
          "1/2/3", "1.5/4"}) {
        EXPECT_FALSE(parseShardSpec(bad).isOk())
            << "'" << bad << "' should not parse";
    }
}

TEST(ShardSpecTest, ShardsPartitionTheIndexSpace)
{
    const int count = 3;
    for (std::size_t index = 0; index < 20; ++index) {
        int owners = 0;
        for (int s = 0; s < count; ++s)
            if ((ShardSpec{s, count}).owns(index))
                ++owners;
        EXPECT_EQ(owners, 1) << "index " << index;
    }
}

// ----- batch sharding ----------------------------------------------------

TEST(BatchShardTest, TwoShardMergeIsByteIdenticalToSingleProcess)
{
    const BatchSweep sweep = smokeSweep();

    BatchCompiler batch(sweep.options, 1);
    batch.setLint(sweep.lint, sweep.lint_strict);
    auto single = batch.run(sweep.jobs);
    ASSERT_TRUE(single.isOk());

    const std::vector<std::string> paths = {runBatchShard(sweep, 0, 2),
                                            runBatchShard(sweep, 1, 2)};
    auto merged = mergeBatchShards(sweep, paths);
    ASSERT_TRUE(merged.isOk()) << merged.status().toString();
    EXPECT_EQ(merged.value().table(), single.value().table());
    EXPECT_EQ(merged.value().okCount(), single.value().okCount());
}

TEST(BatchShardTest, MergeRejectsDigestMismatch)
{
    const BatchSweep sweep = smokeSweep();
    const std::vector<std::string> paths = {runBatchShard(sweep, 0, 2),
                                            runBatchShard(sweep, 1, 2)};

    BatchSweep other = sweep;
    other.options = ScheduleOptions::none();
    auto merged = mergeBatchShards(other, paths);
    ASSERT_FALSE(merged.isOk());
    EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchShardTest, MergeRejectsIncompleteAndDuplicateCoverage)
{
    const BatchSweep sweep = smokeSweep();
    const std::string shard0 = runBatchShard(sweep, 0, 2);
    const std::string shard1 = runBatchShard(sweep, 1, 2);

    // One file of a two-shard run: the declared shard count disagrees
    // with the merge set.
    EXPECT_FALSE(mergeBatchShards(sweep, {shard0}).isOk());
    // The same shard twice.
    EXPECT_FALSE(mergeBatchShards(sweep, {shard0, shard0}).isOk());
    // The full set is fine.
    EXPECT_TRUE(mergeBatchShards(sweep, {shard1, shard0}).isOk());
}

TEST(BatchShardTest, MergeRejectsNonShardFiles)
{
    const BatchSweep sweep = smokeSweep();
    const std::string path =
        testing::TempDir() + "/cimmlc_not_a_shard.json";
    ConfigValue::Object doc;
    doc["schema"] = ConfigValue::makeString("cimmlc.report.v1");
    ASSERT_TRUE(
        saveConfigFile(path, ConfigValue::makeObject(std::move(doc)))
            .isOk());
    auto merged = mergeBatchShards(sweep, {path});
    ASSERT_FALSE(merged.isOk());
    EXPECT_EQ(merged.status().code(), StatusCode::kParseError);
}

// ----- arch-dse sharding -------------------------------------------------

TEST(DseShardTest, ShardingRequiresExhaustiveUntunedSpecs)
{
    DseSpec budgeted = smokeDseSpec();
    budgeted.budget.max_full_evals = 2;
    EXPECT_FALSE(validateDseSpecForSharding(budgeted).isOk());

    DseSpec tuned = smokeDseSpec();
    tuned.tune = true;
    EXPECT_FALSE(validateDseSpecForSharding(tuned).isOk());

    EXPECT_TRUE(validateDseSpecForSharding(smokeDseSpec()).isOk());
}

// Pins the exact diagnostic texts: the rejection must name the
// adaptive-search mechanism a shard cannot reproduce, so a spec author
// knows which key to drop instead of just that sharding "is not
// allowed".
TEST(DseShardTest, ShardingRejectionNamesTheAdaptiveMechanism)
{
    DseSpec budgeted = smokeDseSpec();
    budgeted.budget.max_full_evals = 2;
    const Status budget_status = validateDseSpecForSharding(budgeted);
    ASSERT_FALSE(budget_status.isOk());
    EXPECT_EQ(budget_status.message(),
              "arch-dse sharding requires an exhaustive spec: "
              "successive-halving promotion compares candidates across "
              "the whole sweep, which per-shard slices cannot reproduce "
              "(drop 'budget' / --search-budget)");

    DseSpec tuned = smokeDseSpec();
    tuned.tune = true;
    const Status tune_status = validateDseSpecForSharding(tuned);
    ASSERT_FALSE(tune_status.isOk());
    EXPECT_EQ(tune_status.message(),
              "arch-dse sharding requires an untuned spec: "
              "per-candidate tuning shares one memo across the sweep, "
              "so shard-local caches would change the reported hit "
              "accounting (drop 'tune')");

    // restrictToShard surfaces the same named reason.
    ArchExplorer explorer(std::move(tuned));
    EXPECT_EQ(explorer.restrictToShard(0, 2).message(),
              tune_status.message());
}

TEST(DseShardTest, ExplorerRejectsBadShardFilters)
{
    ArchExplorer explorer(smokeDseSpec());
    EXPECT_FALSE(explorer.restrictToShard(2, 2).isOk());
    EXPECT_FALSE(explorer.restrictToShard(-1, 2).isOk());
    EXPECT_TRUE(explorer.restrictToShard(1, 2).isOk());
}

TEST(DseShardTest, TwoShardMergeMatchesSingleProcessRun)
{
    const DseSpec spec = smokeDseSpec();
    // The single-process reference runs with a fresh memo, exactly like
    // the CLI does — the merged cache accounting must reproduce it.
    TuneCache cache;
    auto single = ArchExplorer(spec).explore(&cache);
    ASSERT_TRUE(single.isOk()) << single.status().toString();

    std::vector<std::string> paths;
    for (int s = 0; s < 2; ++s) {
        ArchExplorer explorer(spec);
        ASSERT_TRUE(explorer.restrictToShard(s, 2).isOk());
        auto partial = explorer.explore();
        ASSERT_TRUE(partial.isOk()) << partial.status().toString();
        const std::string path =
            testing::TempDir() + "/cimmlc_dse_shard_"
            + std::to_string(::getpid()) + "_" + std::to_string(s)
            + ".json";
        ASSERT_TRUE(saveConfigFile(
                        path, dseShardToConfig(spec, ShardSpec{s, 2},
                                               partial.value()))
                        .isOk());
        paths.push_back(path);
    }

    auto merged = mergeDseShards(spec, paths);
    ASSERT_TRUE(merged.isOk()) << merged.status().toString();
    // The whole record — table, summary, front, hit accounting — must
    // reproduce the single-process run byte for byte.
    EXPECT_EQ(merged.value().table(), single.value().table());
    EXPECT_EQ(merged.value().summary(), single.value().summary());
    EXPECT_EQ(merged.value().front, single.value().front);
    EXPECT_EQ(merged.value().cache_hits, single.value().cache_hits);
    EXPECT_EQ(merged.value().toConfig().dump(true),
              single.value().toConfig().dump(true));
}

TEST(DseShardTest, ShardSliceEvaluatesOnlyOwnedCandidates)
{
    const DseSpec spec = smokeDseSpec();
    ArchExplorer explorer(spec);
    ASSERT_TRUE(explorer.restrictToShard(0, 2).isOk());
    auto partial = explorer.explore();
    ASSERT_TRUE(partial.isOk());
    for (const DseCandidate &candidate : partial.value().candidates) {
        if (candidate.index % 2 != 0)
            EXPECT_FALSE(candidate.full_eval)
                << "candidate " << candidate.index
                << " belongs to the other shard";
    }
}

} // namespace
} // namespace cimmlc
