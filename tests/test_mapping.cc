/**
 * @file
 * Tests for the dimension-binding / VXB mapping structures (Figure 7).
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "sched/mapping.h"

namespace cimmlc {
namespace {

TEST(BindingTest, DefaultBindingsValidate)
{
    EXPECT_TRUE(DimensionBinding::bitsToColumns().validate().isOk());
    EXPECT_TRUE(DimensionBinding::bitsToCrossbars().validate().isOk());
}

TEST(BindingTest, IllegalBindingsRejected)
{
    DimensionBinding rows_to_cols;
    rows_to_cols.row_binding = XbarDim::kXBC;
    EXPECT_FALSE(rows_to_cols.validate().isOk());

    DimensionBinding bits_to_rows;
    bits_to_rows.bit_binding = XbarDim::kXBR;
    EXPECT_FALSE(bits_to_rows.validate().isOk());
}

TEST(BindingTest, DimNames)
{
    EXPECT_STREQ(xbarDimName(XbarDim::kXB), "XB");
    EXPECT_STREQ(xbarDimName(XbarDim::kXBR), "XBR");
    EXPECT_STREQ(xbarDimName(XbarDim::kXBC), "XBC");
}

TEST(VxbGridTest, SmallMatrixFitsOneCrossbar)
{
    // Table 2 walkthrough: 27x32 matrix on 32x128 arrays with 2-bit
    // cells — one crossbar holds it (32 logical columns of 4 cells).
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    const VxbGrid grid = computeVxbGrid({27, 32}, arch);
    EXPECT_EQ(grid.tiles_r, 1);
    EXPECT_EQ(grid.tiles_c, 1);
    EXPECT_EQ(grid.bit_planes, 1);
    EXPECT_EQ(grid.vxbCount(), 1);
    EXPECT_EQ(grid.physicalCrossbars(), 1);
    EXPECT_EQ(grid.rows_last_tile, 27);
    EXPECT_EQ(grid.cols_last_tile, 32);
}

TEST(VxbGridTest, LargeMatrixTiles)
{
    // ResNet stage-4 conv on the ISAAC baseline: 4608x512 on 128x128
    // arrays with 4 cells/weight -> 36 x 16 tiles.
    const CimArchitecture arch = presets::isaacBaseline();
    const VxbGrid grid = computeVxbGrid({4608, 512}, arch);
    EXPECT_EQ(grid.tiles_r, 36);
    EXPECT_EQ(grid.tiles_c, 16);
    EXPECT_EQ(grid.physicalCrossbars(), 576);
    EXPECT_EQ(grid.rows_last_tile, 128);
    EXPECT_EQ(grid.cols_last_tile, 32);
}

TEST(VxbGridTest, BitsToCrossbarsUsesBitPlanes)
{
    const CimArchitecture arch = presets::isaacBaseline(); // 4 cells/w
    const VxbGrid grid = computeVxbGrid(
        {128, 128}, arch, DimensionBinding::bitsToCrossbars());
    EXPECT_EQ(grid.bit_planes, 4);
    EXPECT_EQ(grid.tiles_r, 1);
    EXPECT_EQ(grid.tiles_c, 1); // full 128 columns per plane
    EXPECT_EQ(grid.physicalCrossbars(), 4);
}

TEST(VxbGridTest, PartialLastTileDimensions)
{
    const CimArchitecture arch = presets::isaacBaseline();
    const VxbGrid grid = computeVxbGrid({147, 64}, arch);
    EXPECT_EQ(grid.tiles_r, 2);
    EXPECT_EQ(grid.rows_last_tile, 19);
    EXPECT_EQ(grid.tiles_c, 2);
    EXPECT_EQ(grid.cols_last_tile, 32);
}

TEST(VxbGridTest, ToStringMentionsTiles)
{
    const CimArchitecture arch = presets::isaacBaseline();
    const std::string text =
        computeVxbGrid({256, 64}, arch).toString();
    EXPECT_NE(text.find("2x2 tiles"), std::string::npos);
}

TEST(CoreSlotsTest, MatchesXbNumber)
{
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_EQ(coreVxbSlots(arch), 16);
    EXPECT_EQ(coreVxbSlots(arch, DimensionBinding::bitsToCrossbars()),
              4); // 16 crossbars / 4 bit planes
}

TEST(CoresPerReplicaTest, CeilsOverCoreCapacity)
{
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_EQ(coresPerReplica(computeVxbGrid({4608, 512}, arch), arch),
              36); // 576 crossbars / 16 per core
    EXPECT_EQ(coresPerReplica(computeVxbGrid({27, 32}, arch), arch), 1);
}

TEST(CapacityTest, ChipWeightCapacity)
{
    const CimArchitecture arch = presets::isaacBaseline();
    // 128*128 cells / 4 cells-per-weight * 12288 crossbars.
    EXPECT_EQ(chipWeightCapacity(arch), 4096LL * 12288);
}

TEST(CapacityTest, JainMacroCapacityIsTiny)
{
    const CimArchitecture arch = presets::jainJssc21();
    // 256*64 cells, 8 cells per 8-bit weight (1-bit cells), 8 arrays.
    EXPECT_EQ(chipWeightCapacity(arch), 2048LL * 8);
}

} // namespace
} // namespace cimmlc
