/**
 * @file
 * Tests for the CimCompiler facade and the Table 1 capability probe.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "compiler/capability.h"
#include "compiler/compiler.h"
#include "graph/models.h"

namespace cimmlc {
namespace {

TEST(CompilerTest, CompileProducesAllArtifacts)
{
    CimCompiler compiler(presets::isaacBaseline());
    auto result = compiler.compile(models::resnet18());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const CompileResult &r = result.value();
    EXPECT_GT(r.schedule.total_latency_cycles, 0.0);
    EXPECT_GT(r.code.program.counts().total(), 0);
    EXPECT_FALSE(r.code.executable); // compressed by default
    EXPECT_GT(r.perf.energy.total(), 0.0);
}

TEST(CompilerTest, ScheduleOnlySkipsCodegen)
{
    CimCompiler compiler(presets::isaacBaseline());
    auto schedule = compiler.scheduleOnly(models::vgg16());
    ASSERT_TRUE(schedule.isOk());
    EXPECT_GT(schedule.value().total_latency_cycles, 0.0);
}

TEST(CompilerTest, OptionsSelectAblationLevel)
{
    CimCompiler compiler(presets::isaacBaseline(),
                         ScheduleOptions::none());
    auto slow = compiler.scheduleOnly(models::resnet18());
    compiler.setOptions(ScheduleOptions::full());
    auto fast = compiler.scheduleOnly(models::resnet18());
    ASSERT_TRUE(slow.isOk() && fast.isOk());
    EXPECT_LT(fast.value().total_latency_cycles,
              slow.value().total_latency_cycles);
}

TEST(CapabilityTest, PriorWorkRowsMatchTable1)
{
    const auto rows = priorWorkCapabilities();
    ASSERT_EQ(rows.size(), 5u);
    // PUMA: ReRAM only, MVM only.
    EXPECT_FALSE(rows[0].sram);
    EXPECT_TRUE(rows[0].reram);
    EXPECT_FALSE(rows[0].vvm);
    EXPECT_TRUE(rows[0].mvm);
    // OCC supports SRAM and VVM but not DNN-operator granularity.
    EXPECT_TRUE(rows[4].sram);
    EXPECT_TRUE(rows[4].vvm);
    EXPECT_FALSE(rows[4].dnn_operator);
}

TEST(CapabilityTest, ProbeDemonstratesFullGenerality)
{
    auto ours = probeCimMlc();
    ASSERT_TRUE(ours.isOk()) << ours.status().toString();
    EXPECT_TRUE(ours.value().sram);
    EXPECT_TRUE(ours.value().reram);
    EXPECT_TRUE(ours.value().misc);
    EXPECT_TRUE(ours.value().vvm);
    EXPECT_TRUE(ours.value().mvm);
    EXPECT_TRUE(ours.value().dnn_operator);
}

TEST(CapabilityTest, TableRendersAllRows)
{
    auto table = renderCapabilityTable();
    ASSERT_TRUE(table.isOk());
    EXPECT_NE(table.value().find("CIM-MLC (ours)"), std::string::npos);
    EXPECT_NE(table.value().find("PUMA"), std::string::npos);
    EXPECT_NE(table.value().find("Polyhedral"), std::string::npos);
}

} // namespace
} // namespace cimmlc
