/**
 * @file
 * Tests for the stage-level artifact cache: fingerprint hashing
 * determinism, bounded LRU eviction, per-stage hit/miss accounting, and
 * the kvjson stats snapshot.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/artifact_cache.h"
#include "common/logging.h"

namespace cimmlc {
namespace {

ArtifactCache::Entry
entry(int value)
{
    ArtifactCache::Entry e;
    e.value = std::make_shared<int>(value);
    e.detail = "v" + std::to_string(value);
    e.compute_ms = static_cast<double>(value);
    return e;
}

int
valueOf(const ArtifactCache::Entry &e)
{
    return *std::static_pointer_cast<const int>(e.value);
}

// ----- ArtifactHash ------------------------------------------------------

TEST(ArtifactHashTest, IsDeterministic)
{
    const std::string a =
        ArtifactHash().mix("graph").mix(std::int64_t{42}).mix(true)
            .mix(2.5).digest();
    const std::string b =
        ArtifactHash().mix("graph").mix(std::int64_t{42}).mix(true)
            .mix(2.5).digest();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 32u);
}

TEST(ArtifactHashTest, DistinguishesInputs)
{
    const std::string base = ArtifactHash().mix("graph").digest();
    EXPECT_NE(ArtifactHash().mix("grapi").digest(), base);
    EXPECT_NE(ArtifactHash().mix("graph").mix("x").digest(), base);
    // Length-prefixed mixing: ("ab", "c") must not alias ("a", "bc").
    EXPECT_NE(ArtifactHash().mix("ab").mix("c").digest(),
              ArtifactHash().mix("a").mix("bc").digest());
    EXPECT_NE(ArtifactHash().mix(1.0).digest(),
              ArtifactHash().mix(std::int64_t{1}).digest());
}

// ----- lookup / insert ---------------------------------------------------

TEST(ArtifactCacheTest, MissThenHit)
{
    ArtifactCache cache(4);
    EXPECT_FALSE(cache.lookup("perf", "k1").has_value());
    cache.insert("perf", "k1", entry(7));
    const auto found = cache.lookup("perf", "k1");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(valueOf(*found), 7);
    EXPECT_EQ(found->detail, "v7");
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ArtifactCacheTest, StageNamespacesKeys)
{
    ArtifactCache cache(4);
    cache.insert("schedule", "same-key", entry(1));
    cache.insert("codegen", "same-key", entry(2));
    EXPECT_EQ(valueOf(*cache.lookup("schedule", "same-key")), 1);
    EXPECT_EQ(valueOf(*cache.lookup("codegen", "same-key")), 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ArtifactCacheTest, InsertRefreshesExistingKey)
{
    ArtifactCache cache(4);
    cache.insert("perf", "k", entry(1));
    cache.insert("perf", "k", entry(2));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(valueOf(*cache.lookup("perf", "k")), 2);
    EXPECT_EQ(cache.evictions(), 0);
}

// ----- bounded LRU -------------------------------------------------------

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedAtCapacity)
{
    ArtifactCache cache(2);
    cache.insert("s", "a", entry(1));
    cache.insert("s", "b", entry(2));
    // Touch "a" so "b" becomes the eviction victim.
    EXPECT_TRUE(cache.lookup("s", "a").has_value());
    cache.insert("s", "c", entry(3));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_TRUE(cache.lookup("s", "a").has_value());
    EXPECT_FALSE(cache.lookup("s", "b").has_value());
    EXPECT_TRUE(cache.lookup("s", "c").has_value());
}

TEST(ArtifactCacheTest, CapacityIsNeverExceeded)
{
    ArtifactCache cache(3);
    for (int i = 0; i < 50; ++i)
        cache.insert("s", "k" + std::to_string(i), entry(i));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.capacity(), 3u);
    EXPECT_EQ(cache.evictions(), 47);
    // The three most recent inserts survive.
    EXPECT_TRUE(cache.lookup("s", "k49").has_value());
    EXPECT_TRUE(cache.lookup("s", "k48").has_value());
    EXPECT_TRUE(cache.lookup("s", "k47").has_value());
}

TEST(ArtifactCacheTest, ZeroCapacityClampsToOne)
{
    // The clamp is silent no more: a capacity-0 request cannot disable
    // the cache (one entry is its smallest size), and the constructor
    // says so instead of quietly substituting a different limit.
    const long warnings_before = Logger::warningCount();
    ArtifactCache cache(0);
    EXPECT_EQ(Logger::warningCount(), warnings_before + 1)
        << "capacity-0 clamp must emit a diagnostic";
    EXPECT_EQ(cache.capacity(), 1u);
    cache.insert("s", "a", entry(1));
    cache.insert("s", "b", entry(2));
    EXPECT_EQ(cache.size(), 1u);

    // Non-zero capacities construct quietly.
    const long warnings_mid = Logger::warningCount();
    ArtifactCache quiet(1);
    EXPECT_EQ(Logger::warningCount(), warnings_mid);
}

TEST(ArtifactCacheTest, ClearResetsEntriesButKeepsCounters)
{
    ArtifactCache cache(4);
    cache.insert("s", "a", entry(1));
    EXPECT_TRUE(cache.lookup("s", "a").has_value());
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup("s", "a").has_value());
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);
}

// ----- stats -------------------------------------------------------------

TEST(ArtifactCacheTest, ToConfigReportsPerStageCounters)
{
    ArtifactCache cache(8);
    cache.insert("schedule", "k", entry(1));
    cache.lookup("schedule", "k");  // hit
    cache.lookup("schedule", "x");  // miss
    cache.lookup("perf", "y");      // miss
    const ConfigValue doc = cache.toConfig();
    EXPECT_EQ(doc.getIntOr("capacity", 0), 8);
    EXPECT_EQ(doc.getIntOr("entries", 0), 1);
    EXPECT_EQ(doc.getIntOr("hits", 0), 1);
    EXPECT_EQ(doc.getIntOr("misses", 0), 2);
    ASSERT_TRUE(doc.has("stages"));
    const ConfigValue stages = doc.get("stages").value();
    ASSERT_TRUE(stages.has("schedule"));
    EXPECT_EQ(stages.get("schedule").value().getIntOr("hits", -1), 1);
    EXPECT_EQ(stages.get("schedule").value().getIntOr("misses", -1), 1);
    ASSERT_TRUE(stages.has("perf"));
    EXPECT_EQ(stages.get("perf").value().getIntOr("misses", -1), 1);
}

} // namespace
} // namespace cimmlc
