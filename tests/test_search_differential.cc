/**
 * @file
 * Differential lock-down of the budgeted search engine against the
 * exhaustive reference paths: for every preset workload x architecture
 * pair the pruned tuner must select the same best schedule the
 * exhaustive tuner selects (while never evaluating more points), the
 * halved ArchExplorer must report a Pareto front whose every point is
 * fully evaluated and identical to the exhaustive front, full-fidelity
 * evaluations must drop by >= 40% at a half-sweep budget, and every
 * budgeted report must be byte-identical across thread counts.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/presets.h"
#include "dse/arch_explorer.h"
#include "graph/models.h"
#include "sched/autotune.h"

namespace cimmlc {
namespace {

// Small enough to tune exhaustively twice per architecture while still
// covering conv/pool/fc mixes and every ComputeMode clamp.
const std::vector<std::string> kWorkloads = {"conv_relu_toy", "lenet5",
                                             "macro_cnn"};

SearchBudget
pruningOnly()
{
    // A cap far above the 256-point lattice: pruning decides alone,
    // the budget never truncates.
    SearchBudget budget;
    budget.max_full_evals = 100000;
    return budget;
}

// ----- tuner: pruned == exhaustive on every preset pair ------------------

TEST(SearchDifferentialTest, PrunedTunerSelectsTheExhaustiveBest)
{
    for (const std::string &model : kWorkloads) {
        const Graph graph = models::byName(model);
        for (const std::string &preset : presets::availablePresets()) {
            const CimArchitecture arch =
                presets::byName(preset).value();

            AutoTuneConfig exhaustive_config;
            exhaustive_config.threads = 1;
            auto exhaustive =
                AutoTuner(exhaustive_config).tune(graph, arch);
            ASSERT_TRUE(exhaustive.isOk())
                << model << " x " << preset << ": "
                << exhaustive.status().toString();

            AutoTuneConfig pruned_config;
            pruned_config.threads = 1;
            pruned_config.budget = pruningOnly();
            auto pruned = AutoTuner(pruned_config).tune(graph, arch);
            ASSERT_TRUE(pruned.isOk())
                << model << " x " << preset << ": "
                << pruned.status().toString();

            const TuneCandidate &want = exhaustive.value().best();
            const TuneCandidate &got = pruned.value().best();
            EXPECT_EQ(got.encoding, want.encoding)
                << model << " x " << preset << ": pruned best "
                << got.options.toString() << " != exhaustive best "
                << want.options.toString();
            EXPECT_EQ(got.latency_cycles, want.latency_cycles);
            EXPECT_EQ(got.energy_pj, want.energy_pj);

            // Pruning can only ever shrink the evaluated set.
            EXPECT_LE(pruned.value().evaluated_count,
                      exhaustive.value().evaluated_count)
                << model << " x " << preset;
            EXPECT_EQ(pruned.value().evaluated_count
                          + pruned.value().pruned_count,
                      static_cast<std::int64_t>(
                          pruned.value().candidates.size()));
            // Every skipped candidate carries its provenance.
            for (const TuneCandidate &candidate :
                 pruned.value().candidates) {
                if (candidate.pruned) {
                    EXPECT_FALSE(candidate.status.isOk());
                    EXPECT_NE(candidate.status.message().find("pruned"),
                              std::string::npos);
                }
            }
        }
    }
}

TEST(SearchDifferentialTest, BudgetCapBoundsTunerEvaluations)
{
    const Graph graph = models::byName("conv_relu_toy");
    const CimArchitecture arch =
        presets::byName("jia-isscc21").value(); // CM: 32 candidates
    AutoTuneConfig config;
    config.threads = 1;
    config.budget.max_full_evals = 8;
    auto result = AutoTuner(config).tune(graph, arch);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    // The cap is a hard ceiling: one slot inside it stays reserved for
    // the always-evaluated default configuration.
    EXPECT_LE(result.value().evaluated_count, 8);
    EXPECT_TRUE(result.value().defaults().status.isOk())
        << "the default configuration must stay evaluated under any "
           "budget";
    EXPECT_TRUE(result.value().best().status.isOk());
    EXPECT_FALSE(result.value().best().pruned);
}

TEST(SearchDifferentialTest, BudgetedTunerReportIsThreadCountInvariant)
{
    const Graph graph = models::byName("lenet5");
    const CimArchitecture arch =
        presets::byName("isaac-baseline").value();
    std::vector<std::string> renders;
    for (int threads : {1, 2, 8}) {
        AutoTuneConfig config;
        config.threads = threads;
        config.budget = pruningOnly();
        auto result = AutoTuner(config).tune(graph, arch);
        ASSERT_TRUE(result.isOk()) << result.status().toString();
        renders.push_back(result.value().table()
                          + result.value().summary());
    }
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

// ----- explorer: halved front == exhaustive front ------------------------

// The examples/dse_lenet5.json sweep (18 candidates) inlined so the
// test binary needs no source-tree path.
const char *kLenetSweep = R"({
    "model": "lenet5",
    "arch": "jain",
    "opt": "full",
    "objective": "latency",
    "threads": 1,
    "sweep": {
        "xb_size": [[256, 64], [128, 128], [64, 64]],
        "core_grid": {"log2": [1, 4]},
        "core_noc_bandwidth": [0, 128]
    }
})";

// A second spec over a different base/workload/axes mix.
const char *kMacroSweep = R"({
    "model": "macro_cnn",
    "arch": "jia",
    "opt": "cg",
    "objective": "edp",
    "threads": 1,
    "sweep": {
        "xb_size": [[64, 64], [128, 128]],
        "core_grid": {"log2": [1, 4]},
        "l1_bandwidth": [64, 256]
    }
})";

DseResult
explored(const std::string &spec_text, std::int64_t budget, int threads)
{
    auto spec = dseSpecFromText(spec_text);
    EXPECT_TRUE(spec.isOk()) << spec.status().toString();
    spec.value().threads = threads;
    spec.value().budget.max_full_evals = budget;
    TuneCache cache;
    auto result = ArchExplorer(spec.value()).explore(&cache);
    EXPECT_TRUE(result.isOk()) << result.status().toString();
    return std::move(result).value();
}

TEST(SearchDifferentialTest, HalvedExplorerFrontMatchesExhaustive)
{
    for (const char *spec_text : {kLenetSweep, kMacroSweep}) {
        const DseResult exhaustive = explored(spec_text, 0, 1);
        const std::int64_t half = exhaustive.full_evals / 2;
        const DseResult halved = explored(spec_text, half, 1);

        // The budgeted front is exactly the exhaustive front...
        EXPECT_EQ(halved.front, exhaustive.front);
        // ...every front point received full-fidelity evaluation...
        for (std::size_t index : halved.front) {
            EXPECT_TRUE(halved.candidates[index].full_eval);
            EXPECT_TRUE(halved.candidates[index].status.isOk());
            EXPECT_EQ(halved.candidates[index].latency_cycles,
                      exhaustive.candidates[index].latency_cycles);
            EXPECT_EQ(halved.candidates[index].energy_pj,
                      exhaustive.candidates[index].energy_pj);
        }
        // ...and full-fidelity work dropped by >= 40%.
        EXPECT_LE(halved.full_evals * 10, exhaustive.full_evals * 6)
            << "full evals " << halved.full_evals << " vs exhaustive "
            << exhaustive.full_evals;
        // Non-promoted candidates never claim the front.
        for (const DseCandidate &candidate : halved.candidates) {
            if (!candidate.full_eval)
                EXPECT_FALSE(candidate.on_front);
        }
    }
}

TEST(SearchDifferentialTest, BudgetedExplorerReportIsThreadCountInvariant)
{
    std::vector<std::string> renders;
    for (int threads : {1, 2, 8}) {
        const DseResult result = explored(kLenetSweep, 9, threads);
        renders.push_back(result.toConfig().dump(true) + result.table()
                          + result.summary());
    }
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

TEST(SearchDifferentialTest, ProxyCacheEntriesNeverPoisonFullRuns)
{
    // A warm cache carrying halving-rung proxy entries must leave a
    // later exhaustive run byte-identical to a cold one: the fidelity
    // tag keeps proxy and full fingerprints disjoint.
    auto spec = dseSpecFromText(kLenetSweep);
    ASSERT_TRUE(spec.isOk());
    spec.value().threads = 1;

    DseSpec budgeted = spec.value();
    budgeted.budget.max_full_evals = 9;
    TuneCache shared;
    auto halved = ArchExplorer(budgeted).explore(&shared);
    ASSERT_TRUE(halved.isOk());
    ASSERT_GT(shared.size(), 0u);

    auto warm = ArchExplorer(spec.value()).explore(&shared);
    ASSERT_TRUE(warm.isOk());
    TuneCache cold_cache;
    auto cold = ArchExplorer(spec.value()).explore(&cold_cache);
    ASSERT_TRUE(cold.isOk());
    EXPECT_EQ(warm.value().front, cold.value().front);
    for (std::size_t i = 0; i < cold.value().candidates.size(); ++i) {
        EXPECT_EQ(warm.value().candidates[i].latency_cycles,
                  cold.value().candidates[i].latency_cycles);
        EXPECT_EQ(warm.value().candidates[i].energy_pj,
                  cold.value().candidates[i].energy_pj);
    }
}

TEST(SearchDifferentialTest, DegenerateProxyBudgetsAreRejected)
{
    // A DSE spec whose budget's proxy equals full fidelity fails at
    // parse time...
    EXPECT_FALSE(dseSpecFromText(R"({
        "model": "lenet5", "arch": "jain",
        "budget": {"evals": 9, "proxy_opt_none": false,
                   "proxy_prefix_fraction": 0},
        "sweep": {"core_grid": {"log2": [1, 4]}}
    })").isOk());
    // ...and a budget enabled after parsing (the --search-budget CLI
    // override path) is re-checked by explore() before any rung runs.
    auto spec = dseSpecFromText(kLenetSweep);
    ASSERT_TRUE(spec.isOk());
    spec.value().budget.max_full_evals = 9;
    spec.value().budget.proxy_opt_none = false;
    spec.value().budget.proxy_prefix_fraction = 0.0;
    auto result = ArchExplorer(spec.value()).explore();
    EXPECT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("proxy stage"),
              std::string::npos);
}

TEST(SearchDifferentialTest, TunedHalvingKeepsFrontFullyEvaluated)
{
    // Halving under per-candidate tuning: the expensive stage is the
    // tuned evaluation, proxies stay untuned; the front must still be
    // a subset of the tuned (full) evaluations.
    auto spec = dseSpecFromText(R"({
        "model": "conv_relu_toy",
        "arch": "jain",
        "tune": true,
        "objective": "latency",
        "threads": 1,
        "sweep": {
            "xb_size": [[256, 64], [128, 128], [64, 64]],
            "core_grid": {"log2": [1, 2]}
        }
    })");
    ASSERT_TRUE(spec.isOk()) << spec.status().toString();
    spec.value().budget.max_full_evals = 3;
    TuneCache cache;
    auto result = ArchExplorer(spec.value()).explore(&cache);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().full_evals, 3);
    ASSERT_FALSE(result.value().front.empty());
    for (std::size_t index : result.value().front) {
        EXPECT_TRUE(result.value().candidates[index].full_eval);
        EXPECT_TRUE(result.value().candidates[index].tuned);
    }
}

} // namespace
} // namespace cimmlc
