/**
 * @file
 * Tests for the graph IR: builders, shape inference, topological order,
 * validation, analysis queries, and the model zoo (parameter counts are
 * checked against the published architectures).
 */
#include <gtest/gtest.h>

#include "graph/analysis.h"
#include "graph/graph.h"
#include "graph/models.h"

namespace cimmlc {
namespace {

TEST(GraphTest, BuildConvChainInfersShapes)
{
    Graph g("t");
    TensorId x = g.addInput("in", {1, 3, 32, 32});
    x = g.conv2d(x, 16, 3, 1, 1);
    EXPECT_EQ(g.tensor(x).dims, (std::vector<std::int64_t>{1, 16, 32, 32}));
    x = g.maxPool2d(x, 2, 2);
    EXPECT_EQ(g.tensor(x).dims, (std::vector<std::int64_t>{1, 16, 16, 16}));
    x = g.flatten(x);
    EXPECT_EQ(g.tensor(x).dims, (std::vector<std::int64_t>{1, 4096}));
    x = g.linear(x, 10);
    EXPECT_EQ(g.tensor(x).dims, (std::vector<std::int64_t>{1, 10}));
}

TEST(GraphTest, ProducersAndConsumersTracked)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4});
    TensorId a = g.relu(in);
    TensorId b = g.relu(in);
    TensorId c = g.add(a, b);
    EXPECT_EQ(g.tensor(in).consumers.size(), 2u);
    EXPECT_EQ(g.tensor(a).producer, 1);
    EXPECT_EQ(g.tensor(c).producer, 3);
}

TEST(GraphTest, TopoOrderRespectsDependencies)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4});
    TensorId a = g.relu(in);
    TensorId b = g.gelu(in);
    g.markOutput(g.add(a, b));
    const auto order = g.topoOrder();
    ASSERT_EQ(order.size(), g.nodeCount());
    std::vector<int> position(order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        position[static_cast<std::size_t>(order[i])] =
            static_cast<int>(i);
    for (const Node &n : g.nodes()) {
        for (TensorId input : n.inputs) {
            const NodeId producer = g.tensor(input).producer;
            EXPECT_LT(position[static_cast<std::size_t>(producer)],
                      position[static_cast<std::size_t>(n.id)]);
        }
    }
}

TEST(GraphTest, ValidateRequiresOutputs)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4});
    g.relu(in);
    EXPECT_FALSE(g.validate().isOk());
}

TEST(GraphTest, ValidateOkOnCompleteGraph)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4});
    TensorId out = g.linear(in, 2);
    g.markOutput(out);
    EXPECT_TRUE(g.validate().isOk());
}

TEST(GraphTest, ResidualAddShapeChecked)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 8, 4, 4});
    TensorId a = g.conv2d(in, 8, 3, 1, 1);
    TensorId out = g.add(a, in);
    EXPECT_EQ(g.tensor(out).dims, g.tensor(in).dims);
}

TEST(GraphTest, ConcatSumsChannels)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4, 8, 8});
    TensorId a = g.conv2d(in, 6, 1, 1, 0);
    TensorId b = g.conv2d(in, 10, 1, 1, 0);
    TensorId cat = g.concat({a, b});
    EXPECT_EQ(g.tensor(cat).dims[1], 16);
}

TEST(GraphTest, ReshapePreservesElements)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 3, 4, 4});
    TensorId r = g.reshape(in, {16, 3});
    EXPECT_EQ(g.tensor(r).numel(), 48);
}

TEST(GraphTest, MatmulTransposeShapes)
{
    Graph g("t");
    TensorId q = g.addInput("q", {16, 64});
    TensorId k = g.addInput("k", {16, 64});
    TensorId scores = g.matmul(q, k, 4, /*transpose_rhs=*/true);
    EXPECT_EQ(g.tensor(scores).dims,
              (std::vector<std::int64_t>{16, 16}));
}

TEST(GraphTest, WeightInstallAndRandomize)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 8});
    TensorId out = g.linear(in, 4, "fc");
    g.markOutput(out);
    const NodeId fc = g.tensor(out).producer;
    EXPECT_FALSE(g.hasWeight(fc));
    Rng rng(1);
    g.randomizeWeights(rng);
    ASSERT_TRUE(g.hasWeight(fc));
    EXPECT_EQ(g.weight(fc).shape(), TensorShape({4, 8}));
}

// ----- analysis -------------------------------------------------------

TEST(AnalysisTest, ConvWeightMatrixShape)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 3, 32, 32});
    TensorId out = g.conv2d(in, 32, 3, 1, 1);
    const NodeId conv = g.tensor(out).producer;
    const auto wm = weightMatrixShape(g, conv);
    ASSERT_TRUE(wm.has_value());
    EXPECT_EQ(wm->rows, 27); // 3 * 3 * 3
    EXPECT_EQ(wm->cols, 32);
}

TEST(AnalysisTest, LinearWeightMatrixShape)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 128});
    TensorId out = g.linear(in, 10);
    const auto wm = weightMatrixShape(g, g.tensor(out).producer);
    EXPECT_EQ(wm->rows, 128);
    EXPECT_EQ(wm->cols, 10);
}

TEST(AnalysisTest, NonCimNodesHaveNoMatrix)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 8});
    TensorId out = g.relu(in);
    EXPECT_FALSE(
        weightMatrixShape(g, g.tensor(out).producer).has_value());
}

TEST(AnalysisTest, MvmCountConvIsOutputSpatial)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 3, 32, 32});
    TensorId out = g.conv2d(in, 8, 3, 2, 1);
    EXPECT_EQ(mvmCount(g, g.tensor(out).producer), 16 * 16);
}

TEST(AnalysisTest, MvmCountLinearIsRows)
{
    Graph g("t");
    TensorId in = g.addInput("in", {196, 768});
    TensorId out = g.linear(in, 768);
    EXPECT_EQ(mvmCount(g, g.tensor(out).producer), 196);
}

TEST(AnalysisTest, MacCountConv)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 3, 32, 32});
    TensorId out = g.conv2d(in, 32, 3, 1, 1);
    // 1024 windows x 27 rows x 32 cols
    EXPECT_EQ(macCount(g, g.tensor(out).producer),
              1024LL * 27 * 32);
}

TEST(AnalysisTest, AluOpCounts)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4, 8, 8});
    TensorId r = g.relu(in);
    EXPECT_EQ(aluOpCount(g, g.tensor(r).producer), 256);
    TensorId p = g.maxPool2d(r, 2, 2);
    EXPECT_EQ(aluOpCount(g, g.tensor(p).producer), 64 * 4);
}

// ----- model zoo -------------------------------------------------------

class ModelZooTest : public testing::TestWithParam<std::string>
{
};

TEST_P(ModelZooTest, BuildsAndValidates)
{
    const Graph g = models::byName(GetParam());
    EXPECT_TRUE(g.validate().isOk()) << g.name();
    EXPECT_GT(g.nodeCount(), 2u);
    EXPECT_GT(g.totalMacs(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooTest,
                         testing::ValuesIn(models::availableModels()));

TEST(ModelZooTest, ParameterCountsMatchPublishedArchitectures)
{
    // Weight-only counts (no biases / norm scales in this IR).
    EXPECT_NEAR(static_cast<double>(models::resnet18().totalWeights()),
                11.2e6, 0.6e6);
    EXPECT_NEAR(static_cast<double>(models::resnet50().totalWeights()),
                25.5e6, 2.0e6);
    EXPECT_NEAR(static_cast<double>(models::resnet101().totalWeights()),
                42.5e6, 3.0e6);
    EXPECT_NEAR(static_cast<double>(models::vgg16().totalWeights()),
                138.0e6, 5.0e6);
    EXPECT_NEAR(static_cast<double>(models::vitBase().totalWeights()),
                86.0e6, 6.0e6);
}

TEST(ModelZooTest, Vgg16HasThirteenConvsAndThreeFcs)
{
    const Graph g = models::vgg16();
    int convs = 0, fcs = 0;
    for (const Node &n : g.nodes()) {
        convs += n.kind == OpKind::kConv2d;
        fcs += n.kind == OpKind::kLinear;
    }
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(fcs, 3);
}

TEST(ModelZooTest, ResnetDepthsCount)
{
    auto conv_count = [](const Graph &g) {
        int convs = 0;
        for (const Node &n : g.nodes())
            convs += n.kind == OpKind::kConv2d;
        return convs;
    };
    // 16 residual convs + stem + 3 downsamples = 20 for ResNet18.
    EXPECT_EQ(conv_count(models::resnet18()), 20);
    // ResNet50: stem + 3*16 bottleneck convs + 4 downsamples = 53.
    EXPECT_EQ(conv_count(models::resnet50()), 53);
}

TEST(ModelZooTest, VitTokensAndBlocks)
{
    const Graph g = models::vitBase();
    int layernorms = 0, matmuls = 0;
    for (const Node &n : g.nodes()) {
        layernorms += n.kind == OpKind::kLayerNorm;
        matmuls += n.kind == OpKind::kMatMul;
    }
    EXPECT_EQ(layernorms, 12 * 2 + 1);
    EXPECT_EQ(matmuls, 12 * 2);
}

TEST(ModelZooTest, UnknownModelNameDies)
{
    EXPECT_EXIT(models::byName("nonexistent_net"),
                testing::ExitedWithCode(1), "unknown model");
}

TEST(ModelZooTest, MacroCnnFitsJainMacro)
{
    // ~16K-weight capacity of the Jain et al. macro (Figure 19).
    EXPECT_LT(models::macroCnn().totalWeights(), 16384);
}

TEST(ModelZooTest, SummaryMentionsEveryNode)
{
    const Graph g = models::lenet5();
    const std::string summary = g.summary();
    EXPECT_NE(summary.find("conv1"), std::string::npos);
    EXPECT_NE(summary.find("fc3"), std::string::npos);
}

} // namespace
} // namespace cimmlc
