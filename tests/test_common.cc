/**
 * @file
 * Unit tests for the support substrate: Status/StatusOr, string
 * utilities, the kvjson config parser, the table renderer, RNG, and
 * integer math helpers.
 */
#include <gtest/gtest.h>

#include "common/config.h"
#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strutil.h"
#include "common/table.h"

namespace cimmlc {
namespace {

// ----- Status ------------------------------------------------------------

TEST(StatusTest, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kOk);
    EXPECT_EQ(status.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status status = invalidArgument("bad thing");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.toString().find("bad thing"), std::string::npos);
}

TEST(StatusTest, WithContextPrepends)
{
    Status status = notFound("missing").withContext("loading file");
    EXPECT_NE(status.message().find("loading file"), std::string::npos);
    EXPECT_NE(status.message().find("missing"), std::string::npos);
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(StatusTest, WithContextOnOkIsNoop)
{
    Status status = Status::ok().withContext("irrelevant");
    EXPECT_TRUE(status.isOk());
}

TEST(StatusTest, AllCodesHaveNames)
{
    for (StatusCode code :
         {StatusCode::kOk, StatusCode::kInvalidArgument,
          StatusCode::kFailedPrecondition, StatusCode::kNotFound,
          StatusCode::kOutOfRange, StatusCode::kUnimplemented,
          StatusCode::kResourceExhausted, StatusCode::kInternal,
          StatusCode::kParseError}) {
        EXPECT_STRNE(statusCodeName(code), "UNKNOWN");
    }
}

TEST(StatusOrTest, HoldsValue)
{
    StatusOr<int> result = 42;
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError)
{
    StatusOr<int> result = outOfRange("nope");
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
    EXPECT_EQ(result.valueOr(-1), -1);
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternal)
{
    StatusOr<int> result = Status::ok();
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue)
{
    StatusOr<std::string> result = std::string("payload");
    std::string taken = std::move(result).value();
    EXPECT_EQ(taken, "payload");
}

// ----- strutil -----------------------------------------------------------

TEST(StrUtilTest, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StrUtilTest, SplitSingleToken)
{
    const auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(StrUtilTest, TrimWhitespace)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StrUtilTest, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("cim.readxb", "cim."));
    EXPECT_FALSE(startsWith("cim", "cim."));
    EXPECT_TRUE(endsWith("flow.txt", ".txt"));
    EXPECT_FALSE(endsWith("txt", "flow.txt"));
}

TEST(StrUtilTest, ToLower)
{
    EXPECT_EQ(toLower("ReRAM"), "reram");
    EXPECT_EQ(toLower("XBM"), "xbm");
}

TEST(StrUtilTest, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c");
    EXPECT_EQ(join({}, "+"), "");
    EXPECT_EQ(join({"solo"}, "+"), "solo");
}

TEST(StrUtilTest, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strformat("%05.1f", 2.25), "002.2");
}

TEST(StrUtilTest, FormatDoubleTrimsZeros)
{
    EXPECT_EQ(formatDouble(2.5, 3), "2.5");
    EXPECT_EQ(formatDouble(2.0, 3), "2.0");
}

TEST(StrUtilTest, HumanCount)
{
    EXPECT_EQ(humanCount(1536.0), "1.54K");
    EXPECT_EQ(humanCount(2.5e6), "2.50M");
    EXPECT_EQ(humanCount(3.1e9), "3.10G");
    EXPECT_EQ(humanCount(12.0), "12.00");
}

TEST(StrUtilTest, ParseInt64)
{
    std::int64_t value = 0;
    EXPECT_TRUE(parseInt64("  -42 ", &value));
    EXPECT_EQ(value, -42);
    EXPECT_FALSE(parseInt64("12x", &value));
    EXPECT_FALSE(parseInt64("", &value));
}

TEST(StrUtilTest, ParseDouble)
{
    double value = 0.0;
    EXPECT_TRUE(parseDouble("3.5e2", &value));
    EXPECT_DOUBLE_EQ(value, 350.0);
    EXPECT_FALSE(parseDouble("abc", &value));
}

// ----- config (kvjson) ---------------------------------------------------

TEST(ConfigTest, ParsesScalars)
{
    EXPECT_TRUE(parseConfig("true").value().asBool());
    EXPECT_FALSE(parseConfig("false").value().asBool());
    EXPECT_TRUE(parseConfig("null").value().isNull());
    EXPECT_DOUBLE_EQ(parseConfig("-2.5e3").value().asNumber(), -2500.0);
    EXPECT_EQ(parseConfig("\"hi\\n\"").value().asString(), "hi\n");
}

TEST(ConfigTest, ParsesNestedDocument)
{
    auto doc = parseConfig(R"({
        "name": "chip",          # hash comment
        "tiers": [1, 2, 3],      // slash comment
        "inner": {"deep": true}
    })");
    ASSERT_TRUE(doc.isOk());
    const ConfigValue &v = doc.value();
    EXPECT_EQ(v.getStringOr("name", ""), "chip");
    ASSERT_TRUE(v.has("tiers"));
    EXPECT_EQ(v.get("tiers").value().asArray().size(), 3u);
    EXPECT_TRUE(v.get("inner").value().getBoolOr("deep", false));
}

TEST(ConfigTest, RejectsMalformedInput)
{
    EXPECT_FALSE(parseConfig("{").isOk());
    EXPECT_FALSE(parseConfig("[1, 2").isOk());
    EXPECT_FALSE(parseConfig("{\"a\" 1}").isOk());
    EXPECT_FALSE(parseConfig("\"unterminated").isOk());
    EXPECT_FALSE(parseConfig("{} trailing").isOk());
    EXPECT_FALSE(parseConfig("nulle").isOk());
}

TEST(ConfigTest, DumpParseRoundTrip)
{
    const std::string text =
        R"({"a": [1, 2.5, "s"], "b": {"c": true, "d": null}})";
    auto doc = parseConfig(text);
    ASSERT_TRUE(doc.isOk());
    auto again = parseConfig(doc.value().dump(/*pretty=*/true));
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(doc.value().dump(), again.value().dump());
}

TEST(ConfigTest, TypedGettersWithDefaults)
{
    auto doc = parseConfig(R"({"n": 5, "s": "x", "f": true})").value();
    EXPECT_EQ(doc.getIntOr("n", -1), 5);
    EXPECT_EQ(doc.getIntOr("missing", -1), -1);
    EXPECT_EQ(doc.getStringOr("s", "d"), "x");
    EXPECT_TRUE(doc.getBoolOr("f", false));
    // Type mismatch falls back.
    EXPECT_EQ(doc.getIntOr("s", 9), 9);
}

TEST(ConfigTest, GetOnNonObjectFails)
{
    auto doc = parseConfig("[1]").value();
    EXPECT_FALSE(doc.get("key").isOk());
}

TEST(ConfigTest, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "/cimmlc_config.json";
    ConfigValue::Object obj;
    obj["k"] = ConfigValue::makeNumber(3);
    ASSERT_TRUE(
        saveConfigFile(path, ConfigValue::makeObject(obj)).isOk());
    auto loaded = loadConfigFile(path);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().getIntOr("k", 0), 3);
    EXPECT_FALSE(loadConfigFile("/no/such/file").isOk());
}

// ----- table ---------------------------------------------------------

TEST(TableTest, RendersAlignedColumns)
{
    TextTable table({"col", "value"});
    table.addRow({"a", "1"});
    table.addSeparator();
    table.addRow({"long-name", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| a         | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 3u); // separator counts as a row slot
}

// ----- rng -----------------------------------------------------------

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(RngTest, UniformIntInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniformInt(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(RngTest, UniformDoubleInUnitInterval)
{
    Rng rng(10);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

// ----- mathutil ------------------------------------------------------

TEST(MathUtilTest, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 128), 1);
}

TEST(MathUtilTest, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(MathUtilTest, ClampInt)
{
    EXPECT_EQ(clampInt(5, 0, 3), 3);
    EXPECT_EQ(clampInt(-5, 0, 3), 0);
    EXPECT_EQ(clampInt(2, 0, 3), 2);
}

TEST(MathUtilTest, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
}

TEST(MathUtilTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(127), 6);
    EXPECT_EQ(floorLog2(128), 7);
}

} // namespace
} // namespace cimmlc
