/**
 * @file
 * Tests for the hardware abstraction: tier parameters, validation,
 * presets (checked against the paper's Tables 2-3 and Figures 17-19),
 * NoC models, device profiles, and config serialization.
 */
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "arch/device.h"
#include "arch/noc.h"
#include "arch/presets.h"
#include "arch/serialize.h"

namespace cimmlc {
namespace {

TEST(ArchTest, DerivedQuantities)
{
    CimArchitecture arch = presets::isaacBaseline();
    EXPECT_EQ(arch.chip.coreNumber(), 768);
    EXPECT_EQ(arch.core.xbNumber(), 16);
    EXPECT_EQ(arch.totalCrossbars(), 768 * 16);
    EXPECT_EQ(arch.cellsPerWeight(), 4);       // 8-bit / 2-bit cells
    EXPECT_EQ(arch.logicalColsPerCrossbar(), 32);
    EXPECT_EQ(arch.dacCyclesPerActivation(), 8); // 8-bit act / 1-bit DAC
    EXPECT_EQ(arch.rowGroupsPerActivation(), 16); // 128 rows / 8 parallel
}

TEST(ArchTest, ValidateCatchesBadParallelRow)
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.xbar.parallel_row = 0;
    EXPECT_FALSE(arch.validate().isOk());
    arch.xbar.parallel_row = arch.xbar.rows + 1;
    EXPECT_FALSE(arch.validate().isOk());
}

TEST(ArchTest, ValidateCatchesTooWideWeight)
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.xbar.cols = 2;
    arch.xbar.cell_bits = 1; // needs 8 cells per weight > 2 cols
    EXPECT_FALSE(arch.validate().isOk());
}

TEST(ArchTest, ValidateCatchesBadNocMatrix)
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.chip.core_noc_cost = {1.0, 2.0}; // must be 768^2
    EXPECT_FALSE(arch.validate().isOk());
}

TEST(ArchTest, ValidateAcceptsPresets)
{
    for (const std::string &name : presets::availablePresets()) {
        auto arch = presets::byName(name);
        ASSERT_TRUE(arch.isOk()) << name;
        EXPECT_TRUE(arch.value().validate().isOk()) << name;
    }
}

TEST(ArchTest, WeightsStationaryFollowsDevice)
{
    CimArchitecture arch = presets::isaacBaseline();
    EXPECT_TRUE(arch.weightsStationary()); // ReRAM
    arch.xbar.cell_type = CellType::kSram;
    EXPECT_FALSE(arch.weightsStationary());
}

TEST(ArchTest, EnumParsersRoundTrip)
{
    EXPECT_EQ(parseComputeMode("wlm").value(), ComputeMode::kWLM);
    EXPECT_EQ(parseComputeMode("XBM").value(), ComputeMode::kXBM);
    EXPECT_FALSE(parseComputeMode("qqq").isOk());
    EXPECT_EQ(parseNocType("mesh").value(), NocType::kMesh);
    EXPECT_EQ(parseNocType("\\").value(), NocType::kIdeal);
    EXPECT_FALSE(parseNocType("torus").isOk());
    EXPECT_EQ(parseCellType("RRAM").value(), CellType::kReram);
    EXPECT_EQ(parseCellType("stt-mram").value(), CellType::kSttMram);
    EXPECT_FALSE(parseCellType("dna").isOk());
}

// ----- presets vs paper tables ------------------------------------------

TEST(PresetTest, IsaacBaselineMatchesTable3)
{
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_EQ(arch.chip.coreNumber(), 768);
    EXPECT_EQ(arch.core.xbNumber(), 16);
    EXPECT_EQ(arch.xbar.rows, 128);
    EXPECT_EQ(arch.xbar.cols, 128);
    EXPECT_EQ(arch.xbar.parallel_row, 8);
    EXPECT_EQ(arch.xbar.dac_bits, 1);
    EXPECT_EQ(arch.xbar.adc_bits, 8);
    EXPECT_EQ(arch.xbar.cell_type, CellType::kReram);
    EXPECT_EQ(arch.xbar.cell_bits, 2);
    EXPECT_DOUBLE_EQ(arch.chip.alu_ops_per_cycle, 1024.0);
    EXPECT_DOUBLE_EQ(arch.chip.l0_bandwidth, 384.0);
    EXPECT_DOUBLE_EQ(arch.core.l1_bandwidth, 8192.0);
}

TEST(PresetTest, JiaMatchesFigure17)
{
    const CimArchitecture arch = presets::jiaIsscc21();
    EXPECT_EQ(arch.mode, ComputeMode::kCM);
    EXPECT_EQ(arch.chip.coreNumber(), 16);
    EXPECT_EQ(arch.chip.core_noc, NocType::kDisjointBufferSwitch);
    EXPECT_EQ(arch.core.xbNumber(), 1);
    EXPECT_EQ(arch.xbar.rows, 1152);
    EXPECT_EQ(arch.xbar.cols, 256);
    EXPECT_EQ(arch.xbar.parallel_row, 1152);
    EXPECT_EQ(arch.xbar.cell_type, CellType::kSram);
    EXPECT_EQ(arch.xbar.cell_bits, 1);
}

TEST(PresetTest, PumaMatchesFigure18)
{
    const CimArchitecture arch = presets::puma();
    EXPECT_EQ(arch.mode, ComputeMode::kXBM);
    EXPECT_EQ(arch.chip.coreNumber(), 138);
    EXPECT_EQ(arch.chip.core_noc, NocType::kMesh);
    EXPECT_DOUBLE_EQ(arch.chip.l0_size_kib, 96.0);
    EXPECT_EQ(arch.core.xbNumber(), 2);
    EXPECT_DOUBLE_EQ(arch.core.l1_size_kib, 1.0);
    EXPECT_EQ(arch.xbar.rows, 128);
    EXPECT_EQ(arch.xbar.parallel_row, 128);
    EXPECT_EQ(arch.xbar.cell_type, CellType::kReram);
}

TEST(PresetTest, JainMatchesFigure19)
{
    const CimArchitecture arch = presets::jainJssc21();
    EXPECT_EQ(arch.mode, ComputeMode::kWLM);
    EXPECT_EQ(arch.chip.coreNumber(), 4);
    EXPECT_EQ(arch.core.xbNumber(), 2);
    EXPECT_EQ(arch.xbar.rows, 256);
    EXPECT_EQ(arch.xbar.cols, 64);
    EXPECT_EQ(arch.xbar.parallel_row, 32);
    EXPECT_EQ(arch.xbar.adc_bits, 6);
    EXPECT_EQ(arch.xbar.cell_type, CellType::kSram);
}

TEST(PresetTest, TutorialMatchesTable2)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    EXPECT_EQ(arch.chip.coreNumber(), 2);
    EXPECT_EQ(arch.core.xbNumber(), 2);
    EXPECT_EQ(arch.xbar.rows, 32);
    EXPECT_EQ(arch.xbar.cols, 128);
    EXPECT_EQ(arch.xbar.parallel_row, 16);
    EXPECT_EQ(arch.xbar.cell_bits, 2);
}

TEST(PresetTest, ByNameAliases)
{
    EXPECT_TRUE(presets::byName("isaac").isOk());
    EXPECT_TRUE(presets::byName("PUMA").isOk());
    EXPECT_FALSE(presets::byName("tpu").isOk());
}

// ----- NoC models --------------------------------------------------------

TEST(NocTest, MeshHopsAreManhattan)
{
    NocModel mesh(NocType::kMesh, 4, 4, 32.0);
    EXPECT_EQ(mesh.hopCount(0, 0), 0);
    EXPECT_EQ(mesh.hopCount(0, 3), 3);
    EXPECT_EQ(mesh.hopCount(0, 15), 6);
    EXPECT_EQ(mesh.diameter(), 6);
}

TEST(NocTest, BusIsSingleHop)
{
    NocModel bus(NocType::kSharedBus, 1, 8, 64.0);
    EXPECT_EQ(bus.hopCount(0, 7), 1);
    EXPECT_EQ(bus.diameter(), 1);
}

TEST(NocTest, HTreeHopsGrowLogarithmically)
{
    NocModel tree(NocType::kHTree, 1, 8, 64.0);
    EXPECT_EQ(tree.hopCount(0, 1), 2);
    EXPECT_EQ(tree.hopCount(0, 7), 6);
    EXPECT_LE(tree.diameter(), 6);
}

TEST(NocTest, IdealIsFree)
{
    NocModel ideal(NocType::kIdeal, 2, 2, 0.0);
    EXPECT_DOUBLE_EQ(ideal.transferCycles(0, 3, 1024.0), 0.0);
}

TEST(NocTest, TransferSerializationDominates)
{
    NocModel mesh(NocType::kMesh, 2, 2, 32.0);
    const double cycles = mesh.transferCycles(0, 3, 3200.0);
    EXPECT_NEAR(cycles, 3200.0 / 32.0 + 2.0, 1e-9);
}

TEST(NocTest, CostMatrixOverride)
{
    std::vector<double> matrix(4, 0.0);
    matrix[0 * 2 + 1] = 0.5; // src 0 -> dst 1: half a cycle per bit
    NocModel noc(NocType::kMesh, 1, 2, 32.0, matrix);
    EXPECT_DOUBLE_EQ(noc.transferCycles(0, 1, 100.0), 50.0);
}

// ----- device profiles ----------------------------------------------------

TEST(DeviceTest, WriteAsymmetryOrdering)
{
    EXPECT_LT(deviceProfile(CellType::kSram).write_latency_cycles,
              deviceProfile(CellType::kReram).write_latency_cycles);
    EXPECT_LT(deviceProfile(CellType::kReram).write_latency_cycles,
              deviceProfile(CellType::kFlash).write_latency_cycles);
}

TEST(DeviceTest, NvmIsWeightsStationary)
{
    EXPECT_FALSE(deviceProfile(CellType::kSram).weights_stationary);
    EXPECT_TRUE(deviceProfile(CellType::kReram).weights_stationary);
    EXPECT_TRUE(deviceProfile(CellType::kFlash).weights_stationary);
}

TEST(DeviceTest, AdcEnergyScalesExponentially)
{
    EXPECT_NEAR(adcEnergyPj(9) / adcEnergyPj(8), 2.0, 1e-9);
    EXPECT_NEAR(adcEnergyPj(6) / adcEnergyPj(8), 0.25, 1e-9);
}

// ----- serialization -------------------------------------------------------

TEST(SerializeTest, RoundTripPreservesEveryPreset)
{
    for (const std::string &name : presets::availablePresets()) {
        const CimArchitecture original =
            presets::byName(name).value();
        const ConfigValue doc = archToConfig(original);
        auto restored = archFromConfig(doc);
        ASSERT_TRUE(restored.isOk()) << name;
        const CimArchitecture &r = restored.value();
        EXPECT_EQ(r.mode, original.mode) << name;
        EXPECT_EQ(r.chip.coreNumber(), original.chip.coreNumber());
        EXPECT_EQ(r.core.xbNumber(), original.core.xbNumber());
        EXPECT_EQ(r.xbar.rows, original.xbar.rows);
        EXPECT_EQ(r.xbar.cols, original.xbar.cols);
        EXPECT_EQ(r.xbar.parallel_row, original.xbar.parallel_row);
        EXPECT_EQ(r.xbar.cell_type, original.xbar.cell_type);
        EXPECT_EQ(r.xbar.cell_bits, original.xbar.cell_bits);
    }
}

TEST(SerializeTest, ParsesHandWrittenConfig)
{
    auto arch = archFromText(R"({
        "name": "custom",
        "computing_mode": "WLM",
        "chip_tier": {"core_number": 8, "core_noc": "mesh"},
        "core_tier": {"xb_grid": [2, 2]},
        "xb_tier": {
            "xb_size": [64, 64], "parallel_row": 16,
            "dac": 2, "adc": 6, "type": "SRAM", "precision": 1
        }
    })");
    ASSERT_TRUE(arch.isOk()) << arch.status().toString();
    EXPECT_EQ(arch.value().chip.coreNumber(), 8);
    EXPECT_EQ(arch.value().core.xbNumber(), 4);
    EXPECT_EQ(arch.value().xbar.parallel_row, 16);
    EXPECT_EQ(arch.value().xbar.dac_bits, 2);
}

TEST(SerializeTest, RejectsInvalidConfigs)
{
    EXPECT_FALSE(archFromText("[]").isOk());
    EXPECT_FALSE(archFromText(R"({"computing_mode": "ZZZ"})").isOk());
    EXPECT_FALSE(archFromText(R"({
        "xb_tier": {"xb_size": [0, 64]}
    })").isOk());
}

} // namespace
} // namespace cimmlc
