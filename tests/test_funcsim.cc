/**
 * @file
 * Functional-simulator tests: bit-exact equivalence between compiled
 * meta-operator flows and the reference executor (the paper's
 * PyTorch-check methodology, Section 4.1), across models, computing
 * modes, and architectures, plus direct unit tests of the executor.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "common/rng.h"
#include "funcsim/simulator.h"
#include "funcsim/verify.h"
#include "graph/models.h"
#include "graph/reference.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

std::map<TensorId, Int8Tensor>
randomInputs(const Graph &g, std::uint64_t seed)
{
    Rng rng(seed);
    std::map<TensorId, Int8Tensor> inputs;
    for (TensorId in : g.inputs()) {
        Int8Tensor t(TensorShape(g.tensor(in).dims));
        t.fillRandom(rng, -16, 16);
        inputs.emplace(in, std::move(t));
    }
    return inputs;
}

// ----- end-to-end bit-exact verification -----------------------------------

class VerifyMatrixTest
    : public testing::TestWithParam<std::tuple<std::string, ComputeMode>>
{
};

TEST_P(VerifyMatrixTest, CompiledFlowMatchesReferenceBitExactly)
{
    const auto [model_name, mode] = GetParam();
    Graph g = models::byName(model_name);
    Rng rng(42);
    g.randomizeWeights(rng);
    CimArchitecture arch = presets::tutorialTable2(mode);
    // Give the tutorial chip enough cores for the larger test nets.
    arch.chip.core_rows = 8;
    arch.xbar.rows = 64;
    arch.xbar.parallel_row = 16;

    auto report = verifyCompiledFlow(g, arch, ScheduleOptions::full(),
                                     randomInputs(g, 7));
    ASSERT_TRUE(report.isOk()) << report.status().toString();
    EXPECT_TRUE(report.value().match) << report.value().first_mismatch;
    EXPECT_GT(report.value().elements_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VerifyMatrixTest,
    testing::Combine(testing::Values("conv_relu_toy", "lenet5", "mlp",
                                     "macro_cnn"),
                     testing::Values(ComputeMode::kCM, ComputeMode::kXBM,
                                     ComputeMode::kWLM)));

TEST(VerifyTest, AblationLevelsAllStayBitExact)
{
    Graph g = models::lenet5();
    Rng rng(9);
    g.randomizeWeights(rng);
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kWLM);
    arch.chip.core_rows = 8;
    arch.xbar.rows = 64;
    arch.xbar.parallel_row = 16;
    const auto inputs = randomInputs(g, 1);
    for (const ScheduleOptions &options :
         {ScheduleOptions::none(), ScheduleOptions::cgOnly(),
          ScheduleOptions::cgMvm(), ScheduleOptions::full()}) {
        auto report = verifyCompiledFlow(g, arch, options, inputs);
        ASSERT_TRUE(report.isOk()) << report.status().toString();
        EXPECT_TRUE(report.value().match)
            << options.toString() << ": "
            << report.value().first_mismatch;
    }
}

TEST(VerifyTest, ResidualAddNetworkVerifies)
{
    // Exercises kAdd with a skip connection around a conv.
    Graph g("residual");
    TensorId in = g.addInput("in", {1, 4, 8, 8});
    TensorId a = g.conv2d(in, 4, 3, 1, 1, "conv");
    TensorId sum = g.add(a, in, "skip");
    g.markOutput(g.relu(sum));
    Rng rng(13);
    g.randomizeWeights(rng);
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    auto report = verifyCompiledFlow(g, arch, ScheduleOptions::full(),
                                     randomInputs(g, 3));
    ASSERT_TRUE(report.isOk()) << report.status().toString();
    EXPECT_TRUE(report.value().match) << report.value().first_mismatch;
}

TEST(VerifyTest, AvgPoolNetworkVerifies)
{
    Graph g("pooled");
    TensorId in = g.addInput("in", {1, 3, 8, 8});
    TensorId c = g.conv2d(in, 8, 3, 1, 1);
    TensorId p = g.avgPool2d(c, 2, 2);
    g.markOutput(g.globalAvgPool(p));
    Rng rng(17);
    g.randomizeWeights(rng);
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    auto report = verifyCompiledFlow(g, arch, ScheduleOptions::full(),
                                     randomInputs(g, 5));
    ASSERT_TRUE(report.isOk()) << report.status().toString();
    EXPECT_TRUE(report.value().match) << report.value().first_mismatch;
}

TEST(VerifyTest, DifferentSeedsStillMatch)
{
    Graph g = models::convReluToy();
    Rng rng(100);
    g.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        auto report = verifyCompiledFlow(
            g, arch, ScheduleOptions::full(), randomInputs(g, seed));
        ASSERT_TRUE(report.isOk());
        EXPECT_TRUE(report.value().match) << "seed " << seed;
    }
}

// ----- simulator unit behaviour ----------------------------------------------

class FuncsimFixture : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        graph_ = models::convReluToy();
        Rng rng(3);
        graph_.randomizeWeights(rng);
        arch_ = presets::tutorialTable2(ComputeMode::kXBM);
        auto schedule =
            scheduleGraph(graph_, arch_, ScheduleOptions::full());
        ASSERT_TRUE(schedule.isOk());
        auto code = generateProgram(graph_, arch_, schedule.value());
        ASSERT_TRUE(code.isOk());
        code_ = std::make_unique<CodegenResult>(
            std::move(code).value());
    }

    Graph graph_{"unset"};
    CimArchitecture arch_;
    std::unique_ptr<CodegenResult> code_;
};

TEST_F(FuncsimFixture, RunWithoutInputYieldsZeroActivity)
{
    FunctionalSimulator sim(arch_, *code_);
    ASSERT_TRUE(sim.run().isOk());
    // All-zero input with zero requant -> all-zero output.
    auto out = sim.readTensor(graph_, graph_.outputs()[0]);
    ASSERT_TRUE(out.isOk());
    for (std::int64_t i = 0; i < out.value().numel(); ++i)
        EXPECT_EQ(out.value()[i], 0);
}

TEST_F(FuncsimFixture, StatsAccumulate)
{
    FunctionalSimulator sim(arch_, *code_);
    ASSERT_TRUE(sim.run().isOk());
    EXPECT_GT(sim.stats().ops_executed, 0);
    EXPECT_EQ(sim.stats().cim_reads, 1024);
    EXPECT_EQ(sim.stats().cim_writes, 4);
    EXPECT_GT(sim.stats().macs, 0);
}

TEST_F(FuncsimFixture, LoadInputValidatesShape)
{
    FunctionalSimulator sim(arch_, *code_);
    Int8Tensor wrong(TensorShape({1, 3, 16, 16}));
    EXPECT_FALSE(
        sim.loadInput(graph_, graph_.inputs()[0], wrong).isOk());
    EXPECT_FALSE(sim.loadInput(graph_, 9999, wrong).isOk());
}

TEST_F(FuncsimFixture, CompressedProgramRefused)
{
    CodegenOptions options;
    options.unroll = false;
    auto schedule =
        scheduleGraph(graph_, arch_, ScheduleOptions::full());
    auto compressed =
        generateProgram(graph_, arch_, schedule.value(), options);
    ASSERT_TRUE(compressed.isOk());
    FunctionalSimulator sim(arch_, compressed.value());
    EXPECT_FALSE(sim.run().isOk());
}

TEST(FuncsimUnitTest, ReadRowRespectsParallelRowLimit)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    CodegenResult code;
    code.l0_elements = 64;
    code.l1_elements = 64;
    code.executable = true;
    MetaOp read;
    read.kind = MetaOpKind::kReadRow;
    read.core = 0;
    read.xb = 0;
    read.row = 0;
    read.len = 17; // > parallel_row 16
    read.cols = 4;
    read.src = {MemSpace::kL1, 0, 0};
    read.dst = {MemSpace::kL0, 0, 0};
    code.program.emit(read);
    FunctionalSimulator sim(arch, code);
    EXPECT_FALSE(sim.run().isOk());
}

TEST(FuncsimUnitTest, BufferOverrunCaught)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    CodegenResult code;
    code.l0_elements = 16;
    code.l1_elements = 16;
    code.executable = true;
    MetaOp mov;
    mov.kind = MetaOpKind::kMov;
    mov.src = {MemSpace::kL0, 0, 0};
    mov.dst = {MemSpace::kL0, 0, 10};
    mov.len = 10; // 10 + 10 > 16
    code.program.emit(mov);
    FunctionalSimulator sim(arch, code);
    EXPECT_FALSE(sim.run().isOk());
}

TEST(FuncsimUnitTest, ReadCoreWithoutWeightsFails)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kCM);
    CodegenResult code;
    code.l0_elements = 4096;
    code.l1_elements = 16;
    code.executable = true;
    MetaOp read;
    read.kind = MetaOpKind::kReadCore;
    read.core = 0;
    read.core_params.is_conv = false;
    read.core_params.in_features = 4;
    read.core_params.out_features = 2;
    read.core_params.win_end = 1;
    code.program.emit(read);
    FunctionalSimulator sim(arch, code);
    EXPECT_FALSE(sim.run().isOk());
}

// ----- reference executor sanity ---------------------------------------------

TEST(ReferenceShiftsTest, CalibratedShiftsAreReused)
{
    Graph g = models::convReluToy();
    Rng rng(8);
    g.randomizeWeights(rng);
    const auto inputs = randomInputs(g, 21);
    auto first = runReference(g, inputs);
    ASSERT_TRUE(first.isOk());
    auto second = runReference(g, inputs, first.value().shifts);
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(first.value().output(g), second.value().output(g));
}

} // namespace
} // namespace cimmlc
