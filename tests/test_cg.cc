/**
 * @file
 * Tests for CG-grained optimization: the duplication allocator (checked
 * against brute force on small instances), segmentation behaviour, and
 * the CG result structure.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.h"
#include "graph/models.h"
#include "sched/cg.h"

namespace cimmlc {
namespace {

// ----- allocator unit tests -------------------------------------------------

TEST(AllocateDupTest, SingleStageGetsAllCores)
{
    const auto dup = allocateDuplication({100.0}, {1}, 8,
                                         /*pipelined=*/false);
    EXPECT_EQ(dup[0], 8);
}

TEST(AllocateDupTest, RespectsBudget)
{
    const auto dup = allocateDuplication({100.0, 100.0}, {2, 3}, 10,
                                         /*pipelined=*/false);
    EXPECT_LE(dup[0] * 2 + dup[1] * 3, 10);
    EXPECT_GE(dup[0], 1);
    EXPECT_GE(dup[1], 1);
}

TEST(AllocateDupTest, BudgetTooSmallFallsBackToOnes)
{
    const auto dup = allocateDuplication({10.0, 10.0}, {6, 6}, 5, true);
    EXPECT_EQ(dup[0], 1);
    EXPECT_EQ(dup[1], 1);
}

TEST(AllocateDupTest, PipelinedBalancesBottleneck)
{
    // Stage 0 is 4x slower; min-max should give it ~4x the replicas.
    const auto dup =
        allocateDuplication({400.0, 100.0}, {1, 1}, 10, true);
    const double s0 = 400.0 / static_cast<double>(dup[0]);
    const double s1 = 100.0 / static_cast<double>(dup[1]);
    EXPECT_NEAR(s0, s1, 60.0);
    EXPECT_LE(dup[0] + dup[1], 10);
}

TEST(AllocateDupTest, FixedStagesConsumeNoCores)
{
    const auto dup =
        allocateDuplication({100.0, 50.0}, {1, 0}, 4, true);
    EXPECT_EQ(dup[1], 1); // fixed digital stage
    EXPECT_EQ(dup[0], 4);
}

TEST(AllocateDupTest, CapsRespected)
{
    const auto dup = allocateDuplication({100.0}, {1}, 16,
                                         /*pipelined=*/false, {3});
    EXPECT_EQ(dup[0], 3);
}

TEST(AllocateDupTest, FloorsStopWastedReplicas)
{
    // The stage floors at 50 cycles; beyond 2 replicas there is no gain.
    const auto dup = allocateDuplication({100.0}, {1}, 16,
                                         /*pipelined=*/false, {},
                                         {50.0});
    EXPECT_EQ(dup[0], 2);
}

/** Brute-force min-sum optimum for two stages. */
double
bruteForceMinSum(double l0, double l1, std::int64_t c0, std::int64_t c1,
                 std::int64_t budget)
{
    double best = 1e300;
    for (std::int64_t d0 = 1; d0 * c0 <= budget; ++d0) {
        for (std::int64_t d1 = 1; d0 * c0 + d1 * c1 <= budget; ++d1) {
            best = std::min(best, l0 / static_cast<double>(d0) +
                                      l1 / static_cast<double>(d1));
        }
    }
    return best;
}

class AllocatorOptimalityTest
    : public testing::TestWithParam<std::tuple<double, double, int, int>>
{
};

TEST_P(AllocatorOptimalityTest, GreedyMatchesBruteForceMinSum)
{
    const auto [l0, l1, c0, c1] = GetParam();
    const std::int64_t budget = 12;
    const auto dup = allocateDuplication({l0, l1},
                                         {c0, c1}, budget, false);
    const double achieved = l0 / static_cast<double>(dup[0]) +
                            l1 / static_cast<double>(dup[1]);
    const double optimal = bruteForceMinSum(l0, l1, c0, c1, budget);
    EXPECT_NEAR(achieved, optimal, optimal * 0.05)
        << "l0=" << l0 << " l1=" << l1 << " c0=" << c0 << " c1=" << c1;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllocatorOptimalityTest,
    testing::Values(std::make_tuple(100.0, 100.0, 1, 1),
                    std::make_tuple(400.0, 100.0, 1, 1),
                    std::make_tuple(100.0, 400.0, 2, 1),
                    std::make_tuple(1000.0, 10.0, 1, 3),
                    std::make_tuple(64.0, 512.0, 3, 2)));

// ----- full CG runs -----------------------------------------------------------

TEST(CgTest, SingleSegmentWhenModelFits)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = runCgOptimization(g, arch, ScheduleOptions::cgOnly());
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().segments.size(), 1u);
}

TEST(CgTest, SegmentsWhenModelExceedsChip)
{
    const Graph g = models::vgg16();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = runCgOptimization(g, arch, ScheduleOptions::cgOnly());
    ASSERT_TRUE(result.isOk());
    EXPECT_GT(result.value().segments.size(), 1u);
    // Later segments pay reprogramming.
    EXPECT_DOUBLE_EQ(result.value().segments[0].reload_cycles, 0.0);
    EXPECT_GT(result.value().segments[1].reload_cycles, 0.0);
}

TEST(CgTest, CoresStayWithinBudgetPerSegment)
{
    const Graph g = models::vgg16();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = runCgOptimization(g, arch, ScheduleOptions::cgOnly());
    ASSERT_TRUE(result.isOk());
    for (const Segment &segment : result.value().segments)
        EXPECT_LE(segment.cores_used, arch.chip.coreNumber());
}

TEST(CgTest, EveryNodeGetsDecision)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = runCgOptimization(g, arch, ScheduleOptions::cgOnly());
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().decisions.size(), g.nodeCount());
}

TEST(CgTest, NoOptimizationMeansNoDuplication)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto result = runCgOptimization(g, arch, ScheduleOptions::none());
    ASSERT_TRUE(result.isOk());
    for (const auto &[node, decision] : result.value().decisions)
        EXPECT_EQ(decision.duplication, 1);
}

TEST(CgTest, DuplicationNeverSlowsDown)
{
    const Graph g = models::resnet34();
    const CimArchitecture arch = presets::isaacBaseline();
    auto none = runCgOptimization(g, arch, ScheduleOptions::none());
    ScheduleOptions dup_only = ScheduleOptions::none();
    dup_only.cg_duplication = true;
    auto dup = runCgOptimization(g, arch, dup_only);
    ASSERT_TRUE(none.isOk() && dup.isOk());
    double t_none = 0.0, t_dup = 0.0;
    for (const Segment &s : none.value().segments)
        t_none += s.latency_cycles;
    for (const Segment &s : dup.value().segments)
        t_dup += s.latency_cycles;
    EXPECT_LE(t_dup, t_none * 1.0001);
}

TEST(CgTest, OperatorLargerThanChipGetsSplits)
{
    const Graph g = models::vgg16();
    const CimArchitecture arch = presets::puma();
    auto result = runCgOptimization(g, arch, ScheduleOptions::cgOnly());
    ASSERT_TRUE(result.isOk());
    bool any_split = false;
    for (const auto &[node, decision] : result.value().decisions)
        any_split |= decision.chip_splits > 1;
    EXPECT_TRUE(any_split);
}

TEST(CgTest, MoreCoresNeverHurt)
{
    const Graph g = models::resnet18();
    CimArchitecture small = presets::isaacBaseline();
    small.chip.core_rows = 16;
    small.chip.core_cols = 16; // 256 cores
    CimArchitecture big = presets::isaacBaseline(); // 768 cores
    auto small_run =
        runCgOptimization(g, small, ScheduleOptions::cgOnly());
    auto big_run = runCgOptimization(g, big, ScheduleOptions::cgOnly());
    ASSERT_TRUE(small_run.isOk() && big_run.isOk());
    double t_small = 0.0, t_big = 0.0;
    for (const Segment &s : small_run.value().segments)
        t_small += s.latency_cycles + s.reload_cycles;
    for (const Segment &s : big_run.value().segments)
        t_big += s.latency_cycles + s.reload_cycles;
    EXPECT_LE(t_big, t_small * 1.0001);
}

} // namespace
} // namespace cimmlc
