/**
 * @file
 * Incremental recompilation through the stage-level artifact cache:
 * an unchanged request replays every stage after load, mutating exactly
 * one stage input re-runs only the invalidated suffix, and every warm
 * report stays byte-identical to a cache-less compile of the same
 * request (timing and cache-provenance fields aside).
 */
#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "cache/artifact_cache.h"
#include "compiler/session.h"

namespace cimmlc {
namespace {

CompileRequest
baseRequest()
{
    CompileRequest request;
    request.model = "lenet5";
    request.arch = "isaac-baseline";
    request.opt = "full";
    request.lint = true;
    request.outputs.schedule_report = true;
    request.outputs.flow_text = true;
    request.outputs.verify = true;
    return request;
}

CompileArtifacts
runWith(CompileRequest request, ArtifactCache *cache)
{
    request.artifact_cache = cache;
    CompilerSession session(std::move(request));
    auto result = session.run();
    EXPECT_TRUE(result.isOk()) << result.status().toString();
    return std::move(result).value();
}

/** The report with timing and cache-provenance noise masked out — the
 * invariant part a warm replay must reproduce byte for byte. */
std::string
normalizedReport(const CompileArtifacts &artifacts)
{
    static const std::regex wall("\"wall_ms\": [0-9.eE+-]+");
    static const std::regex cached("\"cached\": (true|false)");
    return std::regex_replace(
        std::regex_replace(artifacts.toConfig().dump(true), wall,
                           "\"wall_ms\": X"),
        cached, "\"cached\": X");
}

/** Which stages replayed, by name, in pipeline order. */
std::vector<std::string>
replayedStages(const CompileArtifacts &artifacts)
{
    std::vector<std::string> replayed;
    for (const StageTrace &trace : artifacts.stages)
        if (trace.cached)
            replayed.push_back(compileStageName(trace.stage));
    return replayed;
}

TEST(IncrementalCompileTest, IdenticalRequestReplaysEverythingButLoad)
{
    ArtifactCache cache;
    const CompileArtifacts cold = runWith(baseRequest(), &cache);
    EXPECT_EQ(CompilerSession::cachedStageCount(cold), 0u);

    const CompileArtifacts warm = runWith(baseRequest(), &cache);
    // load always executes — it derives the base digest every stage
    // key chains from; everything downstream replays.
    EXPECT_EQ(CompilerSession::cachedStageCount(warm),
              warm.stages.size() - 1);
    EXPECT_EQ(replayedStages(warm),
              (std::vector<std::string>{"validate", "schedule",
                                        "codegen", "lint", "perf",
                                        "verify"}));
    EXPECT_EQ(normalizedReport(warm), normalizedReport(cold));
}

TEST(IncrementalCompileTest, ArchChangeInvalidatesEveryStage)
{
    ArtifactCache cache;
    runWith(baseRequest(), &cache);

    CompileRequest changed = baseRequest();
    changed.arch = "puma";
    const CompileArtifacts warm = runWith(changed, &cache);
    EXPECT_EQ(CompilerSession::cachedStageCount(warm), 0u);

    // And the result is exactly what a cache-less compile produces.
    const CompileArtifacts reference = runWith(changed, nullptr);
    EXPECT_EQ(normalizedReport(warm), normalizedReport(reference));
}

TEST(IncrementalCompileTest, ScheduleOptionChangeReRunsOnlyTheSuffix)
{
    ArtifactCache cache;
    runWith(baseRequest(), &cache);

    CompileRequest changed = baseRequest();
    changed.opt = "cg+mvm";
    const CompileArtifacts warm = runWith(changed, &cache);
    // The schedule options feed every stage from schedule on; only
    // validate (keyed on the workload/arch digest alone) replays.
    EXPECT_EQ(replayedStages(warm),
              (std::vector<std::string>{"validate"}));

    const CompileArtifacts reference = runWith(changed, nullptr);
    EXPECT_EQ(normalizedReport(warm), normalizedReport(reference));
}

TEST(IncrementalCompileTest, CodegenOptionChangeKeepsSchedulePrefix)
{
    ArtifactCache cache;
    runWith(baseRequest(), &cache);

    CompileRequest changed = baseRequest();
    changed.codegen.max_ops = changed.codegen.max_ops - 1;
    const CompileArtifacts warm = runWith(changed, &cache);
    // Validate and schedule are upstream of the codegen parameters;
    // codegen, lint, perf, and verify all consume the emitted flow.
    EXPECT_EQ(replayedStages(warm),
              (std::vector<std::string>{"validate", "schedule"}));

    const CompileArtifacts reference = runWith(changed, nullptr);
    EXPECT_EQ(normalizedReport(warm), normalizedReport(reference));
}

TEST(IncrementalCompileTest, EnablingLintOnlyComputesTheLintStage)
{
    CompileRequest unlinted = baseRequest();
    unlinted.lint = false;

    ArtifactCache cache;
    runWith(unlinted, &cache);

    const CompileArtifacts warm = runWith(baseRequest(), &cache);
    // The lint stage is new work; every other stage's inputs are
    // untouched by the flag and replay from the unlinted run.
    std::size_t lint_recomputes = 0;
    for (const StageTrace &trace : warm.stages) {
        if (trace.stage == CompileStage::kLoad)
            continue;
        if (trace.stage == CompileStage::kLint) {
            EXPECT_FALSE(trace.cached);
            ++lint_recomputes;
        } else {
            EXPECT_TRUE(trace.cached)
                << compileStageName(trace.stage) << " should replay";
        }
    }
    EXPECT_EQ(lint_recomputes, 1u);
}

TEST(IncrementalCompileTest, VerifySeedChangeReRunsOnlyVerify)
{
    ArtifactCache cache;
    runWith(baseRequest(), &cache);

    CompileRequest changed = baseRequest();
    changed.verify_seed = 99;
    const CompileArtifacts warm = runWith(changed, &cache);
    EXPECT_EQ(replayedStages(warm),
              (std::vector<std::string>{"validate", "schedule",
                                        "codegen", "lint", "perf"}));
    ASSERT_FALSE(warm.stages.empty());
    EXPECT_EQ(warm.stages.back().stage, CompileStage::kVerify);
    EXPECT_FALSE(warm.stages.back().cached);
}

TEST(IncrementalCompileTest, ReplayedStagesReportReplayWallTime)
{
    ArtifactCache cache;
    runWith(baseRequest(), &cache);
    const CompileArtifacts warm = runWith(baseRequest(), &cache);
    for (const StageTrace &trace : warm.stages) {
        if (!trace.cached)
            continue;
        // Replays report their own (tiny) wall time, never the
        // original compute time — the stale-latency bug this cache
        // design fixes. A replayed stage cannot take seconds.
        EXPECT_GE(trace.wall_ms, 0.0);
        EXPECT_LT(trace.wall_ms, 10000.0);
    }
    // And the report serializer tags them.
    const std::string report = warm.toConfig().dump(true);
    EXPECT_NE(report.find("\"cached\": true"), std::string::npos);
}

TEST(IncrementalCompileTest, LintStrictVerdictReappliesOnReplay)
{
    // lint_strict is excluded from the lint stage key: the findings
    // are identical either way, only the verdict differs. A strict
    // session replaying a lax session's lint artifacts must still
    // fail when the findings carry errors — and lenet5's clean flow
    // must still pass.
    ArtifactCache cache;
    const CompileArtifacts lax = runWith(baseRequest(), &cache);
    ASSERT_TRUE(lax.lint.has_value());

    CompileRequest strict = baseRequest();
    strict.lint_strict = true;
    strict.artifact_cache = &cache;
    CompilerSession session(std::move(strict));
    auto result = session.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_GT(CompilerSession::cachedStageCount(result.value()), 0u);
}

} // namespace
} // namespace cimmlc
