/**
 * @file
 * Tests for the dimension-binding schedule option (Figure 7): scheduling
 * with bit-plane crossbars, its structural consequences, and the codegen
 * guard.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "graph/models.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

ScheduleOptions
bitPlaneOptions()
{
    ScheduleOptions options = ScheduleOptions::full();
    options.binding = DimensionBinding::bitsToCrossbars();
    return options;
}

TEST(BindingOptionTest, SchedulesWithBitPlanes)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(g, arch, bitPlaneOptions());
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    for (const OperatorMapping &m : schedule.value().ops) {
        if (!m.is_cim)
            continue;
        EXPECT_EQ(m.grid.bit_planes, arch.cellsPerWeight());
        // Wider logical columns per array than the default binding.
        EXPECT_EQ(m.grid.logical_cols_per_tile, arch.xbar.cols);
    }
}

TEST(BindingOptionTest, BitPlanesUseMoreArraysPerReplica)
{
    const Graph g = models::resnet18();
    const CimArchitecture arch = presets::isaacBaseline();
    auto def = scheduleGraph(g, arch, ScheduleOptions::full());
    auto planes = scheduleGraph(g, arch, bitPlaneOptions());
    ASSERT_TRUE(def.isOk() && planes.isOk());
    // Per-replica physical crossbars never shrink under bit planes on a
    // 2-bit-cell chip (4 planes vs 4 bit slices packed into columns).
    for (const OperatorMapping &m : def.value().ops) {
        if (!m.is_cim)
            continue;
        const OperatorMapping &p = planes.value().mapping(m.node);
        EXPECT_GE(p.grid.physicalCrossbars(),
                  m.grid.physicalCrossbars() / 2)
            << "node " << m.node;
    }
}

TEST(BindingOptionTest, SingleBitCellsMakeBindingsEquivalent)
{
    // With 8-bit cells, one cell holds a full weight: both bindings
    // degenerate to the same tiling.
    const Graph g = models::lenet5();
    CimArchitecture arch = presets::isaacBaseline();
    arch.xbar.cell_bits = 8;
    auto def = scheduleGraph(g, arch, ScheduleOptions::full());
    auto planes = scheduleGraph(g, arch, bitPlaneOptions());
    ASSERT_TRUE(def.isOk() && planes.isOk());
    EXPECT_DOUBLE_EQ(def.value().total_latency_cycles,
                     planes.value().total_latency_cycles);
}

TEST(BindingOptionTest, NarrowCoresCannotHoldOneBitPlaneVxb)
{
    // The Table 2 chip has 2 arrays per core but a bit-plane VXB needs
    // 4 (8-bit weights on 2-bit cells): the MVM level rejects it.
    const Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, bitPlaneOptions());
    EXPECT_FALSE(schedule.isOk());
    EXPECT_EQ(schedule.status().code(),
              StatusCode::kFailedPrecondition);
}

TEST(BindingOptionTest, CodegenGuardsBitPlanes)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(g, arch, bitPlaneOptions());
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    CodegenOptions codegen;
    codegen.unroll = false;
    auto code = generateProgram(g, arch, schedule.value(), codegen);
    EXPECT_FALSE(code.isOk());
    EXPECT_EQ(code.status().code(), StatusCode::kUnimplemented);
}

TEST(BindingOptionTest, OptionStringMentionsBinding)
{
    EXPECT_NE(bitPlaneOptions().toString().find("bits-to-xb"),
              std::string::npos);
    EXPECT_EQ(ScheduleOptions::full().toString().find("bits-to-xb"),
              std::string::npos);
}

} // namespace
} // namespace cimmlc
