/**
 * @file
 * Tests for "mopcheck", the meta-operator dataflow analyzer: per-check
 * fault triggers (use-before-def, races, capacity, dead stores, unused
 * programming), live-range capacity semantics, shuffle invariance of
 * parallel-block findings, repeat-body deduplication, the collect-all
 * structural mode, fault injection into compiled flows, and a
 * clean-on-all-presets golden over fast model/arch pairs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/presets.h"
#include "compiler/session.h"
#include "mop/analyzer.h"
#include "mop/validator.h"

namespace cimmlc {
namespace {

// ----- op builders --------------------------------------------------------

MetaOp
movOp(const BufAddr &src, const BufAddr &dst, std::int64_t len)
{
    MetaOp op;
    op.kind = MetaOpKind::kMov;
    op.src = src;
    op.dst = dst;
    op.len = len;
    return op;
}

MetaOp
zeroOp(const BufAddr &dst, std::int64_t len)
{
    MetaOp op;
    op.kind = MetaOpKind::kDcom;
    op.func = dcomfunc::kZero;
    op.dst = dst;
    op.len = len;
    return op;
}

MetaOp
reluOp(const BufAddr &src, const BufAddr &dst, std::int64_t len)
{
    MetaOp op;
    op.kind = MetaOpKind::kDcom;
    op.func = dcomfunc::kRelu;
    op.src = src;
    op.dst = dst;
    op.len = len;
    return op;
}

MetaOp
writeXbOp(std::int64_t core, std::int64_t xb, std::int64_t rows)
{
    MetaOp op;
    op.kind = MetaOpKind::kWriteXb;
    op.core = core;
    op.xb = xb;
    op.len = rows; // no payload: programmed rows fall back to len
    op.rows = rows;
    op.cols = 32;
    return op;
}

MetaOp
readXbOp(std::int64_t core, std::int64_t xb, std::int64_t rows,
         std::int64_t cols, const BufAddr &src, const BufAddr &dst)
{
    MetaOp op;
    op.kind = MetaOpKind::kReadXb;
    op.core = core;
    op.xb = xb;
    op.len = 1;
    op.rows = rows;
    op.cols = cols;
    op.src = src;
    op.dst = dst;
    return op;
}

LiveInRegion
liveIn(MemSpace space, std::int64_t core, std::int64_t begin,
       std::int64_t end)
{
    LiveInRegion region;
    region.space = space;
    region.core = core;
    region.begin = begin;
    region.end = end;
    return region;
}

/** Dataflow-only options: the structural validator is exercised in its
 * own tests, and keeping it out isolates what each analyzer check
 * contributes. */
AnalyzeOptions
dataflowOnly()
{
    AnalyzeOptions options;
    options.structural = false;
    return options;
}

bool
hasCheck(const AnalyzeResult &result, const std::string &check)
{
    return std::any_of(result.diagnostics.begin(),
                       result.diagnostics.end(),
                       [&](const MopDiagnostic &diag) {
                           return diag.check == check;
                       });
}

// ----- clean flows --------------------------------------------------------

TEST(MopAnalyzerTest, CleanFlowReportsStatsOnly)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.emitInit(writeXbOp(0, 0, 27));
    program.emit(movOp({MemSpace::kL0, 0, 0}, {MemSpace::kL1, 0, 0}, 27));
    program.emit(zeroOp({MemSpace::kL0, 0, 64}, 32));
    program.emit(readXbOp(0, 0, 27, 32, {MemSpace::kL1, 0, 0},
                          {MemSpace::kL0, 0, 64}));
    program.emit(reluOp({MemSpace::kL0, 0, 64}, {MemSpace::kL0, 0, 64},
                        32));

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL0, 0, 0, 27));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(result.clean()) << result.table();
    EXPECT_EQ(result.statements, 5);
    EXPECT_EQ(result.ops, 5);
    EXPECT_EQ(result.crossbars_programmed, 1);
    EXPECT_EQ(result.l1_peak_live_elems, 27);
    EXPECT_NE(result.summary().find("mopcheck: clean"),
              std::string::npos);
}

// ----- use-before-def -----------------------------------------------------

TEST(MopAnalyzerTest, UseBeforeDefBuffer)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.emit(movOp({MemSpace::kL0, 0, 0}, {MemSpace::kL1, 0, 0}, 27));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    ASSERT_EQ(result.errors(), 1);
    EXPECT_EQ(result.diagnostics[0].check, "use-before-def-buffer");
    EXPECT_EQ(result.diagnostics[0].code,
              StatusCode::kFailedPrecondition);
    EXPECT_NE(result.diagnostics[0].message.find("never written"),
              std::string::npos);

    // The same read is fine once the region is declared live-in.
    AnalyzeOptions covered = dataflowOnly();
    covered.live_in.push_back(liveIn(MemSpace::kL0, 0, 0, 27));
    EXPECT_TRUE(analyzeProgram(program, arch, covered).clean());
}

TEST(MopAnalyzerTest, UseBeforeDefXbarAlsoFiresOnCompressedFlows)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.emit(readXbOp(0, 0, 27, 32, {MemSpace::kL1, 0, 0},
                          {MemSpace::kL0, 0, 64}));

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL1, 0, 0, 27));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(hasCheck(result, "use-before-def-xbar"))
        << result.table();

    // Crossbar state is per-instance, so the check stays sound on
    // compressed (non-executable) flows.
    options.executable = false;
    EXPECT_TRUE(hasCheck(analyzeProgram(program, arch, options),
                         "use-before-def-xbar"));
}

TEST(MopAnalyzerTest, UseBeforeDefCore)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    MopProgram program("p", "WLM");
    MetaOp conv;
    conv.kind = MetaOpKind::kReadCore;
    conv.core = 0;
    conv.core_params.is_conv = true;
    conv.core_params.in_channels = 1;
    conv.core_params.in_h = 4;
    conv.core_params.in_w = 4;
    conv.core_params.out_channels = 2;
    conv.core_params.kernel = 3;
    conv.core_params.stride = 1;
    conv.core_params.padding = 1;
    conv.src = {MemSpace::kL0, 0, 0};
    conv.dst = {MemSpace::kL0, 0, 64};
    program.emit(conv);

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL0, 0, 0, 16));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(hasCheck(result, "use-before-def-core"))
        << result.table();
}

// ----- races in parallel blocks -------------------------------------------

TEST(MopAnalyzerTest, RaceWriteWriteAndShuffleInvariance)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 0}, 16)),
         Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 8}, 16))}));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    ASSERT_TRUE(hasCheck(result, "race-write-write")) << result.table();

    // Permuting the arms must reproduce the identical report.
    MopProgram shuffled("p", "XBM");
    shuffled.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 8}, 16)),
         Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 0}, 16))}));
    const AnalyzeResult again =
        analyzeProgram(shuffled, arch, dataflowOnly());
    ASSERT_EQ(result.diagnostics.size(), again.diagnostics.size());
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        EXPECT_EQ(result.diagnostics[i].check, again.diagnostics[i].check);
        EXPECT_EQ(result.diagnostics[i].message,
                  again.diagnostics[i].message);
        EXPECT_EQ(result.diagnostics[i].stmt_index,
                  again.diagnostics[i].stmt_index);
    }
}

TEST(MopAnalyzerTest, RaceReadWrite)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 0}, 16)),
         Stmt::makeOp(reluOp({MemSpace::kL0, 0, 8},
                             {MemSpace::kL0, 0, 100}, 16))}));

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL0, 0, 0, 32));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(hasCheck(result, "race-read-write")) << result.table();
}

TEST(MopAnalyzerTest, OverlappingAccumulatesAreLegal)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.emitInit(writeXbOp(0, 0, 27));
    program.emitInit(writeXbOp(0, 1, 27));
    program.emit(zeroOp({MemSpace::kL0, 0, 64}, 32));
    // CIM reads accumulate commutatively, so two arms adding into the
    // same destination region do not race.
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(readXbOp(0, 0, 27, 32, {MemSpace::kL1, 0, 0},
                               {MemSpace::kL0, 0, 64})),
         Stmt::makeOp(readXbOp(0, 1, 27, 32, {MemSpace::kL1, 0, 0},
                               {MemSpace::kL0, 0, 64}))}));
    program.emit(reluOp({MemSpace::kL0, 0, 64}, {MemSpace::kL0, 0, 64},
                        32));

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL1, 0, 0, 27));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(result.clean()) << result.table();
}

TEST(MopAnalyzerTest, RaceXbarOnConflictingProgramming)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(writeXbOp(0, 0, 27)),
         Stmt::makeOp(writeXbOp(0, 0, 27))}));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    EXPECT_TRUE(hasCheck(result, "race-xbar")) << result.table();
}

TEST(MopAnalyzerTest, RaceCoreOnInstallVsUse)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kCM);
    MetaOp install;
    install.kind = MetaOpKind::kWriteCore;
    install.core = 0;
    MetaOp use;
    use.kind = MetaOpKind::kReadCore;
    use.core = 0;
    use.core_params.is_conv = false;
    use.core_params.in_features = 8;
    use.core_params.out_features = 4;
    use.src = {MemSpace::kL0, 0, 0};
    use.dst = {MemSpace::kL0, 0, 32};

    MopProgram program("p", "CM");
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeOp(install), Stmt::makeOp(use)}));

    AnalyzeOptions options = dataflowOnly();
    options.live_in.push_back(liveIn(MemSpace::kL0, 0, 0, 8));
    const AnalyzeResult result = analyzeProgram(program, arch, options);
    EXPECT_TRUE(hasCheck(result, "race-core")) << result.table();
}

// ----- dead stores and unused programming ---------------------------------

TEST(MopAnalyzerTest, DeadStoreWarnsOnlyWithoutInterveningRead)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram dead("p", "XBM");
    dead.emit(zeroOp({MemSpace::kL0, 0, 0}, 16));
    dead.emit(zeroOp({MemSpace::kL0, 0, 0}, 16));
    dead.emit(reluOp({MemSpace::kL0, 0, 0}, {MemSpace::kL0, 0, 64}, 16));

    const AnalyzeResult result =
        analyzeProgram(dead, arch, dataflowOnly());
    EXPECT_EQ(result.errors(), 0) << result.table();
    ASSERT_EQ(result.warnings(), 1);
    EXPECT_EQ(result.diagnostics[0].check, "dead-store");
    EXPECT_EQ(result.diagnostics[0].severity, DiagSeverity::kWarning);
    EXPECT_FALSE(result.clean());

    // A read between the two stores acquits the first one.
    MopProgram read("p", "XBM");
    read.emit(zeroOp({MemSpace::kL0, 0, 0}, 16));
    read.emit(reluOp({MemSpace::kL0, 0, 0}, {MemSpace::kL0, 0, 64}, 16));
    read.emit(zeroOp({MemSpace::kL0, 0, 0}, 16));
    EXPECT_EQ(analyzeProgram(read, arch, dataflowOnly()).warnings(), 0);
}

TEST(MopAnalyzerTest, UnusedAndOverwrittenXbarProgramming)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram unused("p", "XBM");
    unused.emitInit(writeXbOp(0, 0, 27));

    const AnalyzeResult warned =
        analyzeProgram(unused, arch, dataflowOnly());
    EXPECT_TRUE(hasCheck(warned, "xbar-unused-write")) << warned.table();
    EXPECT_EQ(warned.errors(), 0);

    // Reprogramming rows whose weights were never activated loses them.
    MopProgram clobbered("p", "XBM");
    clobbered.emitInit(writeXbOp(0, 0, 27));
    clobbered.emitInit(writeXbOp(0, 0, 27));
    const AnalyzeResult overwrote =
        analyzeProgram(clobbered, arch, dataflowOnly());
    EXPECT_TRUE(hasCheck(overwrote, "xbar-overwrite"))
        << overwrote.table();

    // Compressed flows only activate the representative replica's
    // crossbars, so neither conclusion is provable there.
    AnalyzeOptions compressed = dataflowOnly();
    compressed.executable = false;
    EXPECT_TRUE(analyzeProgram(unused, arch, compressed).clean());
    EXPECT_FALSE(hasCheck(analyzeProgram(clobbered, arch, compressed),
                          "xbar-overwrite"));
}

// ----- capacity -----------------------------------------------------------

TEST(MopAnalyzerTest, CapacityL1OverflowOnSimultaneousLiveRanges)
{
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    arch.core.l1_size_kib = 1.0; // 256 elements
    MopProgram program("p", "XBM");
    program.emit(zeroOp({MemSpace::kL1, 0, 0}, 200));
    program.emit(zeroOp({MemSpace::kL1, 0, 200}, 200));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    EXPECT_EQ(result.l1_peak_live_elems, 400);
    ASSERT_TRUE(hasCheck(result, "capacity-l1")) << result.table();
    const auto it = std::find_if(result.diagnostics.begin(),
                                 result.diagnostics.end(),
                                 [](const MopDiagnostic &d) {
                                     return d.check == "capacity-l1";
                                 });
    EXPECT_EQ(it->code, StatusCode::kResourceExhausted);
}

TEST(MopAnalyzerTest, CapacityLiveRangesEndAtLastUse)
{
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    arch.core.l1_size_kib = 1.0; // 256 elements
    // The first buffer dies (redefined) before the second is born, so
    // the peak is 200 elements, not 400.
    MopProgram program("p", "XBM");
    program.emit(zeroOp({MemSpace::kL1, 0, 0}, 200));
    program.emit(movOp({MemSpace::kL1, 0, 0}, {MemSpace::kL0, 0, 0},
                       200));
    program.emit(zeroOp({MemSpace::kL1, 0, 0}, 200));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    EXPECT_TRUE(result.clean()) << result.table();
    EXPECT_EQ(result.l1_peak_live_elems, 200);
}

TEST(MopAnalyzerTest, CapacityL0FollowsEnforcementKnob)
{
    CimArchitecture arch = presets::tutorialTable2(ComputeMode::kXBM);
    arch.chip.l0_size_kib = 1.0; // 256 elements
    MopProgram program("p", "XBM");
    program.emit(zeroOp({MemSpace::kL0, 0, 0}, 400));

    AnalyzeOptions options = dataflowOnly();
    EXPECT_TRUE(hasCheck(analyzeProgram(program, arch, options),
                         "capacity-l0"));

    // Emitted flows address a virtual L0 space: the finding is gated,
    // the statistic is not.
    options.validate.enforce_l0_capacity = false;
    const AnalyzeResult relaxed = analyzeProgram(program, arch, options);
    EXPECT_FALSE(hasCheck(relaxed, "capacity-l0")) << relaxed.table();
    EXPECT_EQ(relaxed.l0_peak_live_elems, 400);
}

// ----- repeat blocks ------------------------------------------------------

TEST(MopAnalyzerTest, RepeatFindingsDeduplicate)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    MopProgram program("p", "XBM");
    program.compute().push_back(Stmt::makeRepeat(
        3, {Stmt::makeOp(reluOp({MemSpace::kL0, 0, 0},
                                {MemSpace::kL0, 0, 64}, 16))}));

    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    EXPECT_EQ(result.errors(), 1) << result.table();
    EXPECT_EQ(result.diagnostics[0].check, "use-before-def-buffer");
}

TEST(MopAnalyzerTest, RepeatLoopCarriedDefUseIsClean)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    // Each iteration reads the previous iteration's store before
    // replacing it, so no iteration kills an unread value.
    MopProgram program("p", "XBM");
    program.emit(zeroOp({MemSpace::kL0, 0, 0}, 16));
    program.compute().push_back(Stmt::makeRepeat(
        4, {Stmt::makeOp(reluOp({MemSpace::kL0, 0, 0},
                                {MemSpace::kL0, 0, 0}, 16))}));
    const AnalyzeResult result =
        analyzeProgram(program, arch, dataflowOnly());
    EXPECT_TRUE(result.clean()) << result.table();

    // Whereas a body whose output is clobbered by the next iteration
    // without a read is a loop-carried dead store.
    MopProgram clobber("p", "XBM");
    clobber.compute().push_back(Stmt::makeRepeat(
        4, {Stmt::makeOp(zeroOp({MemSpace::kL0, 0, 0}, 16)),
            Stmt::makeOp(reluOp({MemSpace::kL0, 0, 0},
                                {MemSpace::kL0, 0, 64}, 16))}));
    EXPECT_TRUE(hasCheck(analyzeProgram(clobber, arch, dataflowOnly()),
                         "dead-store"));
}

// ----- structural pass integration ----------------------------------------

TEST(MopAnalyzerTest, StructuralFindingsCollectAll)
{
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    MopProgram program("p", "WLM");
    MetaOp bad_core;
    bad_core.kind = MetaOpKind::kReadXb;
    bad_core.core = 99;
    bad_core.len = 1;
    program.emit(bad_core);
    MetaOp bad_mov;
    bad_mov.kind = MetaOpKind::kMov;
    bad_mov.len = 0;
    program.emit(bad_mov);

    // Collect-all mode reports both violations in traversal order...
    const std::vector<MopDiagnostic> diags =
        collectProgramDiagnostics(program, arch);
    ASSERT_GE(diags.size(), 2u);
    EXPECT_EQ(diags[0].check, "struct-core-range");
    EXPECT_EQ(diags[1].check, "struct-mov");

    // ...while validateProgram keeps the first-error Status contract.
    const Status first = validateProgram(program, arch);
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(first.code(), diags[0].code);
    EXPECT_NE(first.message().find("core"), std::string::npos);

    // The full analyzer folds the same findings in ahead of dataflow.
    const AnalyzeResult result = analyzeProgram(program, arch);
    EXPECT_TRUE(hasCheck(result, "struct-core-range"));
    EXPECT_TRUE(hasCheck(result, "struct-mov"));
}

// ----- fault injection into compiled flows --------------------------------

class CompiledFlowFaultTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto arch = presets::byName("isaac-baseline");
        ASSERT_TRUE(arch.isOk());
        arch_ = std::move(arch.value());

        CompileRequest request;
        request.model = "lenet5";
        request.arch = "isaac-baseline";
        request.threads = 1;
        CompilerSession session(std::move(request));
        auto result = session.run();
        ASSERT_TRUE(result.isOk()) << result.status().toString();
        artifacts_ = std::move(result.value());
        ASSERT_TRUE(artifacts_.code.has_value());
    }

    /** Analyzer options matching the session lint stage, minus the
     * live-in plumbing the faults below do not need. */
    AnalyzeOptions
    lintLikeOptions() const
    {
        AnalyzeOptions options;
        options.structural = false;
        options.executable = false; // sound subset: no live-in needed
        return options;
    }

    /** First `parallel {}` block with a CIM-read arm, searching through
     * repeat bodies. */
    static Stmt *
    findCimParallel(std::vector<Stmt> &stmts)
    {
        for (Stmt &stmt : stmts) {
            if (stmt.kind == Stmt::Kind::kParallel) {
                for (const Stmt &arm : stmt.body) {
                    if (arm.kind == Stmt::Kind::kOp &&
                        (arm.op.kind == MetaOpKind::kReadXb ||
                         arm.op.kind == MetaOpKind::kReadRow))
                        return &stmt;
                }
            }
            if (stmt.kind != Stmt::Kind::kOp) {
                if (Stmt *found = findCimParallel(stmt.body))
                    return found;
            }
        }
        return nullptr;
    }

    CimArchitecture arch_;
    CompileArtifacts artifacts_;
};

TEST_F(CompiledFlowFaultTest, DroppedWeightLoadIsCaught)
{
    MopProgram faulty = artifacts_.code->program;
    ASSERT_FALSE(faulty.init().empty());
    ASSERT_EQ(faulty.init().front().kind, Stmt::Kind::kOp);
    faulty.init().erase(faulty.init().begin());

    const AnalyzeResult result =
        analyzeProgram(faulty, arch_, lintLikeOptions());
    EXPECT_TRUE(hasCheck(result, "use-before-def-xbar"))
        << result.summary();
    EXPECT_GT(result.errors(), 0);
}

TEST_F(CompiledFlowFaultTest, ParallelArmsSharingDstBufferRace)
{
    MopProgram faulty = artifacts_.code->program;
    Stmt *block = findCimParallel(faulty.compute());
    ASSERT_NE(block, nullptr);
    const MetaOp *victim = nullptr;
    for (const Stmt &arm : block->body) {
        if (arm.kind == Stmt::Kind::kOp &&
            (arm.op.kind == MetaOpKind::kReadXb ||
             arm.op.kind == MetaOpKind::kReadRow)) {
            victim = &arm.op;
            break;
        }
    }
    ASSERT_NE(victim, nullptr);
    // A sibling arm plain-writing the victim's accumulation target is
    // order-dependent: the block is no longer commutative.
    block->body.push_back(
        Stmt::makeOp(zeroOp(victim->dst, victim->cols)));

    const AnalyzeResult result =
        analyzeProgram(faulty, arch_, lintLikeOptions());
    EXPECT_TRUE(hasCheck(result, "race-write-write"))
        << result.summary();
}

// ----- clean-on-all-presets golden ----------------------------------------

/** Every fast bundled model must lint clean on every bundled arch; the
 * full model set is pinned by the batch/CLI sweeps (large models are
 * too slow for a unit test on one core). */
TEST(MopAnalyzerGoldenTest, FastPresetPairsLintClean)
{
    const std::vector<std::string> fast_models = {
        "mlp", "lenet5", "conv_relu_toy", "macro_cnn", "inception_toy"};
    for (const std::string &model : fast_models) {
        for (const std::string &arch : presets::availablePresets()) {
            CompileRequest request;
            request.model = model;
            request.arch = arch;
            request.threads = 1;
            request.lint = true;
            request.lint_strict = true;
            CompilerSession session(std::move(request));
            auto result = session.run();
            ASSERT_TRUE(result.isOk())
                << model << " x " << arch << ": "
                << result.status().toString();
            ASSERT_TRUE(result.value().lint.has_value());
            EXPECT_TRUE(result.value().lint->clean())
                << model << " x " << arch << ":\n"
                << result.value().lint->table();
        }
    }
}

} // namespace
} // namespace cimmlc
