/**
 * @file
 * Tests for graph text serialization: hand-written documents, round
 * trips over the model zoo, and malformed-input rejection.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/models.h"
#include "graph/reference.h"
#include "graph/serialize.h"

namespace cimmlc {
namespace {

constexpr const char *kToyText = R"({
    "name": "toy",
    "inputs": [{"name": "image", "dims": [1, 3, 8, 8]}],
    "nodes": [
        {"op": "conv2d", "name": "conv", "inputs": ["image"],
         "out_channels": 4, "kernel": 3, "stride": 1, "padding": 1},
        {"op": "relu", "name": "act", "inputs": ["conv"]},
        {"op": "maxpool2d", "name": "pool", "inputs": ["act"],
         "kernel": 2, "stride": 2},
        {"op": "flatten", "name": "flat", "inputs": ["pool"]},
        {"op": "linear", "name": "fc", "inputs": ["flat"],
         "out_features": 10}
    ],
    "outputs": ["fc"]
})";

TEST(GraphSerializeTest, ParsesHandWrittenDocument)
{
    auto graph = graphFromText(kToyText);
    ASSERT_TRUE(graph.isOk()) << graph.status().toString();
    const Graph &g = graph.value();
    EXPECT_EQ(g.name(), "toy");
    EXPECT_EQ(g.nodeCount(), 6u); // input + 5 ops
    EXPECT_TRUE(g.validate().isOk());
    EXPECT_EQ(g.tensor(g.outputs()[0]).dims,
              (std::vector<std::int64_t>{1, 10}));
}

TEST(GraphSerializeTest, ParsedGraphExecutes)
{
    auto graph_or = graphFromText(kToyText);
    ASSERT_TRUE(graph_or.isOk());
    Graph g = std::move(graph_or).value();
    Rng rng(3);
    g.randomizeWeights(rng);
    Int8Tensor image(TensorShape({1, 3, 8, 8}));
    image.fillRandom(rng, -10, 10);
    auto result = runReference(g, {{g.inputs()[0], image}});
    EXPECT_TRUE(result.isOk()) << result.status().toString();
}

class GraphRoundTripTest : public testing::TestWithParam<std::string>
{
};

TEST_P(GraphRoundTripTest, SerializeParseSerializeIsStable)
{
    const Graph original = models::byName(GetParam());
    const ConfigValue doc = graphToConfig(original);
    auto restored = graphFromConfig(doc);
    ASSERT_TRUE(restored.isOk())
        << GetParam() << ": " << restored.status().toString();
    const Graph &g = restored.value();
    EXPECT_EQ(g.nodeCount(), original.nodeCount());
    EXPECT_EQ(g.totalWeights(), original.totalWeights());
    EXPECT_EQ(g.totalMacs(), original.totalMacs());
    // Output shapes survive the trip.
    ASSERT_EQ(g.outputs().size(), original.outputs().size());
    for (std::size_t i = 0; i < g.outputs().size(); ++i) {
        EXPECT_EQ(g.tensor(g.outputs()[i]).dims,
                  original.tensor(original.outputs()[i]).dims);
    }
    // A second trip is byte-identical.
    EXPECT_EQ(graphToConfig(g).dump(), doc.dump());
}

INSTANTIATE_TEST_SUITE_P(Zoo, GraphRoundTripTest,
                         testing::Values("lenet5", "macro_cnn", "vgg7",
                                         "resnet18", "vit_tiny",
                                         "conv_relu_toy", "mlp"));

TEST(GraphSerializeTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(graphFromText("[]").isOk());
    EXPECT_FALSE(graphFromText(R"({"inputs": []})").isOk());
    // Unknown op.
    EXPECT_FALSE(graphFromText(R"({
        "inputs": [{"name": "x", "dims": [1, 4]}],
        "nodes": [{"op": "teleport", "inputs": ["x"]}],
        "outputs": ["teleport_1"]
    })").isOk());
    // Dangling reference.
    EXPECT_FALSE(graphFromText(R"({
        "inputs": [{"name": "x", "dims": [1, 4]}],
        "nodes": [{"op": "relu", "name": "r", "inputs": ["ghost"]}],
        "outputs": ["r"]
    })").isOk());
    // Missing required attribute.
    EXPECT_FALSE(graphFromText(R"({
        "inputs": [{"name": "x", "dims": [1, 4]}],
        "nodes": [{"op": "linear", "name": "fc", "inputs": ["x"]}],
        "outputs": ["fc"]
    })").isOk());
    // Duplicate names.
    EXPECT_FALSE(graphFromText(R"({
        "inputs": [{"name": "x", "dims": [1, 4]}],
        "nodes": [{"op": "relu", "name": "x", "inputs": ["x"]}],
        "outputs": ["x"]
    })").isOk());
    // Unknown output.
    EXPECT_FALSE(graphFromText(R"({
        "inputs": [{"name": "x", "dims": [1, 4]}],
        "nodes": [{"op": "relu", "name": "r", "inputs": ["x"]}],
        "outputs": ["nope"]
    })").isOk());
}

TEST(GraphSerializeTest, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "/cimmlc_graph.json";
    ASSERT_TRUE(saveConfigFile(path, graphToConfig(models::lenet5()))
                    .isOk());
    auto loaded = graphFromFile(path);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().nodeCount(), models::lenet5().nodeCount());
    EXPECT_FALSE(graphFromFile("/no/such/graph.json").isOk());
}

} // namespace
} // namespace cimmlc
