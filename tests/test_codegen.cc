/**
 * @file
 * Tests for meta-operator code generation: structure of the emitted
 * flows per mode, validator compliance, memory layout, compressed vs
 * unrolled emission, and the op-budget guard.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "common/rng.h"
#include "graph/models.h"
#include "mop/validator.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

Graph
weightedToy()
{
    Graph g = models::convReluToy();
    Rng rng(3);
    g.randomizeWeights(rng);
    return g;
}

CodegenResult
generateFor(const Graph &g, ComputeMode mode, bool unroll = true)
{
    const CimArchitecture arch = presets::tutorialTable2(mode);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    CIMMLC_CHECK(schedule.isOk());
    CodegenOptions options;
    options.unroll = unroll;
    auto code = generateProgram(g, arch, schedule.value(), options);
    CIMMLC_CHECK(code.isOk()) << code.status().toString();
    return std::move(code).value();
}

TEST(CodegenTest, CmFlowStructure)
{
    const Graph g = weightedToy();
    const CodegenResult code = generateFor(g, ComputeMode::kCM);
    const MopCounts counts = code.program.counts();
    EXPECT_EQ(counts.cim_writes, 2); // one writecore per replica
    EXPECT_EQ(counts.cim_reads, 2);  // parallel readcore pair
    EXPECT_GE(counts.dcom, 2);       // requant + relu
    EXPECT_TRUE(code.executable);
}

TEST(CodegenTest, XbmFlowUsesWritexbAndReadxb)
{
    const Graph g = weightedToy();
    const CodegenResult code = generateFor(g, ComputeMode::kXBM);
    bool saw_writexb = false, saw_readxb = false, saw_readrow = false;
    code.program.forEachOp([&](const MetaOp &op) {
        saw_writexb |= op.kind == MetaOpKind::kWriteXb;
        saw_readxb |= op.kind == MetaOpKind::kReadXb;
        saw_readrow |= op.kind == MetaOpKind::kReadRow;
    });
    EXPECT_TRUE(saw_writexb);
    EXPECT_TRUE(saw_readxb);
    EXPECT_FALSE(saw_readrow);
    // One CIM read per window per tile: 1024 windows x 1 tile.
    EXPECT_EQ(code.program.counts().cim_reads, 1024);
}

TEST(CodegenTest, WlmFlowUsesRowOps)
{
    const Graph g = weightedToy();
    const CodegenResult code = generateFor(g, ComputeMode::kWLM);
    bool saw_writerow = false, saw_readrow = false, saw_readxb = false;
    std::int64_t max_readrow_len = 0;
    code.program.forEachOp([&](const MetaOp &op) {
        saw_writerow |= op.kind == MetaOpKind::kWriteRow;
        saw_readxb |= op.kind == MetaOpKind::kReadXb;
        if (op.kind == MetaOpKind::kReadRow) {
            saw_readrow = true;
            max_readrow_len = std::max(max_readrow_len, op.len);
        }
    });
    EXPECT_TRUE(saw_writerow);
    EXPECT_TRUE(saw_readrow);
    EXPECT_FALSE(saw_readxb);
    EXPECT_LE(max_readrow_len, 16); // Table 2 parallel_row
}

class CodegenValidationTest : public testing::TestWithParam<ComputeMode>
{
};

TEST_P(CodegenValidationTest, GeneratedFlowsValidate)
{
    const Graph g = weightedToy();
    const CimArchitecture arch = presets::tutorialTable2(GetParam());
    const CodegenResult code = generateFor(g, GetParam());
    EXPECT_TRUE(validateProgram(code.program, arch).isOk());
}

INSTANTIATE_TEST_SUITE_P(Modes, CodegenValidationTest,
                         testing::Values(ComputeMode::kCM,
                                         ComputeMode::kXBM,
                                         ComputeMode::kWLM));

TEST(CodegenTest, TensorOffsetsCoverAllTensors)
{
    const Graph g = weightedToy();
    const CodegenResult code = generateFor(g, ComputeMode::kXBM);
    for (const ValueInfo &t : g.tensors())
        EXPECT_TRUE(code.tensor_offsets.count(t.id)) << t.name;
    EXPECT_GT(code.l0_elements, 0);
    EXPECT_GT(code.l1_elements, 0);
}

TEST(CodegenTest, ShapeOnlyNodesAliasRegions)
{
    Graph g("t");
    TensorId in = g.addInput("in", {1, 4, 4, 4});
    TensorId flat = g.flatten(in);
    TensorId out = g.linear(flat, 8);
    g.markOutput(out);
    Rng rng(2);
    g.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    auto code = generateProgram(g, arch, schedule.value());
    ASSERT_TRUE(code.isOk());
    EXPECT_EQ(code.value().tensor_offsets.at(in),
              code.value().tensor_offsets.at(flat));
}

TEST(CodegenTest, CompressedEmissionUsesRepeat)
{
    const Graph g = weightedToy();
    const CodegenResult code =
        generateFor(g, ComputeMode::kXBM, /*unroll=*/false);
    EXPECT_FALSE(code.executable);
    bool saw_big_repeat = false;
    for (const Stmt &stmt : code.program.compute())
        saw_big_repeat |= stmt.kind == Stmt::Kind::kRepeat &&
                          stmt.repeat == 1024;
    EXPECT_TRUE(saw_big_repeat);
    // Compressed flow is tiny compared with the unrolled one.
    const CodegenResult unrolled = generateFor(g, ComputeMode::kXBM);
    EXPECT_LT(code.program.compute().size(),
              unrolled.program.compute().size());
}

TEST(CodegenTest, OpBudgetGuardTrips)
{
    Graph g = models::vgg7();
    Rng rng(5);
    g.randomizeWeights(rng);
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    CodegenOptions options;
    options.unroll = true;
    options.max_ops = 1000; // far too small for VGG7
    auto code = generateProgram(g, arch, schedule.value(), options);
    EXPECT_FALSE(code.isOk());
    EXPECT_EQ(code.status().code(), StatusCode::kResourceExhausted);
}

TEST(CodegenTest, UnrolledNeedsWeights)
{
    Graph g = models::convReluToy(); // no weights installed
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    auto code = generateProgram(g, arch, schedule.value());
    EXPECT_FALSE(code.isOk());
    EXPECT_EQ(code.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CodegenTest, CompressedWorksWithoutWeights)
{
    Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    CodegenOptions options;
    options.unroll = false;
    EXPECT_TRUE(
        generateProgram(g, arch, schedule.value(), options).isOk());
}

TEST(CodegenTest, RequantShiftsPropagate)
{
    const Graph g = weightedToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    CodegenOptions options;
    options.shifts[1] = RequantParams{5};
    auto code = generateProgram(g, arch, schedule.value(), options);
    ASSERT_TRUE(code.isOk());
    bool found = false;
    code.value().program.forEachOp([&](const MetaOp &op) {
        if (op.kind == MetaOpKind::kDcom &&
            op.func == dcomfunc::kRequant) {
            EXPECT_EQ(op.dcom_params.shift, 5);
            found = true;
        }
    });
    EXPECT_TRUE(found);
}

TEST(CodegenTest, OriginAnnotationsPointAtGraphNodes)
{
    const Graph g = weightedToy();
    const CodegenResult code = generateFor(g, ComputeMode::kXBM);
    code.program.forEachOp([&](const MetaOp &op) {
        if (op.kind == MetaOpKind::kReadXb) {
            EXPECT_EQ(op.origin, 1); // the conv node
        }
    });
}

} // namespace
} // namespace cimmlc
