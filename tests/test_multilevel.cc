/**
 * @file
 * Integration tests for the multi-level scheduling driver: every model x
 * preset combination schedules cleanly, options clamp to the computing
 * mode, and the schedule invariants hold.
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "graph/models.h"
#include "sched/multi_level.h"

namespace cimmlc {
namespace {

class ScheduleMatrixTest
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(ScheduleMatrixTest, CompilesWithInvariants)
{
    const auto [model_name, preset_name] = GetParam();
    const Graph g = models::byName(model_name);
    const CimArchitecture arch = presets::byName(preset_name).value();
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk()) << schedule.status().toString();
    const Schedule &s = schedule.value();

    EXPECT_GT(s.total_latency_cycles, 0.0);
    EXPECT_FALSE(s.segments.empty());
    EXPECT_EQ(s.ops.size(), g.nodeCount());
    for (const Segment &segment : s.segments) {
        EXPECT_LE(segment.cores_used, arch.chip.coreNumber());
        EXPECT_GE(segment.latency_cycles, 0.0);
    }
    for (const OperatorMapping &m : s.ops) {
        if (!m.is_cim)
            continue;
        EXPECT_GE(m.duplication, 1);
        EXPECT_GE(m.mvm_duplication, 1);
        EXPECT_GE(m.vvm_spread, 1);
        EXPECT_GT(m.windows, 0);
        EXPECT_GT(m.cycles_per_window, 0.0);
        EXPECT_GE(m.core_base, 0);
        EXPECT_GE(m.utilization, 0.0);
        EXPECT_LE(m.utilization, 1.0);
    }
    // Every CIM node belongs to exactly one segment.
    std::size_t seg_nodes = 0;
    for (const Segment &segment : s.segments)
        seg_nodes += segment.nodes.size();
    EXPECT_EQ(seg_nodes, g.nodeCount());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScheduleMatrixTest,
    testing::Combine(testing::Values("lenet5", "resnet18", "vgg11",
                                     "vit_tiny", "macro_cnn"),
                     testing::Values("isaac-baseline", "puma",
                                     "jia-isscc21", "jain-jssc21")));

TEST(ModeClampTest, CmArchitectureDisablesFinerLevels)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::jiaIsscc21(); // CM
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    EXPECT_FALSE(schedule.value().options.mvm_duplication);
    EXPECT_FALSE(schedule.value().options.mvm_pipeline);
    EXPECT_FALSE(schedule.value().options.vvm_remap);
    for (const OperatorMapping &m : schedule.value().ops) {
        EXPECT_EQ(m.mvm_duplication, m.duplication);
        EXPECT_EQ(m.vvm_spread, 1);
    }
}

TEST(ModeClampTest, XbmArchitectureDisablesVvm)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::puma(); // XBM
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    EXPECT_TRUE(schedule.value().options.mvm_duplication);
    EXPECT_FALSE(schedule.value().options.vvm_remap);
}

TEST(ScheduleTest, OptionsToStringListsLevels)
{
    EXPECT_EQ(ScheduleOptions::none().toString(), "none");
    EXPECT_EQ(ScheduleOptions::full().toString(),
              "cg-dup+cg-pipe+mvm-dup+mvm-pipe+vvm-remap");
    EXPECT_EQ(ScheduleOptions::cgOnly().toString(), "cg-dup+cg-pipe");
}

TEST(ScheduleTest, SummaryMentionsOperators)
{
    const Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    const std::string summary = schedule.value().summary(g);
    EXPECT_NE(summary.find("conv"), std::string::npos);
    EXPECT_NE(summary.find("segment 0"), std::string::npos);
}

TEST(ScheduleTest, MappingLookupByNode)
{
    const Graph g = models::convReluToy();
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    ASSERT_TRUE(schedule.isOk());
    EXPECT_TRUE(schedule.value().hasMapping(1));
    EXPECT_EQ(schedule.value().mapping(1).node, 1);
}

TEST(ScheduleTest, InvalidGraphRejected)
{
    Graph g("incomplete");
    g.addInput("in", {1, 8});
    const CimArchitecture arch = presets::isaacBaseline();
    EXPECT_FALSE(
        scheduleGraph(g, arch, ScheduleOptions::full()).isOk());
}

TEST(ScheduleTest, PipelineBeatsSerialOnDeepNets)
{
    const Graph g = models::resnet34();
    const CimArchitecture arch = presets::isaacBaseline();
    ScheduleOptions serial = ScheduleOptions::none();
    ScheduleOptions pipe = ScheduleOptions::none();
    pipe.cg_pipeline = true;
    auto s = scheduleGraph(g, arch, serial);
    auto p = scheduleGraph(g, arch, pipe);
    ASSERT_TRUE(s.isOk() && p.isOk());
    EXPECT_LT(p.value().total_latency_cycles,
              s.value().total_latency_cycles);
}

TEST(ScheduleTest, ReloadCountedOnlyWithSegmentation)
{
    const CimArchitecture arch = presets::isaacBaseline();
    auto small =
        scheduleGraph(models::resnet18(), arch, ScheduleOptions::full());
    auto large =
        scheduleGraph(models::vgg16(), arch, ScheduleOptions::full());
    ASSERT_TRUE(small.isOk() && large.isOk());
    EXPECT_DOUBLE_EQ(small.value().total_reload_cycles, 0.0);
    EXPECT_GT(large.value().total_reload_cycles, 0.0);
}

TEST(ScheduleTest, PeakActivationBoundedByChip)
{
    const CimArchitecture arch = presets::isaacBaseline();
    for (const char *name : {"resnet18", "vgg16", "vit_tiny"}) {
        auto schedule = scheduleGraph(models::byName(name), arch,
                                      ScheduleOptions::full());
        ASSERT_TRUE(schedule.isOk());
        EXPECT_LE(schedule.value().peak_active_xbs,
                  arch.totalCrossbars())
            << name;
    }
}

TEST(ScheduleTest, SegmentCapProducesMoreSegments)
{
    const Graph g = models::lenet5();
    const CimArchitecture arch = presets::jainJssc21();
    ScheduleOptions capped = ScheduleOptions::full();
    capped.segment_max_nodes = 2;
    auto free_schedule = scheduleGraph(g, arch, ScheduleOptions::full());
    auto capped_schedule = scheduleGraph(g, arch, capped);
    ASSERT_TRUE(free_schedule.isOk());
    ASSERT_TRUE(capped_schedule.isOk());
    EXPECT_GT(capped_schedule.value().segments.size(),
              free_schedule.value().segments.size());
    EXPECT_NE(capped_schedule.value().options.toString().find("seg<=2"),
              std::string::npos);
}

// ----- validateGraphForScheduling ----------------------------------------

TEST(ValidateForSchedulingTest, WellFormedGraphsPass)
{
    EXPECT_TRUE(validateGraphForScheduling(models::lenet5()).isOk());
    EXPECT_TRUE(validateGraphForScheduling(models::byName("vit_tiny"))
                    .isOk());
}

TEST(ValidateForSchedulingTest, MalformedConvOutputFailsWithStatus)
{
    // A conv2d node whose output is not 4-D NCHW must be rejected with
    // a Status instead of letting the cost model index out[2]/out[3]
    // out of bounds. The builder API always infers 4-D conv shapes, so
    // forge the malformed node by retyping a linear layer.
    Graph g = models::byName("mlp");
    NodeId conv_node = kInvalidNode;
    for (const Node &node : g.nodes()) {
        if (node.kind == OpKind::kLinear) {
            conv_node = node.id;
            break;
        }
    }
    ASSERT_NE(conv_node, kInvalidNode);
    Node &node = g.mutableNode(conv_node);
    node.kind = OpKind::kConv2d;
    node.attrs = Conv2dAttrs{/*out_channels=*/8, /*kernel_h=*/3,
                             /*kernel_w=*/3, /*stride=*/1,
                             /*padding=*/1};

    const Status direct = validateGraphForScheduling(g);
    ASSERT_FALSE(direct.isOk());
    EXPECT_EQ(direct.code(), StatusCode::kInvalidArgument);

    auto schedule = scheduleGraph(g, presets::isaacBaseline(),
                                  ScheduleOptions::full());
    ASSERT_FALSE(schedule.isOk());
    EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
}

// ----- refreshCmActivationStats ------------------------------------------

TEST(CmActivationStatsTest, MissingCostRecordIsInternalError)
{
    CgResult cg;
    Segment segment;
    segment.nodes.push_back(7); // no matching entry in cg.costs
    cg.segments.push_back(segment);

    const Status status = refreshCmActivationStats(cg, true);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(CmActivationStatsTest, MissingDecisionRecordIsInternalError)
{
    CgResult cg;
    NodeCost cost;
    cost.node = 3;
    cost.is_cim = true;
    cg.costs.push_back(cost); // cost present, decision absent
    Segment segment;
    segment.nodes.push_back(3);
    cg.segments.push_back(segment);

    const Status status = refreshCmActivationStats(cg, true);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(CmActivationStatsTest, PipelineSumsAndSerialPeaks)
{
    CgResult cg;
    for (NodeId id : {1, 2}) {
        NodeCost cost;
        cost.node = id;
        cost.is_cim = true;
        cost.grid.tiles_r = 1;
        cost.grid.tiles_c = id; // 1 and 2 physical crossbars
        cg.costs.push_back(cost);
        CgDecision decision;
        decision.duplication = 1;
        cg.decisions[id] = decision;
    }
    Segment segment;
    segment.nodes = {1, 2};
    cg.segments.push_back(segment);

    ASSERT_TRUE(refreshCmActivationStats(cg, /*cg_pipeline=*/true).isOk());
    EXPECT_EQ(cg.segments[0].peak_active_xbs, 3);
    ASSERT_TRUE(refreshCmActivationStats(cg, /*cg_pipeline=*/false).isOk());
    EXPECT_EQ(cg.segments[0].peak_active_xbs, 2);
}

} // namespace
} // namespace cimmlc
