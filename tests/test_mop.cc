/**
 * @file
 * Tests for the meta-operator IR: op construction and printing, the
 * parser round trip, program statistics, and architecture validation of
 * flows (mode legality, address bounds, device write policy).
 */
#include <gtest/gtest.h>

#include "arch/presets.h"
#include "mop/parser.h"
#include "mop/printer.h"
#include "mop/program.h"
#include "mop/validator.h"

namespace cimmlc {
namespace {

MetaOp
makeReadXb()
{
    MetaOp op;
    op.kind = MetaOpKind::kReadXb;
    op.core = 1;
    op.xb = 2;
    op.len = 1;
    op.rows = 27;
    op.cols = 32;
    op.src = {MemSpace::kL1, 1, 0};
    op.dst = {MemSpace::kL0, 0, 4096};
    return op;
}

TEST(MetaOpTest, KindNamesAndClassification)
{
    EXPECT_STREQ(metaOpKindName(MetaOpKind::kReadCore), "cim.readcore");
    EXPECT_STREQ(metaOpKindName(MetaOpKind::kMov), "mov");
    EXPECT_TRUE(isCimMetaOp(MetaOpKind::kReadRow));
    EXPECT_TRUE(isCimMetaOp(MetaOpKind::kWriteXb));
    EXPECT_FALSE(isCimMetaOp(MetaOpKind::kDcom));
    EXPECT_FALSE(isCimMetaOp(MetaOpKind::kMov));
}

TEST(MetaOpTest, BufAddrRendering)
{
    EXPECT_EQ(bufAddrToString({MemSpace::kL0, 0, 42}), "L0[42]");
    EXPECT_EQ(bufAddrToString({MemSpace::kL1, 3, 7}), "L1c3[7]");
}

TEST(MetaOpTest, ReadXbToString)
{
    EXPECT_EQ(makeReadXb().toString(),
              "cim.readxb(xbaddr=c1.x2, len=1, rows=27, cols=32, "
              "src=L1c1[0], dst=L0[4096])");
}

// Round-trip property: print -> parse -> print must be a fixed point.
class OpRoundTripTest : public testing::TestWithParam<std::string>
{
};

TEST_P(OpRoundTripTest, PrintParsePrintIsStable)
{
    const std::string line = GetParam();
    auto parsed = parseOpLine(line);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().toString(), line);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, OpRoundTripTest,
    testing::Values(
        "cim.readcore(conv, cin=3, h=32, w=32, cout=32, k=3, s=1, p=1, "
        "coreaddr=0, src=L0[0], dst=L0[3072])",
        "cim.readcore(linear, fin=128, fout=10, wb=0, we=4, coreaddr=1, "
        "src=L0[64], dst=L0[128])",
        "cim.readxb(xbaddr=c1.x2, len=1, rows=27, cols=32, src=L1c1[0], "
        "dst=L0[4096])",
        "cim.readrow(rowaddr=c0.x1.r16, len=16, cols=8, src=L1c0[16], "
        "dst=L0[99])",
        "mov(src=L0[0], dst=L1c0[0], len=27)",
        "mov(src=L0[10], dst=L0[20], len=3, count=4, sstride=32, "
        "dstride=3)",
        "relu(src=L0[0], dst=L0[64], len=64)",
        "requant(src=L0[0], dst=L0[64], len=64, shift=6)",
        "add(src1=L0[0], src2=L0[64], dst=L0[128], len=64)",
        "maxpool(src=L0[0], dst=L0[256], len=256, k=2, s=2, p=0, c=4, "
        "h=8, w=8)",
        "zero(src=L0[0], dst=L0[5], len=27)"));

TEST(ParserTest, ParsesWriteShapes)
{
    auto op = parseOpLine("cim.writexb(xbaddr=c0.x1, mat=[32, 64])");
    ASSERT_TRUE(op.isOk());
    EXPECT_EQ(op.value().kind, MetaOpKind::kWriteXb);
    EXPECT_EQ(op.value().rows, 32);
    EXPECT_EQ(op.value().cols, 64);
    EXPECT_EQ(op.value().payload, nullptr); // data not in surface syntax
}

TEST(ParserTest, RejectsMalformedLines)
{
    EXPECT_FALSE(parseOpLine("not an op").isOk());
    EXPECT_FALSE(parseOpLine("mov(src=L7[0], dst=L0[0], len=1)").isOk());
    EXPECT_FALSE(
        parseOpLine("cim.readxb(xbaddr=banana, len=1)").isOk());
    EXPECT_FALSE(parseOpLine("mov(src=L0[x], dst=L0[0], len=1)").isOk());
}

TEST(ParserTest, ParsesFullProgramStructure)
{
    const std::string text = R"(
// header comment
init:
    cim.writexb(xbaddr=c0.x0, mat=[27, 32])
compute:
    repeat 4 {
        mov(src=L0[0], dst=L1c0[0], len=27)
        parallel {
            cim.readxb(xbaddr=c0.x0, len=1, rows=27, cols=32, src=L1c0[0], dst=L0[64])
        }
    }
    relu(src=L0[64], dst=L0[64], len=32)
)";
    auto program = parseProgram(text);
    ASSERT_TRUE(program.isOk()) << program.status().toString();
    EXPECT_EQ(program.value().init().size(), 1u);
    EXPECT_EQ(program.value().compute().size(), 2u);
    const MopCounts counts = program.value().counts();
    EXPECT_EQ(counts.cim_writes, 1);
    EXPECT_EQ(counts.cim_reads, 4); // repeat expands
    EXPECT_EQ(counts.mov, 4);
    EXPECT_EQ(counts.dcom, 1);
    EXPECT_EQ(counts.parallel_blocks, 4);
}

TEST(ParserTest, RejectsUnterminatedBlock)
{
    EXPECT_FALSE(parseProgram("parallel {\n mov(src=L0[0], dst=L0[1], "
                              "len=1)\n").isOk());
    EXPECT_FALSE(parseProgram("repeat x {\n}\n").isOk());
}

TEST(ProgramTest, CountsAndSummary)
{
    MopProgram program("p", "XBM");
    program.emitInit(makeReadXb()); // counts as read even in init
    program.emit(makeReadXb());
    MetaOp mov;
    mov.kind = MetaOpKind::kMov;
    mov.len = 8;
    program.emit(mov);
    EXPECT_EQ(program.counts().cim_reads, 2);
    EXPECT_EQ(program.counts().mov, 1);
    EXPECT_EQ(program.counts().total(), 3);
    EXPECT_NE(program.summary().find("p [XBM]"), std::string::npos);
}

TEST(ProgramTest, ForEachOpExpandsRepeats)
{
    MopProgram program("p", "XBM");
    program.compute().push_back(
        Stmt::makeRepeat(3, {Stmt::makeOp(makeReadXb())}));
    int visits = 0;
    program.forEachOp([&](const MetaOp &) { ++visits; });
    EXPECT_EQ(visits, 3);
}

TEST(PrinterTest, SectionsAndIndentation)
{
    MopProgram program("p", "XBM");
    program.emitInit(makeReadXb());
    program.compute().push_back(
        Stmt::makeParallel({Stmt::makeOp(makeReadXb())}));
    const std::string text = printProgram(program);
    EXPECT_NE(text.find("init:\n"), std::string::npos);
    EXPECT_NE(text.find("compute:\n"), std::string::npos);
    EXPECT_NE(text.find("    parallel {\n"), std::string::npos);
    EXPECT_NE(text.find("        cim.readxb"), std::string::npos);
}

TEST(PrinterTest, TruncationMarks)
{
    MopProgram program("p", "XBM");
    for (int i = 0; i < 10; ++i)
        program.emit(makeReadXb());
    PrintOptions options;
    options.max_statements = 3;
    const std::string text = printProgram(program, options);
    EXPECT_NE(text.find("... (truncated)"), std::string::npos);
}

// ----- validator ----------------------------------------------------------

class ValidatorTest : public testing::Test
{
  protected:
    CimArchitecture arch_ = presets::tutorialTable2(ComputeMode::kWLM);
};

TEST_F(ValidatorTest, AcceptsWellFormedFlow)
{
    MopProgram program("p", "WLM");
    MetaOp write;
    write.kind = MetaOpKind::kWriteRow;
    write.core = 0;
    write.xb = 0;
    write.row = 0;
    write.len = 16;
    program.emitInit(write);
    MetaOp read;
    read.kind = MetaOpKind::kReadRow;
    read.core = 0;
    read.xb = 0;
    read.row = 0;
    read.len = 16;
    read.cols = 8;
    program.emit(read);
    EXPECT_TRUE(validateProgram(program, arch_).isOk());
}

TEST_F(ValidatorTest, RejectsCoreOutOfRange)
{
    MopProgram program("p", "WLM");
    MetaOp op = {};
    op.kind = MetaOpKind::kReadXb;
    op.core = 99;
    op.len = 1;
    program.emit(op);
    EXPECT_FALSE(validateProgram(program, arch_).isOk());
}

TEST_F(ValidatorTest, RejectsRowGroupBeyondParallelRow)
{
    MopProgram program("p", "WLM");
    MetaOp op = {};
    op.kind = MetaOpKind::kReadRow;
    op.core = 0;
    op.xb = 0;
    op.row = 0;
    op.len = 17; // parallel_row is 16
    program.emit(op);
    const Status status = validateProgram(program, arch_);
    EXPECT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("parallel_row"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsModeMismatch)
{
    const CimArchitecture cm = presets::tutorialTable2(ComputeMode::kCM);
    MopProgram program("p", "CM");
    MetaOp op = {};
    op.kind = MetaOpKind::kReadXb;
    op.len = 1;
    program.emit(op);
    EXPECT_FALSE(validateProgram(program, cm).isOk());
    // But the same op is legal under XBM.
    const CimArchitecture xbm =
        presets::tutorialTable2(ComputeMode::kXBM);
    EXPECT_TRUE(validateProgram(program, xbm).isOk());
}

TEST_F(ValidatorTest, RejectsRuntimeWritesOnReram)
{
    CimArchitecture reram = presets::isaacBaseline();
    MopProgram program("p", "XBM");
    MetaOp op = {};
    op.kind = MetaOpKind::kWriteXb;
    program.emit(op); // compute-section write
    const Status status = validateProgram(program, reram);
    EXPECT_FALSE(status.isOk());
    // The same write in the init section is fine.
    MopProgram ok("p", "XBM");
    ok.emitInit(op);
    EXPECT_TRUE(validateProgram(ok, reram).isOk());
    // And enforcement can be disabled.
    ValidateOptions relaxed;
    relaxed.enforce_write_policy = false;
    EXPECT_TRUE(validateProgram(program, reram, relaxed).isOk());
}

TEST_F(ValidatorTest, RejectsNestedParallel)
{
    MopProgram program("p", "WLM");
    MetaOp mov = {};
    mov.kind = MetaOpKind::kMov;
    mov.len = 1;
    program.compute().push_back(Stmt::makeParallel(
        {Stmt::makeParallel({Stmt::makeOp(mov)})}));
    EXPECT_FALSE(validateProgram(program, arch_).isOk());
}

TEST_F(ValidatorTest, RejectsUnknownDcomAndBadMov)
{
    MopProgram program("p", "WLM");
    MetaOp op = {};
    op.kind = MetaOpKind::kDcom;
    op.func = "teleport";
    program.emit(op);
    EXPECT_FALSE(validateProgram(program, arch_).isOk());

    MopProgram program2("p", "WLM");
    MetaOp mov = {};
    mov.kind = MetaOpKind::kMov;
    mov.len = 0;
    program2.emit(mov);
    EXPECT_FALSE(validateProgram(program2, arch_).isOk());
}

TEST_F(ValidatorTest, L1CapacityChecked)
{
    CimArchitecture arch = presets::puma(); // L1 = 1 KiB = 256 elements
    MopProgram program("p", "XBM");
    MetaOp mov = {};
    mov.kind = MetaOpKind::kMov;
    mov.src = {MemSpace::kL0, 0, 0};
    mov.dst = {MemSpace::kL1, 0, 200};
    mov.len = 100; // 200 + 100 > 256
    program.emit(mov);
    EXPECT_FALSE(validateProgram(program, arch).isOk());
}

} // namespace
} // namespace cimmlc
