/**
 * @file
 * Unit tests for the daemon's policy layer, isolated from sockets and
 * threads: FairScheduler admission control and weighted round-robin
 * fairness, LatencyHistogram quantiles, and the `cimmlc.rpc.v1` frame
 * vocabulary (parse round-trips, unknown-key rejection, and the
 * id-invariant artifact-memo fingerprint).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.h"
#include "daemon/scheduler.h"
#include "daemon/stats.h"

namespace cimmlc {
namespace {

SchedulerJob
job(std::uint64_t client, std::int64_t id)
{
    SchedulerJob j;
    j.client = client;
    j.request_id = id;
    j.run = [] {};
    return j;
}

/** Drains the scheduler, returning jobs as "client:id" strings. */
std::vector<std::string>
drain(FairScheduler &sched)
{
    std::vector<std::string> order;
    for (;;) {
        auto next = sched.next();
        if (!next.has_value())
            break;
        order.push_back(std::to_string(next->client) + ":"
                        + std::to_string(next->request_id));
        sched.finish();
    }
    return order;
}

TEST(FairSchedulerTest, RejectsWhenQueueFull)
{
    SchedulerLimits limits;
    limits.max_queue_depth = 2;
    FairScheduler sched(limits);
    sched.addClient(1);
    EXPECT_TRUE(sched.admit(job(1, 1)).isOk());
    EXPECT_TRUE(sched.admit(job(1, 2)).isOk());
    const Status rejected = sched.admit(job(1, 3));
    EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(sched.queueDepth(), 2);

    // Dispatching frees queue space: in-flight does not count.
    ASSERT_TRUE(sched.next().has_value());
    EXPECT_TRUE(sched.admit(job(1, 3)).isOk());
}

TEST(FairSchedulerTest, InflightLimitGatesDispatch)
{
    SchedulerLimits limits;
    limits.max_inflight = 1;
    FairScheduler sched(limits);
    sched.addClient(1);
    ASSERT_TRUE(sched.admit(job(1, 1)).isOk());
    ASSERT_TRUE(sched.admit(job(1, 2)).isOk());

    ASSERT_TRUE(sched.next().has_value());
    EXPECT_EQ(sched.inflight(), 1);
    EXPECT_FALSE(sched.next().has_value()); // at the limit
    sched.finish();
    EXPECT_TRUE(sched.next().has_value());
}

TEST(FairSchedulerTest, FifoWithinOneClient)
{
    FairScheduler sched({/*max_inflight=*/4, /*max_queue_depth=*/32});
    sched.addClient(7);
    for (std::int64_t id = 1; id <= 5; ++id)
        ASSERT_TRUE(sched.admit(job(7, id)).isOk());
    EXPECT_EQ(drain(sched),
              (std::vector<std::string>{"7:1", "7:2", "7:3", "7:4",
                                        "7:5"}));
}

TEST(FairSchedulerTest, RoundRobinAcrossClients)
{
    // Client 1 queues three jobs before client 2's arrive; round-robin
    // still alternates instead of draining client 1 first.
    FairScheduler sched({/*max_inflight=*/1, /*max_queue_depth=*/32});
    sched.addClient(1);
    sched.addClient(2);
    for (std::int64_t id = 1; id <= 3; ++id)
        ASSERT_TRUE(sched.admit(job(1, id)).isOk());
    for (std::int64_t id = 1; id <= 3; ++id)
        ASSERT_TRUE(sched.admit(job(2, id)).isOk());
    EXPECT_EQ(drain(sched),
              (std::vector<std::string>{"1:1", "2:1", "1:2", "2:2",
                                        "1:3", "2:3"}));
}

TEST(FairSchedulerTest, WeightedClientGetsProportionalTurns)
{
    // Weight 2 means two dispatches per turn.
    FairScheduler sched({/*max_inflight=*/1, /*max_queue_depth=*/32});
    sched.addClient(1, /*weight=*/2);
    sched.addClient(2, /*weight=*/1);
    for (std::int64_t id = 1; id <= 4; ++id)
        ASSERT_TRUE(sched.admit(job(1, id)).isOk());
    for (std::int64_t id = 1; id <= 2; ++id)
        ASSERT_TRUE(sched.admit(job(2, id)).isOk());
    EXPECT_EQ(drain(sched),
              (std::vector<std::string>{"1:1", "1:2", "2:1", "1:3",
                                        "1:4", "2:2"}));
}

TEST(FairSchedulerTest, LateJoinerIsNotStarved)
{
    FairScheduler sched({/*max_inflight=*/1, /*max_queue_depth=*/32});
    sched.addClient(1);
    for (std::int64_t id = 1; id <= 8; ++id)
        ASSERT_TRUE(sched.admit(job(1, id)).isOk());
    // One of client 1's jobs dispatches, then client 2 shows up.
    auto first = sched.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->client, 1u);
    sched.addClient(2);
    ASSERT_TRUE(sched.admit(job(2, 1)).isOk());
    sched.finish();
    // Client 1's new turn runs one job, then client 2's — the joiner
    // waits a bounded single turn, not for client 1's backlog.
    std::vector<std::string> order = drain(sched);
    ASSERT_GE(order.size(), 2u);
    EXPECT_EQ(order[0], "1:2");
    EXPECT_EQ(order[1], "2:1");
}

TEST(FairSchedulerTest, DropClientDiscardsOnlyItsQueuedJobs)
{
    FairScheduler sched({/*max_inflight=*/1, /*max_queue_depth=*/32});
    sched.addClient(1);
    sched.addClient(2);
    for (std::int64_t id = 1; id <= 3; ++id)
        ASSERT_TRUE(sched.admit(job(1, id)).isOk());
    ASSERT_TRUE(sched.admit(job(2, 1)).isOk());

    // Client 1's first job is already in flight when it disconnects:
    // only its *queued* jobs come back.
    ASSERT_TRUE(sched.next().has_value());
    std::vector<SchedulerJob> dropped = sched.dropClient(1);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_EQ(dropped[0].request_id, 2);
    EXPECT_EQ(dropped[1].request_id, 3);
    EXPECT_EQ(sched.clientCount(), 1);
    sched.finish();
    EXPECT_EQ(drain(sched), (std::vector<std::string>{"2:1"}));
}

TEST(FairSchedulerTest, ReRegistrationKeepsFirstWeight)
{
    FairScheduler sched;
    sched.addClient(1, 3);
    sched.addClient(1, 9); // ignored
    EXPECT_EQ(sched.clientCount(), 1);
}

// ----- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogramTest, EmptyHistogramReportsZero)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0);
    EXPECT_EQ(hist.quantileMs(0.5), 0.0);
    EXPECT_EQ(hist.quantileMs(0.99), 0.0);
}

TEST(LatencyHistogramTest, QuantilesAreConservativeUpperBounds)
{
    LatencyHistogram hist;
    for (int i = 0; i < 99; ++i)
        hist.record(0.5); // bucket 0: < 1 ms
    hist.record(100.0);   // one outlier
    EXPECT_EQ(hist.count(), 100);
    // p50 falls in the sub-millisecond bucket -> upper bound 1 ms.
    EXPECT_LE(hist.quantileMs(0.5), 1.0);
    // p99 must not under-report the outlier's bucket, and never
    // exceeds the observed max.
    EXPECT_GE(hist.quantileMs(0.995), 100.0 * 0.5);
    EXPECT_LE(hist.quantileMs(0.995), hist.maxMs());
    EXPECT_DOUBLE_EQ(hist.maxMs(), 100.0);
}

TEST(LatencyHistogramTest, ConfigCarriesSummaryFields)
{
    LatencyHistogram hist;
    hist.record(2.0);
    hist.record(4.0);
    const ConfigValue doc = hist.toConfig();
    EXPECT_EQ(doc.getIntOr("count", 0), 2);
    EXPECT_DOUBLE_EQ(doc.getNumberOr("total_ms", 0.0), 6.0);
    EXPECT_DOUBLE_EQ(doc.getNumberOr("mean_ms", 0.0), 3.0);
    EXPECT_TRUE(doc.has("p50_ms"));
    EXPECT_TRUE(doc.has("p99_ms"));
    EXPECT_TRUE(doc.has("buckets"));
}

// ----- protocol -------------------------------------------------------------

TEST(RpcProtocolTest, CompileFrameRoundTrips)
{
    RpcCompileRequest request;
    request.id = 42;
    request.model = "lenet5";
    request.arch = "tutorial";
    request.opt = "cg+mvm";
    request.tune = true;
    request.objective = "edp";
    request.search_budget = 16;
    request.perf_engine = "event";
    request.lint = true;
    request.lint_strict = true;
    request.verify = true;

    auto parsed = parseCompileFrame(request.toConfig());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().toConfig().dump(),
              request.toConfig().dump());
}

TEST(RpcProtocolTest, UnknownKeysAreRejectedAsSkew)
{
    RpcCompileRequest request;
    request.id = 1;
    request.model = "mlp";
    ConfigValue::Object doc = request.toConfig().asObject();
    doc["quantum_mode"] = ConfigValue::makeBool(true);
    auto parsed = parseCompileFrame(ConfigValue::makeObject(doc));
    ASSERT_FALSE(parsed.isOk());
    EXPECT_NE(parsed.status().message().find("quantum_mode"),
              std::string::npos);
}

TEST(RpcProtocolTest, FingerprintIgnoresTheRequestId)
{
    RpcCompileRequest a;
    a.id = 1;
    a.model = "mlp";
    a.arch = "jain";
    RpcCompileRequest b = a;
    b.id = 999;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    b.opt = "none";
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(RpcProtocolTest, ErrorFrameRoundTripsStatus)
{
    const Status original(StatusCode::kResourceExhausted,
                          "admission rejected: queue full");
    const Status decoded = statusFromErrorFrame(errorFrame(7, original));
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
}

TEST(RpcProtocolTest, HelloFrameCarriesSchemaAndVersion)
{
    const ConfigValue hello = helloFrame(4, 64);
    EXPECT_EQ(hello.getStringOr("type", ""), "hello");
    EXPECT_EQ(hello.getStringOr("schema", ""), kRpcSchema);
    EXPECT_FALSE(hello.getStringOr("compiler_version", "").empty());
    EXPECT_EQ(hello.getIntOr("max_inflight", 0), 4);
    EXPECT_EQ(hello.getIntOr("max_queue_depth", 0), 64);
}

TEST(RpcProtocolTest, CompileRequestMapsOntoSession)
{
    RpcCompileRequest request;
    request.model = "conv_relu_toy";
    request.arch = "tutorial";
    request.tune = true;
    TuneCache cache;
    auto mapped = request.toCompileRequest(&cache);
    ASSERT_TRUE(mapped.isOk()) << mapped.status().toString();
    EXPECT_EQ(mapped.value().model, "conv_relu_toy");
    EXPECT_TRUE(mapped.value().tune);
    EXPECT_EQ(mapped.value().tune_cache, &cache);
    // Daemon concurrency comes from many sessions, not from
    // oversubscribing one tuner.
    EXPECT_EQ(mapped.value().threads, 1);
}

TEST(RpcProtocolTest, BadEnumValuesFailMapping)
{
    RpcCompileRequest request;
    request.model = "mlp";
    request.opt = "turbo";
    EXPECT_FALSE(request.toCompileRequest(nullptr).isOk());

    request.opt = "full";
    request.perf_engine = "analytic";
    EXPECT_FALSE(request.toCompileRequest(nullptr).isOk());
}

} // namespace
} // namespace cimmlc
