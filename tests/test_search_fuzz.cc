/**
 * @file
 * Fuzz-style error-path tests for the budgeted search engine's input
 * surfaces: random byte mutations (overwrites, truncations, splices)
 * of well-formed DseSpec, tune-cache, and search-budget kvjson
 * documents must parse into a Status error or a valid value — never
 * crash, hang, or leave half-loaded state behind. Deterministic
 * SplitMix64 mutations keep every failure reproducible from the case
 * number printed by the assertion.
 */
#include <gtest/gtest.h>

#include <string>

#include "arch/presets.h"
#include "common/config.h"
#include "common/rng.h"
#include "dse/arch_explorer.h"
#include "graph/models.h"
#include "search/search_budget.h"
#include "sched/autotune.h"

namespace cimmlc {
namespace {

// The examples/dse_lenet5.json sweep with every budgeted-search key
// present, so mutations hit the new surfaces too.
const char *kDseSpecSeed = R"({
    "model": "lenet5",
    "arch": "jain",
    "opt": "full",
    "objective": "latency",
    "budget": {"evals": 9, "proxy_opt_none": false,
               "proxy_prefix_fraction": 0.5},
    "sweep": {
        "xb_size": [[256, 64], [128, 128], [64, 64]],
        "core_grid": {"log2": [1, 4]},
        "core_noc_bandwidth": [0, 128]
    }
})";

const char *kBudgetSeed =
    R"({"evals": 9, "proxy_opt_none": true, "proxy_prefix_fraction": 0.25})";

/** One deterministic mutation: overwrite 1-4 bytes, truncate, or
 * splice a random chunk; always returns a non-empty string. */
std::string
mutate(const std::string &seed, Rng &rng)
{
    std::string text = seed;
    switch (rng.uniformInt(0, 3)) {
      case 0: { // overwrite random bytes with random values
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int i = 0; i < edits; ++i) {
            const std::size_t at = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(text.size()) - 1));
            text[at] = static_cast<char>(rng.uniformInt(0, 255));
        }
        break;
      }
      case 1: { // truncate
        const std::size_t at = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(text.size()) - 1));
        text.resize(at);
        break;
      }
      case 2: { // delete a chunk
        const std::size_t at = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(text.size()) - 2));
        const std::size_t len = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(text.size() - at) - 1));
        text.erase(at, len);
        break;
      }
      default: { // duplicate a chunk somewhere else
        const std::size_t at = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(text.size()) - 2));
        const std::size_t len = static_cast<std::size_t>(
            rng.uniformInt(1, 16));
        const std::size_t to = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(text.size()) - 1));
        text.insert(to, text.substr(at, len));
        break;
      }
    }
    if (text.empty())
        text = "x";
    return text;
}

TEST(SearchFuzzTest, MutatedDseSpecsErrorOrParseButNeverCrash)
{
    Rng rng(0xD5E5EEDull);
    for (int round = 0; round < 400; ++round) {
        const std::string text = mutate(kDseSpecSeed, rng);
        auto spec = dseSpecFromText(text);
        if (!spec.isOk()) {
            EXPECT_FALSE(spec.status().message().empty())
                << "case " << round << " lost its diagnostic";
            continue;
        }
        // A mutation that still parses must yield a self-consistent
        // spec: a validated budget and a non-empty sweep.
        EXPECT_TRUE(spec.value().budget.validate().isOk())
            << "case " << round;
        EXPECT_FALSE(spec.value().sweep.axes.empty()) << "case " << round;
    }
}

TEST(SearchFuzzTest, MutatedBudgetsErrorOrValidateButNeverCrash)
{
    Rng rng(0xB0D6E7ull);
    for (int round = 0; round < 400; ++round) {
        const std::string text = mutate(kBudgetSeed, rng);
        auto doc = parseConfig(text);
        if (!doc.isOk())
            continue;
        auto budget = searchBudgetFromConfig(doc.value());
        if (budget.isOk()) {
            // Whatever parses must also pass its own validation — the
            // parser never hands back an out-of-contract budget.
            EXPECT_TRUE(budget.value().validate().isOk())
                << "case " << round;
        } else {
            EXPECT_FALSE(budget.status().message().empty())
                << "case " << round;
        }
    }
}

TEST(SearchFuzzTest, MutatedTuneCachesDegradeToColdNeverHalfLoaded)
{
    // A genuine cache document, fidelity-tagged proxy entries included.
    TuneCache seed_cache;
    const Graph graph = models::byName("conv_relu_toy");
    const CimArchitecture arch = presets::byName("jain").value();
    SearchFidelity proxy;
    proxy.prefix_nodes = 2;
    proxy.forced_opt_none = true;
    seed_cache.insert(TuneCache::fingerprint(graph, arch, 3),
                      TuneCache::Entry{Status::ok(), 10.0, 20.0, 200.0});
    seed_cache.insert(TuneCache::fingerprint(graph, arch, 3, proxy),
                      TuneCache::Entry{Status::ok(), 4.0, 8.0, 32.0});
    seed_cache.insert(
        TuneCache::fingerprint(graph, arch, 7),
        TuneCache::Entry{resourceExhausted("xbars"), 0.0, 0.0, 0.0});
    const std::string seed_text = seed_cache.toConfig().dump(true);

    Rng rng(0xCAC4Eull);
    for (int round = 0; round < 400; ++round) {
        const std::string text = mutate(seed_text, rng);
        auto doc = parseConfig(text);
        if (!doc.isOk())
            continue;
        TuneCache cache;
        // Pre-populate: a failed load must leave the cache COLD, not
        // keep stale entries and not keep half of the new ones.
        cache.insert("sentinel",
                     TuneCache::Entry{Status::ok(), 1.0, 1.0, 1.0});
        const Status loaded = cache.loadFromConfig(doc.value());
        if (loaded.isOk()) {
            EXPECT_FALSE(cache.lookup("sentinel").has_value())
                << "case " << round << ": load must replace, not merge";
        } else {
            EXPECT_FALSE(loaded.message().empty()) << "case " << round;
            EXPECT_EQ(cache.size(), 0u)
                << "case " << round << ": error must leave a cold cache";
        }
    }
}

} // namespace
} // namespace cimmlc
