/**
 * @file
 * Architecture design-space exploration: the AutoTuner inverted.
 *
 * The auto-tuner (sched/autotune.h) searches schedule options for a
 * fixed Abs-arch; the ArchExplorer fixes the workload and sweeps the
 * Abs-arch parameters themselves — crossbar geometry, crossbar/core
 * grids, NoC topology and bandwidth, buffer bandwidths, computing
 * mode — the knobs the paper's Figures 5-8 abstraction exposes exactly
 * so one workload can be retargeted across CM/XBM/WLM chips.
 *
 * Candidates are enumerated deterministically from a kvjson sweep spec
 * (arch/serialize.h), each is priced through a staged CompilerSession
 * (optionally with per-candidate schedule auto-tuning sharing one
 * TuneCache), evaluation fans out over the work-stealing ThreadPool
 * with pre-assigned result slots, and the latency/energy Pareto front
 * is computed with deterministic dominance filtering — the report is
 * byte-identical for any thread count, the same discipline the
 * AutoTuner and BatchCompiler follow.
 */
#ifndef CIMMLC_DSE_ARCH_EXPLORER_H
#define CIMMLC_DSE_ARCH_EXPLORER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/arch.h"
#include "arch/serialize.h"
#include "common/config.h"
#include "common/status.h"
#include "perfsim/perf_model.h"
#include "search/search_budget.h"
#include "sched/autotune.h"
#include "sched/options.h"

namespace cimmlc {

/**
 * A parsed `--arch-dse` spec: one workload, a base architecture, and
 * the sweep axes mutated on top of it.
 *
 * @code
 *   {
 *     "model": "lenet5",            # or model_file / model_text
 *     "arch": "jain",               # or arch_file / arch_text
 *     "opt": "full",                # fixed options when not tuning
 *     "dual_mode": false,           # overlay: resident dual-mode arrays
 *     "host_offload": false,        # overlay: host/CIM hybrid offload
 *     "tune": false,                # auto-tune each candidate's schedule
 *     "objective": "latency",       # ranking (and tuning) objective
 *     "threads": 0,
 *     "sweep": { ... }              # see sweepSpecFromConfig
 *   }
 * @endcode
 */
struct DseSpec {
    // Workload (exactly one source).
    std::string model;      //!< models::byName preset key
    std::string model_file; //!< kvjson graph file path
    std::string model_text; //!< inline kvjson graph

    CimArchitecture base_arch;   //!< resolved base design
    ArchSweepSpec sweep;         //!< axes mutated on top of it

    ScheduleOptions options;     //!< fixed schedule when tune == false
    std::string opt = "full";    //!< the level name options came from
    bool tune = false;           //!< auto-tune each candidate
    TuneObjective objective = TuneObjective::kLatency;
    int threads = 0; //!< 0 = hardware concurrency, 1 = serial

    /**
     * Gate full-fidelity evaluations on mopcheck (`"lint"` key / CLI
     * `--lint`): each candidate's emitted flow is linted and any
     * error-severity finding marks the candidate infeasible, so the
     * Pareto front only contains designs whose flow passes static
     * analysis. Proxy rungs are unaffected. Cache fingerprints are
     * tagged so linted evaluations never alias unlinted ones.
     */
    bool lint = false;

    /**
     * Performance engine full evaluations price candidates with
     * (`"perf_engine"` key / CLI `--perf-engine`). Halving proxy rungs
     * always run the closed-form model: with `event` selected, the
     * analytic model itself is the cheap fidelity rung below the
     * discrete-event simulation, and cache fingerprints are tagged so
     * event evaluations never alias closed-form ones.
     */
    PerfEngineKind perf_engine = PerfEngineKind::kClosedForm;

    /**
     * Full-fidelity evaluation budget (`"budget"` key / CLI
     * `--search-budget N`). When enabled, explore() runs successive
     * halving (search/halving.h): every candidate is priced on a cheap
     * proxy stage first and only the surviving fraction per rung is
     * promoted to full evaluation; the Pareto front is computed over
     * fully evaluated candidates only.
     */
    SearchBudget budget;
};

/**
 * Whether @p spec may legally be sharded across processes. Sharding
 * needs every candidate's evaluation to be decidable from the spec
 * alone; adaptive searches are not, and the returned error names the
 * specific adaptive mechanism (halving promotion, shared tuner memo)
 * so a spec author knows which key to drop. Checked by
 * ArchExplorer::restrictToShard and at spec-parse time by the CLI
 * shard path (compiler/shard.h).
 */
Status validateSpecForSharding(const DseSpec &spec);

/** Parses a DSE spec document / text / file. */
StatusOr<DseSpec> dseSpecFromConfig(const ConfigValue &doc);
StatusOr<DseSpec> dseSpecFromText(const std::string &text);
StatusOr<DseSpec> dseSpecFromFile(const std::string &path);

/** One evaluated point of the architecture design space. */
struct DseCandidate {
    //! stable identity: position in the row-major sweep enumeration;
    //! doubles as the deterministic tie-break key
    std::size_t index = 0;
    CimArchitecture arch;
    //! swept (param name, value) pairs, in canonical axis order
    std::vector<std::pair<std::string, std::string>> params;
    std::string label; //!< "xb_size=128x128 core_grid=2x2"

    //! outcome of the last evaluation this candidate received (full
    //! fidelity when full_eval, otherwise its final proxy rung)
    Status status;
    //! full-fidelity metrics; valid iff full_eval && status OK
    double latency_cycles = 0.0;
    double energy_pj = 0.0;
    double edp = 0.0;
    bool tuned = false;
    std::string config; //!< ScheduleOptions the candidate compiled with
    bool on_front = false;

    // ----- budgeted-search provenance -----------------------------------
    //! last rung this candidate was evaluated in (proxy rungs first;
    //! the final ladder rung is full fidelity). 0 for exhaustive runs.
    std::int64_t rung = 0;
    //! received a full-fidelity evaluation — the precondition for
    //! Pareto-front membership
    bool full_eval = true;
    bool proxied = false; //!< proxy metrics below are valid
    double proxy_latency_cycles = 0.0;
    double proxy_energy_pj = 0.0;

    double objectiveValue(TuneObjective objective) const;
};

/**
 * Indices of the non-dominated feasible candidates under (latency,
 * energy) minimization, sorted by ascending latency, then energy, then
 * index. Dominance is the strict Pareto order: a dominates b iff a is
 * <= in both objectives and < in at least one, so duplicate points are
 * both kept. Membership depends only on the metric values, never on
 * evaluation order or timing. Only fully evaluated candidates
 * (full_eval) participate: a budgeted run's front is guaranteed to be
 * a subset of the candidates that received full-fidelity evaluation —
 * proxy metrics can steer promotion but never claim front membership.
 */
std::vector<std::size_t>
paretoFrontIndices(const std::vector<DseCandidate> &candidates);

/** Outcome of one exploration. */
struct DseResult {
    TuneObjective objective = TuneObjective::kLatency;
    std::string workload;
    std::int64_t nodes = 0;
    std::int64_t weights = 0;
    std::string base_arch;
    bool tuned = false;
    bool lint = false; //!< full evaluations were gated on mopcheck
    //! engine full evaluations were priced with
    PerfEngineKind perf_engine = PerfEngineKind::kClosedForm;
    //! candidates in ascending index order (thread-count independent)
    std::vector<DseCandidate> candidates;
    //! Pareto front, sorted by (latency, energy, index)
    std::vector<std::size_t> front;
    std::int64_t cache_hits = 0;    //!< memoized evaluations this run
    std::int64_t cache_entries = 0; //!< cache size after the run

    // ----- budgeted-search provenance -----------------------------------
    SearchBudget budget; //!< the budget this exploration ran under
    //! the halving ladder actually run (rung sizes over the unique
    //! evaluations; a single rung means exhaustive full fidelity)
    std::vector<std::int64_t> rung_sizes;
    //! unique full-fidelity evaluations requested (memo hits included)
    std::int64_t full_evals = 0;
    //! unique proxy-stage session runs across all halving rungs
    std::int64_t proxy_evals = 0;

    /** Fully evaluated candidates whose evaluation succeeded. */
    std::int64_t feasibleCount() const;

    /** Front point minimizing the ranking objective (ties: EDP, then
     * index). @pre front is non-empty (explore() guarantees it). */
    const DseCandidate &bestByObjective() const;

    /** Ranked per-candidate table: feasible points by ascending
     * objective (ties: EDP, then index), front rows marked, infeasible
     * points last. */
    std::string table() const;

    /** One-line verdict for CLI output. */
    std::string summary() const;

    /** Serializes the full evaluated set + front membership as kvjson
     * (schema "cimmlc.dse.v1"). */
    ConfigValue toConfig() const;
};

/**
 * Architecture design-space explorer.
 *
 * @code
 *   auto spec = dseSpecFromFile("examples/dse_lenet5.json");
 *   TuneCache cache;
 *   ArchExplorer explorer(spec.value());
 *   auto result = explorer.explore(&cache);
 *   std::cout << result.value().table();
 * @endcode
 */
class ArchExplorer
{
  public:
    explicit ArchExplorer(DseSpec spec) : spec_(std::move(spec)) {}

    const DseSpec &spec() const { return spec_; }

    /**
     * Restricts explore() to the candidates whose enumeration index
     * satisfies `index % count == shard` — one slice of a cross-process
     * sweep (compiler/shard.h). Requires an exhaustive, untuned spec:
     * halving promotion and the shared tuner memo are globally
     * adaptive, so their slices could not merge deterministically.
     * A sharded result's candidates outside the slice are left
     * unevaluated (full_eval == false) and its Pareto front may be
     * empty; mergeDseShards() reassembles the full result.
     */
    Status restrictToShard(int shard, int count);

    /**
     * The candidate architectures, in deterministic row-major sweep
     * order (first axis slowest). Candidates whose mutated geometry
     * fails CimArchitecture::validate() carry that status so the sweep
     * reports them instead of aborting.
     */
    std::vector<DseCandidate> enumerate() const;

    /**
     * Evaluates every candidate and computes the Pareto front. @p cache
     * memoizes evaluations across candidates and calls — with per-
     * candidate tuning it is the tuner's shared memo, without it each
     * candidate's single (graph, arch, options) evaluation is memoized
     * under the same fingerprint scheme, so a persisted cache warms
     * both modes. Fails only when the workload cannot be loaded or no
     * candidate is feasible.
     */
    StatusOr<DseResult> explore(TuneCache *cache = nullptr) const;

  private:
    DseSpec spec_;
    int shard_index_ = 0;
    int shard_count_ = 1; //!< 1 = unsharded
};

} // namespace cimmlc

#endif // CIMMLC_DSE_ARCH_EXPLORER_H
