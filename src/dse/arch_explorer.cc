#include "dse/arch_explorer.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <optional>

#include "arch/presets.h"
#include "common/strutil.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "compiler/session.h"
#include "graph/models.h"
#include "graph/serialize.h"
#include "search/dominance.h"
#include "search/halving.h"

namespace cimmlc {

namespace {

ConfigValue
number(double v)
{
    return ConfigValue::makeNumber(v);
}

ConfigValue
number(std::int64_t v)
{
    return ConfigValue::makeNumber(static_cast<double>(v));
}

ConfigValue
text(std::string v)
{
    return ConfigValue::makeString(std::move(v));
}

/**
 * Prices one candidate. @p key is its evaluation fingerprint from
 * explore()'s dedup pass — the memo key for fixed-options runs.
 */
void
evaluateCandidate(const Graph &graph, const DseSpec &spec,
                  DseCandidate &candidate, const std::string &key,
                  TuneCache *cache,
                  std::atomic<std::int64_t> &cache_hits)
{
    // Fixed-options candidates reuse the tuner's fingerprint scheme for
    // cross-process memoization; spec options always come from a named
    // --opt level, which the encoding represents exactly. Duplicate
    // sweep points were deduplicated by explore(), so this lookup only
    // ever sees the pre-run cache state and the hit count cannot depend
    // on evaluation timing.
    if (!spec.tune && cache != nullptr) {
        if (auto hit = cache->lookup(key)) {
            candidate.status = hit->status;
            candidate.latency_cycles = hit->latency_cycles;
            candidate.energy_pj = hit->energy_pj;
            candidate.edp = hit->edp;
            candidate.config = spec.options.toString();
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }

    auto fill = [&]() -> Status {
        CompileRequest request;
        request.graph = &graph;
        request.arch_ref = &candidate.arch;
        if (spec.tune) {
            // Candidate-level parallelism already fills the pool; tune
            // serially inside the candidate so nested pools do not
            // oversubscribe (same discipline as BatchCompiler).
            request.tune = true;
            request.objective = spec.objective;
            request.tune_cache = cache;
            request.threads = 1;
        } else {
            request.options = spec.options;
        }
        request.perf_engine = spec.perf_engine;
        request.outputs.flow = false;
        if (spec.lint) {
            // Gate feasibility on mopcheck: the flow is emitted and
            // linted, and any error finding fails this candidate.
            request.outputs.flow = true;
            request.lint = true;
            request.lint_strict = true;
        }
        request.stop_after = CompileStage::kPerf;
        CompilerSession session(std::move(request));
        CIMMLC_ASSIGN_OR_RETURN(const CompileArtifacts artifacts,
                                session.run());
        candidate.latency_cycles = artifacts.perf->latency_cycles;
        candidate.energy_pj = artifacts.perf->energy.total();
        candidate.edp = candidate.latency_cycles * candidate.energy_pj;
        candidate.tuned = artifacts.tuned;
        candidate.config = artifacts.options.toString();
        if (artifacts.tune.has_value())
            cache_hits.fetch_add(artifacts.tune->cache_hits,
                                 std::memory_order_relaxed);
        return Status::ok();
    };
    candidate.status = fill();
    if (!candidate.status.isOk())
        candidate.config = spec.options.toString();

    if (!spec.tune && cache != nullptr) {
        cache->insert(key,
                      TuneCache::Entry{candidate.status,
                                       candidate.latency_cycles,
                                       candidate.energy_pj,
                                       candidate.edp});
    }
}

/**
 * Prices one candidate on the cheap proxy stage of a halving rung:
 * forced `opt=none` and/or a topological workload prefix, routed
 * through the same staged CompilerSession as a full evaluation. @p key
 * is the fidelity-tagged fingerprint, so proxy entries in a shared
 * TuneCache can never alias full evaluations. @p session_runs counts
 * actual (non-memoized) session executions for the report.
 */
void
evaluateProxy(const Graph &graph, const DseSpec &spec,
              DseCandidate &candidate, const SearchFidelity &fidelity,
              const std::string &key, TuneCache *cache,
              std::atomic<std::int64_t> &cache_hits,
              std::atomic<std::int64_t> &session_runs)
{
    candidate.proxied = true;
    if (cache != nullptr) {
        if (auto hit = cache->lookup(key)) {
            candidate.status = hit->status;
            candidate.proxy_latency_cycles = hit->latency_cycles;
            candidate.proxy_energy_pj = hit->energy_pj;
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }

    auto fill = [&]() -> Status {
        CompileRequest request;
        request.graph = &graph;
        request.arch_ref = &candidate.arch;
        // Proxies always price with the closed-form model: when the
        // spec selects the event engine, the analytic model itself is
        // the cheap fidelity rung below it.
        request.options = fidelity.forced_opt_none
                              ? ScheduleOptions::none()
                              : spec.options;
        request.workload_prefix_nodes = fidelity.prefix_nodes;
        request.threads = 1;
        request.outputs.flow = false;
        request.stop_after = CompileStage::kPerf;
        CompilerSession session(std::move(request));
        CIMMLC_ASSIGN_OR_RETURN(const CompileArtifacts artifacts,
                                session.run());
        candidate.proxy_latency_cycles = artifacts.perf->latency_cycles;
        candidate.proxy_energy_pj = artifacts.perf->energy.total();
        return Status::ok();
    };
    candidate.status = fill();
    session_runs.fetch_add(1, std::memory_order_relaxed);

    if (cache != nullptr) {
        cache->insert(
            key, TuneCache::Entry{candidate.status,
                                  candidate.proxy_latency_cycles,
                                  candidate.proxy_energy_pj,
                                  candidate.proxy_latency_cycles
                                      * candidate.proxy_energy_pj});
    }
}

} // namespace

// ----- spec parsing ---------------------------------------------------------

StatusOr<DseSpec>
dseSpecFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("DSE spec must be a kvjson object");

    DseSpec spec;
    spec.model = doc.getStringOr("model", "");
    spec.model_file = doc.getStringOr("model_file", "");
    spec.model_text = doc.getStringOr("model_text", "");
    int workload_sources = (spec.model.empty() ? 0 : 1)
                           + (spec.model_file.empty() ? 0 : 1)
                           + (spec.model_text.empty() ? 0 : 1);
    if (workload_sources == 0)
        return parseError("DSE spec needs a workload (set one of "
                          "model, model_file, model_text)");
    if (workload_sources > 1)
        return parseError("DSE spec has conflicting workload sources; "
                          "set exactly one of model, model_file, "
                          "model_text");

    const std::string arch = doc.getStringOr("arch", "");
    const std::string arch_file = doc.getStringOr("arch_file", "");
    const std::string arch_text = doc.getStringOr("arch_text", "");
    int arch_sources = (arch.empty() ? 0 : 1) + (arch_file.empty() ? 0 : 1)
                       + (arch_text.empty() ? 0 : 1);
    if (arch_sources > 1)
        return parseError("DSE spec has conflicting architecture "
                          "sources; set at most one of arch, arch_file, "
                          "arch_text");
    if (!arch_file.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(spec.base_arch, archFromFile(arch_file));
    } else if (!arch_text.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(spec.base_arch, archFromText(arch_text));
    } else {
        CIMMLC_ASSIGN_OR_RETURN(
            spec.base_arch,
            presets::byName(arch.empty() ? "isaac-baseline" : arch));
    }

    spec.opt = doc.getStringOr("opt", "full");
    CIMMLC_ASSIGN_OR_RETURN(spec.options, scheduleOptionsByName(spec.opt));
    if (doc.getBoolOr("dual_mode", false))
        spec.options.dual_mode = true;
    if (doc.getBoolOr("host_offload", false))
        spec.options.host_offload = true;
    spec.tune = doc.getBoolOr("tune", false);
    spec.lint = doc.getBoolOr("lint", false);
    CIMMLC_ASSIGN_OR_RETURN(
        spec.objective,
        parseTuneObjective(doc.getStringOr("objective", "latency")));
    spec.threads = static_cast<int>(doc.getIntOr("threads", 0));
    if (spec.threads < 0)
        return parseError("DSE spec 'threads' must be >= 0");

    if (doc.has("perf_engine")) {
        auto engine =
            parsePerfEngineKind(doc.getStringOr("perf_engine", ""));
        if (!engine.isOk())
            return engine.status().withContext("DSE spec 'perf_engine'");
        spec.perf_engine = engine.value();
    }

    if (doc.has("budget")) {
        auto budget = searchBudgetFromConfig(doc.get("budget").value());
        if (!budget.isOk())
            return budget.status().withContext("DSE spec 'budget'");
        // DSE budgets drive halving, so the proxy stage must be
        // genuinely cheaper than full fidelity; fail at parse time
        // rather than deep inside explore(). With the event engine the
        // closed-form proxy is cheaper by construction, so degenerate
        // proxy settings are still a valid ladder there.
        if (spec.perf_engine != PerfEngineKind::kEvent) {
            const Status halving = budget.value().validateForHalving();
            if (!halving.isOk())
                return halving.withContext("DSE spec 'budget'");
        }
        spec.budget = budget.value();
    }

    if (!doc.has("sweep"))
        return parseError("DSE spec needs a 'sweep' object (the "
                          "Abs-arch parameters to search)");
    CIMMLC_ASSIGN_OR_RETURN(spec.sweep,
                            sweepSpecFromConfig(doc.get("sweep").value()));
    if (spec.sweep.axes.empty())
        return parseError("DSE spec 'sweep' must vary at least one "
                          "parameter");
    return spec;
}

StatusOr<DseSpec>
dseSpecFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, parseConfig(text));
    return dseSpecFromConfig(doc);
}

StatusOr<DseSpec>
dseSpecFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, loadConfigFile(path));
    auto result = dseSpecFromConfig(doc);
    if (!result.isOk())
        return result.status().withContext(path);
    return result;
}

// ----- candidates and the front --------------------------------------------

double
DseCandidate::objectiveValue(TuneObjective objective) const
{
    switch (objective) {
      case TuneObjective::kLatency: return latency_cycles;
      case TuneObjective::kEnergy: return energy_pj;
      case TuneObjective::kEdp: return edp;
    }
    return std::numeric_limits<double>::infinity();
}

std::vector<std::size_t>
paretoFrontIndices(const std::vector<DseCandidate> &candidates)
{
    // Only fully evaluated points compete: proxy metrics steer halving
    // promotion but never earn front membership, which is what makes a
    // budgeted front a guaranteed subset of the full-evaluation set.
    std::vector<SearchPoint> points;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!candidates[i].status.isOk() || !candidates[i].full_eval)
            continue;
        SearchPoint point;
        point.id = i;
        point.metrics = MetricPoint{candidates[i].latency_cycles,
                                    candidates[i].energy_pj};
        points.push_back(point);
    }
    const std::vector<std::size_t> ranks = paretoRanks(points);
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (ranks[i] == 0)
            front.push_back(points[i].id);
    }
    std::sort(front.begin(), front.end(),
              [&candidates](std::size_t a, std::size_t b) {
                  const DseCandidate &ca = candidates[a];
                  const DseCandidate &cb = candidates[b];
                  if (ca.latency_cycles != cb.latency_cycles)
                      return ca.latency_cycles < cb.latency_cycles;
                  if (ca.energy_pj != cb.energy_pj)
                      return ca.energy_pj < cb.energy_pj;
                  return ca.index < cb.index;
              });
    return front;
}

std::vector<DseCandidate>
ArchExplorer::enumerate() const
{
    const std::vector<ArchAxis> &axes = spec_.sweep.axes;
    const std::size_t total = spec_.sweep.candidateCount();
    std::vector<DseCandidate> candidates;
    candidates.reserve(total);
    // Row-major enumeration: the first axis varies slowest, so the
    // candidate index is a stable mixed-radix encoding of its choices.
    std::vector<std::size_t> choice(axes.size(), 0);
    for (std::size_t index = 0; index < total; ++index) {
        DseCandidate candidate;
        candidate.index = index;
        candidate.arch = spec_.base_arch;
        std::vector<std::string> parts;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const ArchParamValue &value = axes[a].values[choice[a]];
            const std::string rendered =
                archParamValueToString(axes[a].param, value);
            candidate.params.emplace_back(archParamName(axes[a].param),
                                          rendered);
            parts.push_back(std::string(archParamName(axes[a].param))
                            + "=" + rendered);
            if (candidate.status.isOk()) {
                candidate.status = applyArchParam(&candidate.arch,
                                                  axes[a].param, value);
            }
        }
        candidate.label = join(parts, " ");
        if (candidate.status.isOk())
            candidate.status = candidate.arch.validate();
        candidates.push_back(std::move(candidate));
        // Advance the mixed-radix counter, last axis fastest.
        for (std::size_t a = axes.size(); a-- > 0;) {
            if (++choice[a] < axes[a].values.size())
                break;
            choice[a] = 0;
        }
    }
    return candidates;
}

Status
validateSpecForSharding(const DseSpec &spec)
{
    // Named reasons, not just "not allowed": both rejections exist
    // because the search is globally adaptive, and the message says
    // which global decision a per-shard slice cannot reproduce.
    if (spec.budget.enabled())
        return invalidArgument(
            "arch-dse sharding requires an exhaustive spec: "
            "successive-halving promotion compares candidates across "
            "the whole sweep, which per-shard slices cannot reproduce "
            "(drop 'budget' / --search-budget)");
    if (spec.tune)
        return invalidArgument(
            "arch-dse sharding requires an untuned spec: per-candidate "
            "tuning shares one memo across the sweep, so shard-local "
            "caches would change the reported hit accounting "
            "(drop 'tune')");
    return Status::ok();
}

Status
ArchExplorer::restrictToShard(int shard, int count)
{
    if (count < 1 || shard < 0 || shard >= count)
        return invalidArgument(
            strformat("bad shard %d/%d: need 0 <= shard < count",
                      shard, count));
    CIMMLC_RETURN_IF_ERROR(validateSpecForSharding(spec_));
    shard_index_ = shard;
    shard_count_ = count;
    return Status::ok();
}

StatusOr<DseResult>
ArchExplorer::explore(TuneCache *cache) const
{
    std::optional<Graph> loaded;
    if (!spec_.model.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(loaded,
                                models::byNameChecked(spec_.model));
    } else if (!spec_.model_file.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(loaded, graphFromFile(spec_.model_file));
    } else {
        CIMMLC_ASSIGN_OR_RETURN(loaded, graphFromText(spec_.model_text));
    }
    const Graph &graph = *loaded;

    DseResult result;
    result.objective = spec_.objective;
    result.workload = graph.name();
    result.nodes = static_cast<std::int64_t>(graph.nodeCount());
    result.weights = graph.totalWeights();
    result.base_arch = spec_.base_arch.name;
    result.tuned = spec_.tune;
    result.lint = spec_.lint;
    result.perf_engine = spec_.perf_engine;
    result.budget = spec_.budget;
    result.candidates = enumerate();

    // Deduplicate sweep points that denote the same evaluation (e.g. a
    // scalar grid shorthand next to its [N, N] spelling): only the
    // first occurrence is evaluated, later ones copy its result and
    // count as memo hits. Without this, concurrent duplicates could
    // race past each other's cache insert and the report's hit count
    // would depend on thread timing.
    std::map<std::string, std::size_t> first_of_key;
    std::vector<std::size_t> unique;
    std::vector<std::string> keys(result.candidates.size());
    std::vector<std::size_t> copy_from(result.candidates.size(),
                                       result.candidates.size());
    const bool sharded = shard_count_ > 1;
    for (DseCandidate &candidate : result.candidates) {
        if (sharded
            && static_cast<int>(
                   candidate.index
                   % static_cast<std::size_t>(shard_count_))
                   != shard_index_) {
            // Another shard owns this candidate: leave it unevaluated
            // and out of this slice's front. Dedup below is then
            // shard-local; the merge replays the global pass.
            candidate.full_eval = false;
            continue;
        }
        if (!candidate.status.isOk())
            continue;
        // The arch identity alone for tuned runs (the tuner covers every
        // encoding); arch + the fixed options otherwise.
        keys[candidate.index] = TuneCache::fingerprint(
            graph, candidate.arch,
            spec_.tune ? 0u : AutoTuner::encodeOptions(spec_.options));
        // Linted evaluations gate feasibility on mopcheck, so their
        // memo entries must never alias unlinted ones.
        if (spec_.lint)
            keys[candidate.index] += "+lint";
        // Event-engine metrics come from a different pricing model;
        // closed-form proxy keys stay untagged so they correctly alias
        // plain closed-form full evaluations.
        if (spec_.perf_engine == PerfEngineKind::kEvent)
            keys[candidate.index] += "+engine:event";
        auto [it, inserted] =
            first_of_key.emplace(keys[candidate.index], candidate.index);
        if (inserted)
            unique.push_back(candidate.index);
        else
            copy_from[candidate.index] = it->second;
    }

    std::int64_t compute_nodes = 0;
    for (const Node &node : graph.nodes())
        if (node.kind != OpKind::kInput)
            ++compute_nodes;

    // The halving ladder over the unique evaluations: a disabled
    // budget yields the single-rung exhaustive schedule and the loop
    // below degenerates to the original full-fidelity sweep. A
    // prefix-only proxy over a single-compute-node workload cannot be
    // cheaper than full fidelity, so such runs degrade to exhaustive
    // too instead of paying every "proxy" rung at full session cost —
    // unless full fidelity means the event engine, where the
    // closed-form proxy is cheaper whatever the workload shape.
    const bool engine_rung = spec_.perf_engine == PerfEngineKind::kEvent;
    const bool proxy_can_cheapen = spec_.budget.proxy_opt_none
                                   || compute_nodes > 1 || engine_rung;
    CIMMLC_ASSIGN_OR_RETURN(
        const HalvingSchedule ladder,
        makeHalvingSchedule(static_cast<std::int64_t>(unique.size()),
                            spec_.budget.enabled() && proxy_can_cheapen
                                ? spec_.budget.max_full_evals
                                : 0));
    result.rung_sizes = ladder.rungs;
    const std::size_t proxy_rungs = ladder.proxyRungCount();
    // Re-check here, not just at spec parse: the CLI --search-budget
    // override can enable a budget whose spec-provided proxy settings
    // degenerate to full fidelity, which would turn every proxy rung
    // into an untagged full evaluation. Not needed on the engine rung:
    // proxies run closed-form below event-engine full evaluations, so
    // they are cheaper even at identical schedule fidelity.
    if (proxy_rungs > 0 && !engine_rung)
        CIMMLC_RETURN_IF_ERROR(spec_.budget.validateForHalving()
                                   .withContext("arch-dse budget"));

    std::atomic<std::int64_t> cache_hits{0};
    std::atomic<std::int64_t> proxy_runs{0};
    std::optional<ThreadPool> pool;
    if (spec_.threads != 1)
        pool.emplace(spec_.threads);
    // Runs one rung: every survivor gets its own pre-assigned result
    // slot, so the parallel path is byte-identical to the serial one.
    auto run_rung = [&pool](const std::vector<std::size_t> &indices,
                            const std::function<void(std::size_t)> &eval) {
        if (pool.has_value()) {
            for (std::size_t index : indices)
                pool->submit([&eval, index] { eval(index); });
            pool->wait();
        } else {
            for (std::size_t index : indices)
                eval(index);
        }
    };

    std::vector<std::size_t> survivors = unique;
    if (proxy_rungs > 0) {
        // Budgeted run: nothing has full fidelity until the last rung
        // grants it.
        for (DseCandidate &candidate : result.candidates)
            candidate.full_eval = false;
        const std::uint32_t proxy_encoding =
            AutoTuner::encodeOptions(spec_.budget.proxy_opt_none
                                         ? ScheduleOptions::none()
                                         : spec_.options);
        std::optional<SearchFidelity> evaluated_fidelity;
        for (std::size_t rung = 0; rung < proxy_rungs; ++rung) {
            const SearchFidelity fidelity = proxyFidelity(
                spec_.budget, compute_nodes, rung, proxy_rungs);
            // Small workloads can round consecutive rungs to the same
            // prefix; re-pricing survivors at an identical fidelity
            // would reproduce their metrics byte for byte, so only the
            // selection shrink runs for such a rung.
            if (fidelity != evaluated_fidelity) {
                std::vector<std::string> proxy_keys(
                    result.candidates.size());
                for (std::size_t index : survivors)
                    proxy_keys[index] = TuneCache::fingerprint(
                        graph, result.candidates[index].arch,
                        proxy_encoding, fidelity);
                run_rung(survivors, [&](std::size_t index) {
                    DseCandidate &candidate = result.candidates[index];
                    candidate.rung = static_cast<std::int64_t>(rung);
                    evaluateProxy(graph, spec_, candidate, fidelity,
                                  proxy_keys[index], cache, cache_hits,
                                  proxy_runs);
                });
                evaluated_fidelity = fidelity;
            }
            // Promote the next rung's worth: Pareto-rank-aware on the
            // proxy metrics so a front spread across the trade-off
            // survives, scalar objective breaking ties inside a rank.
            std::vector<SearchPoint> points;
            points.reserve(survivors.size());
            for (std::size_t index : survivors) {
                const DseCandidate &candidate = result.candidates[index];
                SearchPoint point;
                point.id = index;
                point.metrics =
                    MetricPoint{candidate.proxy_latency_cycles,
                                candidate.proxy_energy_pj};
                point.feasible = candidate.status.isOk();
                switch (spec_.objective) {
                  case TuneObjective::kLatency:
                    point.objective = candidate.proxy_latency_cycles;
                    break;
                  case TuneObjective::kEnergy:
                    point.objective = candidate.proxy_energy_pj;
                    break;
                  case TuneObjective::kEdp:
                    point.objective = candidate.proxy_latency_cycles
                                      * candidate.proxy_energy_pj;
                    break;
                }
                points.push_back(point);
            }
            survivors =
                selectSurvivors(points, ladder.rungs[rung + 1]);
        }
    }

    // Full-fidelity rung: the survivors (everyone, when exhaustive).
    run_rung(survivors, [&](std::size_t index) {
        DseCandidate &candidate = result.candidates[index];
        candidate.full_eval = true;
        candidate.rung = static_cast<std::int64_t>(proxy_rungs);
        evaluateCandidate(graph, spec_, candidate, keys[index], cache,
                          cache_hits);
    });
    result.full_evals = static_cast<std::int64_t>(survivors.size());
    result.proxy_evals = proxy_runs.load();

    for (DseCandidate &candidate : result.candidates) {
        if (copy_from[candidate.index] >= result.candidates.size())
            continue;
        const DseCandidate &source =
            result.candidates[copy_from[candidate.index]];
        candidate.status = source.status;
        candidate.latency_cycles = source.latency_cycles;
        candidate.energy_pj = source.energy_pj;
        candidate.edp = source.edp;
        candidate.tuned = source.tuned;
        candidate.config = source.config;
        candidate.rung = source.rung;
        candidate.full_eval = source.full_eval;
        candidate.proxied = source.proxied;
        candidate.proxy_latency_cycles = source.proxy_latency_cycles;
        candidate.proxy_energy_pj = source.proxy_energy_pj;
        cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    result.cache_hits = cache_hits.load();
    result.cache_entries =
        cache != nullptr ? static_cast<std::int64_t>(cache->size()) : 0;

    result.front = paretoFrontIndices(result.candidates);
    for (std::size_t index : result.front)
        result.candidates[index].on_front = true;
    // A shard slice may legitimately own no feasible candidate; only
    // the full (merged or unsharded) sweep treats that as an error.
    if (result.front.empty() && !sharded) {
        Status first = internalError("empty sweep");
        for (const DseCandidate &candidate : result.candidates) {
            if (!candidate.status.isOk()) {
                first = candidate.status;
                break;
            }
        }
        return first.withContext("arch-dse: no feasible candidate for '"
                                 + graph.name() + "' over base '"
                                 + spec_.base_arch.name + "'");
    }
    return result;
}

// ----- reporting ------------------------------------------------------------

std::int64_t
DseResult::feasibleCount() const
{
    std::int64_t ok = 0;
    for (const DseCandidate &candidate : candidates)
        if (candidate.full_eval && candidate.status.isOk())
            ++ok;
    return ok;
}

std::string
DseResult::table() const
{
    // Ranked view: fully evaluated feasible candidates by ascending
    // objective (ties: EDP, then index — the tuner's tie-break
    // discipline), then proxy-only rows a budgeted run did not promote
    // (by index), infeasible ones last by index. Sorting keys only,
    // never timing, keeps the render thread-count independent.
    auto group = [](const DseCandidate &candidate) {
        if (candidate.full_eval && candidate.status.isOk())
            return 0;
        // A failed proxy has no metrics; it renders with the plain
        // infeasible rows below, not with the proxy-priced ones.
        if (candidate.proxied && !candidate.full_eval
            && candidate.status.isOk())
            return 1;
        return 2;
    };
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const TuneObjective objective = this->objective;
    std::sort(order.begin(), order.end(),
              [this, objective, &group](std::size_t a, std::size_t b) {
                  const DseCandidate &ca = candidates[a];
                  const DseCandidate &cb = candidates[b];
                  if (group(ca) != group(cb))
                      return group(ca) < group(cb);
                  if (group(ca) != 0)
                      return ca.index < cb.index;
                  const double va = ca.objectiveValue(objective);
                  const double vb = cb.objectiveValue(objective);
                  if (va != vb)
                      return va < vb;
                  if (ca.edp != cb.edp)
                      return ca.edp < cb.edp;
                  return ca.index < cb.index;
              });

    TextTable table({"#", "architecture", "latency (cyc)", "energy (pJ)",
                     "EDP", "config", "note"});
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const DseCandidate &candidate = candidates[order[rank]];
        switch (group(candidate)) {
          case 0: {
            std::string note;
            if (candidate.on_front)
                note = rank == 0 ? "front <- best" : "front";
            table.addRow({strformat("%zu", candidate.index),
                          candidate.label,
                          strformat("%.6g", candidate.latency_cycles),
                          strformat("%.6g", candidate.energy_pj),
                          strformat("%.6g", candidate.edp),
                          (candidate.tuned ? "tuned: " : "")
                              + candidate.config,
                          note});
            break;
          }
          case 1:
            // Halving priced these on the proxy stage only; the
            // metrics shown are proxy-fidelity and never compete for
            // the front.
            table.addRow(
                {strformat("%zu", candidate.index), candidate.label,
                 strformat("%.6g", candidate.proxy_latency_cycles),
                 strformat("%.6g", candidate.proxy_energy_pj),
                 strformat("%.6g", candidate.proxy_latency_cycles
                                       * candidate.proxy_energy_pj),
                 "-",
                 strformat("proxy rung %lld (not promoted)",
                           static_cast<long long>(candidate.rung))});
            break;
          default:
            table.addRow({strformat("%zu", candidate.index),
                          candidate.label, "-", "-", "-", "-",
                          candidate.status.toString()});
            break;
        }
    }
    return table.render();
}

const DseCandidate &
DseResult::bestByObjective() const
{
    std::size_t best = front.front();
    for (std::size_t index : front) {
        const DseCandidate &challenger = candidates[index];
        const DseCandidate &incumbent = candidates[best];
        const double vc = challenger.objectiveValue(objective);
        const double vi = incumbent.objectiveValue(objective);
        if (vc < vi
            || (vc == vi
                && (challenger.edp < incumbent.edp
                    || (challenger.edp == incumbent.edp
                        && challenger.index < incumbent.index))))
            best = index;
    }
    return candidates[best];
}

std::string
DseResult::summary() const
{
    const DseCandidate &best = bestByObjective();
    std::string line = strformat(
        "arch-dse[%s]: %zu candidates (%lld feasible), Pareto front %zu "
        "points, best %s=%.6g at [%s], cache hits %lld",
        tuneObjectiveName(objective), candidates.size(),
        static_cast<long long>(feasibleCount()), front.size(),
        tuneObjectiveName(objective), best.objectiveValue(objective),
        best.label.c_str(), static_cast<long long>(cache_hits));
    if (perf_engine == PerfEngineKind::kEvent)
        line += ", engine event";
    if (budget.enabled()) {
        HalvingSchedule ladder;
        ladder.rungs = rung_sizes;
        line += strformat(
            ", budget %s, rungs %s, %lld full + %lld proxy evals",
            budget.toString().c_str(), ladder.toString().c_str(),
            static_cast<long long>(full_evals),
            static_cast<long long>(proxy_evals));
    }
    return line;
}

ConfigValue
DseResult::toConfig() const
{
    ConfigValue::Object doc;
    doc["schema"] = text("cimmlc.dse.v1");

    ConfigValue::Object workload_obj;
    workload_obj["name"] = text(workload);
    workload_obj["nodes"] = number(nodes);
    workload_obj["weights"] = number(weights);
    doc["workload"] = ConfigValue::makeObject(std::move(workload_obj));

    doc["base_arch"] = text(base_arch);
    doc["objective"] = text(tuneObjectiveName(objective));
    doc["tune"] = ConfigValue::makeBool(tuned);
    doc["lint"] = ConfigValue::makeBool(lint);
    doc["perf_engine"] = text(perfEngineName(perf_engine));

    ConfigValue::Array rows;
    for (const DseCandidate &candidate : candidates) {
        ConfigValue::Object row;
        row["index"] =
            number(static_cast<std::int64_t>(candidate.index));
        ConfigValue::Object params;
        for (const auto &[param, value] : candidate.params)
            params[param] = text(value);
        row["params"] = ConfigValue::makeObject(std::move(params));
        row["status"] = text(candidate.status.toString());
        if (candidate.full_eval && candidate.status.isOk()) {
            row["latency_cycles"] = number(candidate.latency_cycles);
            row["energy_pj"] = number(candidate.energy_pj);
            row["edp"] = number(candidate.edp);
            row["config"] = text(candidate.config);
            row["tuned"] = ConfigValue::makeBool(candidate.tuned);
        }
        // Budgeted-search provenance: which rung the candidate reached,
        // whether it earned full fidelity, and the proxy metrics its
        // promotion verdict was based on.
        row["rung"] = number(candidate.rung);
        row["full_eval"] = ConfigValue::makeBool(candidate.full_eval);
        if (candidate.proxied) {
            row["proxy_latency_cycles"] =
                number(candidate.proxy_latency_cycles);
            row["proxy_energy_pj"] = number(candidate.proxy_energy_pj);
        }
        row["on_front"] = ConfigValue::makeBool(candidate.on_front);
        rows.push_back(ConfigValue::makeObject(std::move(row)));
    }
    doc["evaluated"] = ConfigValue::makeArray(std::move(rows));

    ConfigValue::Object search_obj;
    search_obj["budget"] = searchBudgetToConfig(budget);
    ConfigValue::Array rung_rows;
    for (std::int64_t size : rung_sizes)
        rung_rows.push_back(number(size));
    search_obj["rungs"] = ConfigValue::makeArray(std::move(rung_rows));
    search_obj["full_evals"] = number(full_evals);
    search_obj["proxy_evals"] = number(proxy_evals);
    doc["search"] = ConfigValue::makeObject(std::move(search_obj));

    ConfigValue::Array front_rows;
    for (std::size_t index : front)
        front_rows.push_back(number(static_cast<std::int64_t>(index)));
    doc["front"] = ConfigValue::makeArray(std::move(front_rows));

    ConfigValue::Object cache_obj;
    cache_obj["hits"] = number(cache_hits);
    cache_obj["entries"] = number(cache_entries);
    doc["cache"] = ConfigValue::makeObject(std::move(cache_obj));
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
