#include "arch/noc.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"

namespace cimmlc {

NocModel::NocModel(NocType type, std::int64_t grid_rows,
                   std::int64_t grid_cols, double bandwidth,
                   std::vector<double> cost_matrix)
    : type_(type), rows_(grid_rows), cols_(grid_cols),
      bandwidth_(bandwidth), cost_matrix_(std::move(cost_matrix))
{
    CIMMLC_CHECK_GT(rows_, 0);
    CIMMLC_CHECK_GT(cols_, 0);
    if (!cost_matrix_.empty()) {
        const std::size_t n = static_cast<std::size_t>(endpointCount());
        CIMMLC_CHECK_EQ(cost_matrix_.size(), n * n)
            << "NoC cost matrix has wrong size";
    }
}

NocModel
NocModel::forChip(const CimArchitecture &arch)
{
    return NocModel(arch.chip.core_noc, arch.chip.core_rows,
                    arch.chip.core_cols, arch.chip.core_noc_bandwidth,
                    arch.chip.core_noc_cost);
}

NocModel
NocModel::forCore(const CimArchitecture &arch)
{
    return NocModel(arch.core.xb_noc, arch.core.xb_rows,
                    arch.core.xb_cols, arch.core.xb_noc_bandwidth,
                    arch.core.xb_noc_cost);
}

std::int64_t
NocModel::hopCount(std::int64_t src, std::int64_t dst) const
{
    CIMMLC_CHECK(src >= 0 && src < endpointCount()) << "bad src " << src;
    CIMMLC_CHECK(dst >= 0 && dst < endpointCount()) << "bad dst " << dst;
    if (src == dst)
        return 0;
    switch (type_) {
      case NocType::kIdeal:
        return 0;
      case NocType::kSharedBus:
      case NocType::kDisjointBufferSwitch:
        // One arbitration + one transfer regardless of position.
        return 1;
      case NocType::kMesh: {
        const std::int64_t sr = src / cols_, sc = src % cols_;
        const std::int64_t dr = dst / cols_, dc = dst % cols_;
        return std::abs(sr - dr) + std::abs(sc - dc);
      }
      case NocType::kHTree: {
        // Hop count = up to the lowest common subtree and back down over
        // a binary fat-tree on linear indices.
        std::int64_t a = src, b = dst;
        std::int64_t hops = 0;
        while (a != b) {
            a >>= 1;
            b >>= 1;
            hops += 2;
        }
        return hops;
      }
    }
    return 1;
}

double
NocModel::transferCycles(std::int64_t src, std::int64_t dst,
                         double bits) const
{
    if (!cost_matrix_.empty()) {
        const double cycles_per_bit =
            cost_matrix_[static_cast<std::size_t>(src * endpointCount() +
                                                  dst)];
        return cycles_per_bit * bits;
    }
    if (type_ == NocType::kIdeal || bandwidth_ <= 0.0)
        return 0.0;
    const std::int64_t hops = hopCount(src, dst);
    if (hops == 0)
        return 0.0;
    // Wormhole-style: serialization dominates, plus per-hop latency.
    return bits / bandwidth_ + static_cast<double>(hops);
}

double
NocModel::averageCyclesPerBit() const
{
    const std::int64_t n = endpointCount();
    if (n <= 1)
        return 0.0;
    double total = 0.0;
    std::int64_t pairs = 0;
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t d = 0; d < n; ++d) {
            if (s == d)
                continue;
            total += transferCycles(s, d, 1.0);
            ++pairs;
        }
    }
    return total / static_cast<double>(pairs);
}

std::int64_t
NocModel::diameter() const
{
    const std::int64_t n = endpointCount();
    std::int64_t best = 0;
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t d = 0; d < n; ++d)
            best = std::max(best, hopCount(s, d));
    }
    return best;
}

} // namespace cimmlc
