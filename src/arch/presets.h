/**
 * @file
 * Named architecture presets from the paper's evaluation.
 */
#ifndef CIMMLC_ARCH_PRESETS_H
#define CIMMLC_ARCH_PRESETS_H

#include <string>
#include <vector>

#include "arch/arch.h"

namespace cimmlc::presets {

/**
 * Table 3's ISAAC-style CIM architecture baseline: 768 cores, 16
 * crossbars per core, 128x128 ReRAM arrays with 2-bit cells,
 * parallel_row 8, 1-bit DAC / 8-bit ADC. WLM-capable so every scheduling
 * level can be exercised (Figures 20(d), 21, 22).
 */
CimArchitecture isaacBaseline();

/**
 * Figure 17: Jia et al.'s ISSCC'21 SRAM accelerator — 16 CIMUs of
 * 1152x256 with full 1152-row parallel activation, disjoint-buffer-switch
 * interconnect, CM programming interface.
 */
CimArchitecture jiaIsscc21();

/**
 * Figure 18: PUMA — 138 cores x 2 crossbars of 128x128 ReRAM (2-bit
 * cells), mesh NoC, 96 KiB L0 at 384 b/cycle, 1 KiB L1, XBM interface.
 *
 * Note: Figure 18 prints "ADC: 1-bit, DAC: 8-bit"; the PUMA paper and
 * Table 3 use 1-bit input DACs with 8-bit ADCs, so we keep DAC=1/ADC=8
 * and record the discrepancy in EXPERIMENTS.md.
 */
CimArchitecture puma();

/**
 * Figure 19: Jain et al.'s JSSC'21 SRAM macro — 4 cores x 2 crossbars of
 * 256x64 1-bit SRAM cells, at most 32 rows active simultaneously, WLM
 * interface.
 */
CimArchitecture jainJssc21();

/**
 * Table 2: the Section 3.4 walkthrough chip — 2 cores x 2 crossbars of
 * 32x128 2-bit cells, parallel_row 16.
 */
CimArchitecture tutorialTable2(ComputeMode mode);

/** Preset lookup by name ("isaac", "puma", "jia", "jain", "tutorial"). */
StatusOr<CimArchitecture> byName(const std::string &name);

/** Names accepted by byName. */
std::vector<std::string> availablePresets();

} // namespace cimmlc::presets

#endif // CIMMLC_ARCH_PRESETS_H
