#include "arch/presets.h"

#include "common/strutil.h"

namespace cimmlc::presets {

CimArchitecture
isaacBaseline()
{
    CimArchitecture arch;
    arch.name = "isaac-baseline";
    arch.mode = ComputeMode::kWLM;
    arch.chip.core_rows = 32;
    arch.chip.core_cols = 24; // 768 cores
    arch.chip.core_noc = NocType::kMesh;
    arch.chip.core_noc_bandwidth = 384.0;
    arch.chip.alu_ops_per_cycle = 1024.0;
    arch.chip.l0_bandwidth = 384.0;
    arch.core.xb_rows = 4;
    arch.core.xb_cols = 4; // 16 crossbars
    arch.core.xb_noc = NocType::kSharedBus;
    arch.core.alu_ops_per_cycle = 1024.0;
    arch.core.l1_bandwidth = 8192.0;
    arch.xbar.rows = 128;
    arch.xbar.cols = 128;
    arch.xbar.parallel_row = 8;
    arch.xbar.dac_bits = 1;
    arch.xbar.adc_bits = 8;
    arch.xbar.cell_type = CellType::kReram;
    arch.xbar.cell_bits = 2;
    return arch;
}

CimArchitecture
jiaIsscc21()
{
    CimArchitecture arch;
    arch.name = "jia-isscc21";
    arch.mode = ComputeMode::kCM;
    arch.chip.core_rows = 4;
    arch.chip.core_cols = 4; // 16 CIMUs
    arch.chip.core_noc = NocType::kDisjointBufferSwitch;
    arch.core.xb_rows = 1;
    arch.core.xb_cols = 1;
    arch.xbar.rows = 1152;
    arch.xbar.cols = 256;
    arch.xbar.parallel_row = 1152;
    arch.xbar.dac_bits = 1;
    arch.xbar.adc_bits = 8;
    arch.xbar.cell_type = CellType::kSram;
    arch.xbar.cell_bits = 1;
    return arch;
}

CimArchitecture
puma()
{
    CimArchitecture arch;
    arch.name = "puma";
    arch.mode = ComputeMode::kXBM;
    arch.chip.core_rows = 6;
    arch.chip.core_cols = 23; // 138 cores
    arch.chip.core_noc = NocType::kMesh;
    arch.chip.core_noc_bandwidth = 384.0;
    arch.chip.l0_size_kib = 96.0;
    arch.chip.l0_bandwidth = 384.0;
    arch.core.xb_rows = 1;
    arch.core.xb_cols = 2; // 2 crossbars per core
    arch.core.l1_size_kib = 1.0;
    arch.xbar.rows = 128;
    arch.xbar.cols = 128;
    arch.xbar.parallel_row = 128;
    arch.xbar.dac_bits = 1;
    arch.xbar.adc_bits = 8;
    arch.xbar.cell_type = CellType::kReram;
    arch.xbar.cell_bits = 2;
    return arch;
}

CimArchitecture
jainJssc21()
{
    CimArchitecture arch;
    arch.name = "jain-jssc21";
    arch.mode = ComputeMode::kWLM;
    arch.chip.core_rows = 2;
    arch.chip.core_cols = 2; // 4 cores
    arch.chip.core_noc = NocType::kSharedBus;
    arch.core.xb_rows = 1;
    arch.core.xb_cols = 2; // 2 crossbars per core
    arch.xbar.rows = 256;
    arch.xbar.cols = 64;
    arch.xbar.parallel_row = 32;
    arch.xbar.dac_bits = 1;
    arch.xbar.adc_bits = 6;
    arch.xbar.cell_type = CellType::kSram;
    arch.xbar.cell_bits = 1;
    return arch;
}

CimArchitecture
tutorialTable2(ComputeMode mode)
{
    CimArchitecture arch;
    arch.name = strformat("tutorial-table2-%s", computeModeName(mode));
    arch.mode = mode;
    arch.chip.core_rows = 2;
    arch.chip.core_cols = 1; // 2 cores
    arch.chip.core_noc = NocType::kSharedBus;
    arch.core.xb_rows = 2;
    arch.core.xb_cols = 1; // 2 crossbars per core
    arch.xbar.rows = 32;
    arch.xbar.cols = 128;
    arch.xbar.parallel_row = 16;
    arch.xbar.dac_bits = 8;
    arch.xbar.adc_bits = 8;
    arch.xbar.cell_type = CellType::kSram;
    arch.xbar.cell_bits = 2;
    return arch;
}

StatusOr<CimArchitecture>
byName(const std::string &name)
{
    const std::string key = toLower(trim(name));
    if (key == "isaac" || key == "isaac-baseline" || key == "baseline")
        return isaacBaseline();
    if (key == "jia" || key == "jia-isscc21")
        return jiaIsscc21();
    if (key == "puma")
        return puma();
    if (key == "jain" || key == "jain-jssc21")
        return jainJssc21();
    if (key == "tutorial" || key == "tutorial-table2")
        return tutorialTable2(ComputeMode::kWLM);
    return notFound("unknown architecture preset '" + name + "'");
}

std::vector<std::string>
availablePresets()
{
    return {"isaac-baseline", "jia-isscc21", "puma", "jain-jssc21",
            "tutorial-table2"};
}

} // namespace cimmlc::presets
