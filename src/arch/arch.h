/**
 * @file
 * Abs-arch and Abs-com: the paper's CIM hardware abstraction (Section 3.2).
 *
 * A CIM accelerator is described by three parameter tiers — chip, core,
 * crossbar (Figures 5, 6, 8) — plus the computing mode (Figure 4(d)-(f))
 * that records the scheduling granularity the chip's programming interface
 * exposes:
 *   - CM  (core mode):     whole DNN operators per core        -> CG-grained
 *   - XBM (crossbar mode): MVMs per crossbar                   -> +MVM-grained
 *   - WLM (wordline mode): partial-row activation per crossbar -> +VVM-grained
 */
#ifndef CIMMLC_ARCH_ARCH_H
#define CIMMLC_ARCH_ARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cimmlc {

/** Computing-mode abstraction (Abs-com). */
enum class ComputeMode { kCM, kXBM, kWLM };

const char *computeModeName(ComputeMode mode);

/** Parses "CM" / "XBM" / "WLM" (case-insensitive). */
StatusOr<ComputeMode> parseComputeMode(const std::string &text);

/** On-chip network topologies the abstraction recognizes. */
enum class NocType {
    kIdeal,               //!< zero-cost interconnect ("\" in the paper)
    kSharedBus,           //!< single shared medium
    kMesh,                //!< 2-d mesh, XY routing
    kHTree,               //!< hierarchical tree
    kDisjointBufferSwitch //!< Jia et al.'s disjoint buffer switch
};

const char *nocTypeName(NocType type);
StatusOr<NocType> parseNocType(const std::string &text);

/** Memory-cell technologies (Figure 1's device axis). */
enum class CellType { kSram, kReram, kFlash, kPcm, kSttMram };

const char *cellTypeName(CellType type);
StatusOr<CellType> parseCellType(const std::string &text);

/**
 * Chip-tier parameters (Figure 5).
 *
 * A zero value for ALU/buffer parameters means "ideal": the paper marks
 * unconstrained parameters with "\" and disregards their influence.
 */
struct ChipTier {
    std::int64_t core_rows = 1; //!< cores per column of the core grid
    std::int64_t core_cols = 1; //!< cores per row of the core grid
    NocType core_noc = NocType::kIdeal;
    //! per-hop transfer bandwidth, bits/cycle; 0 = ideal
    double core_noc_bandwidth = 0.0;
    //! optional explicit cost matrix, cycles/bit for each (src,dst) pair
    std::vector<double> core_noc_cost;
    double alu_ops_per_cycle = 0.0; //!< digital compute; 0 = ideal
    double l0_size_kib = 0.0;       //!< global buffer capacity; 0 = ideal
    double l0_bandwidth = 0.0;      //!< global buffer bits/cycle; 0 = ideal

    std::int64_t coreNumber() const { return core_rows * core_cols; }
};

/** Core-tier parameters (Figure 6). */
struct CoreTier {
    std::int64_t xb_rows = 1; //!< crossbars per column of the grid
    std::int64_t xb_cols = 1; //!< crossbars per row of the grid
    NocType xb_noc = NocType::kIdeal;
    double xb_noc_bandwidth = 0.0;
    std::vector<double> xb_noc_cost;
    double alu_ops_per_cycle = 0.0;
    double l1_size_kib = 0.0;
    double l1_bandwidth = 0.0;

    std::int64_t xbNumber() const { return xb_rows * xb_cols; }
};

/** Crossbar-tier parameters (Figure 8). */
struct CrossbarTier {
    std::int64_t rows = 128;
    std::int64_t cols = 128;
    //! max rows activated simultaneously (WLM "parallel row")
    std::int64_t parallel_row = 128;
    int dac_bits = 1;
    int adc_bits = 8;
    CellType cell_type = CellType::kReram;
    int cell_bits = 2; //!< storage precision of one cell
};

/**
 * A complete CIM accelerator description.
 *
 * `mode` is the *most capable* computing mode the chip's programming
 * interface exposes; the multi-level scheduler applies every optimization
 * level at or above that granularity (Figure 3).
 */
struct CimArchitecture {
    std::string name = "unnamed";
    ComputeMode mode = ComputeMode::kXBM;
    ChipTier chip;
    CoreTier core;
    CrossbarTier xbar;
    int weight_bits = 8;     //!< DNN weight precision
    int activation_bits = 8; //!< DNN activation precision

    /** Total physical crossbars on the chip. */
    std::int64_t
    totalCrossbars() const
    {
        return chip.coreNumber() * core.xbNumber();
    }

    /** Crossbar columns consumed per logical weight (bit slicing). */
    std::int64_t
    cellsPerWeight() const
    {
        return (weight_bits + xbar.cell_bits - 1) / xbar.cell_bits;
    }

    /** Logical weight columns one crossbar holds. */
    std::int64_t
    logicalColsPerCrossbar() const
    {
        return xbar.cols / cellsPerWeight();
    }

    /** Input bit-serial cycles per crossbar activation. */
    std::int64_t
    dacCyclesPerActivation() const
    {
        return (activation_bits + xbar.dac_bits - 1) / xbar.dac_bits;
    }

    /** Row groups that must be activated serially in WLM terms. */
    std::int64_t
    rowGroupsPerActivation() const
    {
        return (xbar.rows + xbar.parallel_row - 1) / xbar.parallel_row;
    }

    /** True when the device technology freezes weights at load time. */
    bool weightsStationary() const;

    /** Semantic checks over every tier. */
    Status validate() const;

    /** Multi-line dump mirroring the Figure 17-19 abstraction boxes. */
    std::string toString() const;
};

} // namespace cimmlc

#endif // CIMMLC_ARCH_ARCH_H
