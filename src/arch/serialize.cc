#include "arch/serialize.h"

#include <algorithm>
#include <cmath>

#include "common/strutil.h"

namespace cimmlc {

namespace {

/** Reads "[rows, cols]" grid arrays with a scalar-count fallback. */
Status
readGrid(const ConfigValue &tier, const std::string &array_key,
         const std::string &count_key, std::int64_t *rows,
         std::int64_t *cols)
{
    if (tier.has(array_key)) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue arr, tier.get(array_key));
        if (!arr.isArray() || arr.asArray().size() != 2) {
            return parseError(array_key + " must be a [rows, cols] array");
        }
        *rows = arr.asArray()[0].asInt();
        *cols = arr.asArray()[1].asInt();
        return Status::ok();
    }
    if (tier.has(count_key)) {
        // A plain count lays endpoints out in a single row.
        *rows = 1;
        *cols = tier.getIntOr(count_key, 1);
        return Status::ok();
    }
    return Status::ok(); // keep defaults
}

Status
readNocCost(const ConfigValue &tier, const std::string &key,
            std::vector<double> *out)
{
    if (!tier.has(key))
        return Status::ok();
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue arr, tier.get(key));
    if (!arr.isArray())
        return parseError(key + " must be an array (row-major matrix)");
    out->clear();
    for (const ConfigValue &v : arr.asArray()) {
        if (!v.isNumber())
            return parseError(key + " entries must be numbers");
        out->push_back(v.asNumber());
    }
    return Status::ok();
}

ConfigValue
gridToConfig(std::int64_t rows, std::int64_t cols)
{
    ConfigValue::Array arr;
    arr.push_back(ConfigValue::makeNumber(static_cast<double>(rows)));
    arr.push_back(ConfigValue::makeNumber(static_cast<double>(cols)));
    return ConfigValue::makeArray(std::move(arr));
}

} // namespace

StatusOr<CimArchitecture>
archFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("architecture config must be an object");

    CimArchitecture arch;
    arch.name = doc.getStringOr("name", "unnamed");
    CIMMLC_ASSIGN_OR_RETURN(
        arch.mode, parseComputeMode(doc.getStringOr("computing_mode",
                                                    "XBM")));
    arch.weight_bits =
        static_cast<int>(doc.getIntOr("weight_bits", 8));
    arch.activation_bits =
        static_cast<int>(doc.getIntOr("activation_bits", 8));

    if (doc.has("chip_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("chip_tier"));
        CIMMLC_RETURN_IF_ERROR(readGrid(tier, "core_grid", "core_number",
                                        &arch.chip.core_rows,
                                        &arch.chip.core_cols));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.chip.core_noc,
            parseNocType(tier.getStringOr("core_noc", "ideal")));
        arch.chip.core_noc_bandwidth =
            tier.getNumberOr("core_noc_bandwidth", 0.0);
        CIMMLC_RETURN_IF_ERROR(
            readNocCost(tier, "core_noc_cost", &arch.chip.core_noc_cost));
        arch.chip.alu_ops_per_cycle = tier.getNumberOr("alu", 0.0);
        arch.chip.l0_size_kib = tier.getNumberOr("l0_size_kib", 0.0);
        arch.chip.l0_bandwidth = tier.getNumberOr("l0_bandwidth", 0.0);
    }
    if (doc.has("core_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("core_tier"));
        CIMMLC_RETURN_IF_ERROR(readGrid(tier, "xb_grid", "xb_number",
                                        &arch.core.xb_rows,
                                        &arch.core.xb_cols));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.core.xb_noc,
            parseNocType(tier.getStringOr("xb_noc", "ideal")));
        arch.core.xb_noc_bandwidth =
            tier.getNumberOr("xb_noc_bandwidth", 0.0);
        CIMMLC_RETURN_IF_ERROR(
            readNocCost(tier, "xb_noc_cost", &arch.core.xb_noc_cost));
        arch.core.alu_ops_per_cycle = tier.getNumberOr("alu", 0.0);
        arch.core.l1_size_kib = tier.getNumberOr("l1_size_kib", 0.0);
        arch.core.l1_bandwidth = tier.getNumberOr("l1_bandwidth", 0.0);
    }
    if (doc.has("xb_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("xb_tier"));
        if (tier.has("xb_size")) {
            CIMMLC_ASSIGN_OR_RETURN(ConfigValue size,
                                    tier.get("xb_size"));
            if (!size.isArray() || size.asArray().size() != 2)
                return parseError("xb_size must be [rows, cols]");
            arch.xbar.rows = size.asArray()[0].asInt();
            arch.xbar.cols = size.asArray()[1].asInt();
        }
        arch.xbar.parallel_row =
            tier.getIntOr("parallel_row", arch.xbar.rows);
        arch.xbar.dac_bits = static_cast<int>(tier.getIntOr("dac", 1));
        arch.xbar.adc_bits = static_cast<int>(tier.getIntOr("adc", 8));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.xbar.cell_type,
            parseCellType(tier.getStringOr("type", "ReRAM")));
        arch.xbar.cell_bits =
            static_cast<int>(tier.getIntOr("precision", 1));
    }

    CIMMLC_RETURN_IF_ERROR(arch.validate());
    return arch;
}

StatusOr<CimArchitecture>
archFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, parseConfig(text));
    return archFromConfig(doc);
}

StatusOr<CimArchitecture>
archFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, loadConfigFile(path));
    auto result = archFromConfig(doc);
    if (!result.isOk())
        return result.status().withContext(path);
    return result;
}

ConfigValue
archToConfig(const CimArchitecture &arch)
{
    ConfigValue::Object chip;
    chip["core_grid"] = gridToConfig(arch.chip.core_rows,
                                     arch.chip.core_cols);
    chip["core_noc"] =
        ConfigValue::makeString(nocTypeName(arch.chip.core_noc));
    chip["core_noc_bandwidth"] =
        ConfigValue::makeNumber(arch.chip.core_noc_bandwidth);
    chip["alu"] = ConfigValue::makeNumber(arch.chip.alu_ops_per_cycle);
    chip["l0_size_kib"] = ConfigValue::makeNumber(arch.chip.l0_size_kib);
    chip["l0_bandwidth"] = ConfigValue::makeNumber(arch.chip.l0_bandwidth);
    if (!arch.chip.core_noc_cost.empty()) {
        ConfigValue::Array cost;
        for (double v : arch.chip.core_noc_cost)
            cost.push_back(ConfigValue::makeNumber(v));
        chip["core_noc_cost"] = ConfigValue::makeArray(std::move(cost));
    }

    ConfigValue::Object core;
    core["xb_grid"] = gridToConfig(arch.core.xb_rows, arch.core.xb_cols);
    core["xb_noc"] =
        ConfigValue::makeString(nocTypeName(arch.core.xb_noc));
    core["xb_noc_bandwidth"] =
        ConfigValue::makeNumber(arch.core.xb_noc_bandwidth);
    core["alu"] = ConfigValue::makeNumber(arch.core.alu_ops_per_cycle);
    core["l1_size_kib"] = ConfigValue::makeNumber(arch.core.l1_size_kib);
    core["l1_bandwidth"] = ConfigValue::makeNumber(arch.core.l1_bandwidth);
    if (!arch.core.xb_noc_cost.empty()) {
        ConfigValue::Array cost;
        for (double v : arch.core.xb_noc_cost)
            cost.push_back(ConfigValue::makeNumber(v));
        core["xb_noc_cost"] = ConfigValue::makeArray(std::move(cost));
    }

    ConfigValue::Object xb;
    xb["xb_size"] = gridToConfig(arch.xbar.rows, arch.xbar.cols);
    xb["parallel_row"] = ConfigValue::makeNumber(
        static_cast<double>(arch.xbar.parallel_row));
    xb["dac"] = ConfigValue::makeNumber(arch.xbar.dac_bits);
    xb["adc"] = ConfigValue::makeNumber(arch.xbar.adc_bits);
    xb["type"] =
        ConfigValue::makeString(cellTypeName(arch.xbar.cell_type));
    xb["precision"] = ConfigValue::makeNumber(arch.xbar.cell_bits);

    ConfigValue::Object doc;
    doc["name"] = ConfigValue::makeString(arch.name);
    doc["computing_mode"] =
        ConfigValue::makeString(computeModeName(arch.mode));
    doc["weight_bits"] = ConfigValue::makeNumber(arch.weight_bits);
    doc["activation_bits"] =
        ConfigValue::makeNumber(arch.activation_bits);
    doc["chip_tier"] = ConfigValue::makeObject(std::move(chip));
    doc["core_tier"] = ConfigValue::makeObject(std::move(core));
    doc["xb_tier"] = ConfigValue::makeObject(std::move(xb));
    return ConfigValue::makeObject(std::move(doc));
}

// ----- Abs-arch sweep space (architecture DSE) -----------------------------

namespace {

constexpr ArchParam kAllArchParams[] = {
    ArchParam::kXbSize,           ArchParam::kXbGrid,
    ArchParam::kCoreGrid,         ArchParam::kCoreNoc,
    ArchParam::kCoreNocBandwidth, ArchParam::kL0Bandwidth,
    ArchParam::kL1Bandwidth,      ArchParam::kComputeMode,
    ArchParam::kDacBits,          ArchParam::kAdcBits,
    ArchParam::kCellType,         ArchParam::kCellBits,
};

/** Whether an axis takes [rows, cols] pairs, scalars, positive integer
 * counts (bit widths), or names. */
enum class ParamKind { kGrid, kBandwidth, kName, kCount };

ParamKind
paramKind(ArchParam param)
{
    switch (param) {
      case ArchParam::kXbSize:
      case ArchParam::kXbGrid:
      case ArchParam::kCoreGrid:
        return ParamKind::kGrid;
      case ArchParam::kCoreNoc:
      case ArchParam::kComputeMode:
      case ArchParam::kCellType:
        return ParamKind::kName;
      case ArchParam::kCoreNocBandwidth:
      case ArchParam::kL0Bandwidth:
      case ArchParam::kL1Bandwidth:
        return ParamKind::kBandwidth;
      case ArchParam::kDacBits:
      case ArchParam::kAdcBits:
      case ArchParam::kCellBits:
        return ParamKind::kCount;
    }
    return ParamKind::kBandwidth;
}

/**
 * Reads an exactly-representable integer. Fractional values are
 * rejected rather than truncated (a "core_grid": [2.5] must not
 * silently become a 2x2 grid), and the magnitude is capped so the
 * log2 doubling loop below cannot overflow.
 */
bool
integerValue(const ConfigValue &item, std::int64_t *out)
{
    if (!item.isNumber())
        return false;
    const double value = item.asNumber();
    if (!(value == std::floor(value)) || value < -1.0e18
        || value > 1.0e18)
        return false;
    *out = static_cast<std::int64_t>(value);
    return true;
}

/** Validates and canonicalizes one name-kind value. */
StatusOr<std::string>
canonicalParamName(ArchParam param, const std::string &text)
{
    if (param == ArchParam::kCoreNoc) {
        CIMMLC_ASSIGN_OR_RETURN(const NocType noc, parseNocType(text));
        return std::string(nocTypeName(noc));
    }
    if (param == ArchParam::kCellType) {
        CIMMLC_ASSIGN_OR_RETURN(const CellType cell, parseCellType(text));
        return std::string(cellTypeName(cell));
    }
    CIMMLC_ASSIGN_OR_RETURN(const ComputeMode mode,
                            parseComputeMode(text));
    return std::string(computeModeName(mode));
}

StatusOr<ArchParamValue>
paramValueFromConfig(ArchParam param, const ConfigValue &item)
{
    const std::string key = archParamName(param);
    ArchParamValue value;
    switch (paramKind(param)) {
      case ParamKind::kGrid: {
        bool well_formed = false;
        if (item.isNumber()) {
            // A scalar N is shorthand for a square NxN grid.
            well_formed = integerValue(item, &value.rows);
            value.cols = value.rows;
        } else if (item.isArray() && item.asArray().size() == 2) {
            well_formed =
                integerValue(item.asArray()[0], &value.rows)
                && integerValue(item.asArray()[1], &value.cols);
        }
        if (!well_formed) {
            return parseError("sweep '" + key
                              + "' entries must be [rows, cols] integer "
                                "arrays or square-size integers");
        }
        if (value.rows <= 0 || value.cols <= 0)
            return parseError("sweep '" + key
                              + "' dimensions must be positive");
        return value;
      }
      case ParamKind::kBandwidth:
        if (!item.isNumber())
            return parseError("sweep '" + key
                              + "' entries must be numbers");
        value.number = item.asNumber();
        if (value.number < 0.0)
            return parseError("sweep '" + key + "' values must be >= 0");
        return value;
      case ParamKind::kCount:
        if (!integerValue(item, &value.rows) || value.rows <= 0)
            return parseError("sweep '" + key
                              + "' entries must be positive integers");
        return value;
      case ParamKind::kName: {
        if (!item.isString())
            return parseError("sweep '" + key
                              + "' entries must be strings");
        auto canonical = canonicalParamName(param, item.asString());
        if (!canonical.isOk())
            return canonical.status().withContext("sweep '" + key + "'");
        value.name = canonical.value();
        return value;
      }
    }
    return parseError("sweep '" + key + "': unsupported parameter");
}

/** Expands {"log2": [lo, hi]} into lo, 2*lo, ... <= hi. */
StatusOr<std::vector<ArchParamValue>>
expandLog2Range(ArchParam param, const ConfigValue &range)
{
    const std::string key = archParamName(param);
    if (paramKind(param) == ParamKind::kName)
        return parseError("sweep '" + key
                          + "' is an enumeration; list its values "
                            "explicitly instead of a log2 range");
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!range.isArray() || range.asArray().size() != 2
        || !integerValue(range.asArray()[0], &lo)
        || !integerValue(range.asArray()[1], &hi))
        return parseError("sweep '" + key
                          + "' log2 range must be a [lo, hi] integer "
                            "pair");
    if (lo <= 0 || hi < lo)
        return parseError(
            strformat("sweep '%s' log2 range needs 0 < lo <= hi, got "
                      "[%lld, %lld]",
                      key.c_str(), static_cast<long long>(lo),
                      static_cast<long long>(hi)));
    std::vector<ArchParamValue> values;
    for (std::int64_t n = lo;; n *= 2) {
        ArchParamValue value;
        switch (paramKind(param)) {
          case ParamKind::kGrid:
            value.rows = n;
            value.cols = n;
            break;
          case ParamKind::kCount:
            value.rows = n;
            break;
          default:
            value.number = static_cast<double>(n);
            break;
        }
        values.push_back(value);
        // Termination guard before doubling: integerValue caps hi at
        // 1e18, so n never approaches the signed-overflow edge, but a
        // plain `n * 2 <= hi` condition would be one refactor away
        // from an infinite loop.
        if (n > hi / 2)
            break;
    }
    return values;
}

} // namespace

const char *
archParamName(ArchParam param)
{
    switch (param) {
      case ArchParam::kXbSize: return "xb_size";
      case ArchParam::kXbGrid: return "xb_grid";
      case ArchParam::kCoreGrid: return "core_grid";
      case ArchParam::kCoreNoc: return "core_noc";
      case ArchParam::kCoreNocBandwidth: return "core_noc_bandwidth";
      case ArchParam::kL0Bandwidth: return "l0_bandwidth";
      case ArchParam::kL1Bandwidth: return "l1_bandwidth";
      case ArchParam::kComputeMode: return "compute_mode";
      case ArchParam::kDacBits: return "dac_bits";
      case ArchParam::kAdcBits: return "adc_bits";
      case ArchParam::kCellType: return "cell_type";
      case ArchParam::kCellBits: return "cell_bits";
    }
    return "?";
}

StatusOr<ArchParam>
parseArchParam(const std::string &text)
{
    const std::string key = toLower(trim(text));
    for (ArchParam param : kAllArchParams) {
        if (key == archParamName(param))
            return param;
    }
    return parseError(
        "unknown sweep parameter '" + text
        + "' (expected xb_size | xb_grid | core_grid | core_noc | "
          "core_noc_bandwidth | l0_bandwidth | l1_bandwidth | "
          "compute_mode | dac_bits | adc_bits | cell_type | cell_bits)");
}

std::string
archParamValueToString(ArchParam param, const ArchParamValue &value)
{
    switch (paramKind(param)) {
      case ParamKind::kGrid:
        return strformat("%lldx%lld", static_cast<long long>(value.rows),
                         static_cast<long long>(value.cols));
      case ParamKind::kBandwidth:
        return formatDouble(value.number, 6);
      case ParamKind::kCount:
        return strformat("%lld", static_cast<long long>(value.rows));
      case ParamKind::kName:
        return value.name;
    }
    return "?";
}

std::size_t
ArchSweepSpec::candidateCount() const
{
    std::size_t count = 1;
    for (const ArchAxis &axis : axes)
        count *= axis.values.size();
    return count;
}

StatusOr<ArchSweepSpec>
sweepSpecFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("sweep spec must be an object mapping "
                          "parameter names to value lists");

    ArchSweepSpec spec;
    for (const auto &[key, item] : doc.asObject()) {
        ArchAxis axis;
        CIMMLC_ASSIGN_OR_RETURN(axis.param, parseArchParam(key));
        if (item.isArray()) {
            if (item.asArray().empty())
                return parseError("sweep '" + key
                                  + "' must list at least one value");
            for (const ConfigValue &entry : item.asArray()) {
                CIMMLC_ASSIGN_OR_RETURN(
                    const ArchParamValue value,
                    paramValueFromConfig(axis.param, entry));
                axis.values.push_back(value);
            }
        } else if (item.isObject() && item.has("log2")) {
            CIMMLC_ASSIGN_OR_RETURN(
                axis.values,
                expandLog2Range(axis.param, item.get("log2").value()));
        } else {
            return parseError("sweep '" + key
                              + "' must be a value array or a "
                                "{\"log2\": [lo, hi]} range");
        }
        spec.axes.push_back(std::move(axis));
    }
    // kvjson objects iterate alphabetically; re-order to the canonical
    // parameter order so candidate enumeration (and therefore the DSE
    // report) is independent of how the spec file spells its keys.
    std::sort(spec.axes.begin(), spec.axes.end(),
              [](const ArchAxis &a, const ArchAxis &b) {
                  return static_cast<int>(a.param)
                         < static_cast<int>(b.param);
              });
    return spec;
}

Status
applyArchParam(CimArchitecture *arch, ArchParam param,
               const ArchParamValue &value)
{
    switch (param) {
      case ArchParam::kXbSize:
        arch->xbar.rows = value.rows;
        arch->xbar.cols = value.cols;
        // parallel_row is a property of the crossbar being resized; a
        // smaller array cannot keep the base design's activation width.
        arch->xbar.parallel_row =
            std::min(arch->xbar.parallel_row, arch->xbar.rows);
        return Status::ok();
      case ArchParam::kXbGrid:
        arch->core.xb_rows = value.rows;
        arch->core.xb_cols = value.cols;
        arch->core.xb_noc_cost.clear();
        return Status::ok();
      case ArchParam::kCoreGrid:
        arch->chip.core_rows = value.rows;
        arch->chip.core_cols = value.cols;
        arch->chip.core_noc_cost.clear();
        return Status::ok();
      case ArchParam::kCoreNoc: {
        CIMMLC_ASSIGN_OR_RETURN(arch->chip.core_noc,
                                parseNocType(value.name));
        arch->chip.core_noc_cost.clear();
        return Status::ok();
      }
      case ArchParam::kCoreNocBandwidth:
        arch->chip.core_noc_bandwidth = value.number;
        // An explicit cost matrix fully overrides the bandwidth in the
        // NoC model; keeping it would make this a silent no-op axis.
        arch->chip.core_noc_cost.clear();
        return Status::ok();
      case ArchParam::kL0Bandwidth:
        arch->chip.l0_bandwidth = value.number;
        return Status::ok();
      case ArchParam::kL1Bandwidth:
        arch->core.l1_bandwidth = value.number;
        return Status::ok();
      case ArchParam::kComputeMode: {
        CIMMLC_ASSIGN_OR_RETURN(arch->mode, parseComputeMode(value.name));
        return Status::ok();
      }
      case ArchParam::kDacBits:
        arch->xbar.dac_bits = static_cast<int>(value.rows);
        return Status::ok();
      case ArchParam::kAdcBits:
        arch->xbar.adc_bits = static_cast<int>(value.rows);
        return Status::ok();
      case ArchParam::kCellType: {
        CIMMLC_ASSIGN_OR_RETURN(arch->xbar.cell_type,
                                parseCellType(value.name));
        return Status::ok();
      }
      case ArchParam::kCellBits:
        arch->xbar.cell_bits = static_cast<int>(value.rows);
        return Status::ok();
    }
    return internalError("applyArchParam: unhandled parameter");
}

} // namespace cimmlc
