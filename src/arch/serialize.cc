#include "arch/serialize.h"

namespace cimmlc {

namespace {

/** Reads "[rows, cols]" grid arrays with a scalar-count fallback. */
Status
readGrid(const ConfigValue &tier, const std::string &array_key,
         const std::string &count_key, std::int64_t *rows,
         std::int64_t *cols)
{
    if (tier.has(array_key)) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue arr, tier.get(array_key));
        if (!arr.isArray() || arr.asArray().size() != 2) {
            return parseError(array_key + " must be a [rows, cols] array");
        }
        *rows = arr.asArray()[0].asInt();
        *cols = arr.asArray()[1].asInt();
        return Status::ok();
    }
    if (tier.has(count_key)) {
        // A plain count lays endpoints out in a single row.
        *rows = 1;
        *cols = tier.getIntOr(count_key, 1);
        return Status::ok();
    }
    return Status::ok(); // keep defaults
}

Status
readNocCost(const ConfigValue &tier, const std::string &key,
            std::vector<double> *out)
{
    if (!tier.has(key))
        return Status::ok();
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue arr, tier.get(key));
    if (!arr.isArray())
        return parseError(key + " must be an array (row-major matrix)");
    out->clear();
    for (const ConfigValue &v : arr.asArray()) {
        if (!v.isNumber())
            return parseError(key + " entries must be numbers");
        out->push_back(v.asNumber());
    }
    return Status::ok();
}

ConfigValue
gridToConfig(std::int64_t rows, std::int64_t cols)
{
    ConfigValue::Array arr;
    arr.push_back(ConfigValue::makeNumber(static_cast<double>(rows)));
    arr.push_back(ConfigValue::makeNumber(static_cast<double>(cols)));
    return ConfigValue::makeArray(std::move(arr));
}

} // namespace

StatusOr<CimArchitecture>
archFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("architecture config must be an object");

    CimArchitecture arch;
    arch.name = doc.getStringOr("name", "unnamed");
    CIMMLC_ASSIGN_OR_RETURN(
        arch.mode, parseComputeMode(doc.getStringOr("computing_mode",
                                                    "XBM")));
    arch.weight_bits =
        static_cast<int>(doc.getIntOr("weight_bits", 8));
    arch.activation_bits =
        static_cast<int>(doc.getIntOr("activation_bits", 8));

    if (doc.has("chip_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("chip_tier"));
        CIMMLC_RETURN_IF_ERROR(readGrid(tier, "core_grid", "core_number",
                                        &arch.chip.core_rows,
                                        &arch.chip.core_cols));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.chip.core_noc,
            parseNocType(tier.getStringOr("core_noc", "ideal")));
        arch.chip.core_noc_bandwidth =
            tier.getNumberOr("core_noc_bandwidth", 0.0);
        CIMMLC_RETURN_IF_ERROR(
            readNocCost(tier, "core_noc_cost", &arch.chip.core_noc_cost));
        arch.chip.alu_ops_per_cycle = tier.getNumberOr("alu", 0.0);
        arch.chip.l0_size_kib = tier.getNumberOr("l0_size_kib", 0.0);
        arch.chip.l0_bandwidth = tier.getNumberOr("l0_bandwidth", 0.0);
    }
    if (doc.has("core_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("core_tier"));
        CIMMLC_RETURN_IF_ERROR(readGrid(tier, "xb_grid", "xb_number",
                                        &arch.core.xb_rows,
                                        &arch.core.xb_cols));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.core.xb_noc,
            parseNocType(tier.getStringOr("xb_noc", "ideal")));
        arch.core.xb_noc_bandwidth =
            tier.getNumberOr("xb_noc_bandwidth", 0.0);
        CIMMLC_RETURN_IF_ERROR(
            readNocCost(tier, "xb_noc_cost", &arch.core.xb_noc_cost));
        arch.core.alu_ops_per_cycle = tier.getNumberOr("alu", 0.0);
        arch.core.l1_size_kib = tier.getNumberOr("l1_size_kib", 0.0);
        arch.core.l1_bandwidth = tier.getNumberOr("l1_bandwidth", 0.0);
    }
    if (doc.has("xb_tier")) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue tier, doc.get("xb_tier"));
        if (tier.has("xb_size")) {
            CIMMLC_ASSIGN_OR_RETURN(ConfigValue size,
                                    tier.get("xb_size"));
            if (!size.isArray() || size.asArray().size() != 2)
                return parseError("xb_size must be [rows, cols]");
            arch.xbar.rows = size.asArray()[0].asInt();
            arch.xbar.cols = size.asArray()[1].asInt();
        }
        arch.xbar.parallel_row =
            tier.getIntOr("parallel_row", arch.xbar.rows);
        arch.xbar.dac_bits = static_cast<int>(tier.getIntOr("dac", 1));
        arch.xbar.adc_bits = static_cast<int>(tier.getIntOr("adc", 8));
        CIMMLC_ASSIGN_OR_RETURN(
            arch.xbar.cell_type,
            parseCellType(tier.getStringOr("type", "ReRAM")));
        arch.xbar.cell_bits =
            static_cast<int>(tier.getIntOr("precision", 1));
    }

    CIMMLC_RETURN_IF_ERROR(arch.validate());
    return arch;
}

StatusOr<CimArchitecture>
archFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, parseConfig(text));
    return archFromConfig(doc);
}

StatusOr<CimArchitecture>
archFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, loadConfigFile(path));
    auto result = archFromConfig(doc);
    if (!result.isOk())
        return result.status().withContext(path);
    return result;
}

ConfigValue
archToConfig(const CimArchitecture &arch)
{
    ConfigValue::Object chip;
    chip["core_grid"] = gridToConfig(arch.chip.core_rows,
                                     arch.chip.core_cols);
    chip["core_noc"] =
        ConfigValue::makeString(nocTypeName(arch.chip.core_noc));
    chip["core_noc_bandwidth"] =
        ConfigValue::makeNumber(arch.chip.core_noc_bandwidth);
    chip["alu"] = ConfigValue::makeNumber(arch.chip.alu_ops_per_cycle);
    chip["l0_size_kib"] = ConfigValue::makeNumber(arch.chip.l0_size_kib);
    chip["l0_bandwidth"] = ConfigValue::makeNumber(arch.chip.l0_bandwidth);
    if (!arch.chip.core_noc_cost.empty()) {
        ConfigValue::Array cost;
        for (double v : arch.chip.core_noc_cost)
            cost.push_back(ConfigValue::makeNumber(v));
        chip["core_noc_cost"] = ConfigValue::makeArray(std::move(cost));
    }

    ConfigValue::Object core;
    core["xb_grid"] = gridToConfig(arch.core.xb_rows, arch.core.xb_cols);
    core["xb_noc"] =
        ConfigValue::makeString(nocTypeName(arch.core.xb_noc));
    core["xb_noc_bandwidth"] =
        ConfigValue::makeNumber(arch.core.xb_noc_bandwidth);
    core["alu"] = ConfigValue::makeNumber(arch.core.alu_ops_per_cycle);
    core["l1_size_kib"] = ConfigValue::makeNumber(arch.core.l1_size_kib);
    core["l1_bandwidth"] = ConfigValue::makeNumber(arch.core.l1_bandwidth);
    if (!arch.core.xb_noc_cost.empty()) {
        ConfigValue::Array cost;
        for (double v : arch.core.xb_noc_cost)
            cost.push_back(ConfigValue::makeNumber(v));
        core["xb_noc_cost"] = ConfigValue::makeArray(std::move(cost));
    }

    ConfigValue::Object xb;
    xb["xb_size"] = gridToConfig(arch.xbar.rows, arch.xbar.cols);
    xb["parallel_row"] = ConfigValue::makeNumber(
        static_cast<double>(arch.xbar.parallel_row));
    xb["dac"] = ConfigValue::makeNumber(arch.xbar.dac_bits);
    xb["adc"] = ConfigValue::makeNumber(arch.xbar.adc_bits);
    xb["type"] =
        ConfigValue::makeString(cellTypeName(arch.xbar.cell_type));
    xb["precision"] = ConfigValue::makeNumber(arch.xbar.cell_bits);

    ConfigValue::Object doc;
    doc["name"] = ConfigValue::makeString(arch.name);
    doc["computing_mode"] =
        ConfigValue::makeString(computeModeName(arch.mode));
    doc["weight_bits"] = ConfigValue::makeNumber(arch.weight_bits);
    doc["activation_bits"] =
        ConfigValue::makeNumber(arch.activation_bits);
    doc["chip_tier"] = ConfigValue::makeObject(std::move(chip));
    doc["core_tier"] = ConfigValue::makeObject(std::move(core));
    doc["xb_tier"] = ConfigValue::makeObject(std::move(xb));
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
