/**
 * @file
 * Memory-device cost profiles.
 *
 * The paper's motivating observation (Section 2.1): device type changes
 * read/write asymmetry and therefore the feasible scheduling space —
 * SRAM-based CIMs update weights freely while ReRAM/Flash CIMs freeze
 * weights to avoid write penalties. These profiles feed both the scheduler
 * (weights-stationary policy) and the performance simulator (latency and
 * energy). Values are first-order numbers from the NVSim / NeuroSim
 * literature the paper extends; absolute precision is not required, only
 * the relative ordering (see DESIGN.md "Substitutions").
 */
#ifndef CIMMLC_ARCH_DEVICE_H
#define CIMMLC_ARCH_DEVICE_H

#include "arch/arch.h"

namespace cimmlc {

/** Cost profile of one memory-cell technology. */
struct DeviceProfile {
    //! crossbar activation latency (one analog MVM phase), cycles
    double read_latency_cycles = 1.0;
    //! per-row programming latency, cycles
    double write_latency_cycles = 1.0;
    //! analog read energy per active cell, pJ
    double read_energy_pj = 0.0005;
    //! programming energy per cell, pJ
    double write_energy_pj = 0.01;
    //! true when runtime weight updates should be avoided
    bool weights_stationary = false;
};

/** Profile for @p cell (static table). */
const DeviceProfile &deviceProfile(CellType cell);

/** Peripheral-circuit energy constants shared by the power model. */
struct PeripheralCosts {
    //! ADC energy per conversion at 8-bit; scales 2^bits
    double adc_energy_pj_8b = 2.0;
    //! DAC energy per driven row per cycle at 1-bit; scales linearly
    double dac_energy_pj_1b = 0.02;
    //! NoC transfer energy per bit per hop, pJ
    double noc_energy_pj_per_bit_hop = 0.01;
    //! buffer access energy per bit, pJ
    double buffer_energy_pj_per_bit = 0.005;
    //! digital ALU energy per op, pJ
    double alu_energy_pj_per_op = 0.1;
};

/** Default peripheral costs (ISAAC-class 32nm estimates). */
const PeripheralCosts &defaultPeripheralCosts();

/** ADC energy per conversion for @p bits resolution. */
double adcEnergyPj(int bits);

/** DAC energy per driven row per cycle for @p bits resolution. */
double dacEnergyPj(int bits);

} // namespace cimmlc

#endif // CIMMLC_ARCH_DEVICE_H
