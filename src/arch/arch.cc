#include "arch/arch.h"

#include <sstream>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "arch/device.h"

namespace cimmlc {

const char *
computeModeName(ComputeMode mode)
{
    switch (mode) {
      case ComputeMode::kCM: return "CM";
      case ComputeMode::kXBM: return "XBM";
      case ComputeMode::kWLM: return "WLM";
    }
    return "?";
}

StatusOr<ComputeMode>
parseComputeMode(const std::string &text)
{
    const std::string key = toLower(trim(text));
    if (key == "cm")
        return ComputeMode::kCM;
    if (key == "xbm")
        return ComputeMode::kXBM;
    if (key == "wlm")
        return ComputeMode::kWLM;
    return parseError("unknown computing mode '" + text + "'");
}

const char *
nocTypeName(NocType type)
{
    switch (type) {
      case NocType::kIdeal: return "ideal";
      case NocType::kSharedBus: return "shared-bus";
      case NocType::kMesh: return "mesh";
      case NocType::kHTree: return "h-tree";
      case NocType::kDisjointBufferSwitch: return "disjoint-buffer-switch";
    }
    return "?";
}

StatusOr<NocType>
parseNocType(const std::string &text)
{
    const std::string key = toLower(trim(text));
    if (key == "ideal" || key == "\\" || key.empty())
        return NocType::kIdeal;
    if (key == "shared-bus" || key == "bus" || key == "shared memory")
        return NocType::kSharedBus;
    if (key == "mesh")
        return NocType::kMesh;
    if (key == "h-tree" || key == "htree")
        return NocType::kHTree;
    if (key == "disjoint-buffer-switch" || key == "disjoint buffer switch")
        return NocType::kDisjointBufferSwitch;
    return parseError("unknown NoC type '" + text + "'");
}

const char *
cellTypeName(CellType type)
{
    switch (type) {
      case CellType::kSram: return "SRAM";
      case CellType::kReram: return "ReRAM";
      case CellType::kFlash: return "FLASH";
      case CellType::kPcm: return "PCM";
      case CellType::kSttMram: return "STT-MRAM";
    }
    return "?";
}

StatusOr<CellType>
parseCellType(const std::string &text)
{
    const std::string key = toLower(trim(text));
    if (key == "sram")
        return CellType::kSram;
    if (key == "reram" || key == "rram")
        return CellType::kReram;
    if (key == "flash" || key == "nor-flash")
        return CellType::kFlash;
    if (key == "pcm")
        return CellType::kPcm;
    if (key == "stt-mram" || key == "mram")
        return CellType::kSttMram;
    return parseError("unknown cell type '" + text + "'");
}

bool
CimArchitecture::weightsStationary() const
{
    return deviceProfile(xbar.cell_type).weights_stationary;
}

Status
CimArchitecture::validate() const
{
    if (chip.core_rows <= 0 || chip.core_cols <= 0)
        return invalidArgument(name + ": core grid must be positive");
    if (core.xb_rows <= 0 || core.xb_cols <= 0)
        return invalidArgument(name + ": crossbar grid must be positive");
    if (xbar.rows <= 0 || xbar.cols <= 0)
        return invalidArgument(name + ": crossbar shape must be positive");
    if (xbar.parallel_row <= 0 || xbar.parallel_row > xbar.rows) {
        return invalidArgument(strformat(
            "%s: parallel_row %lld must be in [1, %lld]", name.c_str(),
            static_cast<long long>(xbar.parallel_row),
            static_cast<long long>(xbar.rows)));
    }
    if (xbar.dac_bits <= 0 || xbar.adc_bits <= 0)
        return invalidArgument(name + ": DAC/ADC precision must be positive");
    if (xbar.cell_bits <= 0)
        return invalidArgument(name + ": cell precision must be positive");
    if (weight_bits <= 0 || activation_bits <= 0)
        return invalidArgument(name + ": data precision must be positive");
    if (cellsPerWeight() > xbar.cols) {
        return invalidArgument(strformat(
            "%s: one %d-bit weight needs %lld cells but a crossbar row has "
            "only %lld",
            name.c_str(), weight_bits,
            static_cast<long long>(cellsPerWeight()),
            static_cast<long long>(xbar.cols)));
    }
    if (!chip.core_noc_cost.empty()) {
        const std::size_t n =
            static_cast<std::size_t>(chip.coreNumber());
        if (chip.core_noc_cost.size() != n * n) {
            return invalidArgument(strformat(
                "%s: core_noc_cost must be %zux%zu", name.c_str(), n, n));
        }
    }
    if (!core.xb_noc_cost.empty()) {
        const std::size_t n = static_cast<std::size_t>(core.xbNumber());
        if (core.xb_noc_cost.size() != n * n) {
            return invalidArgument(strformat(
                "%s: xb_noc_cost must be %zux%zu", name.c_str(), n, n));
        }
    }
    // Mode/tier consistency: WLM requires a meaningful parallel_row.
    if (mode == ComputeMode::kWLM && xbar.parallel_row == xbar.rows) {
        // Not an error — WLM with full-row activation degenerates to XBM
        // behaviour — but worth surfacing to the user.
        warn(name + ": WLM mode with parallel_row == crossbar rows; "
                    "VVM remapping will be a no-op");
    }
    return Status::ok();
}

std::string
CimArchitecture::toString() const
{
    std::ostringstream out;
    out << "CimArchitecture '" << name << "' (mode "
        << computeModeName(mode) << ")\n";
    out << strformat(
        "  Chip_tier = { core_number: %lld [%lld*%lld], core_noc: %s, "
        "ALU: %s ops/cy, L0: %s KiB @ %s b/cy }\n",
        static_cast<long long>(chip.coreNumber()),
        static_cast<long long>(chip.core_rows),
        static_cast<long long>(chip.core_cols), nocTypeName(chip.core_noc),
        chip.alu_ops_per_cycle > 0
            ? formatDouble(chip.alu_ops_per_cycle).c_str() : "\\",
        chip.l0_size_kib > 0 ? formatDouble(chip.l0_size_kib).c_str()
                             : "\\",
        chip.l0_bandwidth > 0 ? formatDouble(chip.l0_bandwidth).c_str()
                              : "\\");
    out << strformat(
        "  Core_tier = { xb_number: %lld [%lld*%lld], xb_noc: %s, "
        "ALU: %s ops/cy, L1: %s KiB @ %s b/cy }\n",
        static_cast<long long>(core.xbNumber()),
        static_cast<long long>(core.xb_rows),
        static_cast<long long>(core.xb_cols), nocTypeName(core.xb_noc),
        core.alu_ops_per_cycle > 0
            ? formatDouble(core.alu_ops_per_cycle).c_str() : "\\",
        core.l1_size_kib > 0 ? formatDouble(core.l1_size_kib).c_str()
                             : "\\",
        core.l1_bandwidth > 0 ? formatDouble(core.l1_bandwidth).c_str()
                              : "\\");
    out << strformat(
        "  XB_tier   = { xb_size: [%lld,%lld], parallel_row: %lld, "
        "DAC: %d-bit, ADC: %d-bit, Type: %s, Precision: %d-bit }\n",
        static_cast<long long>(xbar.rows),
        static_cast<long long>(xbar.cols),
        static_cast<long long>(xbar.parallel_row), xbar.dac_bits,
        xbar.adc_bits, cellTypeName(xbar.cell_type), xbar.cell_bits);
    return out.str();
}

} // namespace cimmlc
