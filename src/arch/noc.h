/**
 * @file
 * NoC cost model shared by the scheduler and the performance simulator.
 *
 * The paper abstracts the interconnect as a type plus a per-pair cost
 * matrix (core_noc / core_noc_cost, Figure 5). When a matrix is given it
 * wins; otherwise hop counts are derived from the topology and the
 * per-hop bandwidth.
 */
#ifndef CIMMLC_ARCH_NOC_H
#define CIMMLC_ARCH_NOC_H

#include <cstdint>
#include <vector>

#include "arch/arch.h"

namespace cimmlc {

/**
 * Transfer-cost oracle for one interconnect level (chip tier between
 * cores, or core tier between crossbars).
 */
class NocModel
{
  public:
    /**
     * @param type       topology
     * @param grid_rows  rows of the endpoint grid
     * @param grid_cols  cols of the endpoint grid
     * @param bandwidth  bits per cycle per link; 0 = ideal (free)
     * @param cost_matrix optional explicit cycles-per-bit matrix
     */
    NocModel(NocType type, std::int64_t grid_rows, std::int64_t grid_cols,
             double bandwidth, std::vector<double> cost_matrix = {});

    /** Builds the chip-tier model of @p arch. */
    static NocModel forChip(const CimArchitecture &arch);

    /** Builds the core-tier model of @p arch. */
    static NocModel forCore(const CimArchitecture &arch);

    std::int64_t endpointCount() const { return rows_ * cols_; }
    NocType type() const { return type_; }

    /** Routing distance between endpoints (topology-defined). */
    std::int64_t hopCount(std::int64_t src, std::int64_t dst) const;

    /** Cycles to move @p bits from @p src to @p dst, contention-free. */
    double transferCycles(std::int64_t src, std::int64_t dst,
                          double bits) const;

    /** Average transfer cycles per bit over all distinct pairs. */
    double averageCyclesPerBit() const;

    /** Worst-case hop count across the network (its diameter). */
    std::int64_t diameter() const;

  private:
    NocType type_;
    std::int64_t rows_;
    std::int64_t cols_;
    double bandwidth_;
    std::vector<double> cost_matrix_;
};

} // namespace cimmlc

#endif // CIMMLC_ARCH_NOC_H
