#include "arch/device.h"

#include <cmath>

namespace cimmlc {

const DeviceProfile &
deviceProfile(CellType cell)
{
    // Read latency is normalized to "crossbar activation cycles" at the
    // accelerator clock; write latency captures the SRAM vs NVM asymmetry
    // the paper stresses (ReRAM writes ~50x reads, Flash worse).
    static const DeviceProfile sram{
        /*read_latency_cycles=*/1.0,
        /*write_latency_cycles=*/1.0,
        /*read_energy_pj=*/0.001,
        /*write_energy_pj=*/0.002,
        /*weights_stationary=*/false,
    };
    static const DeviceProfile reram{
        /*read_latency_cycles=*/1.0,
        /*write_latency_cycles=*/50.0,
        /*read_energy_pj=*/0.002,
        /*write_energy_pj=*/0.5,
        /*weights_stationary=*/true,
    };
    static const DeviceProfile flash{
        /*read_latency_cycles=*/2.0,
        /*write_latency_cycles=*/500.0,
        /*read_energy_pj=*/0.003,
        /*write_energy_pj=*/5.0,
        /*weights_stationary=*/true,
    };
    static const DeviceProfile pcm{
        /*read_latency_cycles=*/1.5,
        /*write_latency_cycles=*/100.0,
        /*read_energy_pj=*/0.0025,
        /*write_energy_pj=*/1.0,
        /*weights_stationary=*/true,
    };
    static const DeviceProfile stt{
        /*read_latency_cycles=*/1.0,
        /*write_latency_cycles=*/10.0,
        /*read_energy_pj=*/0.0015,
        /*write_energy_pj=*/0.1,
        /*weights_stationary=*/true,
    };
    switch (cell) {
      case CellType::kSram: return sram;
      case CellType::kReram: return reram;
      case CellType::kFlash: return flash;
      case CellType::kPcm: return pcm;
      case CellType::kSttMram: return stt;
    }
    return reram;
}

const PeripheralCosts &
defaultPeripheralCosts()
{
    static const PeripheralCosts costs{};
    return costs;
}

double
adcEnergyPj(int bits)
{
    // ADC energy grows ~2^bits (Murmann survey trend line).
    const PeripheralCosts &c = defaultPeripheralCosts();
    return c.adc_energy_pj_8b * std::pow(2.0, bits - 8);
}

double
dacEnergyPj(int bits)
{
    const PeripheralCosts &c = defaultPeripheralCosts();
    return c.dac_energy_pj_1b * bits;
}

} // namespace cimmlc
