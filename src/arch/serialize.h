/**
 * @file
 * kvjson serialization of CimArchitecture, so users can describe new CIM
 * chips in text files (see the examples/configs directory) without recompiling —
 * the paper's "same description interface ... to various CIM designs".
 */
#ifndef CIMMLC_ARCH_SERIALIZE_H
#define CIMMLC_ARCH_SERIALIZE_H

#include <string>

#include "arch/arch.h"
#include "common/config.h"
#include "common/status.h"

namespace cimmlc {

/** Builds an architecture from a parsed config document. */
StatusOr<CimArchitecture> archFromConfig(const ConfigValue &doc);

/** Parses an architecture from kvjson text. */
StatusOr<CimArchitecture> archFromText(const std::string &text);

/** Loads an architecture from a kvjson file. */
StatusOr<CimArchitecture> archFromFile(const std::string &path);

/** Serializes an architecture back into a config document. */
ConfigValue archToConfig(const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_ARCH_SERIALIZE_H
