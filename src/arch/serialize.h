/**
 * @file
 * kvjson serialization of CimArchitecture, so users can describe new CIM
 * chips in text files (see the examples/configs directory) without recompiling —
 * the paper's "same description interface ... to various CIM designs".
 *
 * Also home of the Abs-arch sweep-space description the architecture DSE
 * explorer (dse/arch_explorer.h) searches: which parameters to vary and
 * over which values, parsed from kvjson (explicit lists + log2 ranges),
 * plus the mutation helpers that apply one parameter value to a base
 * architecture.
 */
#ifndef CIMMLC_ARCH_SERIALIZE_H
#define CIMMLC_ARCH_SERIALIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/config.h"
#include "common/status.h"

namespace cimmlc {

/** Builds an architecture from a parsed config document. */
StatusOr<CimArchitecture> archFromConfig(const ConfigValue &doc);

/** Parses an architecture from kvjson text. */
StatusOr<CimArchitecture> archFromText(const std::string &text);

/** Loads an architecture from a kvjson file. */
StatusOr<CimArchitecture> archFromFile(const std::string &path);

/** Serializes an architecture back into a config document. */
ConfigValue archToConfig(const CimArchitecture &arch);

// ----- Abs-arch sweep space (architecture DSE) -----------------------------

/** Abs-arch parameters the DSE explorer can sweep. */
enum class ArchParam {
    kXbSize,           //!< crossbar [rows, cols]
    kXbGrid,           //!< per-core crossbar grid [rows, cols]
    kCoreGrid,         //!< chip core grid [rows, cols]
    kCoreNoc,          //!< chip-tier NoC topology
    kCoreNocBandwidth, //!< chip-tier NoC bits/cycle (0 = ideal)
    kL0Bandwidth,      //!< global buffer bits/cycle (0 = ideal)
    kL1Bandwidth,      //!< core buffer bits/cycle (0 = ideal)
    kComputeMode,      //!< programming interface (CM | XBM | WLM)
    kDacBits,          //!< DAC precision (bits per activation slice)
    kAdcBits,          //!< ADC precision
    kCellType,         //!< memory device (SRAM | ReRAM | ...)
    kCellBits,         //!< storage precision of one cell
};

/** Spec key of a sweepable parameter ("xb_size", "core_grid", ...). */
const char *archParamName(ArchParam param);

/** Parses a spec key back into the enum. */
StatusOr<ArchParam> parseArchParam(const std::string &text);

/**
 * One value of a swept parameter. The arm that is meaningful depends on
 * the parameter: grid params use rows/cols, bandwidth params use number,
 * NoC/mode params use name (canonicalized at parse time).
 */
struct ArchParamValue {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    double number = 0.0;
    std::string name;
};

/** Renders a value the way the DSE report prints it ("128x128", "256",
 * "mesh"). */
std::string archParamValueToString(ArchParam param,
                                   const ArchParamValue &value);

/** One swept parameter and its candidate values, in spec order. */
struct ArchAxis {
    ArchParam param = ArchParam::kXbSize;
    std::vector<ArchParamValue> values;
};

/** The sweep space: axes in canonical ArchParam order (independent of
 * the kvjson key order), each with at least one value. */
struct ArchSweepSpec {
    std::vector<ArchAxis> axes;

    /** Cartesian-product size (1 for an empty spec). */
    std::size_t candidateCount() const;
};

/**
 * Parses a sweep-space object. Each member maps a parameter name to its
 * axis values:
 *   - an array of values: numbers for bandwidth axes, positive
 *     integers for bit-width axes (dac_bits, adc_bits, cell_bits),
 *     strings for NoC/mode/cell-type axes, [rows, cols] pairs (or a
 *     scalar N meaning NxN) for grid axes;
 *   - {"log2": [lo, hi]}: lo, 2*lo, 4*lo, ... <= hi. Grid axes expand
 *     to square NxN grids; name axes reject ranges.
 *
 * @code
 *   {
 *     "xb_size": [[256, 64], 128],
 *     "core_grid": {"log2": [1, 4]},
 *     "core_noc": ["mesh", "htree"]
 *   }
 * @endcode
 */
StatusOr<ArchSweepSpec> sweepSpecFromConfig(const ConfigValue &doc);

/**
 * Applies one parameter value to @p arch. Keeps the candidate
 * self-consistent where the abstraction couples parameters: shrinking
 * the crossbar clamps parallel_row, and resizing a grid (or switching
 * topology) drops the explicit NoC cost matrix it was sized for.
 * Geometry that is infeasible for the workload is left to
 * CimArchitecture::validate() / scheduling, so the DSE can report it
 * per candidate instead of failing the whole sweep.
 */
Status applyArchParam(CimArchitecture *arch, ArchParam param,
                      const ArchParamValue &value);

} // namespace cimmlc

#endif // CIMMLC_ARCH_SERIALIZE_H
