#include "daemon/protocol.h"

#include <set>

#include "common/strutil.h"
#include "common/version.h"

namespace cimmlc {

namespace {

ConfigValue
text(std::string v)
{
    return ConfigValue::makeString(std::move(v));
}

ConfigValue
number(std::int64_t v)
{
    return ConfigValue::makeNumber(static_cast<double>(v));
}

} // namespace

// ----- RpcCompileRequest ----------------------------------------------------

ConfigValue
RpcCompileRequest::toConfig() const
{
    ConfigValue::Object doc;
    doc["type"] = text("compile");
    doc["id"] = number(id);
    doc["model"] = text(model);
    doc["model_text"] = text(model_text);
    doc["arch"] = text(arch);
    doc["arch_text"] = text(arch_text);
    doc["opt"] = text(opt);
    doc["dual_mode"] = ConfigValue::makeBool(dual_mode);
    doc["host_offload"] = ConfigValue::makeBool(host_offload);
    doc["tune"] = ConfigValue::makeBool(tune);
    doc["objective"] = text(objective);
    doc["search_budget"] = number(search_budget);
    doc["perf_engine"] = text(perf_engine);
    doc["lint"] = ConfigValue::makeBool(lint);
    doc["lint_strict"] = ConfigValue::makeBool(lint_strict);
    doc["verify"] = ConfigValue::makeBool(verify);
    return ConfigValue::makeObject(std::move(doc));
}

std::string
RpcCompileRequest::fingerprint() const
{
    RpcCompileRequest canonical = *this;
    canonical.id = 0;
    // ConfigValue objects are key-sorted maps, so the compact dump of
    // the fully-explicit form is already canonical.
    return canonical.toConfig().dump(/*pretty=*/false);
}

StatusOr<CompileRequest>
RpcCompileRequest::toCompileRequest(TuneCache *tune_cache,
                                    ArtifactCache *artifact_cache) const
{
    CompileRequest request;
    request.artifact_cache = artifact_cache;
    request.model = model;
    request.model_text = model_text;
    request.arch = arch;
    request.arch_text = arch_text;
    request.opt = opt;
    if ((dual_mode || host_offload) && !tune) {
        // Same overlay rule as the CLI: the named level resolves first,
        // then the knobs force on; request.options wins over the string
        // opt inside the session. Tuned requests skip it — the tuner
        // searches both knobs automatically.
        CIMMLC_ASSIGN_OR_RETURN(ScheduleOptions overlay,
                                scheduleOptionsByName(opt));
        overlay.dual_mode = dual_mode;
        overlay.host_offload = host_offload;
        request.options = overlay;
    }
    if (tune) {
        request.tune = true;
        CIMMLC_ASSIGN_OR_RETURN(request.objective,
                                parseTuneObjective(objective));
        request.threads = 1;
        request.tune_cache = tune_cache;
        if (search_budget >= 0)
            request.search_budget.max_full_evals = search_budget;
    }
    CIMMLC_ASSIGN_OR_RETURN(request.perf_engine,
                            parsePerfEngineKind(perf_engine));
    request.lint = lint;
    request.lint_strict = lint_strict;
    request.outputs.verify = verify;
    CIMMLC_RETURN_IF_ERROR(request.validate().withContext("rpc compile"));
    return request;
}

StatusOr<RpcCompileRequest>
parseCompileFrame(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("compile frame is not an object");
    static const std::set<std::string> known = {
        "type",         "id",          "model",      "model_text",
        "arch",         "arch_text",   "opt",        "tune",
        "dual_mode",    "host_offload",
        "objective",    "search_budget", "perf_engine", "lint",
        "lint_strict",  "verify",
    };
    for (const auto &[key, value] : doc.asObject()) {
        (void)value;
        if (known.find(key) == known.end())
            return invalidArgument(
                "compile frame has unknown key '" + key
                + "' (daemon/client version skew?)");
    }
    RpcCompileRequest request;
    request.id = doc.getIntOr("id", -1);
    if (request.id < 0)
        return invalidArgument(
            "compile frame needs a non-negative integer 'id'");
    request.model = doc.getStringOr("model", "");
    request.model_text = doc.getStringOr("model_text", "");
    request.arch = doc.getStringOr("arch", "");
    request.arch_text = doc.getStringOr("arch_text", "");
    request.opt = doc.getStringOr("opt", "full");
    request.dual_mode = doc.getBoolOr("dual_mode", false);
    request.host_offload = doc.getBoolOr("host_offload", false);
    request.tune = doc.getBoolOr("tune", false);
    request.objective = doc.getStringOr("objective", "latency");
    request.search_budget = doc.getIntOr("search_budget", -1);
    request.perf_engine = doc.getStringOr("perf_engine", "closed_form");
    request.lint = doc.getBoolOr("lint", false);
    request.lint_strict = doc.getBoolOr("lint_strict", false);
    request.verify = doc.getBoolOr("verify", false);
    return request;
}

// ----- frame builders -------------------------------------------------------

ConfigValue
helloFrame(std::int64_t max_inflight, std::int64_t max_queue_depth)
{
    ConfigValue::Object doc;
    doc["type"] = text("hello");
    doc["schema"] = text(kRpcSchema);
    doc["compiler_version"] = text(cimmlcVersion());
    doc["max_inflight"] = number(max_inflight);
    doc["max_queue_depth"] = number(max_queue_depth);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
eventFrame(std::int64_t id, const StageTrace &trace)
{
    ConfigValue::Object doc;
    doc["type"] = text("event");
    doc["id"] = number(id);
    doc["stage"] = text(compileStageName(trace.stage));
    doc["status"] = text(trace.status.toString());
    doc["wall_ms"] = ConfigValue::makeNumber(trace.wall_ms);
    doc["cached"] = ConfigValue::makeBool(trace.cached);
    if (!trace.detail.empty())
        doc["detail"] = text(trace.detail);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
reportFrame(std::int64_t id, const std::string &report_json, bool cached)
{
    ConfigValue::Object doc;
    doc["type"] = text("report");
    doc["id"] = number(id);
    doc["cached"] = ConfigValue::makeBool(cached);
    doc["report"] = text(report_json);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
errorFrame(std::int64_t id, const Status &status)
{
    ConfigValue::Object doc;
    doc["type"] = text("error");
    doc["id"] = number(id);
    doc["code"] = number(static_cast<std::int64_t>(status.code()));
    doc["message"] = text(status.message());
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
statsRequestFrame(std::int64_t id)
{
    ConfigValue::Object doc;
    doc["type"] = text("stats");
    doc["id"] = number(id);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
shutdownRequestFrame(std::int64_t id)
{
    ConfigValue::Object doc;
    doc["type"] = text("shutdown");
    doc["id"] = number(id);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
statsReportFrame(std::int64_t id, ConfigValue payload)
{
    ConfigValue::Object doc;
    doc["type"] = text("stats_report");
    doc["id"] = number(id);
    doc["stats"] = std::move(payload);
    return ConfigValue::makeObject(std::move(doc));
}

ConfigValue
byeFrame(std::int64_t id)
{
    ConfigValue::Object doc;
    doc["type"] = text("bye");
    doc["id"] = number(id);
    return ConfigValue::makeObject(std::move(doc));
}

Status
statusFromErrorFrame(const ConfigValue &doc)
{
    const std::int64_t code = doc.getIntOr("code", -1);
    if (code <= 0
        || code > static_cast<std::int64_t>(StatusCode::kParseError))
        return internalError("daemon error: "
                             + doc.getStringOr("message", "(no message)"));
    return Status(static_cast<StatusCode>(code),
                  doc.getStringOr("message", ""));
}

} // namespace cimmlc
