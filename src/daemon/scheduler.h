/**
 * @file
 * Admission control and per-client fair queuing for the compile
 * daemon — pure data-structure logic (no threads, no sockets) so the
 * policy is unit-testable in isolation. The server serializes access
 * under its own mutex.
 *
 * Policy:
 *  - Admission: a request is rejected (kResourceExhausted) when the
 *    number of waiting requests has reached max_queue_depth. In-flight
 *    requests do not count against the queue.
 *  - Dispatch: at most max_inflight requests run at once. The next
 *    request is chosen by weighted round-robin across clients with
 *    pending work — a client of weight w may dispatch up to w requests
 *    each time its turn comes — and FIFO within one client, so one
 *    chatty client cannot starve the rest (the cmb-style event-queue
 *    idiom from the related CIM simulator repos, specialized to
 *    request serving).
 */
#ifndef CIMMLC_DAEMON_SCHEDULER_H
#define CIMMLC_DAEMON_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"

namespace cimmlc {

/** One queued unit of work. */
struct SchedulerJob {
    std::uint64_t client = 0;   //!< connection identity
    std::int64_t request_id = 0; //!< rpc id (diagnostics only)
    std::function<void()> run;  //!< executed by the server on the pool
};

/** Admission + fairness policy knobs. */
struct SchedulerLimits {
    std::int64_t max_inflight = 2;    //!< concurrent compiles
    std::int64_t max_queue_depth = 32; //!< waiting requests, all clients
};

class FairScheduler
{
  public:
    explicit FairScheduler(SchedulerLimits limits = {});

    /** Registers @p client with a fairness @p weight (clamped to
     * [1, 16]); idempotent re-registration keeps the first weight. */
    void addClient(std::uint64_t client, int weight = 1);

    /**
     * Admits @p job into @p client's FIFO or rejects it with
     * kResourceExhausted when the global queue is full.
     */
    Status admit(SchedulerJob job);

    /**
     * Picks the next runnable job under the in-flight limit, advancing
     * the weighted round-robin cursor. Returns nullopt when nothing is
     * runnable (queue empty or in-flight at the limit). The caller owns
     * the returned job and MUST pair it with finish().
     */
    std::optional<SchedulerJob> next();

    /** Marks one dispatched job complete, freeing its in-flight slot. */
    void finish();

    /**
     * Drops @p client: its queued (not yet dispatched) jobs are
     * discarded and returned so the caller can account for them.
     * In-flight jobs are unaffected (the server cancels those through
     * the session cancel hook).
     */
    std::vector<SchedulerJob> dropClient(std::uint64_t client);

    std::int64_t queueDepth() const { return queued_; }
    std::int64_t inflight() const { return inflight_; }
    std::int64_t clientCount() const
    {
        return static_cast<std::int64_t>(clients_.size());
    }
    const SchedulerLimits &limits() const { return limits_; }

  private:
    struct ClientQueue {
        int weight = 1;
        int turn_credit = 0; //!< dispatches left in the current turn
        std::deque<SchedulerJob> jobs;
    };

    SchedulerLimits limits_;
    std::map<std::uint64_t, ClientQueue> clients_;
    //! round-robin order: clients that currently have pending jobs
    std::deque<std::uint64_t> rr_;
    std::int64_t queued_ = 0;
    std::int64_t inflight_ = 0;
};

} // namespace cimmlc

#endif // CIMMLC_DAEMON_SCHEDULER_H
