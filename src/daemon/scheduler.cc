#include "daemon/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strutil.h"

namespace cimmlc {

FairScheduler::FairScheduler(SchedulerLimits limits) : limits_(limits)
{
    limits_.max_inflight = std::max<std::int64_t>(1, limits_.max_inflight);
    limits_.max_queue_depth =
        std::max<std::int64_t>(0, limits_.max_queue_depth);
}

void
FairScheduler::addClient(std::uint64_t client, int weight)
{
    auto [it, inserted] = clients_.try_emplace(client);
    if (inserted)
        it->second.weight = std::clamp(weight, 1, 16);
}

Status
FairScheduler::admit(SchedulerJob job)
{
    if (queued_ >= limits_.max_queue_depth)
        return resourceExhausted(strformat(
            "admission rejected: queue full (%lld waiting, limit %lld)",
            static_cast<long long>(queued_),
            static_cast<long long>(limits_.max_queue_depth)));
    addClient(job.client);
    ClientQueue &queue = clients_[job.client];
    const bool was_idle = queue.jobs.empty();
    queue.jobs.push_back(std::move(job));
    ++queued_;
    if (was_idle)
        rr_.push_back(queue.jobs.back().client);
    return Status::ok();
}

std::optional<SchedulerJob>
FairScheduler::next()
{
    if (inflight_ >= limits_.max_inflight || rr_.empty())
        return std::nullopt;
    // The head client dispatches until its weight's worth of credit is
    // spent or its FIFO drains, then rotates to the back.
    const std::uint64_t client = rr_.front();
    auto it = clients_.find(client);
    CIMMLC_CHECK(it != clients_.end());
    ClientQueue &queue = it->second;
    CIMMLC_CHECK(!queue.jobs.empty());
    if (queue.turn_credit <= 0)
        queue.turn_credit = queue.weight;

    SchedulerJob job = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    --queued_;
    ++inflight_;
    --queue.turn_credit;

    if (queue.jobs.empty()) {
        queue.turn_credit = 0;
        rr_.pop_front();
    } else if (queue.turn_credit <= 0) {
        rr_.pop_front();
        rr_.push_back(client);
    }
    return job;
}

void
FairScheduler::finish()
{
    CIMMLC_CHECK_GT(inflight_, 0);
    --inflight_;
}

std::vector<SchedulerJob>
FairScheduler::dropClient(std::uint64_t client)
{
    std::vector<SchedulerJob> dropped;
    auto it = clients_.find(client);
    if (it == clients_.end())
        return dropped;
    for (SchedulerJob &job : it->second.jobs)
        dropped.push_back(std::move(job));
    queued_ -= static_cast<std::int64_t>(dropped.size());
    clients_.erase(it);
    rr_.erase(std::remove(rr_.begin(), rr_.end(), client), rr_.end());
    return dropped;
}

} // namespace cimmlc
