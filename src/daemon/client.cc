#include "daemon/client.h"

#include "common/version.h"

namespace cimmlc {

StatusOr<DaemonClient>
DaemonClient::connectUnixSocket(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(Socket socket, connectUnix(path));
    return handshake(std::move(socket));
}

StatusOr<DaemonClient>
DaemonClient::connectTcpSocket(const std::string &host, int port)
{
    CIMMLC_ASSIGN_OR_RETURN(Socket socket, connectTcp(host, port));
    return handshake(std::move(socket));
}

StatusOr<DaemonClient>
DaemonClient::handshake(Socket socket)
{
    DaemonClient client(std::move(socket));
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue hello,
                            recvFrame(client.socket_));
    if (!hello.isObject()
        || hello.getStringOr("type", "") != "hello")
        return parseError("daemon handshake: expected a hello frame");
    client.schema_ = hello.getStringOr("schema", "");
    client.version_ = hello.getStringOr("compiler_version", "");
    if (client.schema_ != kRpcSchema)
        return invalidArgument("daemon speaks schema '" + client.schema_
                               + "', this client needs '" + kRpcSchema
                               + "'");
    return client;
}

bool
DaemonClient::versionSkew() const
{
    return version_ != cimmlcVersion();
}

StatusOr<RpcCompileResponse>
DaemonClient::compile(const RpcCompileRequest &request,
                      const EventCallback &on_event)
{
    RpcCompileRequest wired = request;
    wired.id = next_id_++;
    CIMMLC_RETURN_IF_ERROR(sendFrame(socket_, wired.toConfig()));

    RpcCompileResponse response;
    for (;;) {
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue frame, recvFrame(socket_));
        if (!frame.isObject())
            return parseError("daemon sent a non-object frame");
        const std::string type = frame.getStringOr("type", "");
        if (frame.getIntOr("id", -1) != wired.id)
            return internalError(
                "daemon reply id does not match the request (pipelined "
                "use needs one DaemonClient per thread)");
        if (type == "event") {
            ++response.events;
            if (on_event)
                on_event(frame.getStringOr("stage", ""),
                         frame.getStringOr("status", ""),
                         frame.getNumberOr("wall_ms", 0.0),
                         frame.getStringOr("detail", ""));
            continue;
        }
        if (type == "report") {
            response.report_json = frame.getStringOr("report", "");
            response.cached = frame.getBoolOr("cached", false);
            return response;
        }
        if (type == "error")
            return statusFromErrorFrame(frame);
        return parseError("unexpected frame type '" + type
                          + "' while waiting for a compile reply");
    }
}

StatusOr<ConfigValue>
DaemonClient::stats()
{
    const std::int64_t id = next_id_++;
    CIMMLC_RETURN_IF_ERROR(sendFrame(socket_, statsRequestFrame(id)));
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue frame, recvFrame(socket_));
    if (!frame.isObject()
        || frame.getStringOr("type", "") != "stats_report"
        || frame.getIntOr("id", -1) != id)
        return parseError("daemon sent an unexpected stats reply");
    return frame.get("stats");
}

Status
DaemonClient::shutdownServer()
{
    const std::int64_t id = next_id_++;
    CIMMLC_RETURN_IF_ERROR(sendFrame(socket_, shutdownRequestFrame(id)));
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue frame, recvFrame(socket_));
    if (!frame.isObject() || frame.getStringOr("type", "") != "bye")
        return parseError("daemon sent an unexpected shutdown reply");
    return Status::ok();
}

} // namespace cimmlc
