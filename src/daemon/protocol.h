/**
 * @file
 * `cimmlc.rpc.v1` — the frame vocabulary of the compile-service daemon.
 *
 * Every frame is one kvjson object (transported by common/socket.h
 * framing) with a "type" key:
 *
 *   server -> client on connect:   hello       (schema, compiler_version)
 *   client -> server:              compile     (id + request fields)
 *                                  stats       (id)
 *                                  shutdown    (id; drain and exit)
 *   server -> client per compile:  event*      (id, stage, wall_ms, ...)
 *                                  report|error (id; terminal)
 *   server -> client per stats:    stats_report (id, payload)
 *   server -> client per shutdown: bye          (id)
 *
 * Ordering guarantees: frames for one request id arrive in stage order
 * with the terminal frame last; frames for different ids from one
 * connection may interleave (the daemon may run a connection's queued
 * requests concurrently when it has spare in-flight slots).
 *
 * A compile request carries the workload and architecture **by value**
 * (preset name or inline kvjson text) — the daemon never reads client
 * file paths, so it can serve containerized clients. The client CLI
 * inlines --model-file/--arch-file contents before submitting.
 */
#ifndef CIMMLC_DAEMON_PROTOCOL_H
#define CIMMLC_DAEMON_PROTOCOL_H

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "compiler/session.h"

namespace cimmlc {

/** Schema tag carried by the hello frame. */
constexpr const char *kRpcSchema = "cimmlc.rpc.v1";

/**
 * A compile request as it travels over the wire. Field semantics match
 * CompileRequest; the daemon maps it with toCompileRequest() so a
 * daemon-served compile is byte-identical to `cimmlc --report json`
 * run in-process (timing fields aside).
 */
struct RpcCompileRequest {
    std::int64_t id = 0;      //!< client-chosen, echoed on every reply
    std::string model;        //!< preset name (models::byName)
    std::string model_text;   //!< inline kvjson graph
    std::string arch;         //!< preset name (presets::byName)
    std::string arch_text;    //!< inline kvjson Abs-arch
    std::string opt = "full"; //!< none | cg | cg+mvm | full
    bool dual_mode = false;    //!< overlay: resident dual-mode arrays
    bool host_offload = false; //!< overlay: host/CIM hybrid offload
    bool tune = false;
    std::string objective = "latency";
    std::int64_t search_budget = -1; //!< -1 = exhaustive
    std::string perf_engine = "closed_form";
    bool lint = false;
    bool lint_strict = false;
    bool verify = false;

    /** Serializes every field explicitly (canonical form: two requests
     * meaning the same compile dump identically). */
    ConfigValue toConfig() const;

    /** Canonical request identity: the canonical dump minus the
     * client-chosen id (test hooks and request-level telemetry). */
    std::string fingerprint() const;

    /**
     * Maps the wire request onto a staged-session CompileRequest.
     * @p tune_cache is the daemon's shared warm TuneCache and
     * @p artifact_cache its process-wide stage-level artifact cache
     * (either may be null). The tune stage runs serial (threads=1):
     * daemon concurrency comes from running many sessions, not from
     * oversubscribing one.
     */
    StatusOr<CompileRequest>
    toCompileRequest(TuneCache *tune_cache,
                     ArtifactCache *artifact_cache = nullptr) const;
};

/** Parses a compile frame. Unknown keys are an error (they usually
 * mean daemon/client version skew, which should be loud). */
StatusOr<RpcCompileRequest> parseCompileFrame(const ConfigValue &doc);

// ----- frame builders -------------------------------------------------------

/** Server handshake: schema + compiler_version (+ the daemon's limits,
 * informational). */
ConfigValue helloFrame(std::int64_t max_inflight,
                       std::int64_t max_queue_depth);

/** One per-stage progress event mirroring a session StageTrace. */
ConfigValue eventFrame(std::int64_t id, const StageTrace &trace);

/** Terminal success frame; @p report_json is the pretty
 * `cimmlc.report.v1` dump, @p cached marks an artifact-memo hit. */
ConfigValue reportFrame(std::int64_t id, const std::string &report_json,
                        bool cached);

/** Terminal failure frame carrying @p status. */
ConfigValue errorFrame(std::int64_t id, const Status &status);

/** Client stats / shutdown requests. */
ConfigValue statsRequestFrame(std::int64_t id);
ConfigValue shutdownRequestFrame(std::int64_t id);

/** Server stats / shutdown replies. */
ConfigValue statsReportFrame(std::int64_t id, ConfigValue payload);
ConfigValue byeFrame(std::int64_t id);

/** Extracts an error frame's Status (code + message round-trip). */
Status statusFromErrorFrame(const ConfigValue &doc);

} // namespace cimmlc

#endif // CIMMLC_DAEMON_PROTOCOL_H
