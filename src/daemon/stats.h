/**
 * @file
 * Serving-side telemetry for the compile daemon: request counters,
 * cache effectiveness, and per-stage latency histograms, snapshotted
 * as a kvjson document for the rpc `stats` request.
 */
#ifndef CIMMLC_DAEMON_STATS_H
#define CIMMLC_DAEMON_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.h"

namespace cimmlc {

/**
 * A fixed-bucket log2 latency histogram over milliseconds: bucket i
 * holds samples in [2^(i-1), 2^i) ms, with bucket 0 catching
 * everything below 1 ms. Quantiles are read off the bucket upper
 * bounds, so they are conservative (never under-report).
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 24; //!< up to ~2330 h in the top bucket

    void record(double ms);

    std::int64_t count() const { return count_; }
    double totalMs() const { return total_ms_; }
    double maxMs() const { return max_ms_; }

    /** Conservative quantile in ms for @p q in [0, 1]; 0 when empty. */
    double quantileMs(double q) const;

    /** {count, total_ms, mean_ms, max_ms, p50_ms, p99_ms, buckets[]}. */
    ConfigValue toConfig() const;

  private:
    std::int64_t buckets_[kBuckets] = {};
    std::int64_t count_ = 0;
    double total_ms_ = 0.0;
    double max_ms_ = 0.0;
};

/** Thread-safe daemon counters + histograms. */
class DaemonStats
{
  public:
    void recordAdmitted();
    void recordRejected();
    void recordCompleted(double total_ms);
    void recordFailed();
    void recordCanceled(std::int64_t dropped);
    void recordMemo(bool hit);
    /** Per-stage latency sample. @p cached routes a cache replay into
     * the separate "stage_replay_latency" histograms so first-run
     * compute timings never pollute the replay distribution (and vice
     * versa). */
    void recordStage(const std::string &stage, double wall_ms,
                     bool cached = false);

    /**
     * Snapshot as kvjson. @p queue_depth / @p inflight / @p clients are
     * the scheduler's live gauges; @p tune_cache_entries /
     * @p tune_cache_hits mirror the shared TuneCache, and
     * @p artifact_cache is ArtifactCache::toConfig() (per-stage hit
     * rates, capacity, evictions).
     */
    ConfigValue toConfig(std::int64_t queue_depth, std::int64_t inflight,
                         std::int64_t clients,
                         std::int64_t tune_cache_entries,
                         std::int64_t tune_cache_hits,
                         ConfigValue artifact_cache =
                             ConfigValue::makeObject({})) const;

  private:
    mutable std::mutex mutex_;
    std::int64_t admitted_ = 0;
    std::int64_t rejected_ = 0;
    std::int64_t completed_ = 0;
    std::int64_t failed_ = 0;
    std::int64_t canceled_ = 0;
    std::int64_t memo_hits_ = 0;
    std::int64_t memo_misses_ = 0;
    LatencyHistogram total_;
    std::map<std::string, LatencyHistogram> stages_;
    std::map<std::string, LatencyHistogram> replay_stages_;
};

} // namespace cimmlc

#endif // CIMMLC_DAEMON_STATS_H
