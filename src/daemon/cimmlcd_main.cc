/**
 * @file
 * `cimmlcd` — long-running compile service over the CIM-MLC stack.
 *
 * Accepts `cimmlc.rpc.v1` framed kvjson requests over a Unix-domain
 * socket (and optionally localhost TCP), admits them under a bounded
 * queue, schedules them fairly across client connections onto the
 * process ThreadPool, and serves every compile from one warm
 * process-wide TuneCache plus a bounded (LRU) stage-level artifact
 * cache that replays unchanged pipeline stages across requests.
 *
 * Usage:
 *   cimmlcd --socket /tmp/cimmlcd.sock [options]
 *
 * Options:
 *   --socket PATH        Unix-domain socket to listen on
 *   --tcp PORT           also listen on 127.0.0.1:PORT (0 = ephemeral;
 *                        the bound port is printed on startup)
 *   --threads N          compile worker threads (0 = hardware
 *                        concurrency)
 *   --max-inflight N     concurrent compiles (default 2)
 *   --max-queue N        admission queue depth (default 32); further
 *                        requests are rejected, not buffered
 *   --tune-cache PATH    load the tune cache at startup and snapshot
 *                        it there (atomic rename) on shutdown
 *   --snapshot-every N   also snapshot after every N completed
 *                        compiles (default 0 = only at shutdown)
 *   --cache-capacity N   stage-artifact cache entries before LRU
 *                        eviction (default 512). 0 is clamped to 1
 *                        with a warning: the cache cannot be disabled,
 *                        one entry is its smallest size
 *   --version / --help
 *
 * Clients: `cimmlc --connect PATH --model ... [--report json]`, or any
 * program speaking the framing documented in DESIGN.md.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/version.h"
#include "daemon/server.h"

using namespace cimmlc;

namespace {

DaemonServer *g_server = nullptr;

void
handleSignal(int)
{
    // requestStop only sets flags and pokes a condition variable; the
    // heavyweight teardown runs on the main thread in serveForever().
    if (g_server != nullptr)
        g_server->requestStop();
}

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(out,
                 "usage: %s --socket PATH [--tcp PORT] [--threads N]\n"
                 "          [--max-inflight N] [--max-queue N]\n"
                 "          [--tune-cache PATH] [--snapshot-every N]\n"
                 "          [--cache-capacity N]\n"
                 "          [--version] [--help]\n",
                 argv0);
}

bool
parseIntFlag(const char *flag, const char *value, long long *out)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "%s expects a non-negative integer, got '%s'\n",
                     flag, value);
        return false;
    }
    *out = parsed;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--help" || flag == "-h") {
            printUsage(stdout, argv[0]);
            return 0;
        }
        if (flag == "--version") {
            std::printf("cimmlcd %s\n", cimmlcVersion());
            return 0;
        }
        if (flag == "--socket") {
            const char *v = next();
            if (!v) {
                printUsage(stderr, argv[0]);
                return 2;
            }
            config.unix_path = v;
        } else if (flag == "--tcp" || flag == "--threads"
                   || flag == "--max-inflight" || flag == "--max-queue"
                   || flag == "--snapshot-every"
                   || flag == "--cache-capacity") {
            const char *v = next();
            long long parsed = 0;
            if (!v || !parseIntFlag(flag.c_str(), v, &parsed)) {
                printUsage(stderr, argv[0]);
                return 2;
            }
            if (flag == "--tcp")
                config.tcp_port = static_cast<int>(parsed);
            else if (flag == "--threads")
                config.threads = static_cast<int>(parsed);
            else if (flag == "--max-inflight")
                config.max_inflight = parsed;
            else if (flag == "--max-queue")
                config.max_queue_depth = parsed;
            else if (flag == "--cache-capacity")
                config.cache_capacity = parsed;
            else
                config.snapshot_every = parsed;
        } else if (flag == "--tune-cache") {
            const char *v = next();
            if (!v) {
                printUsage(stderr, argv[0]);
                return 2;
            }
            config.tune_cache_path = v;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            printUsage(stderr, argv[0]);
            return 2;
        }
    }
    if (config.unix_path.empty() && config.tcp_port < 0) {
        std::fprintf(stderr, "cimmlcd needs --socket and/or --tcp\n");
        printUsage(stderr, argv[0]);
        return 2;
    }

    DaemonServer server(std::move(config));
    const Status started = server.start();
    if (!started.isOk()) {
        std::fprintf(stderr, "%s\n", started.toString().c_str());
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    std::printf("cimmlcd %s ready", cimmlcVersion());
    if (!server.config().unix_path.empty())
        std::printf(" unix=%s", server.config().unix_path.c_str());
    if (server.boundTcpPort() >= 0)
        std::printf(" tcp=127.0.0.1:%d", server.boundTcpPort());
    std::printf(" inflight<=%lld queue<=%lld\n",
                static_cast<long long>(server.config().max_inflight),
                static_cast<long long>(server.config().max_queue_depth));
    std::fflush(stdout);

    server.serveForever();
    g_server = nullptr;
    std::printf("cimmlcd: drained, bye\n");
    return 0;
}
