/**
 * @file
 * Client side of the `cimmlc.rpc.v1` protocol: connect, handshake,
 * submit compile/stats/shutdown requests, and stream per-stage trace
 * events. Used by `cimmlc --connect`, the load-generator bench, and
 * the daemon tests.
 */
#ifndef CIMMLC_DAEMON_CLIENT_H
#define CIMMLC_DAEMON_CLIENT_H

#include <cstdint>
#include <functional>
#include <string>

#include "common/config.h"
#include "common/socket.h"
#include "common/status.h"
#include "daemon/protocol.h"

namespace cimmlc {

/** The terminal outcome of one daemon-served compile. */
struct RpcCompileResponse {
    std::string report_json; //!< pretty `cimmlc.report.v1` document
    bool cached = false;     //!< answered from the daemon's artifact memo
    std::int64_t events = 0; //!< stage events streamed before the report
};

class DaemonClient
{
  public:
    //! called per stage event with (stage, status text, wall_ms, detail)
    using EventCallback = std::function<void(
        const std::string &, const std::string &, double,
        const std::string &)>;

    /** Connects over a Unix-domain socket and reads the hello frame. */
    static StatusOr<DaemonClient> connectUnixSocket(
        const std::string &path);

    /** Connects over localhost TCP and reads the hello frame. */
    static StatusOr<DaemonClient> connectTcpSocket(
        const std::string &host, int port);

    DaemonClient(DaemonClient &&) = default;
    DaemonClient &operator=(DaemonClient &&) = default;

    /** Daemon identity from the handshake. */
    const std::string &serverSchema() const { return schema_; }
    const std::string &serverVersion() const { return version_; }

    /** True when the daemon was built from a different compiler
     * version than this client (skew the caller should surface). */
    bool versionSkew() const;

    /**
     * Submits @p request and blocks until its terminal frame, invoking
     * @p on_event for every streamed stage event. An error frame
     * (admission rejection, compile failure, cancellation) comes back
     * as this function's error Status.
     */
    StatusOr<RpcCompileResponse> compile(const RpcCompileRequest &request,
                                         const EventCallback &on_event = {});

    /** Fetches the daemon's `cimmlc.stats.v1` snapshot. */
    StatusOr<ConfigValue> stats();

    /** Asks the daemon to drain and exit. */
    Status shutdownServer();

  private:
    explicit DaemonClient(Socket socket) : socket_(std::move(socket)) {}

    static StatusOr<DaemonClient> handshake(Socket socket);

    Socket socket_;
    std::string schema_;
    std::string version_;
    std::int64_t next_id_ = 1;
};

} // namespace cimmlc

#endif // CIMMLC_DAEMON_CLIENT_H
