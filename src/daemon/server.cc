#include "daemon/server.h"

#include <chrono>
#include <cstdio>

#include "common/strutil.h"
#include "compiler/session.h"

namespace cimmlc {

// ----- DaemonConfig ---------------------------------------------------------

Status
DaemonConfig::validate() const
{
    if (unix_path.empty() && tcp_port < 0)
        return invalidArgument(
            "daemon needs a transport: set unix_path and/or tcp_port");
    if (tcp_port > 65535)
        return invalidArgument(
            strformat("bad tcp_port %d (expected 0..65535)", tcp_port));
    if (threads < 0)
        return invalidArgument("threads must be >= 0");
    if (max_inflight < 1)
        return invalidArgument("max_inflight must be >= 1");
    if (max_queue_depth < 0)
        return invalidArgument("max_queue_depth must be >= 0");
    if (snapshot_every < 0)
        return invalidArgument("snapshot_every must be >= 0");
    if (cache_capacity < 1)
        return invalidArgument("cache_capacity must be >= 1");
    return Status::ok();
}

// ----- Connection -----------------------------------------------------------

struct DaemonServer::Connection {
    std::uint64_t id = 0;
    Socket socket;
    //! serializes frame writes: stage events from a pool thread and
    //! replies from the reader thread interleave on one stream
    std::mutex write_mutex;
    //! cleared on disconnect or write failure; in-flight sessions poll
    //! it through the cancel hook
    std::atomic<bool> alive{true};
};

DaemonServer::DaemonServer(DaemonConfig config)
    : config_(std::move(config)),
      scheduler_(SchedulerLimits{config_.max_inflight,
                                 config_.max_queue_depth}),
      artifact_cache_(static_cast<std::size_t>(
          config_.cache_capacity < 1 ? 1 : config_.cache_capacity))
{
}

DaemonServer::~DaemonServer()
{
    stop();
}

Status
DaemonServer::start()
{
    CIMMLC_RETURN_IF_ERROR(config_.validate().withContext("cimmlcd"));
    if (!config_.tune_cache_path.empty()) {
        const Status loaded =
            tune_cache_.loadFromFile(config_.tune_cache_path);
        if (!loaded.isOk()) {
            // Missing/corrupt snapshots degrade to a cold cache; the
            // daemon must come up regardless.
            std::fprintf(stderr,
                         "cimmlcd: %s - starting with a cold tune "
                         "cache\n",
                         loaded.toString().c_str());
        }
    }
    pool_ = std::make_unique<ThreadPool>(config_.threads);
    if (!config_.unix_path.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(unix_listener_,
                                Listener::listenUnix(config_.unix_path));
        accept_threads_.emplace_back(
            [this] { acceptLoop(&unix_listener_); });
    }
    if (config_.tcp_port >= 0) {
        CIMMLC_ASSIGN_OR_RETURN(tcp_listener_,
                                Listener::listenTcp(config_.tcp_port));
        accept_threads_.emplace_back(
            [this] { acceptLoop(&tcp_listener_); });
    }
    return Status::ok();
}

int
DaemonServer::boundTcpPort() const
{
    return tcp_listener_.valid() ? tcp_listener_.boundPort() : -1;
}

void
DaemonServer::serveForever()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_; });
    lock.unlock();
    stop();
}

void
DaemonServer::requestStop()
{
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
}

void
DaemonServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
    stopping_.store(true, std::memory_order_release);

    // Closing the listeners unblocks the accept threads.
    unix_listener_.close();
    tcp_listener_.close();
    for (std::thread &thread : accept_threads_)
        thread.join();
    accept_threads_.clear();

    // Shut every connection down (readers unblock from recv and run
    // their normal cleanup: drop queued work, cancel running sessions).
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (auto &[id, conn] : connections_) {
            conn->alive.store(false, std::memory_order_release);
            conn->socket.shutdownBoth();
        }
        readers.swap(reader_threads_);
    }
    for (std::thread &thread : readers)
        thread.join();

    // Drain in-flight compiles (canceled ones abort at the next stage
    // boundary) before the pool is torn down.
    if (pool_) {
        pool_->wait();
        pool_.reset();
    }
    if (!config_.tune_cache_path.empty()) {
        const Status saved =
            tune_cache_.saveToFile(config_.tune_cache_path);
        if (!saved.isOk())
            std::fprintf(stderr,
                         "cimmlcd: could not snapshot tune cache: %s\n",
                         saved.toString().c_str());
    }
}

std::int64_t
DaemonServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(sched_mutex_);
    return scheduler_.queueDepth();
}

std::int64_t
DaemonServer::inflight() const
{
    std::lock_guard<std::mutex> lock(sched_mutex_);
    return scheduler_.inflight();
}

void
DaemonServer::setCompileHook(std::function<void(const std::string &)> hook)
{
    std::lock_guard<std::mutex> lock(hook_mutex_);
    compile_hook_ = std::move(hook);
}

// ----- connection handling --------------------------------------------------

void
DaemonServer::acceptLoop(Listener *listener)
{
    for (;;) {
        auto accepted = listener->accept();
        if (!accepted.isOk())
            return; // listener closed: the stop path
        if (stopping_.load(std::memory_order_acquire))
            return; // raced with stop(); drop the late connection
        auto conn = std::make_shared<Connection>();
        conn->socket = std::move(accepted).value();
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn->id = next_client_id_++;
        connections_[conn->id] = conn;
        reader_threads_.emplace_back(
            [this, conn] { readerLoop(conn); });
    }
}

void
DaemonServer::readerLoop(std::shared_ptr<Connection> conn)
{
    sendToClient(conn, helloFrame(config_.max_inflight,
                                  config_.max_queue_depth));
    while (conn->alive.load(std::memory_order_acquire)) {
        auto frame = recvFrame(conn->socket);
        if (!frame.isOk())
            break; // clean close, peer reset, or shutdown from stop()
        const ConfigValue &doc = frame.value();
        const std::string type =
            doc.isObject() ? doc.getStringOr("type", "") : "";
        const std::int64_t id =
            doc.isObject() ? doc.getIntOr("id", -1) : -1;
        if (type == "compile") {
            handleCompile(conn, doc);
        } else if (type == "stats") {
            sendToClient(conn, statsReportFrame(id, statsSnapshot()));
        } else if (type == "shutdown") {
            sendToClient(conn, byeFrame(id));
            requestStop();
        } else {
            sendToClient(
                conn,
                errorFrame(id, invalidArgument(
                                   "unknown rpc frame type '" + type
                                   + "' (daemon/client version skew?)")));
        }
    }
    // Disconnect cleanup: no more writes, queued work dropped, running
    // sessions observe the cancel flag at their next stage boundary.
    conn->alive.store(false, std::memory_order_release);
    std::vector<SchedulerJob> dropped;
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        dropped = scheduler_.dropClient(conn->id);
    }
    if (!dropped.empty())
        stats_.recordCanceled(static_cast<std::int64_t>(dropped.size()));
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.erase(conn->id);
    }
}

void
DaemonServer::handleCompile(const std::shared_ptr<Connection> &conn,
                            const ConfigValue &doc)
{
    auto parsed = parseCompileFrame(doc);
    if (!parsed.isOk()) {
        sendToClient(conn, errorFrame(doc.getIntOr("id", -1),
                                      parsed.status()));
        return;
    }
    const RpcCompileRequest request = std::move(parsed).value();

    SchedulerJob job;
    job.client = conn->id;
    job.request_id = request.id;
    job.run = [this, conn, request] { runCompile(conn, request); };
    Status admitted;
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        scheduler_.addClient(conn->id);
        admitted = scheduler_.admit(std::move(job));
    }
    if (!admitted.isOk()) {
        stats_.recordRejected();
        sendToClient(conn, errorFrame(request.id, admitted));
        return;
    }
    stats_.recordAdmitted();
    pumpScheduler();
}

void
DaemonServer::pumpScheduler()
{
    for (;;) {
        std::optional<SchedulerJob> job;
        {
            std::lock_guard<std::mutex> lock(sched_mutex_);
            job = scheduler_.next();
        }
        if (!job.has_value())
            return;
        pool_->submit([this, work = std::move(job->run)] {
            work();
            {
                std::lock_guard<std::mutex> lock(sched_mutex_);
                scheduler_.finish();
            }
            // A freed in-flight slot may unblock a queued request.
            pumpScheduler();
        });
    }
}

// ----- compilation ----------------------------------------------------------

void
DaemonServer::runCompile(const std::shared_ptr<Connection> &conn,
                         const RpcCompileRequest &request)
{
    const std::string fingerprint = request.fingerprint();
    {
        std::function<void(const std::string &)> hook;
        {
            std::lock_guard<std::mutex> lock(hook_mutex_);
            hook = compile_hook_;
        }
        if (hook)
            hook(fingerprint);
    }
    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [&start] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    auto mapped = request.toCompileRequest(&tune_cache_, &artifact_cache_);
    if (!mapped.isOk()) {
        stats_.recordFailed();
        sendToClient(conn, errorFrame(request.id, mapped.status()));
        return;
    }

    CompilerSession session(std::move(mapped).value());
    session.setCancelCheck([conn] {
        return !conn->alive.load(std::memory_order_acquire);
    });
    session.setObserver([this, &conn, &request](
                            const StageTrace &trace,
                            const CompileArtifacts &) {
        // Replays land in a separate histogram so first-run compute
        // timings never mix with (much faster) cache replays.
        stats_.recordStage(compileStageName(trace.stage), trace.wall_ms,
                           trace.cached);
        sendToClient(conn, eventFrame(request.id, trace));
    });

    auto result = session.run();
    if (!result.isOk()) {
        if (result.status().code() == StatusCode::kFailedPrecondition
            && !conn->alive.load(std::memory_order_acquire)) {
            stats_.recordCanceled(1);
        } else {
            stats_.recordFailed();
        }
        sendToClient(conn, errorFrame(request.id, result.status()));
        return;
    }

    // A request is "cached" when every stage past load (which always
    // executes to resolve the cache keys) replayed from the warm
    // stage-artifact cache.
    std::size_t replayable = 0;
    for (const StageTrace &trace : result.value().stages)
        if (trace.stage != CompileStage::kLoad)
            ++replayable;
    const bool fully_replayed =
        replayable > 0
        && CompilerSession::cachedStageCount(result.value()) == replayable;
    stats_.recordMemo(fully_replayed);

    const std::string report =
        result.value().toConfig().dump(/*pretty=*/true);
    stats_.recordCompleted(elapsed_ms());
    sendToClient(conn,
                 reportFrame(request.id, report, fully_replayed));
    // The (possibly disk-touching) snapshot stays after the reply so it
    // never adds to client-observed latency.
    completed_since_snapshot_.fetch_add(1, std::memory_order_acq_rel);
    maybeSnapshotCache();
}

void
DaemonServer::sendToClient(const std::shared_ptr<Connection> &conn,
                           const ConfigValue &frame)
{
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (!conn->alive.load(std::memory_order_acquire))
        return;
    const Status sent = sendFrame(conn->socket, frame);
    if (!sent.isOk()) {
        // A dead peer: stop writing and unblock the reader so it runs
        // the disconnect cleanup (which cancels this client's work).
        conn->alive.store(false, std::memory_order_release);
        conn->socket.shutdownBoth();
    }
}

void
DaemonServer::maybeSnapshotCache()
{
    if (config_.tune_cache_path.empty() || config_.snapshot_every <= 0)
        return;
    // Claim a snapshot atomically so concurrent completions cannot
    // write the same generation twice.
    std::int64_t seen =
        completed_since_snapshot_.load(std::memory_order_acquire);
    while (seen >= config_.snapshot_every) {
        if (completed_since_snapshot_.compare_exchange_weak(
                seen, seen - config_.snapshot_every,
                std::memory_order_acq_rel)) {
            const Status saved =
                tune_cache_.saveToFile(config_.tune_cache_path);
            if (!saved.isOk())
                std::fprintf(stderr,
                             "cimmlcd: could not snapshot tune cache: "
                             "%s\n",
                             saved.toString().c_str());
            return;
        }
    }
}

ConfigValue
DaemonServer::statsSnapshot()
{
    std::int64_t queue_depth = 0;
    std::int64_t running = 0;
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        queue_depth = scheduler_.queueDepth();
        running = scheduler_.inflight();
    }
    std::int64_t clients = 0;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        clients = static_cast<std::int64_t>(connections_.size());
    }
    return stats_.toConfig(queue_depth, running, clients,
                           static_cast<std::int64_t>(tune_cache_.size()),
                           tune_cache_.hits(),
                           artifact_cache_.toConfig());
}

} // namespace cimmlc
