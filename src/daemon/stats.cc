#include "daemon/stats.h"

#include <algorithm>
#include <cmath>

namespace cimmlc {

namespace {

ConfigValue
number(double v)
{
    return ConfigValue::makeNumber(v);
}

ConfigValue
number(std::int64_t v)
{
    return ConfigValue::makeNumber(static_cast<double>(v));
}

} // namespace

// ----- LatencyHistogram -----------------------------------------------------

void
LatencyHistogram::record(double ms)
{
    ms = std::max(ms, 0.0);
    int bucket = 0;
    if (ms >= 1.0) {
        bucket = static_cast<int>(std::floor(std::log2(ms))) + 1;
        bucket = std::min(bucket, kBuckets - 1);
    }
    ++buckets_[bucket];
    ++count_;
    total_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
}

double
LatencyHistogram::quantileMs(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::int64_t target = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(q * count_)));
    std::int64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            // Upper bound of bucket i, clamped to the observed max so
            // a lone 3 ms sample reports p99 = 3 ms, not 4 ms.
            const double upper = i == 0 ? 1.0 : std::pow(2.0, i);
            return std::min(upper, max_ms_);
        }
    }
    return max_ms_;
}

ConfigValue
LatencyHistogram::toConfig() const
{
    ConfigValue::Object doc;
    doc["count"] = number(count_);
    doc["total_ms"] = number(total_ms_);
    doc["mean_ms"] =
        number(count_ > 0 ? total_ms_ / static_cast<double>(count_) : 0.0);
    doc["max_ms"] = number(max_ms_);
    doc["p50_ms"] = number(quantileMs(0.5));
    doc["p99_ms"] = number(quantileMs(0.99));
    // Trailing empty buckets are elided to keep stats frames small.
    int last = kBuckets - 1;
    while (last > 0 && buckets_[last] == 0)
        --last;
    ConfigValue::Array rows;
    for (int i = 0; i <= last; ++i)
        rows.push_back(number(buckets_[i]));
    doc["buckets"] = ConfigValue::makeArray(std::move(rows));
    return ConfigValue::makeObject(std::move(doc));
}

// ----- DaemonStats ----------------------------------------------------------

void
DaemonStats::recordAdmitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++admitted_;
}

void
DaemonStats::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
}

void
DaemonStats::recordCompleted(double total_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    total_.record(total_ms);
}

void
DaemonStats::recordFailed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++failed_;
}

void
DaemonStats::recordCanceled(std::int64_t dropped)
{
    std::lock_guard<std::mutex> lock(mutex_);
    canceled_ += dropped;
}

void
DaemonStats::recordMemo(bool hit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (hit)
        ++memo_hits_;
    else
        ++memo_misses_;
}

void
DaemonStats::recordStage(const std::string &stage, double wall_ms,
                         bool cached)
{
    std::lock_guard<std::mutex> lock(mutex_);
    (cached ? replay_stages_ : stages_)[stage].record(wall_ms);
}

ConfigValue
DaemonStats::toConfig(std::int64_t queue_depth, std::int64_t inflight,
                      std::int64_t clients,
                      std::int64_t tune_cache_entries,
                      std::int64_t tune_cache_hits,
                      ConfigValue artifact_cache) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ConfigValue::Object doc;
    doc["schema"] = ConfigValue::makeString("cimmlc.stats.v1");
    doc["queue_depth"] = number(queue_depth);
    doc["inflight"] = number(inflight);
    doc["clients"] = number(clients);
    doc["admitted"] = number(admitted_);
    doc["rejected"] = number(rejected_);
    doc["completed"] = number(completed_);
    doc["failed"] = number(failed_);
    doc["canceled"] = number(canceled_);

    ConfigValue::Object memo;
    memo["hits"] = number(memo_hits_);
    memo["misses"] = number(memo_misses_);
    const std::int64_t lookups = memo_hits_ + memo_misses_;
    memo["hit_rate"] = number(
        lookups > 0 ? static_cast<double>(memo_hits_)
                          / static_cast<double>(lookups)
                    : 0.0);
    doc["artifact_memo"] = ConfigValue::makeObject(std::move(memo));
    doc["artifact_cache"] = std::move(artifact_cache);

    ConfigValue::Object tune;
    tune["entries"] = number(tune_cache_entries);
    tune["hits"] = number(tune_cache_hits);
    doc["tune_cache"] = ConfigValue::makeObject(std::move(tune));

    doc["latency"] = total_.toConfig();
    ConfigValue::Object stage_rows;
    for (const auto &[name, hist] : stages_)
        stage_rows[name] = hist.toConfig();
    doc["stage_latency"] = ConfigValue::makeObject(std::move(stage_rows));
    ConfigValue::Object replay_rows;
    for (const auto &[name, hist] : replay_stages_)
        replay_rows[name] = hist.toConfig();
    doc["stage_replay_latency"] =
        ConfigValue::makeObject(std::move(replay_rows));
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
