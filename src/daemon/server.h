/**
 * @file
 * `cimmlcd` — the compile-as-a-service daemon.
 *
 * A DaemonServer owns:
 *  - one or two Listeners (Unix-domain socket and/or localhost TCP),
 *    each drained by an accept thread that spawns one reader thread
 *    per client connection;
 *  - a FairScheduler (daemon/scheduler.h) providing admission control
 *    (bounded queue) and weighted round-robin fairness across client
 *    connections, FIFO within one;
 *  - the process ThreadPool the admitted CompileRequests run on
 *    through CompilerSession;
 *  - one warm process-wide TuneCache shared by every tuned request,
 *    optionally loaded from / periodically snapshotted to disk
 *    (atomic temp-file + rename snapshots); and
 *  - one warm process-wide stage-level ArtifactCache (bounded, LRU):
 *    every session keys each stage by its own input hashes, so
 *    repeated traffic replays unchanged stages and a changed request
 *    re-runs only the invalidated stage suffix. Replayed stages are
 *    tagged `"cached": true` in events and reports, and their replay
 *    wall time lands in a separate stats histogram so first-run
 *    timings never pollute the serving latency distribution.
 *
 * Per-stage trace events stream to the client as the session runs
 * (the session observer hook feeds eventFrame); the terminal frame is
 * the full `cimmlc.report.v1` document, byte-identical to what
 * `cimmlc --report json` prints in-process for the same request
 * (timing fields aside). A client that disconnects mid-compile has its
 * queued requests dropped and its running session canceled at the next
 * stage boundary.
 */
#ifndef CIMMLC_DAEMON_SERVER_H
#define CIMMLC_DAEMON_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact_cache.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "daemon/protocol.h"
#include "daemon/scheduler.h"
#include "daemon/stats.h"
#include "sched/autotune.h"

namespace cimmlc {

/** Daemon configuration. */
struct DaemonConfig {
    std::string unix_path;  //!< Unix-domain socket path ("" = off)
    int tcp_port = -1;      //!< localhost TCP port (-1 = off, 0 = ephemeral)
    int threads = 0;        //!< compile pool size (0 = hardware concurrency)
    std::int64_t max_inflight = 2;     //!< concurrent compiles
    std::int64_t max_queue_depth = 32; //!< waiting requests, all clients
    std::string tune_cache_path; //!< load at start, snapshot target ("" = off)
    //! snapshot the tune cache every N completed compiles (0 = only at stop)
    std::int64_t snapshot_every = 0;
    //! stage-artifact cache entries before LRU eviction (>= 1)
    std::int64_t cache_capacity = ArtifactCache::kDefaultCapacity;

    Status validate() const;
};

class DaemonServer
{
  public:
    explicit DaemonServer(DaemonConfig config);
    ~DaemonServer();

    DaemonServer(const DaemonServer &) = delete;
    DaemonServer &operator=(const DaemonServer &) = delete;

    /** Binds the listeners and starts the accept/reader threads. */
    Status start();

    /** The TCP port actually bound (after tcp_port = 0); -1 when TCP
     * is off. Valid after start(). */
    int boundTcpPort() const;

    /**
     * Blocks until a client's shutdown request (or requestStop())
     * arrives, then drains in-flight work and returns.
     */
    void serveForever();

    /** Asks serveForever() to return; safe from signal-ish contexts
     * (only sets a flag and closes the listeners). */
    void requestStop();

    /** Stops listeners, joins every thread, drains the pool, and takes
     * a final cache snapshot. Idempotent; the destructor calls it. */
    void stop();

    /** Live scheduler gauges (tests + stats). */
    std::int64_t queueDepth() const;
    std::int64_t inflight() const;

    const DaemonConfig &config() const { return config_; }
    TuneCache &tuneCache() { return tune_cache_; }
    ArtifactCache &artifactCache() { return artifact_cache_; }

    /**
     * Test-only hook, called at the start of every admitted compile
     * job (before the session runs) with the request fingerprint.
     * Lets tests hold a compile in-flight deterministically to
     * exercise admission rejection and cancellation.
     */
    void setCompileHook(std::function<void(const std::string &)> hook);

  private:
    struct Connection;

    void acceptLoop(Listener *listener);
    void readerLoop(std::shared_ptr<Connection> conn);
    void handleCompile(const std::shared_ptr<Connection> &conn,
                       const ConfigValue &doc);
    void pumpScheduler();
    void runCompile(const std::shared_ptr<Connection> &conn,
                    const RpcCompileRequest &request);
    void sendToClient(const std::shared_ptr<Connection> &conn,
                      const ConfigValue &frame);
    void maybeSnapshotCache();
    ConfigValue statsSnapshot();

    DaemonConfig config_;
    Listener unix_listener_;
    Listener tcp_listener_;
    std::vector<std::thread> accept_threads_;

    std::mutex conn_mutex_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
    //! joined at stop(); a finished reader's thread object stays here
    //! (a few hundred bytes per past connection) until then
    std::vector<std::thread> reader_threads_;
    std::uint64_t next_client_id_ = 1;

    mutable std::mutex sched_mutex_;
    FairScheduler scheduler_;

    std::unique_ptr<ThreadPool> pool_;
    TuneCache tune_cache_;
    ArtifactCache artifact_cache_;

    DaemonStats stats_;
    std::atomic<std::int64_t> completed_since_snapshot_{0};

    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;

    std::mutex hook_mutex_;
    std::function<void(const std::string &)> compile_hook_;
};

} // namespace cimmlc

#endif // CIMMLC_DAEMON_SERVER_H
