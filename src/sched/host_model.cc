#include "sched/host_model.h"

#include "common/strutil.h"

namespace cimmlc {

Status
HostModel::validate() const
{
    if (alu_ops_per_cycle <= 0.0)
        return invalidArgument(
            "host model alu_ops_per_cycle must be > 0");
    if (link_bits_per_cycle <= 0.0)
        return invalidArgument(
            "host model link_bits_per_cycle must be > 0");
    if (launch_overhead_cycles < 0.0)
        return invalidArgument(
            "host model launch_overhead_cycles must be >= 0");
    if (energy_pj_per_op < 0.0)
        return invalidArgument("host model energy_pj_per_op must be >= 0");
    return Status::ok();
}

std::string
HostModel::tag() const
{
    return strformat("alu%.17g|link%.17g|launch%.17g|pj%.17g",
                     alu_ops_per_cycle, link_bits_per_cycle,
                     launch_overhead_cycles, energy_pj_per_op);
}

std::string
HostModel::cacheTag() const
{
    static const std::string default_tag = HostModel{}.tag();
    const std::string rendered = tag();
    return rendered == default_tag ? std::string() : rendered;
}

double
hostComputeCycles(const HostModel &model, double alu_ops)
{
    if (alu_ops <= 0.0)
        return 0.0;
    return alu_ops / model.alu_ops_per_cycle;
}

double
hostTransferCycles(const HostModel &model, double bits)
{
    if (bits <= 0.0)
        return 0.0;
    return bits / model.link_bits_per_cycle;
}

} // namespace cimmlc
