#include "sched/vvm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "sched/cost_model.h"

namespace cimmlc {

VvmDecision
chooseVvmSpread(std::int64_t rows_used, std::int64_t parallel_row,
                std::int64_t used_xbs_per_core,
                std::int64_t xbs_per_core)
{
    VvmDecision decision;
    decision.row_groups = ceilDiv(std::max<std::int64_t>(rows_used, 1),
                                  std::max<std::int64_t>(parallel_row, 1));
    if (decision.row_groups <= 1) {
        decision.remapped_groups = decision.row_groups;
        return decision; // already single-cycle
    }
    // Spare arrays in the cores this operator occupies: each used
    // crossbar can borrow floor(spare/used) peers, plus itself.
    const std::int64_t used = std::max<std::int64_t>(used_xbs_per_core, 1);
    const std::int64_t spare = std::max<std::int64_t>(
        xbs_per_core - used, 0);
    const std::int64_t max_spread = 1 + spare / used;
    decision.spread = std::min(decision.row_groups, max_spread);
    decision.remapped_groups =
        ceilDiv(decision.row_groups, decision.spread);
    return decision;
}

Status
runVvmOptimization(const Graph &graph, const CimArchitecture &arch,
                   const ScheduleOptions &options, CgResult *cg)
{
    if (!options.vvm_remap)
        return Status::ok();

    // Pass 1: per-node remap decisions and cycle updates. The remap
    // borrows crossbars that remained free after MVM duplication (which
    // is often bandwidth-capped) — spreading row groups adds no operand
    // traffic, since the spread lanes share the same window broadcast.
    for (NodeCost &cost : cg->costs) {
        if (!cost.is_cim)
            continue;
        CgDecision &decision = cg->decisions.at(cost.node);

        // Spare arrays inside the cores this operator owns.
        const std::int64_t allocated_xbs = decision.cg_duplication *
                                           decision.cores_per_replica *
                                           arch.core.xbNumber();
        const std::int64_t used_xbs =
            decision.duplication * cost.grid.physicalCrossbars();
        // Rows used by the fullest crossbar of the tiling.
        const std::int64_t rows_used =
            cost.grid.tiles_r > 1 ? cost.grid.rows_per_tile
                                  : cost.grid.rows_last_tile;
        VvmDecision vvm = chooseVvmSpread(
            rows_used, arch.xbar.parallel_row, used_xbs, allocated_xbs);

        // When spare arrays cannot cover the full spread, consider
        // trading replicas for spread: half as many copies, each
        // remapped over twice the arrays, keeps throughput (D x
        // 1/groups invariant) while shrinking per-window latency — the
        // Figure 16(e) WLM walkthrough, where four XBM replicas become
        // two remapped ones. Ceiling effects can break the invariance,
        // so the trade only commits when it does not slow the stage.
        if (vvm.remapped_groups > 1 && decision.duplication >= 2) {
            const std::int64_t trade =
                std::min(decision.duplication, vvm.remapped_groups);
            const std::int64_t traded_spread = vvm.spread * trade;
            const std::int64_t traded_dup =
                ceilDiv(decision.duplication, trade);
            const NodeCost with_trade = computeNodeCost(
                graph, cost.node, arch, traded_spread,
                options.binding);
            const NodeCost without_trade = computeNodeCost(
                graph, cost.node, arch, vvm.spread,
                options.binding);
            const double rate_with =
                with_trade.cycles_per_window /
                static_cast<double>(traded_dup);
            const double rate_without =
                without_trade.cycles_per_window /
                static_cast<double>(decision.duplication);
            if (rate_with <= rate_without * (1.0 + 1e-9)) {
                vvm.spread = traded_spread;
                vvm.remapped_groups =
                    ceilDiv(vvm.row_groups, vvm.spread);
                decision.duplication = traded_dup;
            }
        }

        // Even spread 1 benefits from row *balancing* across the
        // operator's own vertical tiles (Figure 14 remaps within the
        // allocated arrays first).
        // Recompute per-window cycles with the remap applied.
        const NodeCost remapped =
            computeNodeCost(graph, cost.node, arch, vvm.spread,
                            options.binding);
        cost.cycles_per_window = remapped.cycles_per_window;
        cost.base_latency = remapped.base_latency;
        decision.effective_cpw =
            bandwidthBoundCyclesPerWindow(cost, arch);
        decision.stage_latency =
            static_cast<double>(cost.windows) * decision.effective_cpw *
            static_cast<double>(cost.chip_splits) /
            static_cast<double>(
                std::max<std::int64_t>(1, decision.duplication));
        // Record the spread for codegen and the performance simulator.
        cg->vvm_spreads[cost.node] = vvm.spread;
    }

    // Pass 2: refresh segment latencies (same pipeline model as the MVM
    // level; the remap additionally sharpens fills by letting adjacent
    // operators overlap at row-group granularity, Figure 14(d)).
    for (Segment &segment : cg->segments) {
        std::vector<StageCost> stages;
        for (NodeId node : segment.nodes) {
            auto it = std::find_if(cg->costs.begin(), cg->costs.end(),
                                   [&](const NodeCost &c) {
                                       return c.node == node;
                                   });
            CIMMLC_CHECK(it != cg->costs.end());
            if (!it->is_stage)
                continue;
            const CgDecision &decision = cg->decisions.at(node);
            StageCost stage;
            stage.node = node;
            stage.stage_latency = decision.stage_latency;
            stage.fill_fraction = it->fill_fraction;
            if (it->is_cim) {
                const auto vit = cg->vvm_spreads.find(node);
                const double spread =
                    vit != cg->vvm_spreads.end()
                        ? static_cast<double>(vit->second)
                        : 1.0;
                if (options.mvm_pipeline && it->grid.vxbCount() > 1) {
                    stage.fill_fraction /=
                        static_cast<double>(it->grid.tiles_c);
                }
                if (it->fill_fraction < 1.0)
                    stage.fill_fraction /= spread;
                else
                    stage.fill_fraction = 1.0;
            }
            stages.push_back(stage);
        }
        const SegmentLatency latency = segmentLatency(stages);
        segment.bottleneck_cycles = latency.bottleneck;
        segment.latency_cycles = options.cg_pipeline ? latency.pipelined
                                                     : latency.serial;
    }
    return Status::ok();
}

} // namespace cimmlc
