#include "sched/autotune.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <limits>

#include "common/strutil.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "compiler/session.h"
#include "search/dominance.h"
#include "sched/multi_level.h"

namespace cimmlc {

namespace {

// Stable bit layout of the candidate encoding. The encoding doubles as
// the tie-break key, so the layout is part of the tuner's deterministic
// output contract — append bits, never reorder them.
constexpr std::uint32_t kCgDuplicationBit = 1u << 0;
constexpr std::uint32_t kCgPipelineBit = 1u << 1;
constexpr std::uint32_t kMvmDuplicationBit = 1u << 2;
constexpr std::uint32_t kMvmPipelineBit = 1u << 3;
constexpr std::uint32_t kVvmRemapBit = 1u << 4;
constexpr std::uint32_t kBitsToCrossbarsBit = 1u << 5;
// Bits 6-7: segmentation granularity, an index into kSegmentCaps.
constexpr std::uint32_t kSegmentCapShift = 6;
constexpr std::uint32_t kSegmentCapMask = 3u << kSegmentCapShift;
constexpr std::int64_t kSegmentCaps[] = {0, 1, 2, 4};
// Bit 8: dual-mode (resident) arrays. Bit 9: hybrid host offload.
constexpr std::uint32_t kDualModeBit = 1u << 8;
constexpr std::uint32_t kHostOffloadBit = 1u << 9;
constexpr std::uint32_t kEncodingSpace = 1u << 10;

// The public pruning masks (autotune.h) must track this bit layout.
static_assert(kTuneKnobMask
              == (kCgDuplicationBit | kCgPipelineBit | kMvmDuplicationBit
                  | kMvmPipelineBit | kVvmRemapBit));
static_assert(kTuneContextMask
              == (kBitsToCrossbarsBit | kSegmentCapMask | kDualModeBit
                  | kHostOffloadBit));

/** The option clamp scheduleGraph applies for @p mode. */
ScheduleOptions
clampToMode(ScheduleOptions options, ComputeMode mode)
{
    if (mode == ComputeMode::kCM) {
        options.mvm_duplication = false;
        options.mvm_pipeline = false;
        options.vvm_remap = false;
    } else if (mode == ComputeMode::kXBM) {
        options.vvm_remap = false;
    }
    return options;
}

/** Bits a candidate may not set under @p mode. */
std::uint32_t
forbiddenBits(ComputeMode mode)
{
    switch (mode) {
      case ComputeMode::kCM:
        return kMvmDuplicationBit | kMvmPipelineBit | kVvmRemapBit;
      case ComputeMode::kXBM:
        return kVvmRemapBit;
      case ComputeMode::kWLM:
        return 0;
    }
    return 0;
}

/**
 * Order-sensitive FNV-1a over the graph structure (node kinds, arity,
 * output dims in topo order), so graphs that agree on name and
 * aggregate totals but differ structurally never share a memo entry.
 */
std::uint64_t
graphStructureHash(const Graph &graph)
{
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 1099511628211ull;
    };
    for (NodeId id : graph.topoOrder()) {
        const Node &node = graph.node(id);
        mix(static_cast<std::uint64_t>(node.kind));
        mix(node.inputs.size());
        for (std::int64_t dim : graph.tensor(node.output).dims)
            mix(static_cast<std::uint64_t>(dim));
    }
    return hash;
}

void
evaluateCandidate(const Graph &graph, const CimArchitecture &arch,
                  const HostModel &host_model, TuneCandidate &candidate,
                  TuneCache *cache,
                  std::atomic<std::int64_t> &cache_hits)
{
    std::string key;
    if (cache != nullptr) {
        key = TuneCache::fingerprint(graph, arch, candidate.encoding, {},
                                     candidate.options.host_offload
                                         ? host_model.cacheTag()
                                         : "");
        if (auto hit = cache->lookup(key)) {
            candidate.status = hit->status;
            candidate.latency_cycles = hit->latency_cycles;
            candidate.energy_pj = hit->energy_pj;
            candidate.edp = hit->edp;
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }

    // Each candidate is priced through the shared staged pipeline
    // (schedule + perf only — no codegen), so the tuner holds no
    // private copy of the compile flow.
    auto fill = [&]() -> Status {
        CompileRequest request;
        request.graph = &graph;
        request.arch_ref = &arch;
        request.options = candidate.options;
        request.host_model = host_model;
        request.threads = 1;
        request.outputs.flow = false;
        request.stop_after = CompileStage::kPerf;
        CompilerSession session(std::move(request));
        CIMMLC_ASSIGN_OR_RETURN(const CompileArtifacts artifacts,
                                session.run());
        candidate.latency_cycles = artifacts.perf->latency_cycles;
        candidate.energy_pj = artifacts.perf->energy.total();
        candidate.edp = candidate.latency_cycles * candidate.energy_pj;
        return Status::ok();
    };
    candidate.status = fill();

    if (cache != nullptr) {
        cache->insert(key,
                      TuneCache::Entry{candidate.status,
                                       candidate.latency_cycles,
                                       candidate.energy_pj,
                                       candidate.edp});
    }
}

} // namespace

const char *
tuneObjectiveName(TuneObjective objective)
{
    switch (objective) {
      case TuneObjective::kLatency: return "latency";
      case TuneObjective::kEnergy: return "energy";
      case TuneObjective::kEdp: return "edp";
    }
    return "?";
}

StatusOr<TuneObjective>
parseTuneObjective(const std::string &text)
{
    const std::string key = toLower(trim(text));
    if (key == "latency")
        return TuneObjective::kLatency;
    if (key == "energy")
        return TuneObjective::kEnergy;
    if (key == "edp")
        return TuneObjective::kEdp;
    return invalidArgument("unknown tuning objective '" + text
                           + "' (expected latency | energy | edp)");
}

double
TuneCandidate::objectiveValue(TuneObjective objective) const
{
    switch (objective) {
      case TuneObjective::kLatency: return latency_cycles;
      case TuneObjective::kEnergy: return energy_pj;
      case TuneObjective::kEdp: return edp;
    }
    return std::numeric_limits<double>::infinity();
}

double
TuneResult::speedupOverDefault() const
{
    if (!defaults().status.isOk() || !best().status.isOk())
        return 1.0;
    const double base = defaults().objectiveValue(objective);
    const double tuned = best().objectiveValue(objective);
    return tuned > 0.0 ? base / tuned : 1.0;
}

std::string
TuneResult::table() const
{
    TextTable table({"config", "latency (cyc)", "energy (pJ)", "EDP",
                     "note"});
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const TuneCandidate &candidate = candidates[i];
        std::string note;
        if (i == best_index)
            note = i == default_index ? "<- best (default)" : "<- best";
        else if (i == default_index)
            note = "default";
        if (candidate.status.isOk()) {
            table.addRow({candidate.options.toString(),
                          strformat("%.6g", candidate.latency_cycles),
                          strformat("%.6g", candidate.energy_pj),
                          strformat("%.6g", candidate.edp), note});
        } else {
            table.addRow({candidate.options.toString(), "-", "-", "-",
                          candidate.status.toString()});
        }
    }
    return table.render();
}

std::string
TuneResult::summary() const
{
    std::string line = strformat(
        "autotune[%s]: %zu candidates, best=%s (%s %.6g, %.3gx better "
        "than default)",
        tuneObjectiveName(objective), candidates.size(),
        best().options.toString().c_str(), tuneObjectiveName(objective),
        best().objectiveValue(objective), speedupOverDefault());
    if (budget.enabled()) {
        // Only the evaluation cap: the proxy-fidelity fields of the
        // budget are consumed by the explorer's halving rungs, never
        // by the tuner, so rendering them here would claim proxy
        // evaluations that did not happen.
        line += strformat(
            ", evaluated %lld (pruned %lld, budget evals<=%lld)",
            static_cast<long long>(evaluated_count),
            static_cast<long long>(pruned_count),
            static_cast<long long>(budget.max_full_evals));
    }
    return line;
}

std::optional<TuneCache::Entry>
TuneCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    ++hits_;
    return it->second;
}

void
TuneCache::insert(const std::string &key, const Entry &entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // First insert wins; concurrent evaluators of the same key computed
    // identical values, so the choice does not matter.
    entries_.emplace(key, entry);
}

std::int64_t
TuneCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
TuneCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::string
TuneCache::fingerprint(const Graph &graph, const CimArchitecture &arch,
                       std::uint32_t encoding,
                       const SearchFidelity &fidelity,
                       const std::string &host_tag)
{
    // Identity of the evaluation inputs: graph structure summarized by
    // name + size + work, architecture by every cost-relevant parameter.
    // A DSE sweep shares one cache across many arch candidates, so any
    // parameter the cost model reads must appear here — including the
    // NoC topologies, buffer sizes, and explicit cost matrices the
    // first version of this key omitted.
    std::uint64_t noc_cost_hash = 1469598103934665603ull;
    auto mix_doubles = [&noc_cost_hash](const std::vector<double> &values) {
        for (double value : values) {
            std::uint64_t bits = 0;
            static_assert(sizeof(bits) == sizeof(value));
            std::memcpy(&bits, &value, sizeof(bits));
            noc_cost_hash ^= bits;
            noc_cost_hash *= 1099511628211ull;
        }
        // Separator between the two matrices so ({x}, {}) != ({}, {x}).
        noc_cost_hash ^= 0x9e3779b97f4a7c15ull;
        noc_cost_hash *= 1099511628211ull;
    };
    mix_doubles(arch.chip.core_noc_cost);
    mix_doubles(arch.core.xb_noc_cost);
    // A non-default host model changes how offload-enabled encodings
    // price; the default model's tag is empty so pre-offload
    // fingerprints — and persisted caches — remain valid verbatim.
    const std::string host_part =
        host_tag.empty() ? std::string() : "|hm" + host_tag;
    return strformat(
        "%s|n%zu|w%lld|m%lld|h%016llx||%s|%s|c%lldx%lld|x%lldx%lld|"
        "r%lldx%lld|pr%lld|dac%d|adc%d|ct%d|cb%d|wb%d|ab%d|"
        "bw%.17g/%.17g/%.17g|alu%.17g/%.17g|noc%d/%d|xbw%.17g|"
        "l0s%.17g|l1s%.17g|nch%016llx||o%u%s",
        graph.name().c_str(), graph.nodeCount(),
        static_cast<long long>(graph.totalWeights()),
        static_cast<long long>(graph.totalMacs()),
        static_cast<unsigned long long>(graphStructureHash(graph)),
        arch.name.c_str(),
        computeModeName(arch.mode),
        static_cast<long long>(arch.chip.core_rows),
        static_cast<long long>(arch.chip.core_cols),
        static_cast<long long>(arch.core.xb_rows),
        static_cast<long long>(arch.core.xb_cols),
        static_cast<long long>(arch.xbar.rows),
        static_cast<long long>(arch.xbar.cols),
        static_cast<long long>(arch.xbar.parallel_row),
        arch.xbar.dac_bits, arch.xbar.adc_bits,
        static_cast<int>(arch.xbar.cell_type), arch.xbar.cell_bits,
        arch.weight_bits, arch.activation_bits,
        arch.chip.core_noc_bandwidth, arch.chip.l0_bandwidth,
        arch.core.l1_bandwidth, arch.chip.alu_ops_per_cycle,
        arch.core.alu_ops_per_cycle,
        static_cast<int>(arch.chip.core_noc),
        static_cast<int>(arch.core.xb_noc), arch.core.xb_noc_bandwidth,
        arch.chip.l0_size_kib, arch.core.l1_size_kib,
        static_cast<unsigned long long>(noc_cost_hash), encoding,
        // Proxy evaluations (halving rungs force opt=none and/or price
        // a workload prefix) are tagged so a warm cache entry from a
        // rung can never alias — and never poison — a full evaluation
        // of the same point.
        fidelity.tag().c_str()) + host_part;
}

ConfigValue
TuneCache::toConfig() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ConfigValue::Array rows;
    for (const auto &[key, entry] : entries_) {
        ConfigValue::Object row;
        row["key"] = ConfigValue::makeString(key);
        row["code"] = ConfigValue::makeNumber(
            static_cast<double>(static_cast<int>(entry.status.code())));
        if (!entry.status.isOk())
            row["message"] =
                ConfigValue::makeString(entry.status.message());
        row["latency_cycles"] =
            ConfigValue::makeNumber(entry.latency_cycles);
        row["energy_pj"] = ConfigValue::makeNumber(entry.energy_pj);
        row["edp"] = ConfigValue::makeNumber(entry.edp);
        rows.push_back(ConfigValue::makeObject(std::move(row)));
    }
    ConfigValue::Object doc;
    doc["schema"] = ConfigValue::makeString("cimmlc.tunecache.v1");
    doc["entries"] = ConfigValue::makeArray(std::move(rows));
    return ConfigValue::makeObject(std::move(doc));
}

Status
TuneCache::loadFromConfig(const ConfigValue &doc)
{
    // Parse into a scratch map first: a document that fails halfway
    // must leave the cache cold, not half-populated with stale entries.
    std::map<std::string, Entry> loaded;
    auto fail = [this](Status status) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.clear();
        }
        return status;
    };
    if (!doc.isObject())
        return fail(parseError("tune cache must be a kvjson object"));
    const std::string schema = doc.getStringOr("schema", "");
    if (schema != "cimmlc.tunecache.v1")
        return fail(parseError("tune cache has schema '" + schema
                               + "', expected 'cimmlc.tunecache.v1' "
                                 "(stale file?)"));
    auto rows = doc.get("entries");
    if (!rows.isOk() || !rows.value().isArray())
        return fail(parseError("tune cache 'entries' must be an array"));
    for (const ConfigValue &row : rows.value().asArray()) {
        if (!row.isObject() || !row.has("key")
            || !row.get("key").value().isString())
            return fail(
                parseError("tune cache entry is missing its key"));
        const std::string key = row.get("key").value().asString();
        const std::int64_t code = row.getIntOr("code", -1);
        if (code < 0
            || code > static_cast<std::int64_t>(StatusCode::kParseError))
            return fail(parseError(strformat(
                "tune cache entry has unknown status code %lld",
                static_cast<long long>(code))));
        Entry entry;
        if (code != 0) {
            entry.status = Status(static_cast<StatusCode>(code),
                                  row.getStringOr("message", ""));
        }
        // Presence alone is not enough: a wrong-typed metric would
        // silently load as 0.0 and poison every warm run with a
        // zero-latency "best" point.
        auto metric = [&row](const char *field, double *out) {
            if (!row.has(field))
                return false;
            const ConfigValue value = row.get(field).value();
            if (!value.isNumber())
                return false;
            *out = value.asNumber();
            return true;
        };
        if (!metric("latency_cycles", &entry.latency_cycles)
            || !metric("energy_pj", &entry.energy_pj)
            || !metric("edp", &entry.edp))
            return fail(parseError("tune cache entry for '" + key
                                   + "' is truncated or mistyped"));
        loaded[key] = entry;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    entries_ = std::move(loaded);
    return Status::ok();
}

Status
TuneCache::saveToFile(const std::string &path) const
{
    // Atomic temp-file + rename: the daemon snapshots a live cache
    // while other processes may be loading the same path, and a torn
    // file would degrade every reader to a cold cache.
    return saveConfigFileAtomic(path, toConfig());
}

Status
TuneCache::loadFromFile(const std::string &path)
{
    auto doc = loadConfigFile(path);
    if (!doc.isOk()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.clear();
        }
        return doc.status().withContext("tune cache");
    }
    return loadFromConfig(doc.value());
}

std::uint32_t
AutoTuner::encodeOptions(const ScheduleOptions &options)
{
    std::uint32_t encoding = 0;
    if (options.cg_duplication)
        encoding |= kCgDuplicationBit;
    if (options.cg_pipeline)
        encoding |= kCgPipelineBit;
    if (options.mvm_duplication)
        encoding |= kMvmDuplicationBit;
    if (options.mvm_pipeline)
        encoding |= kMvmPipelineBit;
    if (options.vvm_remap)
        encoding |= kVvmRemapBit;
    if (options.binding.bit_binding == XbarDim::kXB)
        encoding |= kBitsToCrossbarsBit;
    // Nearest lattice point from below; exact for the tuner's own
    // candidates, which only use kSegmentCaps values.
    std::uint32_t cap_index = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        if (options.segment_max_nodes >= kSegmentCaps[i])
            cap_index = i;
    }
    if (options.segment_max_nodes <= 0)
        cap_index = 0;
    encoding |= cap_index << kSegmentCapShift;
    if (options.dual_mode)
        encoding |= kDualModeBit;
    if (options.host_offload)
        encoding |= kHostOffloadBit;
    return encoding;
}

ScheduleOptions
AutoTuner::decodeOptions(std::uint32_t encoding)
{
    ScheduleOptions options;
    options.cg_duplication = (encoding & kCgDuplicationBit) != 0;
    options.cg_pipeline = (encoding & kCgPipelineBit) != 0;
    options.mvm_duplication = (encoding & kMvmDuplicationBit) != 0;
    options.mvm_pipeline = (encoding & kMvmPipelineBit) != 0;
    options.vvm_remap = (encoding & kVvmRemapBit) != 0;
    options.binding = (encoding & kBitsToCrossbarsBit) != 0
                          ? DimensionBinding::bitsToCrossbars()
                          : DimensionBinding::bitsToColumns();
    options.segment_max_nodes =
        kSegmentCaps[(encoding & kSegmentCapMask) >> kSegmentCapShift];
    options.dual_mode = (encoding & kDualModeBit) != 0;
    options.host_offload = (encoding & kHostOffloadBit) != 0;
    return options;
}

std::vector<ScheduleOptions>
AutoTuner::enumerateCandidates(ComputeMode mode)
{
    const std::uint32_t forbidden = forbiddenBits(mode);
    std::vector<ScheduleOptions> candidates;
    for (std::uint32_t encoding = 0; encoding < kEncodingSpace;
         ++encoding) {
        if ((encoding & forbidden) != 0)
            continue;
        candidates.push_back(decodeOptions(encoding));
    }
    return candidates;
}

StatusOr<TuneResult>
AutoTuner::tune(const Graph &graph, const CimArchitecture &arch) const
{
    TuneResult result;
    result.objective = config_.objective;

    const std::uint32_t default_encoding =
        encodeOptions(clampToMode(ScheduleOptions{}, arch.mode));
    for (const ScheduleOptions &options :
         enumerateCandidates(arch.mode)) {
        TuneCandidate candidate;
        candidate.encoding = encodeOptions(options);
        candidate.options = options;
        if (candidate.encoding == default_encoding)
            result.default_index = result.candidates.size();
        result.candidates.push_back(candidate);
    }

    std::atomic<std::int64_t> cache_hits{0};
    result.budget = config_.budget;
    if (!config_.budget.enabled()) {
        // Exhaustive reference path, byte-identical to the pre-budget
        // tuner; the differential suite compares the budgeted engine
        // against it.
        if (config_.threads == 1) {
            for (TuneCandidate &candidate : result.candidates)
                evaluateCandidate(graph, arch, config_.host_model,
                                  candidate, config_.cache, cache_hits);
        } else {
            ThreadPool pool(config_.threads);
            for (TuneCandidate &candidate : result.candidates) {
                pool.submit(
                    [this, &graph, &arch, &candidate, &cache_hits] {
                        evaluateCandidate(graph, arch,
                                          config_.host_model, candidate,
                                          config_.cache, cache_hits);
                    });
            }
            pool.wait();
        }
        result.evaluated_count =
            static_cast<std::int64_t>(result.candidates.size());
    } else {
        // Budgeted path: deterministic waves by ascending enabled-knob
        // count (then encoding — candidates are already in encoding
        // order). Prune decisions for a wave read only completed
        // waves, so the evaluated set — and with it every byte of the
        // report — is independent of thread count. Candidates in one
        // wave never relate in the knob-subset order (a proper subset
        // has strictly fewer knobs), so intra-wave parallelism cannot
        // change any decision.
        std::map<int, std::vector<std::size_t>> waves;
        for (std::size_t i = 0; i < result.candidates.size(); ++i) {
            const std::uint32_t knobs =
                result.candidates[i].encoding & kTuneKnobMask;
            waves[std::popcount(knobs)].push_back(i);
        }
        DominancePruner pruner(
            KnobSubsetOrder(kTuneKnobMask, kTuneContextMask));
        const std::int64_t cap = config_.budget.max_full_evals;
        std::int64_t evaluated = 0;
        // One budget slot stays reserved for the default configuration
        // (the speedup-over-default baseline of every report) until its
        // wave schedules it, so the cap is never overrun.
        bool default_pending = true;
        std::optional<ThreadPool> pool;
        if (config_.threads != 1)
            pool.emplace(config_.threads);
        for (auto &[knob_count, wave] : waves) {
            (void)knob_count;
            std::vector<std::size_t> to_eval;
            for (std::size_t index : wave) {
                TuneCandidate &candidate = result.candidates[index];
                const bool is_default =
                    candidate.encoding == default_encoding;
                if (is_default) {
                    default_pending = false;
                } else {
                    if (auto culprit =
                            pruner.shouldPrune(candidate.encoding)) {
                        candidate.pruned = true;
                        candidate.status = failedPrecondition(strformat(
                            "pruned: knob subset 0x%02x already "
                            "regressed every objective",
                            *culprit));
                        continue;
                    }
                    if (evaluated
                            + static_cast<std::int64_t>(to_eval.size())
                            + (default_pending ? 1 : 0)
                        >= cap) {
                        candidate.pruned = true;
                        candidate.status = failedPrecondition(strformat(
                            "pruned: search budget (%lld evaluations) "
                            "exhausted",
                            static_cast<long long>(cap)));
                        continue;
                    }
                }
                to_eval.push_back(index);
            }
            if (pool.has_value()) {
                for (std::size_t index : to_eval) {
                    TuneCandidate &candidate = result.candidates[index];
                    pool->submit(
                        [this, &graph, &arch, &candidate, &cache_hits] {
                            evaluateCandidate(graph, arch,
                                              config_.host_model,
                                              candidate, config_.cache,
                                              cache_hits);
                        });
                }
                pool->wait();
            } else {
                for (std::size_t index : to_eval)
                    evaluateCandidate(graph, arch, config_.host_model,
                                      result.candidates[index],
                                      config_.cache, cache_hits);
            }
            evaluated += static_cast<std::int64_t>(to_eval.size());
            for (std::size_t index : to_eval) {
                const TuneCandidate &candidate = result.candidates[index];
                pruner.record(candidate.encoding,
                              MetricPoint{candidate.latency_cycles,
                                          candidate.energy_pj},
                              candidate.status.isOk());
            }
        }
        result.evaluated_count = evaluated;
        result.pruned_count =
            static_cast<std::int64_t>(result.candidates.size())
            - evaluated;
    }
    result.cache_hits = cache_hits.load();

    // Objective minimum with stable tie-breaking: candidates are in
    // ascending encoding order; ties on the objective fall back to EDP
    // (so e.g. an energy-tied field still picks the fastest config) and
    // then to the lowest encoding. Only strictly better keys move the
    // choice, so the winner is independent of evaluation timing.
    bool found = false;
    double best_value = std::numeric_limits<double>::infinity();
    double best_edp = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const TuneCandidate &candidate = result.candidates[i];
        if (!candidate.status.isOk())
            continue;
        const double value =
            candidate.objectiveValue(config_.objective);
        if (!found || value < best_value
            || (value == best_value && candidate.edp < best_edp)) {
            found = true;
            best_value = value;
            best_edp = candidate.edp;
            result.best_index = i;
        }
    }
    if (!found)
        return result.candidates.front().status.withContext(
            "autotune: no feasible candidate for '" + graph.name()
            + "' on '" + arch.name + "'");
    return result;
}

} // namespace cimmlc
