/**
 * @file
 * CG-grained optimization (Section 3.3.2, Figure 9): resource-adaptive
 * compute-graph segmentation plus intra-segment dynamic-balancing
 * pipelined duplication.
 *
 * Duplication search: for the pipelined objective (minimize the bottleneck
 * stage under the core budget) we binary-search the bottleneck latency T
 * and set D_i = ceil(L_i / T) — the exact optimizer for this min-max
 * allocation, standing in for the paper's dynamic program. For the
 * serial objective (minimize sum of stage latencies) we use marginal-gain
 * allocation, optimal because L/D is convex in D.
 */
#ifndef CIMMLC_SCHED_CG_H
#define CIMMLC_SCHED_CG_H

#include <map>
#include <vector>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/cost_model.h"
#include "sched/host_model.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Per-node outcome of CG-grained optimization. */
struct CgDecision {
    std::int64_t duplication = 1;
    //! the CG-level value, preserved when the MVM level refines it
    std::int64_t cg_duplication = 1;
    std::int64_t cores_per_replica = 0;
    std::int64_t chip_splits = 1;
    std::int64_t segment = 0;
    std::int64_t core_base = -1;
    double stage_latency = 0.0;
    //! per-window cycles after the bandwidth bound
    double effective_cpw = 0.0;
    //! dual-mode: the node's segment keeps its crossbars programmed
    bool resident = false;
};

/** Output of the CG level, consumed by the MVM and VVM levels. */
struct CgResult {
    std::vector<NodeCost> costs; //!< topo order, all nodes
    std::map<NodeId, CgDecision> decisions;
    std::vector<Segment> segments;
    //! VVM remap spread per node (filled by the VVM level; 1 = no remap)
    std::map<NodeId, std::int64_t> vvm_spreads;
    //! hybrid offload: digital runs moved to the host (host_offload)
    std::vector<HostRegion> host_regions;
};

/**
 * Runs CG-grained optimization of @p graph on @p arch.
 *
 * With options.host_offload, maximal runs of consecutive digital nodes
 * are priced against @p host before segmentation and moved to the host
 * when that is faster (their NodeCost::alu_cycles then carries the host
 * time, so segmentation and pipelining price them transparently). With
 * options.dual_mode, segments are greedily pinned resident after the
 * refinement loop while total latency strictly improves.
 */
StatusOr<CgResult> runCgOptimization(const Graph &graph,
                                     const CimArchitecture &arch,
                                     const ScheduleOptions &options,
                                     const HostModel &host = HostModel{});

/**
 * Duplication allocator for one segment (exposed for unit tests).
 * @param latencies   base stage latencies L_i
 * @param core_costs  cores per replica c_i (0 = not duplicable)
 * @param budget      total cores available
 * @param pipelined   min-max objective when true, min-sum otherwise
 * @param max_dup     per-stage duplication caps (0 = uncapped)
 * @param floors      per-stage streaming floors; duplication never
 *                    pushes a stage below its floor (cycles)
 * @returns duplication factors D_i >= 1
 */
std::vector<std::int64_t>
allocateDuplication(const std::vector<double> &latencies,
                    const std::vector<std::int64_t> &core_costs,
                    std::int64_t budget, bool pipelined,
                    const std::vector<std::int64_t> &max_dup = {},
                    const std::vector<double> &floors = {});

} // namespace cimmlc

#endif // CIMMLC_SCHED_CG_H
