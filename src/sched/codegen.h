/**
 * @file
 * Meta-operator code generation (Sections 3.3.2-3.3.4 "Meta-operator Flow
 * Generation", Figure 16).
 *
 * Lowers a Schedule to a MopProgram for the architecture's computing
 * mode:
 *  - CM : cim.writecore init + parallel cim.readcore per replica
 *  - XBM: cim.writexb init + per-window patch movs and parallel
 *         cim.readxb per weight tile
 *  - WLM: cim.writerow init (with VVM remapping applied) + parallel
 *         cim.readrow per row group
 * plus DCOM (requant, relu, pools, ...) and DMOV glue.
 *
 * Two emission styles:
 *  - unrolled: every window explicit; executable on the functional
 *    simulator bit-for-bit (used for verification on small nets);
 *  - compressed: one representative window block wrapped in repeat
 *    blocks — compact, printable, costed, but not executable (the
 *    paper's "256 similar code segments" note).
 */
#ifndef CIMMLC_SCHED_CODEGEN_H
#define CIMMLC_SCHED_CODEGEN_H

#include <cstdint>
#include <map>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "mop/program.h"
#include "sched/schedule.h"
#include "tensor/quantize.h"

namespace cimmlc {

/** Code-generation knobs. */
struct CodegenOptions {
    //! emit every window explicitly (required for functional simulation)
    bool unroll = true;
    //! abort when an unrolled flow would exceed this many ops (0 = off)
    std::int64_t max_ops = 5'000'000;
    //! per-node requantization shifts (from reference calibration)
    std::map<NodeId, RequantParams> shifts;
};

/** The generated flow plus the buffer layout the simulator needs. */
struct CodegenResult {
    MopProgram program;
    //! L0 element offset of every tensor (int32 elements)
    std::map<TensorId, std::int64_t> tensor_offsets;
    //! L0 elements used in total
    std::int64_t l0_elements = 0;
    //! L1 elements used per core
    std::int64_t l1_elements = 0;
    //! whether the flow is executable (unrolled)
    bool executable = true;
};

/**
 * Generates the meta-operator flow for @p schedule.
 *
 * @pre graph weights are installed when options.unroll is set (write ops
 * carry real payloads).
 */
StatusOr<CodegenResult> generateProgram(const Graph &graph,
                                        const CimArchitecture &arch,
                                        const Schedule &schedule,
                                        const CodegenOptions &options = {});

} // namespace cimmlc

#endif // CIMMLC_SCHED_CODEGEN_H
