#include "sched/cg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"

namespace cimmlc {

namespace {

/**
 * CG-level duplication cap from the shared chip NoC / L0 port: replicas
 * made at this level live on different cores, so each adds its own
 * operand stream ("CIM-MLC will update the duplication number to keep
 * the data transfer amount within the NoC and buffer capability").
 * MVM-grained intra-core replicas are exempt: adjacent windows inside
 * one core share the sliding-window halo already resident in L1.
 */
std::int64_t
bandwidthDupCap(const NodeCost &cost, const CimArchitecture &arch)
{
    const double limit_bw = chipBandwidthLimit(arch);
    if (limit_bw <= 0.0 || cost.transfer_bits_per_window <= 0.0 ||
        cost.cycles_per_window <= 0.0) {
        return 0; // uncapped
    }
    const double per_replica_bw =
        cost.transfer_bits_per_window / cost.cycles_per_window;
    const std::int64_t cap = static_cast<std::int64_t>(
        std::floor(limit_bw / per_replica_bw));
    return std::max<std::int64_t>(1, cap);
}

/** Feasibility probe for the min-max binary search. */
bool
bottleneckFeasible(const std::vector<double> &latencies,
                   const std::vector<std::int64_t> &core_costs,
                   const std::vector<std::int64_t> &max_dup,
                   const std::vector<double> &floors,
                   std::int64_t budget, double target)
{
    std::int64_t used = 0;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
        if (core_costs[i] <= 0)
            continue; // fixed stage
        // A stage never duplicates below its streaming floor: replicas
        // beyond that would starve on the shared bandwidth.
        const double stage_target =
            floors.empty() ? target : std::max(target, floors[i]);
        std::int64_t need = static_cast<std::int64_t>(
            std::ceil(latencies[i] / stage_target));
        need = std::max<std::int64_t>(need, 1);
        if (!max_dup.empty() && max_dup[i] > 0)
            need = std::min(need, max_dup[i]);
        used += need * core_costs[i];
        if (used > budget)
            return false;
    }
    return used <= budget;
}

} // namespace

std::vector<std::int64_t>
allocateDuplication(const std::vector<double> &latencies,
                    const std::vector<std::int64_t> &core_costs,
                    std::int64_t budget, bool pipelined,
                    const std::vector<std::int64_t> &max_dup,
                    const std::vector<double> &floors)
{
    const std::size_t n = latencies.size();
    CIMMLC_CHECK_EQ(core_costs.size(), n);
    std::vector<std::int64_t> dup(n, 1);

    std::int64_t min_cores = 0;
    for (std::size_t i = 0; i < n; ++i)
        min_cores += std::max<std::int64_t>(core_costs[i], 0);
    if (min_cores > budget) {
        // Caller segmented wrongly; fall back to no duplication.
        return dup;
    }

    auto cap_of = [&](std::size_t i) -> std::int64_t {
        if (max_dup.empty() || max_dup[i] <= 0)
            return std::numeric_limits<std::int64_t>::max();
        return max_dup[i];
    };
    auto floor_of = [&](std::size_t i) -> double {
        return floors.empty() ? 0.0 : floors[i];
    };
    // Duplication that reaches the streaming floor; more is wasted.
    auto floor_cap = [&](std::size_t i) -> std::int64_t {
        const double floor = floor_of(i);
        if (floor <= 0.0)
            return cap_of(i);
        const std::int64_t by_floor = static_cast<std::int64_t>(
            std::ceil(latencies[i] / floor));
        return std::min(cap_of(i), std::max<std::int64_t>(by_floor, 1));
    };

    if (pipelined) {
        // Binary-search the achievable bottleneck latency.
        double high = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            high = std::max(high, latencies[i]);
        if (high <= 0.0)
            return dup;
        double low = high * static_cast<double>(min_cores) /
                     std::max<double>(1.0, static_cast<double>(budget));
        low = std::max(low, 1e-6);
        // Fixed (non-duplicable) stages bound the bottleneck from below.
        for (std::size_t i = 0; i < n; ++i) {
            if (core_costs[i] <= 0)
                low = std::max(low, latencies[i]);
        }
        for (int iter = 0; iter < 64 && high - low > 1e-6 * high;
             ++iter) {
            const double mid = 0.5 * (low + high);
            if (bottleneckFeasible(latencies, core_costs, max_dup,
                                   floors, budget, mid)) {
                high = mid;
            } else {
                low = mid;
            }
        }
        std::int64_t used = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (core_costs[i] <= 0)
                continue;
            const double stage_target = std::max(high, floor_of(i));
            std::int64_t d = static_cast<std::int64_t>(
                std::ceil(latencies[i] / stage_target));
            d = clampInt(d, 1, floor_cap(i));
            dup[i] = d;
            used += d * core_costs[i];
        }
        // Spend leftover cores on whatever stage is now the bottleneck.
        bool improved = true;
        while (improved) {
            improved = false;
            double worst = -1.0;
            std::size_t worst_i = n;
            for (std::size_t i = 0; i < n; ++i) {
                if (core_costs[i] <= 0 || dup[i] >= floor_cap(i))
                    continue;
                const double s =
                    latencies[i] / static_cast<double>(dup[i]);
                if (s > worst) {
                    worst = s;
                    worst_i = i;
                }
            }
            if (worst_i < n && used + core_costs[worst_i] <= budget) {
                ++dup[worst_i];
                used += core_costs[worst_i];
                improved = true;
            }
        }
        return dup;
    }

    // Serial objective: marginal-gain-per-core greedy (optimal for the
    // convex L/D curve).
    struct Candidate {
        double gain_per_core;
        std::size_t index;
        bool operator<(const Candidate &other) const
        {
            return gain_per_core < other.gain_per_core;
        }
    };
    auto gain = [&](std::size_t i) {
        const double d = static_cast<double>(dup[i]);
        const double floor = floor_of(i);
        const double now = std::max(latencies[i] / d, floor);
        const double next = std::max(latencies[i] / (d + 1.0), floor);
        return (now - next) / static_cast<double>(core_costs[i]);
    };
    std::priority_queue<Candidate> heap;
    std::int64_t used = min_cores;
    for (std::size_t i = 0; i < n; ++i) {
        if (core_costs[i] > 0 && dup[i] < floor_cap(i))
            heap.push({gain(i), i});
    }
    while (!heap.empty()) {
        const Candidate top = heap.top();
        heap.pop();
        const std::size_t i = top.index;
        if (top.gain_per_core <= 0.0)
            continue; // at the floor: more replicas bring nothing
        if (used + core_costs[i] > budget)
            continue; // this stage no longer fits; others may
        // Stale entry guard: recompute and requeue when outdated.
        const double current = gain(i);
        if (current < top.gain_per_core * (1.0 - 1e-12)) {
            heap.push({current, i});
            continue;
        }
        ++dup[i];
        used += core_costs[i];
        if (dup[i] < floor_cap(i))
            heap.push({gain(i), i});
    }
    return dup;
}

namespace {

/** Working record for one segment during construction. */
struct SegmentBuild {
    std::vector<std::size_t> members; //!< indices into costs vector
    std::int64_t min_cores = 0;
};

/** Stage latencies/costs for the allocator, honouring options. */
struct SegmentPlan {
    std::vector<std::size_t> members;
    std::vector<double> latencies;
    std::vector<std::int64_t> core_costs;
    std::vector<std::int64_t> caps;
    std::vector<std::int64_t> dup;
    SegmentLatency latency;
};

SegmentPlan
planSegment(const std::vector<NodeCost> &costs,
            const std::vector<std::size_t> &members,
            const CimArchitecture &arch, const ScheduleOptions &options)
{
    SegmentPlan plan;
    plan.members = members;
    for (std::size_t idx : members) {
        const NodeCost &cost = costs[idx];
        const double effective_cpw =
            bandwidthBoundCyclesPerWindow(cost, arch);
        const double latency =
            cost.is_cim ? static_cast<double>(cost.windows) *
                              effective_cpw *
                              static_cast<double>(cost.chip_splits)
                        : cost.alu_cycles;
        plan.latencies.push_back(latency);
        plan.core_costs.push_back(cost.is_cim ? cost.cores_per_replica
                                              : 0);
        std::int64_t cap =
            cost.is_cim ? std::max<std::int64_t>(cost.windows, 1) : 1;
        const std::int64_t bw_cap = bandwidthDupCap(cost, arch);
        if (cost.is_cim && bw_cap > 0)
            cap = std::min(cap, bw_cap);
        plan.caps.push_back(cap);
    }

    auto evaluate = [&](const std::vector<std::int64_t> &dup) {
        std::vector<StageCost> stages;
        for (std::size_t i = 0; i < members.size(); ++i) {
            const NodeCost &cost = costs[members[i]];
            if (!cost.is_stage)
                continue;
            StageCost stage;
            stage.node = cost.node;
            stage.stage_latency =
                plan.latencies[i] / static_cast<double>(dup[i]);
            stage.fill_fraction = cost.fill_fraction;
            stages.push_back(stage);
        }
        return segmentLatency(stages);
    };

    if (options.cg_duplication) {
        plan.dup = allocateDuplication(plan.latencies, plan.core_costs,
                                       arch.chip.coreNumber(),
                                       options.cg_pipeline, plan.caps);
        plan.latency = evaluate(plan.dup);
        if (options.cg_pipeline) {
            // Fill-dominated graphs (chains of full-input stages such as
            // transformer blocks) behave serially even when pipelined;
            // the min-sum allocation can then beat the min-max one. Try
            // both and keep the better schedule.
            std::vector<std::int64_t> serial_dup = allocateDuplication(
                plan.latencies, plan.core_costs, arch.chip.coreNumber(),
                /*pipelined=*/false, plan.caps);
            const SegmentLatency serial_eval = evaluate(serial_dup);
            if (serial_eval.pipelined < plan.latency.pipelined) {
                plan.dup = std::move(serial_dup);
                plan.latency = serial_eval;
            }
        }
    } else {
        plan.dup.assign(members.size(), 1);
        plan.latency = evaluate(plan.dup);
    }
    if (!options.cg_pipeline)
        plan.latency.pipelined = plan.latency.serial;
    return plan;
}

} // namespace

StatusOr<CgResult>
runCgOptimization(const Graph &graph, const CimArchitecture &arch,
                  const ScheduleOptions &options)
{
    CIMMLC_RETURN_IF_ERROR(graph.validate());
    CIMMLC_RETURN_IF_ERROR(arch.validate());

    CgResult result;
    CIMMLC_RETURN_IF_ERROR(options.binding.validate());
    result.costs = computeGraphCosts(graph, arch, options.binding);
    const std::int64_t budget = arch.chip.coreNumber();

    // ----- resource-adaptive segmentation -------------------------------
    // Greedily grow maximal subgraphs in topological order; when a
    // segment closes, pop trailing nodes while that strictly improves the
    // segment's (pipelined or serial) latency — the Figure 9(b)
    // refinement loop.
    std::vector<SegmentBuild> builds;
    SegmentBuild current;
    for (std::size_t idx = 0; idx < result.costs.size(); ++idx) {
        const NodeCost &cost = result.costs[idx];
        const std::int64_t need =
            cost.is_cim ? cost.cores_per_replica : 0;
        if (need > budget) {
            return resourceExhausted(strformat(
                "operator '%s' exceeds the chip even after splitting",
                graph.node(cost.node).name.c_str()));
        }
        const bool over_budget = current.min_cores + need > budget;
        const bool over_cap =
            options.segment_max_nodes > 0 &&
            static_cast<std::int64_t>(current.members.size())
                >= options.segment_max_nodes;
        if ((over_budget || over_cap) && !current.members.empty()) {
            builds.push_back(std::move(current));
            current = SegmentBuild{};
        }
        current.members.push_back(idx);
        current.min_cores += need;
    }
    if (!current.members.empty())
        builds.push_back(std::move(current));

    // Refinement: pop trailing CIM nodes while latency improves and the
    // popped nodes still fit in a following segment.
    if (builds.size() > 1 && options.cg_duplication) {
        for (std::size_t s = 0; s + 1 < builds.size(); ++s) {
            while (builds[s].members.size() > 1) {
                SegmentPlan with_all =
                    planSegment(result.costs, builds[s].members, arch,
                                options);
                std::vector<std::size_t> fewer = builds[s].members;
                const std::size_t moved = fewer.back();
                fewer.pop_back();
                SegmentPlan without_last =
                    planSegment(result.costs, fewer, arch, options);
                const double before = options.cg_pipeline
                                          ? with_all.latency.pipelined
                                          : with_all.latency.serial;
                const double after = options.cg_pipeline
                                         ? without_last.latency.pipelined
                                         : without_last.latency.serial;
                // Moving a node to the next segment adds its solo cost
                // there; only pop when the improvement beats that and
                // the next segment can still hold the node.
                const NodeCost &moved_cost = result.costs[moved];
                const double moved_solo =
                    moved_cost.is_cim
                        ? moved_cost.base_latency
                        : moved_cost.alu_cycles;
                const std::int64_t moved_cores =
                    moved_cost.is_cim ? moved_cost.cores_per_replica : 0;
                if (builds[s + 1].min_cores + moved_cores > budget)
                    break;
                if (before - after > moved_solo) {
                    builds[s].members.pop_back();
                    builds[s].min_cores -=
                        moved_cost.is_cim ? moved_cost.cores_per_replica
                                          : 0;
                    builds[s + 1].members.insert(
                        builds[s + 1].members.begin(), moved);
                    builds[s + 1].min_cores +=
                        moved_cost.is_cim ? moved_cost.cores_per_replica
                                          : 0;
                } else {
                    break;
                }
            }
        }
    }

    // ----- per-segment duplication + assignment -------------------------
    for (std::size_t s = 0; s < builds.size(); ++s) {
        SegmentPlan plan =
            planSegment(result.costs, builds[s].members, arch, options);

        Segment segment;
        std::int64_t next_core = 0;
        for (std::size_t i = 0; i < plan.members.size(); ++i) {
            const NodeCost &cost = result.costs[plan.members[i]];
            CgDecision decision;
            decision.duplication = plan.dup[i];
            decision.cg_duplication = plan.dup[i];
            decision.cores_per_replica =
                cost.is_cim ? cost.cores_per_replica : 0;
            decision.chip_splits = cost.chip_splits;
            decision.segment = static_cast<std::int64_t>(s);
            decision.effective_cpw =
                cost.is_cim ? bandwidthBoundCyclesPerWindow(cost, arch)
                            : 0.0;
            decision.stage_latency =
                plan.latencies[i] / static_cast<double>(plan.dup[i]);
            if (cost.is_cim) {
                decision.core_base = next_core;
                next_core +=
                    decision.duplication * decision.cores_per_replica;
            }
            result.decisions[cost.node] = decision;
            segment.nodes.push_back(cost.node);
        }
        segment.cores_used = next_core;
        segment.bottleneck_cycles = plan.latency.bottleneck;
        segment.latency_cycles = options.cg_pipeline
                                     ? plan.latency.pipelined
                                     : plan.latency.serial;
        // Weight programming: the first segment loads at init time; every
        // later segment reprograms the arrays before running.
        segment.reload_cycles =
            s == 0 ? 0.0 : reloadCycles(arch, arch.xbar.rows);
        builds[s].min_cores = next_core;
        result.segments.push_back(std::move(segment));
    }

    return result;
}

} // namespace cimmlc
