#include "sched/cg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "graph/analysis.h"

namespace cimmlc {

namespace {

/**
 * CG-level duplication cap from the shared chip NoC / L0 port: replicas
 * made at this level live on different cores, so each adds its own
 * operand stream ("CIM-MLC will update the duplication number to keep
 * the data transfer amount within the NoC and buffer capability").
 * MVM-grained intra-core replicas are exempt: adjacent windows inside
 * one core share the sliding-window halo already resident in L1.
 */
std::int64_t
bandwidthDupCap(const NodeCost &cost, const CimArchitecture &arch)
{
    const double limit_bw = chipBandwidthLimit(arch);
    if (limit_bw <= 0.0 || cost.transfer_bits_per_window <= 0.0 ||
        cost.cycles_per_window <= 0.0) {
        return 0; // uncapped
    }
    const double per_replica_bw =
        cost.transfer_bits_per_window / cost.cycles_per_window;
    const std::int64_t cap = static_cast<std::int64_t>(
        std::floor(limit_bw / per_replica_bw));
    return std::max<std::int64_t>(1, cap);
}

/** Feasibility probe for the min-max binary search. */
bool
bottleneckFeasible(const std::vector<double> &latencies,
                   const std::vector<std::int64_t> &core_costs,
                   const std::vector<std::int64_t> &max_dup,
                   const std::vector<double> &floors,
                   std::int64_t budget, double target)
{
    std::int64_t used = 0;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
        if (core_costs[i] <= 0)
            continue; // fixed stage
        // A stage never duplicates below its streaming floor: replicas
        // beyond that would starve on the shared bandwidth.
        const double stage_target =
            floors.empty() ? target : std::max(target, floors[i]);
        std::int64_t need = static_cast<std::int64_t>(
            std::ceil(latencies[i] / stage_target));
        need = std::max<std::int64_t>(need, 1);
        if (!max_dup.empty() && max_dup[i] > 0)
            need = std::min(need, max_dup[i]);
        used += need * core_costs[i];
        if (used > budget)
            return false;
    }
    return used <= budget;
}

} // namespace

std::vector<std::int64_t>
allocateDuplication(const std::vector<double> &latencies,
                    const std::vector<std::int64_t> &core_costs,
                    std::int64_t budget, bool pipelined,
                    const std::vector<std::int64_t> &max_dup,
                    const std::vector<double> &floors)
{
    const std::size_t n = latencies.size();
    CIMMLC_CHECK_EQ(core_costs.size(), n);
    std::vector<std::int64_t> dup(n, 1);

    std::int64_t min_cores = 0;
    for (std::size_t i = 0; i < n; ++i)
        min_cores += std::max<std::int64_t>(core_costs[i], 0);
    if (min_cores > budget) {
        // Caller segmented wrongly; fall back to no duplication.
        return dup;
    }

    auto cap_of = [&](std::size_t i) -> std::int64_t {
        if (max_dup.empty() || max_dup[i] <= 0)
            return std::numeric_limits<std::int64_t>::max();
        return max_dup[i];
    };
    auto floor_of = [&](std::size_t i) -> double {
        return floors.empty() ? 0.0 : floors[i];
    };
    // Duplication that reaches the streaming floor; more is wasted.
    auto floor_cap = [&](std::size_t i) -> std::int64_t {
        const double floor = floor_of(i);
        if (floor <= 0.0)
            return cap_of(i);
        const std::int64_t by_floor = static_cast<std::int64_t>(
            std::ceil(latencies[i] / floor));
        return std::min(cap_of(i), std::max<std::int64_t>(by_floor, 1));
    };

    if (pipelined) {
        // Binary-search the achievable bottleneck latency.
        double high = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            high = std::max(high, latencies[i]);
        if (high <= 0.0)
            return dup;
        double low = high * static_cast<double>(min_cores) /
                     std::max<double>(1.0, static_cast<double>(budget));
        low = std::max(low, 1e-6);
        // Fixed (non-duplicable) stages bound the bottleneck from below.
        for (std::size_t i = 0; i < n; ++i) {
            if (core_costs[i] <= 0)
                low = std::max(low, latencies[i]);
        }
        for (int iter = 0; iter < 64 && high - low > 1e-6 * high;
             ++iter) {
            const double mid = 0.5 * (low + high);
            if (bottleneckFeasible(latencies, core_costs, max_dup,
                                   floors, budget, mid)) {
                high = mid;
            } else {
                low = mid;
            }
        }
        std::int64_t used = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (core_costs[i] <= 0)
                continue;
            const double stage_target = std::max(high, floor_of(i));
            std::int64_t d = static_cast<std::int64_t>(
                std::ceil(latencies[i] / stage_target));
            d = clampInt(d, 1, floor_cap(i));
            dup[i] = d;
            used += d * core_costs[i];
        }
        // Spend leftover cores on whatever stage is now the bottleneck.
        bool improved = true;
        while (improved) {
            improved = false;
            double worst = -1.0;
            std::size_t worst_i = n;
            for (std::size_t i = 0; i < n; ++i) {
                if (core_costs[i] <= 0 || dup[i] >= floor_cap(i))
                    continue;
                const double s =
                    latencies[i] / static_cast<double>(dup[i]);
                if (s > worst) {
                    worst = s;
                    worst_i = i;
                }
            }
            if (worst_i < n && used + core_costs[worst_i] <= budget) {
                ++dup[worst_i];
                used += core_costs[worst_i];
                improved = true;
            }
        }
        return dup;
    }

    // Serial objective: marginal-gain-per-core greedy (optimal for the
    // convex L/D curve).
    struct Candidate {
        double gain_per_core;
        std::size_t index;
        bool operator<(const Candidate &other) const
        {
            return gain_per_core < other.gain_per_core;
        }
    };
    auto gain = [&](std::size_t i) {
        const double d = static_cast<double>(dup[i]);
        const double floor = floor_of(i);
        const double now = std::max(latencies[i] / d, floor);
        const double next = std::max(latencies[i] / (d + 1.0), floor);
        return (now - next) / static_cast<double>(core_costs[i]);
    };
    std::priority_queue<Candidate> heap;
    std::int64_t used = min_cores;
    for (std::size_t i = 0; i < n; ++i) {
        if (core_costs[i] > 0 && dup[i] < floor_cap(i))
            heap.push({gain(i), i});
    }
    while (!heap.empty()) {
        const Candidate top = heap.top();
        heap.pop();
        const std::size_t i = top.index;
        if (top.gain_per_core <= 0.0)
            continue; // at the floor: more replicas bring nothing
        if (used + core_costs[i] > budget)
            continue; // this stage no longer fits; others may
        // Stale entry guard: recompute and requeue when outdated.
        const double current = gain(i);
        if (current < top.gain_per_core * (1.0 - 1e-12)) {
            heap.push({current, i});
            continue;
        }
        ++dup[i];
        used += core_costs[i];
        if (dup[i] < floor_cap(i))
            heap.push({gain(i), i});
    }
    return dup;
}

namespace {

/** Working record for one segment during construction. */
struct SegmentBuild {
    std::vector<std::size_t> members; //!< indices into costs vector
    std::int64_t min_cores = 0;
};

/** Stage latencies/costs for the allocator, honouring options. */
struct SegmentPlan {
    std::vector<std::size_t> members;
    std::vector<double> latencies;
    std::vector<std::int64_t> core_costs;
    std::vector<std::int64_t> caps;
    std::vector<std::int64_t> dup;
    SegmentLatency latency;
};

SegmentPlan
planSegment(const std::vector<NodeCost> &costs,
            const std::vector<std::size_t> &members,
            const CimArchitecture &arch, const ScheduleOptions &options,
            std::int64_t budget)
{
    SegmentPlan plan;
    plan.members = members;
    for (std::size_t idx : members) {
        const NodeCost &cost = costs[idx];
        const double effective_cpw =
            bandwidthBoundCyclesPerWindow(cost, arch);
        const double latency =
            cost.is_cim ? static_cast<double>(cost.windows) *
                              effective_cpw *
                              static_cast<double>(cost.chip_splits)
                        : cost.alu_cycles;
        plan.latencies.push_back(latency);
        plan.core_costs.push_back(cost.is_cim ? cost.cores_per_replica
                                              : 0);
        std::int64_t cap =
            cost.is_cim ? std::max<std::int64_t>(cost.windows, 1) : 1;
        const std::int64_t bw_cap = bandwidthDupCap(cost, arch);
        if (cost.is_cim && bw_cap > 0)
            cap = std::min(cap, bw_cap);
        plan.caps.push_back(cap);
    }

    auto evaluate = [&](const std::vector<std::int64_t> &dup) {
        std::vector<StageCost> stages;
        for (std::size_t i = 0; i < members.size(); ++i) {
            const NodeCost &cost = costs[members[i]];
            if (!cost.is_stage)
                continue;
            StageCost stage;
            stage.node = cost.node;
            stage.stage_latency =
                plan.latencies[i] / static_cast<double>(dup[i]);
            stage.fill_fraction = cost.fill_fraction;
            stages.push_back(stage);
        }
        return segmentLatency(stages);
    };

    if (options.cg_duplication) {
        plan.dup = allocateDuplication(plan.latencies, plan.core_costs,
                                       budget, options.cg_pipeline,
                                       plan.caps);
        plan.latency = evaluate(plan.dup);
        if (options.cg_pipeline) {
            // Fill-dominated graphs (chains of full-input stages such as
            // transformer blocks) behave serially even when pipelined;
            // the min-sum allocation can then beat the min-max one. Try
            // both and keep the better schedule.
            std::vector<std::int64_t> serial_dup = allocateDuplication(
                plan.latencies, plan.core_costs, budget,
                /*pipelined=*/false, plan.caps);
            const SegmentLatency serial_eval = evaluate(serial_dup);
            if (serial_eval.pipelined < plan.latency.pipelined) {
                plan.dup = std::move(serial_dup);
                plan.latency = serial_eval;
            }
        }
    } else {
        plan.dup.assign(members.size(), 1);
        plan.latency = evaluate(plan.dup);
    }
    if (!options.cg_pipeline)
        plan.latency.pipelined = plan.latency.serial;
    return plan;
}

/**
 * Hybrid host/CIM offload: prices every maximal run of consecutive
 * digital nodes against the host model and moves it to the host when
 * launch + boundary transfer + host compute beats the chip ALU time.
 * Offloaded nodes keep their pipeline-stage role — alu_cycles carries
 * the host time (the first node of a region also pays the launch and
 * the link transfer), so segmentation prices them transparently.
 */
std::vector<HostRegion>
offloadHostRegions(const Graph &graph, const CimArchitecture &arch,
                   const HostModel &host, std::vector<NodeCost> &costs)
{
    std::vector<HostRegion> regions;
    // Producers/consumers by cost index, for boundary accounting.
    std::map<TensorId, std::size_t> producer;
    std::map<TensorId, std::vector<std::size_t>> consumers;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        const Node &node = graph.node(costs[i].node);
        producer[node.output] = i;
        for (TensorId input : node.inputs)
            consumers[input].push_back(i);
    }
    const std::set<TensorId> graph_outputs(graph.outputs().begin(),
                                           graph.outputs().end());

    for (std::size_t begin = 0; begin < costs.size();) {
        if (costs[begin].is_cim) {
            ++begin;
            continue;
        }
        std::size_t end = begin;
        while (end < costs.size() && !costs[end].is_cim)
            ++end;
        const auto inside = [begin, end](std::size_t i) {
            return i >= begin && i < end;
        };

        double chip_cycles = 0.0;
        double host_compute = 0.0;
        double boundary_bits = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
            const Node &node = graph.node(costs[i].node);
            chip_cycles += costs[i].alu_cycles;
            host_compute += hostComputeCycles(
                host,
                static_cast<double>(aluOpCount(graph, costs[i].node)));
            for (TensorId input : node.inputs) {
                const auto pit = producer.find(input);
                if (pit != producer.end() && inside(pit->second))
                    continue; // produced inside the region
                boundary_bits +=
                    static_cast<double>(graph.tensor(input).numel()) *
                    static_cast<double>(arch.activation_bits);
            }
            bool escapes = graph_outputs.count(node.output) > 0;
            const auto cit = consumers.find(node.output);
            if (!escapes && cit != consumers.end()) {
                for (std::size_t user : cit->second)
                    escapes = escapes || !inside(user);
            }
            if (escapes) {
                boundary_bits +=
                    static_cast<double>(
                        graph.tensor(node.output).numel()) *
                    static_cast<double>(arch.activation_bits);
            }
        }

        const double transfer = hostTransferCycles(host, boundary_bits);
        const double host_cycles =
            host.launch_overhead_cycles + transfer + host_compute;
        if (chip_cycles > 0.0 && host_cycles < chip_cycles) {
            HostRegion region;
            region.host_cycles = host_cycles;
            region.chip_cycles = chip_cycles;
            region.transfer_bits = boundary_bits;
            for (std::size_t i = begin; i < end; ++i) {
                NodeCost &cost = costs[i];
                region.nodes.push_back(cost.node);
                cost.on_host = true;
                cost.alu_cycles = hostComputeCycles(
                    host, static_cast<double>(
                              aluOpCount(graph, cost.node)));
                if (i == begin) {
                    cost.alu_cycles +=
                        host.launch_overhead_cycles + transfer;
                }
                if (cost.alu_cycles > 0.0) {
                    cost.is_stage = true;
                    cost.base_latency = cost.alu_cycles;
                }
            }
            regions.push_back(std::move(region));
        }
        begin = end;
    }
    return regions;
}

} // namespace

StatusOr<CgResult>
runCgOptimization(const Graph &graph, const CimArchitecture &arch,
                  const ScheduleOptions &options, const HostModel &host)
{
    CIMMLC_RETURN_IF_ERROR(graph.validate());
    CIMMLC_RETURN_IF_ERROR(arch.validate());

    CgResult result;
    CIMMLC_RETURN_IF_ERROR(options.binding.validate());
    result.costs = computeGraphCosts(graph, arch, options.binding);
    if (options.host_offload) {
        CIMMLC_RETURN_IF_ERROR(host.validate());
        result.host_regions =
            offloadHostRegions(graph, arch, host, result.costs);
    }
    const std::int64_t budget = arch.chip.coreNumber();

    // ----- resource-adaptive segmentation -------------------------------
    // Greedily grow maximal subgraphs in topological order; when a
    // segment closes, pop trailing nodes while that strictly improves the
    // segment's (pipelined or serial) latency — the Figure 9(b)
    // refinement loop.
    std::vector<SegmentBuild> builds;
    SegmentBuild current;
    for (std::size_t idx = 0; idx < result.costs.size(); ++idx) {
        const NodeCost &cost = result.costs[idx];
        const std::int64_t need =
            cost.is_cim ? cost.cores_per_replica : 0;
        if (need > budget) {
            return resourceExhausted(strformat(
                "operator '%s' exceeds the chip even after splitting",
                graph.node(cost.node).name.c_str()));
        }
        const bool over_budget = current.min_cores + need > budget;
        const bool over_cap =
            options.segment_max_nodes > 0 &&
            static_cast<std::int64_t>(current.members.size())
                >= options.segment_max_nodes;
        if ((over_budget || over_cap) && !current.members.empty()) {
            builds.push_back(std::move(current));
            current = SegmentBuild{};
        }
        current.members.push_back(idx);
        current.min_cores += need;
    }
    if (!current.members.empty())
        builds.push_back(std::move(current));

    // Refinement: pop trailing CIM nodes while latency improves and the
    // popped nodes still fit in a following segment.
    if (builds.size() > 1 && options.cg_duplication) {
        for (std::size_t s = 0; s + 1 < builds.size(); ++s) {
            while (builds[s].members.size() > 1) {
                SegmentPlan with_all =
                    planSegment(result.costs, builds[s].members, arch,
                                options, budget);
                std::vector<std::size_t> fewer = builds[s].members;
                const std::size_t moved = fewer.back();
                fewer.pop_back();
                SegmentPlan without_last =
                    planSegment(result.costs, fewer, arch, options,
                                budget);
                const double before = options.cg_pipeline
                                          ? with_all.latency.pipelined
                                          : with_all.latency.serial;
                const double after = options.cg_pipeline
                                         ? without_last.latency.pipelined
                                         : without_last.latency.serial;
                // Moving a node to the next segment adds its solo cost
                // there; only pop when the improvement beats that and
                // the next segment can still hold the node.
                const NodeCost &moved_cost = result.costs[moved];
                const double moved_solo =
                    moved_cost.is_cim
                        ? moved_cost.base_latency
                        : moved_cost.alu_cycles;
                const std::int64_t moved_cores =
                    moved_cost.is_cim ? moved_cost.cores_per_replica : 0;
                if (builds[s + 1].min_cores + moved_cores > budget)
                    break;
                if (before - after > moved_solo) {
                    builds[s].members.pop_back();
                    builds[s].min_cores -=
                        moved_cost.is_cim ? moved_cost.cores_per_replica
                                          : 0;
                    builds[s + 1].members.insert(
                        builds[s + 1].members.begin(), moved);
                    builds[s + 1].min_cores +=
                        moved_cost.is_cim ? moved_cost.cores_per_replica
                                          : 0;
                } else {
                    break;
                }
            }
        }
    }

    // ----- dual-mode resident pinning ------------------------------------
    // "Be CIM or Be Memory": permanently claim a later segment's minimum
    // cores so its crossbars stay programmed across segment switches
    // (its per-inference reload disappears), at the price of a smaller
    // duplication budget for every other segment. Greedy: per round,
    // pin the one segment whose pinning most improves total latency;
    // stop when nothing strictly improves. Segment 0 never pays a
    // reload, so it is never a candidate.
    std::vector<bool> resident(builds.size(), false);
    std::int64_t claimed = 0;
    // Per-segment reload volume: a core's shared write drivers serialize
    // its own crossbars, so a segment whose replicas pack many crossbars
    // per core pays proportionally more to reprogram — pinning such a
    // segment removes real volume, not a flat constant.
    std::vector<double> seg_reload(builds.size(), 0.0);
    double max_reload = 0.0;
    for (std::size_t s = 0; s < builds.size(); ++s) {
        std::vector<const NodeCost *> members;
        members.reserve(builds[s].members.size());
        for (std::size_t idx : builds[s].members)
            members.push_back(&result.costs[idx]);
        seg_reload[s] = segmentReloadCycles(arch, members);
        max_reload = std::max(max_reload, seg_reload[s]);
    }
    if (options.dual_mode && builds.size() > 1 && max_reload > 0.0) {
        auto totalLatency = [&](const std::vector<bool> &res,
                                std::int64_t res_claimed) -> double {
            const std::int64_t remaining = budget - res_claimed;
            if (remaining <= 0)
                return std::numeric_limits<double>::infinity();
            double total = 0.0;
            for (std::size_t s = 0; s < builds.size(); ++s) {
                if (!res[s] && builds[s].min_cores > remaining)
                    return std::numeric_limits<double>::infinity();
                const std::int64_t seg_budget =
                    res[s] ? builds[s].min_cores : remaining;
                SegmentPlan plan =
                    planSegment(result.costs, builds[s].members, arch,
                                options, seg_budget);
                total += options.cg_pipeline ? plan.latency.pipelined
                                             : plan.latency.serial;
                if (s > 0 && !res[s])
                    total += seg_reload[s];
            }
            return total;
        };
        double best_total = totalLatency(resident, claimed);
        bool improved = true;
        while (improved) {
            improved = false;
            std::size_t best_s = builds.size();
            double best_candidate = best_total;
            for (std::size_t s = 1; s < builds.size(); ++s) {
                if (resident[s] || builds[s].min_cores <= 0)
                    continue;
                std::vector<bool> trial = resident;
                trial[s] = true;
                const double total = totalLatency(
                    trial, claimed + builds[s].min_cores);
                if (total < best_candidate) {
                    best_candidate = total;
                    best_s = s;
                }
            }
            if (best_s < builds.size()) {
                resident[best_s] = true;
                claimed += builds[best_s].min_cores;
                best_total = best_candidate;
                improved = true;
            }
        }
    }

    // ----- per-segment duplication + assignment -------------------------
    // Resident segments claim core ranges stacked at the top of the core
    // space (starting at `remaining`), so they never collide with the
    // per-segment ranges that non-resident segments reuse from core 0.
    const std::int64_t remaining = budget - claimed;
    std::int64_t resident_cursor = remaining;
    for (std::size_t s = 0; s < builds.size(); ++s) {
        const std::int64_t seg_budget =
            resident[s] ? builds[s].min_cores : remaining;
        SegmentPlan plan = planSegment(result.costs, builds[s].members,
                                       arch, options, seg_budget);

        Segment segment;
        segment.resident = resident[s];
        const std::int64_t core_origin =
            resident[s] ? resident_cursor : 0;
        std::int64_t next_core = 0;
        for (std::size_t i = 0; i < plan.members.size(); ++i) {
            const NodeCost &cost = result.costs[plan.members[i]];
            CgDecision decision;
            decision.duplication = plan.dup[i];
            decision.cg_duplication = plan.dup[i];
            decision.cores_per_replica =
                cost.is_cim ? cost.cores_per_replica : 0;
            decision.chip_splits = cost.chip_splits;
            decision.segment = static_cast<std::int64_t>(s);
            decision.resident = resident[s];
            decision.effective_cpw =
                cost.is_cim ? bandwidthBoundCyclesPerWindow(cost, arch)
                            : 0.0;
            decision.stage_latency =
                plan.latencies[i] / static_cast<double>(plan.dup[i]);
            if (cost.is_cim) {
                decision.core_base = core_origin + next_core;
                next_core +=
                    decision.duplication * decision.cores_per_replica;
            }
            result.decisions[cost.node] = decision;
            segment.nodes.push_back(cost.node);
        }
        if (resident[s])
            resident_cursor += next_core;
        segment.cores_used = next_core;
        segment.bottleneck_cycles = plan.latency.bottleneck;
        segment.latency_cycles = options.cg_pipeline
                                     ? plan.latency.pipelined
                                     : plan.latency.serial;
        // Weight programming: the first segment loads at init time,
        // resident segments program once at init and never again; every
        // other later segment reprograms the arrays before running.
        segment.reload_cycles =
            (s == 0 || resident[s]) ? 0.0 : seg_reload[s];
        builds[s].min_cores = next_core;
        result.segments.push_back(std::move(segment));
    }

    return result;
}

} // namespace cimmlc
