/**
 * @file
 * First-order analytic cost model shared by the scheduler and the
 * performance simulator.
 *
 * A CIM operator is characterized by:
 *   - `windows`  : MVM issues per inference (conv sliding windows, linear
 *                  row vectors) — the unit the paper pipelines (Fig. 12);
 *   - `cycles_per_window` : DAC bit-serial phases x serial row groups
 *                  (divided by the VVM remap spread when applied);
 *   - its VXB tiling, which sets cores/crossbars per replica.
 *
 * Pipeline latency of a segment follows the streaming-dataflow model:
 * fill time of each stage plus the bottleneck stage's full run. Stages
 * that need their whole input before starting (linear after conv,
 * dynamic matmul, global pooling) carry fill fraction 1 and effectively
 * serialize — which is what bounds the paper's pipeline-only speedups
 * to the 2.3-4.7x band (Figure 21(a)).
 */
#ifndef CIMMLC_SCHED_COST_MODEL_H
#define CIMMLC_SCHED_COST_MODEL_H

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "graph/graph.h"
#include "sched/mapping.h"
#include "sched/options.h"

namespace cimmlc {

/** Static cost facts about one node on one architecture. */
struct NodeCost {
    NodeId node = kInvalidNode;
    bool is_cim = false;
    bool is_stage = false; //!< participates in the pipeline as a stage

    std::int64_t windows = 0;
    double cycles_per_window = 0.0;
    double base_latency = 0.0; //!< windows * cycles_per_window (D = 1)

    VxbGrid grid;
    std::int64_t cores_per_replica = 0;
    std::int64_t chip_splits = 1;
    //! adjacent windows processed inside one core share the sliding-
    //! window halo resident in L1; intra-core replicas therefore cost
    //! roughly 1/halo_reuse of a cross-core replica's operand traffic
    //! (kernel width for conv, 1 for linear)
    std::int64_t halo_reuse = 1;

    double fill_fraction = 0.0; //!< 1.0 = needs full input (serializes)
    double alu_cycles = 0.0;    //!< digital stage latency
    //! bits crossing the chip NoC per window (input + output)
    double transfer_bits_per_window = 0.0;
    //! hybrid offload: this digital node was moved to the host and
    //! alu_cycles carries its share of the host region's time
    bool on_host = false;
};

/**
 * Computes the cost facts of @p node.
 *
 * @param vvm_spread 0 = naive row mapping (each vertical tile packs its
 *   rows densely, so the fullest crossbar serializes
 *   ceil(min(R, xb_rows)/parallel_row) groups). >= 1 = the VVM remap:
 *   all ceil(R/parallel_row) row groups are balanced across the
 *   operator's tiles_r vertical tiles times `vvm_spread` borrowed
 *   arrays, and groups on different arrays fire concurrently
 *   (Figure 14).
 */
NodeCost computeNodeCost(const Graph &graph, NodeId node,
                         const CimArchitecture &arch,
                         std::int64_t vvm_spread = 0,
                         const DimensionBinding &binding =
                             DimensionBinding::bitsToColumns());

/** Cost facts for every node, in topo order. */
std::vector<NodeCost>
computeGraphCosts(const Graph &graph, const CimArchitecture &arch,
                  const DimensionBinding &binding =
                      DimensionBinding::bitsToColumns());

/** One pipeline stage after duplication decisions. */
struct StageCost {
    NodeId node = kInvalidNode;
    double stage_latency = 0.0; //!< base_latency / duplication (or ALU)
    double fill_fraction = 0.0;
    //! streaming floor: cycles the shared bandwidth needs for this
    //! stage's operand traffic — duplication cannot go below it
    double floor = 0.0;
};

/** Per-stage streaming floor (windows x fresh input bits / chip BW). */
double stageFloorCycles(const NodeCost &cost,
                        const CimArchitecture &arch);

/** Latency of a segment executed as a pipeline / serially. */
struct SegmentLatency {
    double pipelined = 0.0;
    double serial = 0.0;
    double bottleneck = 0.0;
};

/**
 * @param stages            per-stage latencies after duplication
 * @param transfer_floor    roofline bound: cycles the shared chip
 *                          bandwidth needs to move the segment's operand
 *                          traffic; 0 when bandwidth is ideal. Pipelined
 *                          latency cannot beat this floor no matter how
 *                          many replicas exist — this is what keeps
 *                          duplication from scaling past the NoC/buffer
 *                          capability (Section 3.3.2).
 */
SegmentLatency segmentLatency(const std::vector<StageCost> &stages,
                              double transfer_floor = 0.0);

/** Shared chip bandwidth in bits/cycle; 0 = ideal. */
double chipBandwidthLimit(const CimArchitecture &arch);

/** Roofline floor: cycles to stream every member's operand traffic. */
double transferFloorCycles(const std::vector<const NodeCost *> &members,
                           const CimArchitecture &arch);

/**
 * Cycles to (re)program one segment's weights. Crossbars program in
 * parallel; rows within a crossbar are serial at the device write
 * latency (which is why ReRAM reloads hurt, Section 2.1).
 */
double reloadCycles(const CimArchitecture &arch,
                    std::int64_t max_rows_any_crossbar);

/**
 * Cycles to (re)program the weights of one segment whose members are
 * @p members. Cores program in parallel, but a core's write drivers
 * are shared across its crossbars, so a core holding k crossbars of
 * one replica programs them serially: the segment's reload is the
 * bottleneck core's crossbar count times reloadCycles(). Duplication
 * does not change the bound — replicas live on their own cores with
 * the same crossbars-per-core ratio. This per-core serialization is
 * what makes dual-mode residency a real trade: pinning a
 * many-crossbars-per-core segment removes volume, not just a flat
 * per-segment constant.
 */
double segmentReloadCycles(const CimArchitecture &arch,
                           const std::vector<const NodeCost *> &members);

/**
 * Effective per-window cycle count including a bandwidth bound: when the
 * chip NoC / L0 bandwidth cannot feed a window's operands within the
 * compute time, the transfer time dominates the stage.
 */
double bandwidthBoundCyclesPerWindow(const NodeCost &cost,
                                     const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_SCHED_COST_MODEL_H
