#include "sched/codegen.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "graph/analysis.h"

namespace cimmlc {

namespace {

/** Extracts the [R x C] crossbar-layout weight matrix of a CIM node. */
Int8Tensor
weightMatrixOf(const Graph &graph, const Node &node)
{
    const Int8Tensor &w = graph.weight(node.id);
    if (node.kind == OpKind::kConv2d) {
        const std::int64_t O = w.shape().dim(0);
        const std::int64_t K =
            w.shape().dim(1) * w.shape().dim(2) * w.shape().dim(3);
        Int8Tensor matrix(TensorShape({K, O}));
        for (std::int64_t o = 0; o < O; ++o) {
            for (std::int64_t k = 0; k < K; ++k)
                matrix.at2(k, o) = w[o * K + k];
        }
        return matrix;
    }
    // linear: weight [O, F] -> matrix [F, O]
    const std::int64_t O = w.shape().dim(0);
    const std::int64_t F = w.shape().dim(1);
    Int8Tensor matrix(TensorShape({F, O}));
    for (std::int64_t o = 0; o < O; ++o) {
        for (std::int64_t f = 0; f < F; ++f)
            matrix.at2(f, o) = w.at2(o, f);
    }
    return matrix;
}

/** Copies a sub-rectangle of @p matrix. */
Int8Tensor
sliceMatrix(const Int8Tensor &matrix, std::int64_t r0, std::int64_t r1,
            std::int64_t c0, std::int64_t c1)
{
    Int8Tensor out(TensorShape({r1 - r0, c1 - c0}));
    for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c)
            out.at2(r - r0, c - c0) = matrix.at2(r, c);
    }
    return out;
}

/** Crossbar placement of one weight tile replica. */
struct XbSlot {
    std::int64_t core = 0;
    std::int64_t xb = 0;
};

/**
 * Emits meta-operator flows for one schedule. All offsets are int32
 * elements; activations occupy one element each (the executable model
 * stores int8 values in int32 slots, see DESIGN.md).
 */
class Emitter
{
  public:
    Emitter(const Graph &graph, const CimArchitecture &arch,
            const Schedule &schedule, const CodegenOptions &options)
        : graph_(graph), arch_(arch), schedule_(schedule),
          options_(options),
          program_(graph.name(), computeModeName(arch.mode))
    {
    }

    StatusOr<CodegenResult> run();

  private:
    Status layoutMemory();
    Status estimateOpBudget();
    Status emitNode(const Node &node);
    Status emitCoreMode(const Node &node, const OperatorMapping &mapping);
    Status emitCrossbarMode(const Node &node,
                            const OperatorMapping &mapping);
    void emitDigital(const Node &node);

    RequantParams
    shiftFor(NodeId node) const
    {
        auto it = options_.shifts.find(node);
        if (it != options_.shifts.end())
            return it->second;
        return RequantParams{8};
    }

    std::int64_t
    offsetOf(TensorId tensor) const
    {
        return tensor_offsets_.at(tensor);
    }

    /** Effective replica count the allocated crossbars can hold. */
    std::int64_t
    effectiveReplicas(const OperatorMapping &mapping) const
    {
        const std::int64_t spread = mapping.vvm_spread;
        const std::int64_t slots_per_replica =
            mapping.grid.vxbCount() * spread;
        const std::int64_t capacity = mapping.duplication *
                                      mapping.cores_per_replica *
                                      arch_.core.xbNumber();
        const std::int64_t fit =
            slots_per_replica > 0 ? capacity / slots_per_replica : 1;
        return clampInt(std::min(mapping.mvm_duplication, fit), 1,
                        std::max<std::int64_t>(mapping.windows, 1));
    }

    /** Placement of tile t, spread lane j, replica rep. */
    XbSlot
    slotOf(const OperatorMapping &mapping, std::int64_t rep,
           std::int64_t tile, std::int64_t lane) const
    {
        const std::int64_t spread = mapping.vvm_spread;
        const std::int64_t per_replica =
            mapping.grid.vxbCount() * spread;
        const std::int64_t slot = rep * per_replica + tile * spread + lane;
        XbSlot out;
        out.core = mapping.core_base + slot / arch_.core.xbNumber();
        out.xb = slot % arch_.core.xbNumber();
        return out;
    }

    const Graph &graph_;
    const CimArchitecture &arch_;
    const Schedule &schedule_;
    const CodegenOptions &options_;

    MopProgram program_;
    std::map<TensorId, std::int64_t> tensor_offsets_;
    std::int64_t l0_top_ = 0;
    std::int64_t patch_base_ = 0; //!< L0 im2col patch scratch
    std::int64_t acc_base_ = 0;   //!< L0 int32 accumulator scratch
    std::int64_t quant_base_ = 0; //!< L0 post-requant staging
    std::int64_t l1_elements_ = 0;
    std::int64_t emitted_ops_ = 0;
};

Status
Emitter::layoutMemory()
{
    // Tensor regions in topo order; shape-only nodes alias their input.
    for (NodeId id : graph_.topoOrder()) {
        const Node &node = graph_.node(id);
        if (node.output == kInvalidTensor)
            continue;
        if (node.kind == OpKind::kFlatten ||
            node.kind == OpKind::kReshape ||
            node.kind == OpKind::kIdentity) {
            tensor_offsets_[node.output] =
                tensor_offsets_.at(node.inputs[0]);
            continue;
        }
        tensor_offsets_[node.output] = l0_top_;
        l0_top_ += graph_.tensor(node.output).numel();
    }

    // Scratch: im2col patch, int32 accumulators, requant staging.
    std::int64_t max_rows = 1;
    std::int64_t max_cols = 1;
    std::int64_t max_out = 1;
    for (const OperatorMapping &mapping : schedule_.ops) {
        if (!mapping.is_cim)
            continue;
        const auto matrix = weightMatrixShape(graph_, mapping.node);
        max_rows = std::max(max_rows, matrix->rows);
        max_cols = std::max(max_cols, matrix->cols);
        max_out = std::max(
            max_out, graph_.tensor(graph_.node(mapping.node).output)
                         .numel());
    }
    patch_base_ = l0_top_;
    l0_top_ += max_rows;
    acc_base_ = l0_top_;
    l0_top_ += std::max(max_cols, max_out); // CM accumulates full outputs
    quant_base_ = l0_top_;
    l0_top_ += max_cols;

    // L1 layout per core: one patch slice slot per crossbar.
    l1_elements_ = arch_.core.xbNumber() * arch_.xbar.rows;
    return Status::ok();
}

Status
Emitter::estimateOpBudget()
{
    if (!options_.unroll || options_.max_ops <= 0)
        return Status::ok();
    double estimate = 0.0;
    for (const OperatorMapping &mapping : schedule_.ops) {
        const Node &node = graph_.node(mapping.node);
        if (!mapping.is_cim) {
            estimate += 4.0;
            continue;
        }
        if (arch_.mode == ComputeMode::kCM) {
            estimate += static_cast<double>(mapping.mvm_duplication) + 4.0;
            continue;
        }
        const std::int64_t gathers =
            node.kind == OpKind::kConv2d
                ? graph_.tensor(node.inputs[0]).dims[1] + 2
                : 1;
        const std::int64_t reads = mapping.grid.vxbCount() *
                                   mapping.vvm_spread *
                                   (arch_.mode == ComputeMode::kWLM
                                        ? arch_.rowGroupsPerActivation()
                                        : 1);
        estimate += static_cast<double>(mapping.windows) *
                    static_cast<double>(gathers + 2 * reads + 5);
    }
    if (estimate > static_cast<double>(options_.max_ops)) {
        return resourceExhausted(strformat(
            "unrolled flow would need ~%.3g ops (limit %lld); use "
            "compressed emission for this network",
            estimate, static_cast<long long>(options_.max_ops)));
    }
    return Status::ok();
}

StatusOr<CodegenResult>
Emitter::run()
{
    CIMMLC_RETURN_IF_ERROR(layoutMemory());
    CIMMLC_RETURN_IF_ERROR(estimateOpBudget());

    for (NodeId id : graph_.topoOrder()) {
        const Node &node = graph_.node(id);
        if (node.kind == OpKind::kInput || isShapeOnly(node.kind))
            continue;
        CIMMLC_RETURN_IF_ERROR(emitNode(node));
    }

    CodegenResult result;
    result.program = std::move(program_);
    result.tensor_offsets = std::move(tensor_offsets_);
    result.l0_elements = l0_top_;
    result.l1_elements = l1_elements_;
    result.executable = options_.unroll;
    return result;
}

Status
Emitter::emitNode(const Node &node)
{
    if (!schedule_.hasMapping(node.id)) {
        return internalError("no mapping for node '" + node.name + "'");
    }
    const OperatorMapping &mapping = schedule_.mapping(node.id);
    if (mapping.is_cim) {
        if (options_.unroll && !graph_.hasWeight(node.id)) {
            return failedPrecondition(
                "node '" + node.name +
                "' has no weights; install them before unrolled codegen");
        }
        if (arch_.mode == ComputeMode::kCM)
            return emitCoreMode(node, mapping);
        return emitCrossbarMode(node, mapping);
    }
    emitDigital(node);
    return Status::ok();
}

Status
Emitter::emitCoreMode(const Node &node, const OperatorMapping &mapping)
{
    const TensorId in = node.inputs[0];
    const TensorId out = node.output;
    const auto &in_dims = graph_.tensor(in).dims;
    const auto &out_dims = graph_.tensor(out).dims;

    CoreOpParams params;
    params.is_conv = node.kind == OpKind::kConv2d;
    std::int64_t total_windows = 0;
    if (params.is_conv) {
        const auto &attrs = node.conv();
        params.in_channels = in_dims[1];
        params.in_h = in_dims[2];
        params.in_w = in_dims[3];
        params.out_channels = attrs.out_channels;
        params.kernel = attrs.kernel_h;
        params.stride = attrs.stride;
        params.padding = attrs.padding;
        total_windows = out_dims[2]; // split on output rows
    } else {
        params.in_features = in_dims.back();
        params.out_features = node.linear().out_features;
        total_windows = 1;
        for (std::size_t i = 0; i + 1 < in_dims.size(); ++i)
            total_windows *= in_dims[i];
    }

    const std::int64_t replicas =
        std::min<std::int64_t>(mapping.duplication, total_windows);

    // init: program each replica's core group.
    std::shared_ptr<const Int8Tensor> payload;
    if (options_.unroll) {
        payload =
            std::make_shared<Int8Tensor>(graph_.weight(node.id));
    }
    // Segment 0 and dual-mode resident segments program at init time;
    // other later segments reprogram inline — they time-multiplex the
    // same cores (the reload of Figure 9(b)). Resident segments own
    // their cores exclusively, so their one-time init write is safe.
    for (std::int64_t rep = 0; rep < replicas; ++rep) {
        MetaOp op;
        op.kind = MetaOpKind::kWriteCore;
        op.core = mapping.core_base + rep * mapping.cores_per_replica;
        op.core_params = params;
        op.payload = payload;
        op.origin = node.id;
        if (mapping.segment == 0 || mapping.resident) {
            program_.emitInit(std::move(op));
        } else {
            program_.emit(std::move(op));
        }
        ++emitted_ops_;
    }

    // compute: replicas split the window space, then requant.
    const std::int64_t chunk = ceilDiv(total_windows, replicas);
    std::vector<Stmt> block;
    for (std::int64_t rep = 0; rep < replicas; ++rep) {
        const std::int64_t w0 = rep * chunk;
        const std::int64_t w1 = std::min(total_windows, w0 + chunk);
        if (w0 >= w1)
            break;
        MetaOp op;
        op.kind = MetaOpKind::kReadCore;
        op.core = mapping.core_base + rep * mapping.cores_per_replica;
        op.core_params = params;
        op.core_params.win_begin = w0;
        op.core_params.win_end = w1;
        op.src = {MemSpace::kL0, 0, offsetOf(in)};
        op.dst = {MemSpace::kL0, 0, acc_base_};
        op.origin = node.id;
        block.push_back(Stmt::makeOp(std::move(op)));
        ++emitted_ops_;
    }
    program_.compute().push_back(Stmt::makeParallel(std::move(block)));

    MetaOp requant;
    requant.kind = MetaOpKind::kDcom;
    requant.func = dcomfunc::kRequant;
    requant.src = {MemSpace::kL0, 0, acc_base_};
    requant.dst = {MemSpace::kL0, 0, offsetOf(out)};
    requant.len = graph_.tensor(out).numel();
    requant.dcom_params.shift = shiftFor(node.id).shift;
    requant.origin = node.id;
    program_.emit(std::move(requant));
    ++emitted_ops_;
    return Status::ok();
}

Status
Emitter::emitCrossbarMode(const Node &node, const OperatorMapping &mapping)
{
    const bool wlm = arch_.mode == ComputeMode::kWLM;
    const TensorId in = node.inputs[0];
    const TensorId out = node.output;
    const auto &in_dims = graph_.tensor(in).dims;
    const auto &out_dims = graph_.tensor(out).dims;
    const auto matrix_shape = weightMatrixShape(graph_, node.id);
    const std::int64_t R = matrix_shape->rows;
    const std::int64_t C = matrix_shape->cols;
    const VxbGrid &grid = mapping.grid;
    const std::int64_t spread = wlm ? mapping.vvm_spread : 1;
    const std::int64_t parallel_row = arch_.xbar.parallel_row;
    const std::int64_t tiles = grid.vxbCount();

    // Crossbar slots this operator's allocation provides. When the
    // operator exceeds them (chip_splits > 1), tiles are processed in
    // serial chunks with inline reprogramming between them.
    const std::int64_t capacity =
        std::max<std::int64_t>(1, mapping.duplication *
                                      mapping.cores_per_replica *
                                      arch_.core.xbNumber());
    const bool chunked = tiles * spread > capacity;
    const std::int64_t chunk_tiles =
        chunked ? std::max<std::int64_t>(1, capacity / spread) : tiles;
    const std::int64_t replicas = chunked ? 1 : effectiveReplicas(mapping);

    Int8Tensor matrix;
    if (options_.unroll)
        matrix = weightMatrixOf(graph_, node);

    // Geometry of tile t (row-major over the VxbGrid).
    auto tile_geometry = [&](std::int64_t tile, std::int64_t *r0,
                             std::int64_t *r1, std::int64_t *c0,
                             std::int64_t *c1) {
        const std::int64_t tr = tile / grid.tiles_c;
        const std::int64_t tc = tile % grid.tiles_c;
        *r0 = tr * grid.rows_per_tile;
        *r1 = std::min(R, *r0 + grid.rows_per_tile);
        *c0 = tc * grid.logical_cols_per_tile;
        *c1 = std::min(C, *c0 + grid.logical_cols_per_tile);
    };
    // Placement of (replica, chunk-local tile, spread lane).
    auto slot_of = [&](std::int64_t rep, std::int64_t local_tile,
                       std::int64_t lane) {
        const std::int64_t per_replica = chunk_tiles * spread;
        const std::int64_t slot =
            rep * per_replica + local_tile * spread + lane;
        XbSlot out_slot;
        out_slot.core =
            mapping.core_base + slot / arch_.core.xbNumber();
        out_slot.xb = slot % arch_.core.xbNumber();
        return out_slot;
    };

    // Emits the programming ops for tiles [t0, t1) of one replica.
    auto emit_writes = [&](std::int64_t rep, std::int64_t t0,
                           std::int64_t t1, std::vector<Stmt> *target) {
        for (std::int64_t tile = t0; tile < t1; ++tile) {
            std::int64_t r0, r1, c0, c1;
            tile_geometry(tile, &r0, &r1, &c0, &c1);
            const std::int64_t local = tile - t0;
            if (!wlm || spread == 1) {
                const XbSlot slot = slot_of(rep, local, 0);
                MetaOp op;
                op.kind = wlm ? MetaOpKind::kWriteRow
                              : MetaOpKind::kWriteXb;
                op.core = slot.core;
                op.xb = slot.xb;
                op.row = 0;
                op.len = r1 - r0;
                if (options_.unroll) {
                    op.payload = std::make_shared<Int8Tensor>(
                        sliceMatrix(matrix, r0, r1, c0, c1));
                }
                op.origin = node.id;
                target->push_back(Stmt::makeOp(std::move(op)));
                ++emitted_ops_;
                continue;
            }
            // WLM remap: row group g of this tile goes to spread lane
            // g % spread at local row (g / spread) * parallel_row.
            const std::int64_t groups = ceilDiv(r1 - r0, parallel_row);
            for (std::int64_t g = 0; g < groups; ++g) {
                const std::int64_t lane = g % spread;
                const std::int64_t local_row =
                    (g / spread) * parallel_row;
                const std::int64_t gr0 = r0 + g * parallel_row;
                const std::int64_t gr1 = std::min(r1, gr0 + parallel_row);
                const XbSlot slot = slot_of(rep, local, lane);
                MetaOp op;
                op.kind = MetaOpKind::kWriteRow;
                op.core = slot.core;
                op.xb = slot.xb;
                op.row = local_row;
                op.len = gr1 - gr0;
                if (options_.unroll) {
                    op.payload = std::make_shared<Int8Tensor>(
                        sliceMatrix(matrix, gr0, gr1, c0, c1));
                }
                op.origin = node.id;
                target->push_back(Stmt::makeOp(std::move(op)));
                ++emitted_ops_;
            }
        }
    };

    // ----- init: program resident tiles (single-chunk operators) --------
    if (!chunked) {
        std::vector<Stmt> writes;
        for (std::int64_t rep = 0; rep < replicas; ++rep)
            emit_writes(rep, 0, tiles, &writes);
        // Segment 0 and dual-mode resident segments program at init
        // time; other later segments reprogram inline — they
        // time-multiplex the same cores (the reload of Figure 9(b)).
        auto &section =
            (mapping.segment == 0 || mapping.resident)
                ? program_.init()
                : program_.compute();
        for (Stmt &stmt : writes)
            section.push_back(std::move(stmt));
    }

    // ----- compute -------------------------------------------------------
    std::int64_t total_windows = 0;
    std::int64_t OH = 0, OW = 0, H = 0, W = 0, KH = 0, KW = 0;
    std::int64_t Cin = 0, stride = 1, padding = 0;
    if (node.kind == OpKind::kConv2d) {
        const auto &attrs = node.conv();
        Cin = in_dims[1];
        H = in_dims[2];
        W = in_dims[3];
        KH = attrs.kernel_h;
        KW = attrs.kernel_w;
        stride = attrs.stride;
        padding = attrs.padding;
        OH = out_dims[2];
        OW = out_dims[3];
        total_windows = OH * OW;
    } else {
        total_windows = 1;
        for (std::size_t i = 0; i + 1 < in_dims.size(); ++i)
            total_windows *= in_dims[i];
    }

    const std::int64_t emit_windows = options_.unroll ? total_windows : 1;
    const RequantParams shift = shiftFor(node.id);

    std::vector<Stmt> window_block_template;
    for (std::int64_t w = 0; w < emit_windows; ++w) {
        std::vector<Stmt> block;
        const std::int64_t rep = w % replicas;

        // 1. Gather the input vector for this window into L0 patch
        //    scratch (im2col row), or address the input row directly for
        //    linear layers.
        std::int64_t patch_off = patch_base_;
        if (node.kind == OpKind::kConv2d) {
            const std::int64_t oh = w / OW;
            const std::int64_t ow = w % OW;
            const std::int64_t ih0 = oh * stride - padding;
            const std::int64_t iw0 = ow * stride - padding;
            const bool clipped = ih0 < 0 || iw0 < 0 || ih0 + KH > H ||
                                 iw0 + KW > W;
            if (clipped) {
                MetaOp zero;
                zero.kind = MetaOpKind::kDcom;
                zero.func = dcomfunc::kZero;
                zero.dst = {MemSpace::kL0, 0, patch_base_};
                zero.len = R;
                zero.origin = node.id;
                block.push_back(Stmt::makeOp(std::move(zero)));
                ++emitted_ops_;
                for (std::int64_t c = 0; c < Cin; ++c) {
                    for (std::int64_t kh = 0; kh < KH; ++kh) {
                        const std::int64_t ih = ih0 + kh;
                        if (ih < 0 || ih >= H)
                            continue;
                        const std::int64_t kw_lo =
                            std::max<std::int64_t>(0, -iw0);
                        const std::int64_t kw_hi = std::min(KW, W - iw0);
                        if (kw_lo >= kw_hi)
                            continue;
                        MetaOp mov;
                        mov.kind = MetaOpKind::kMov;
                        mov.src = {MemSpace::kL0, 0,
                                   offsetOf(in) + (c * H + ih) * W + iw0 +
                                       kw_lo};
                        mov.dst = {MemSpace::kL0, 0,
                                   patch_base_ + (c * KH + kh) * KW +
                                       kw_lo};
                        mov.len = kw_hi - kw_lo;
                        mov.origin = node.id;
                        block.push_back(Stmt::makeOp(std::move(mov)));
                        ++emitted_ops_;
                    }
                }
            } else {
                // Interior window: one strided mov per channel.
                for (std::int64_t c = 0; c < Cin; ++c) {
                    MetaOp mov;
                    mov.kind = MetaOpKind::kMov;
                    mov.src = {MemSpace::kL0, 0,
                               offsetOf(in) + (c * H + ih0) * W + iw0};
                    mov.dst = {MemSpace::kL0, 0, patch_base_ + c * KH * KW};
                    mov.len = KW;
                    mov.count = KH;
                    mov.src_stride = W;
                    mov.dst_stride = KW;
                    mov.origin = node.id;
                    block.push_back(Stmt::makeOp(std::move(mov)));
                    ++emitted_ops_;
                }
            }
        } else {
            patch_off = offsetOf(in) + w * R;
        }

        // 2. Zero the output accumulator columns.
        MetaOp zero_acc;
        zero_acc.kind = MetaOpKind::kDcom;
        zero_acc.func = dcomfunc::kZero;
        zero_acc.dst = {MemSpace::kL0, 0, acc_base_};
        zero_acc.len = C;
        zero_acc.origin = node.id;
        block.push_back(Stmt::makeOp(std::move(zero_acc)));
        ++emitted_ops_;

        // 3. Chunk loop: program (when chunked), feed the cores' L1
        //    buffers, and activate — Figure 16(d)/(e): mov to L1 then
        //    parallel CIM reads.
        for (std::int64_t t0 = 0; t0 < tiles; t0 += chunk_tiles) {
            const std::int64_t t1 = std::min(tiles, t0 + chunk_tiles);
            if (chunked)
                emit_writes(rep, t0, t1, &block);
            std::vector<Stmt> reads;
            for (std::int64_t tile = t0; tile < t1; ++tile) {
                std::int64_t r0, r1, c0, c1;
                tile_geometry(tile, &r0, &r1, &c0, &c1);
                const std::int64_t local = tile - t0;
                for (std::int64_t lane = 0; lane < spread; ++lane) {
                    const XbSlot slot = slot_of(rep, local, lane);
                    const std::int64_t l1_off = slot.xb * arch_.xbar.rows;
                    MetaOp feed;
                    feed.kind = MetaOpKind::kMov;
                    feed.src = {MemSpace::kL0, 0, patch_off + r0};
                    feed.dst = {MemSpace::kL1, slot.core, l1_off};
                    feed.len = r1 - r0;
                    feed.origin = node.id;
                    block.push_back(Stmt::makeOp(std::move(feed)));
                    ++emitted_ops_;

                    if (!wlm) {
                        MetaOp read;
                        read.kind = MetaOpKind::kReadXb;
                        read.core = slot.core;
                        read.xb = slot.xb;
                        read.len = 1;
                        read.rows = r1 - r0;
                        read.cols = c1 - c0;
                        read.src = {MemSpace::kL1, slot.core, l1_off};
                        read.dst = {MemSpace::kL0, 0, acc_base_ + c0};
                        read.origin = node.id;
                        reads.push_back(Stmt::makeOp(std::move(read)));
                        ++emitted_ops_;
                        break; // spread == 1 in XBM
                    }
                    // WLM: one readrow per row group on this lane.
                    const std::int64_t groups =
                        ceilDiv(r1 - r0, parallel_row);
                    for (std::int64_t g = lane; g < groups; g += spread) {
                        const std::int64_t local_row =
                            (g / spread) * parallel_row;
                        const std::int64_t gr0 = g * parallel_row;
                        const std::int64_t gr1 =
                            std::min(r1 - r0, gr0 + parallel_row);
                        MetaOp read;
                        read.kind = MetaOpKind::kReadRow;
                        read.core = slot.core;
                        read.xb = slot.xb;
                        read.row = local_row;
                        read.len = gr1 - gr0;
                        read.cols = c1 - c0;
                        read.src = {MemSpace::kL1, slot.core,
                                    l1_off + gr0};
                        read.dst = {MemSpace::kL0, 0, acc_base_ + c0};
                        read.origin = node.id;
                        reads.push_back(Stmt::makeOp(std::move(read)));
                        ++emitted_ops_;
                    }
                }
            }
            block.push_back(Stmt::makeParallel(std::move(reads)));
        }

        // 4. Requantize and scatter into the output tensor layout.
        MetaOp requant;
        requant.kind = MetaOpKind::kDcom;
        requant.func = dcomfunc::kRequant;
        requant.src = {MemSpace::kL0, 0, acc_base_};
        requant.dst = {MemSpace::kL0, 0, quant_base_};
        requant.len = C;
        requant.dcom_params.shift = shift.shift;
        requant.origin = node.id;
        block.push_back(Stmt::makeOp(std::move(requant)));
        ++emitted_ops_;

        MetaOp scatter;
        scatter.kind = MetaOpKind::kMov;
        scatter.src = {MemSpace::kL0, 0, quant_base_};
        if (node.kind == OpKind::kConv2d) {
            // Output element (c, oh, ow): stride OH*OW between channels.
            scatter.dst = {MemSpace::kL0, 0, offsetOf(out) + w};
            scatter.len = 1;
            scatter.count = C;
            scatter.src_stride = 1;
            scatter.dst_stride = OH * OW;
        } else {
            scatter.dst = {MemSpace::kL0, 0, offsetOf(out) + w * C};
            scatter.len = C;
        }
        scatter.origin = node.id;
        block.push_back(Stmt::makeOp(std::move(scatter)));
        ++emitted_ops_;

        if (options_.unroll) {
            program_.compute().push_back(
                Stmt::makeRepeat(1, std::move(block)));
        } else {
            window_block_template = std::move(block);
        }
    }

    if (!options_.unroll) {
        program_.compute().push_back(Stmt::makeRepeat(
            total_windows, std::move(window_block_template)));
    }
    return Status::ok();
}

void
Emitter::emitDigital(const Node &node)
{
    const TensorId out = node.output;
    auto in_addr = [&](std::size_t i) {
        return BufAddr{MemSpace::kL0, 0, offsetOf(node.inputs[i])};
    };
    const BufAddr out_addr{MemSpace::kL0, 0, offsetOf(out)};
    const bool on_host = schedule_.hasMapping(node.id) &&
                         schedule_.mapping(node.id).on_host;

    MetaOp op;
    op.kind = MetaOpKind::kDcom;
    op.host = on_host;
    op.origin = node.id;
    op.dst = out_addr;
    op.len = graph_.tensor(node.inputs.empty() ? out : node.inputs[0])
                 .numel();

    switch (node.kind) {
      case OpKind::kRelu:
        op.func = dcomfunc::kRelu;
        op.src = in_addr(0);
        break;
      case OpKind::kGelu:
        op.func = dcomfunc::kGelu;
        op.src = in_addr(0);
        break;
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm: {
        op.func = node.kind == OpKind::kSoftmax ? dcomfunc::kSoftmax
                                                : dcomfunc::kLayerNorm;
        op.src = in_addr(0);
        const auto &dims = graph_.tensor(node.inputs[0]).dims;
        op.dcom_params.in_w = dims.back();
        break;
      }
      case OpKind::kAdd:
        op.func = dcomfunc::kAdd;
        op.src = in_addr(0);
        op.src2 = in_addr(1);
        break;
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d: {
        op.func = node.kind == OpKind::kMaxPool2d ? dcomfunc::kMaxPool
                                                  : dcomfunc::kAvgPool;
        op.src = in_addr(0);
        const auto &attrs = node.pool();
        const auto &dims = graph_.tensor(node.inputs[0]).dims;
        op.dcom_params.kernel = attrs.kernel;
        op.dcom_params.stride = attrs.stride;
        op.dcom_params.padding = attrs.padding;
        op.dcom_params.channels = dims[1];
        op.dcom_params.in_h = dims[2];
        op.dcom_params.in_w = dims[3];
        break;
      }
      case OpKind::kGlobalAvgPool: {
        op.func = dcomfunc::kGlobalAvgPool;
        op.src = in_addr(0);
        const auto &dims = graph_.tensor(node.inputs[0]).dims;
        op.dcom_params.channels = dims[1];
        op.dcom_params.in_h = dims[2];
        op.dcom_params.in_w = dims[3];
        break;
      }
      case OpKind::kMatMul: {
        op.func = dcomfunc::kMatMul;
        op.src = in_addr(0);
        op.src2 = in_addr(1);
        const auto &lhs = graph_.tensor(node.inputs[0]).dims;
        const auto &out_dims = graph_.tensor(out).dims;
        op.dcom_params.in_h = lhs[lhs.size() - 2]; // M
        op.dcom_params.in_w = lhs.back();          // K
        op.dcom_params.channels = out_dims.back(); // N
        op.dcom_params.kernel =
            node.matmul().transpose_rhs ? 1 : 0;
        op.dcom_params.shift = shiftFor(node.id).shift;
        break;
      }
      case OpKind::kConcat: {
        // Channel-wise concatenation: one mov per input.
        std::int64_t channel_base = 0;
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            const auto &dims = graph_.tensor(node.inputs[i]).dims;
            const std::int64_t piece = graph_.tensor(node.inputs[i])
                                           .numel();
            MetaOp mov;
            mov.kind = MetaOpKind::kMov;
            mov.host = on_host;
            mov.src = in_addr(i);
            mov.dst = {MemSpace::kL0, 0,
                       offsetOf(out) + channel_base};
            mov.len = piece;
            mov.origin = node.id;
            program_.emit(std::move(mov));
            ++emitted_ops_;
            channel_base += piece;
            (void)dims;
        }
        return;
      }
      default:
        return; // shape-only handled by layout aliasing
    }
    program_.emit(std::move(op));
    ++emitted_ops_;
}

} // namespace

StatusOr<CodegenResult>
generateProgram(const Graph &graph, const CimArchitecture &arch,
                const Schedule &schedule, const CodegenOptions &options)
{
    if (schedule.options.binding.bit_binding != XbarDim::kXBC) {
        return unimplemented(
            "code generation currently supports only the default "
            "bits-to-columns binding; bit-plane (B->XB) schedules are "
            "for mapping/latency exploration");
    }
    Emitter emitter(graph, arch, schedule, options);
    return emitter.run();
}

} // namespace cimmlc
