/**
 * @file
 * Scheduling options: every optimization the multi-level scheduler applies
 * can be toggled so the benches can reproduce the paper's ablations
 * (CG-Pipeline / CG-Duplication / CG-P&D / +MVM / +VVM, Figure 21).
 */
#ifndef CIMMLC_SCHED_OPTIONS_H
#define CIMMLC_SCHED_OPTIONS_H

#include <cstdint>
#include <string>

#include "sched/mapping.h"

namespace cimmlc {

/** Optimization toggles for one compilation. */
struct ScheduleOptions {
    // CG-grained (Section 3.3.2)
    bool cg_duplication = true; //!< DP-based operator duplication
    bool cg_pipeline = true;    //!< inter-operator pipeline

    //! Figure 7 dimension binding: data bits to adjacent columns
    //! (default) or to separate bit-plane crossbars
    DimensionBinding binding = DimensionBinding::bitsToColumns();

    // MVM-grained (Section 3.3.3); only used when the mode allows XBM
    bool mvm_duplication = true; //!< Equation (1) intra-core update
    bool mvm_pipeline = true;    //!< staggered crossbar activation

    // VVM-grained (Section 3.3.4); only used when the mode allows WLM
    bool vvm_remap = true; //!< row remapping across crossbars

    //! Segmentation granularity: 0 = resource-adaptive (greedily pack
    //! operators until the core budget is exhausted, Figure 9); N > 0
    //! additionally closes a segment after N operators. Smaller
    //! segments trade one weight reload per extra segment for a larger
    //! per-operator duplication budget — a win on chips with cheap
    //! writes (SRAM), a loss on ReRAM. The auto-tuner searches this.
    std::int64_t segment_max_nodes = 0;

    //! Dual-mode arrays ("Be CIM or Be Memory"): pin whole segments
    //! resident — their crossbars are programmed once at init time and
    //! never reclaimed, trading duplication budget elsewhere for the
    //! segment's per-inference weight reload. The CG level greedily
    //! marks segments resident while the schedule's total latency
    //! strictly improves. The auto-tuner searches this.
    bool dual_mode = false;

    //! Hybrid host/CIM offload (TDO-CIM): price maximal runs of
    //! consecutive digital nodes against the request's host-CPU cost
    //! model (sched/host_model.h) and run a region on the host when
    //! launch + boundary transfer + host compute beats the chip ALU
    //! time. The auto-tuner searches this.
    bool host_offload = false;

    /** Everything off — the "w/o optimization" baseline of Figure 20(d). */
    static ScheduleOptions
    none()
    {
        ScheduleOptions o;
        o.cg_duplication = false;
        o.cg_pipeline = false;
        o.mvm_duplication = false;
        o.mvm_pipeline = false;
        o.vvm_remap = false;
        return o;
    }

    /** CG level only (pipeline+duplication), Figure 21(a) "CG-P&D". */
    static ScheduleOptions
    cgOnly()
    {
        ScheduleOptions o;
        o.mvm_duplication = false;
        o.mvm_pipeline = false;
        o.vvm_remap = false;
        return o;
    }

    /** CG + MVM levels, Figure 21(b). */
    static ScheduleOptions
    cgMvm()
    {
        ScheduleOptions o;
        o.vvm_remap = false;
        return o;
    }

    /** All levels — full CIM-MLC. */
    static ScheduleOptions
    full()
    {
        return ScheduleOptions{};
    }

    std::string toString() const;
};

} // namespace cimmlc

#endif // CIMMLC_SCHED_OPTIONS_H
