/**
 * @file
 * Weight-to-crossbar mapping structures: the dimension-binding scheme and
 * virtual crossbars (VXBs) of Section 3.3.3 / Figure 7.
 *
 * A weight matrix has dimensions R (reduction rows), C (output columns),
 * and B (bit slices). Crossbar dimensions are XB (which crossbar), XBR
 * (crossbar rows), XBC (crossbar columns). The binding decides how R/C/B
 * spread across physical arrays; the default binding R->XBR, C->XBC,
 * B->XBC packs the bit slices of one weight into adjacent columns of the
 * same crossbar.
 */
#ifndef CIMMLC_SCHED_MAPPING_H
#define CIMMLC_SCHED_MAPPING_H

#include <cstdint>
#include <string>

#include "arch/arch.h"
#include "graph/analysis.h"

namespace cimmlc {

/** Crossbar-side dimensions of the binding scheme. */
enum class XbarDim { kXB, kXBR, kXBC };

const char *xbarDimName(XbarDim dim);

/** The R/C/B -> XB/XBR/XBC assignment. */
struct DimensionBinding {
    XbarDim row_binding = XbarDim::kXBR; //!< matrix R
    XbarDim col_binding = XbarDim::kXBC; //!< matrix C
    XbarDim bit_binding = XbarDim::kXBC; //!< data bit slices B

    /** Bit slices in adjacent columns (default; ISAAC/PUMA style). */
    static DimensionBinding bitsToColumns();
    /** Bit slices across crossbars (one bit plane per array). */
    static DimensionBinding bitsToCrossbars();

    /** Only R->XBR, C->XBC with B->{XBC|XB} are physically meaningful. */
    Status validate() const;
};

/**
 * The crossbar tiling of one operator's weight matrix.
 *
 * One *VXB* is the group of physical crossbars that jointly computes one
 * crossbar-shaped MVM tile: a single array when bits go to columns, or
 * `bit_planes` arrays when bits go to separate crossbars.
 */
struct VxbGrid {
    std::int64_t tiles_r = 0;     //!< vertical tiles over matrix rows
    std::int64_t tiles_c = 0;     //!< horizontal tiles over matrix cols
    std::int64_t bit_planes = 1;  //!< crossbars per VXB (B->XB binding)
    std::int64_t rows_per_tile = 0;
    std::int64_t logical_cols_per_tile = 0;
    std::int64_t rows_last_tile = 0; //!< rows used by the last vertical tile
    std::int64_t cols_last_tile = 0;

    /** VXB tiles the operator occupies (paper's num_VXB). */
    std::int64_t vxbCount() const { return tiles_r * tiles_c; }

    /** Physical crossbars per operator replica. */
    std::int64_t physicalCrossbars() const
    {
        return vxbCount() * bit_planes;
    }

    std::string toString() const;
};

/** Tiles @p matrix onto @p arch crossbars under @p binding. */
VxbGrid computeVxbGrid(const WeightMatrixShape &matrix,
                       const CimArchitecture &arch,
                       const DimensionBinding &binding =
                           DimensionBinding::bitsToColumns());

/** VXB slots available in one core (paper's Core_VXB). @returns >= 0 */
std::int64_t coreVxbSlots(const CimArchitecture &arch,
                          const DimensionBinding &binding =
                              DimensionBinding::bitsToColumns());

/** Cores needed to hold one replica of @p grid. */
std::int64_t coresPerReplica(const VxbGrid &grid,
                             const CimArchitecture &arch);

/** 8-bit-weight capacity of the whole chip. */
std::int64_t chipWeightCapacity(const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_SCHED_MAPPING_H
