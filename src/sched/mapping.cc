#include "sched/mapping.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"

namespace cimmlc {

const char *
xbarDimName(XbarDim dim)
{
    switch (dim) {
      case XbarDim::kXB: return "XB";
      case XbarDim::kXBR: return "XBR";
      case XbarDim::kXBC: return "XBC";
    }
    return "?";
}

DimensionBinding
DimensionBinding::bitsToColumns()
{
    return DimensionBinding{XbarDim::kXBR, XbarDim::kXBC, XbarDim::kXBC};
}

DimensionBinding
DimensionBinding::bitsToCrossbars()
{
    return DimensionBinding{XbarDim::kXBR, XbarDim::kXBC, XbarDim::kXB};
}

Status
DimensionBinding::validate() const
{
    if (row_binding != XbarDim::kXBR) {
        return invalidArgument(
            "matrix rows must bind to crossbar rows (analog accumulation "
            "runs along bitlines)");
    }
    if (col_binding != XbarDim::kXBC) {
        return invalidArgument(
            "matrix columns must bind to crossbar columns");
    }
    if (bit_binding == XbarDim::kXBR) {
        return invalidArgument(
            "bit slices cannot bind to crossbar rows: partial sums of "
            "different significance would mix in the analog domain");
    }
    return Status::ok();
}

std::string
VxbGrid::toString() const
{
    return strformat(
        "VxbGrid{%lldx%lld tiles, %lld bit-plane(s), tile=%lldr x %lldc, "
        "last=%lldr x %lldc -> %lld VXBs, %lld crossbars}",
        static_cast<long long>(tiles_r), static_cast<long long>(tiles_c),
        static_cast<long long>(bit_planes),
        static_cast<long long>(rows_per_tile),
        static_cast<long long>(logical_cols_per_tile),
        static_cast<long long>(rows_last_tile),
        static_cast<long long>(cols_last_tile),
        static_cast<long long>(vxbCount()),
        static_cast<long long>(physicalCrossbars()));
}

VxbGrid
computeVxbGrid(const WeightMatrixShape &matrix, const CimArchitecture &arch,
               const DimensionBinding &binding)
{
    CIMMLC_CHECK(binding.validate().isOk())
        << "invalid dimension binding";
    CIMMLC_CHECK_GT(matrix.rows, 0);
    CIMMLC_CHECK_GT(matrix.cols, 0);

    VxbGrid grid;
    grid.rows_per_tile = arch.xbar.rows;
    if (binding.bit_binding == XbarDim::kXBC) {
        // Bit slices occupy adjacent columns of the same array.
        grid.bit_planes = 1;
        grid.logical_cols_per_tile = arch.logicalColsPerCrossbar();
    } else {
        // One bit plane per crossbar: full column width per array.
        grid.bit_planes = arch.cellsPerWeight();
        grid.logical_cols_per_tile = arch.xbar.cols;
    }
    CIMMLC_CHECK_GT(grid.logical_cols_per_tile, 0)
        << "crossbar too narrow for one weight: " << arch.name;

    grid.tiles_r = ceilDiv(matrix.rows, grid.rows_per_tile);
    grid.tiles_c = ceilDiv(matrix.cols, grid.logical_cols_per_tile);
    grid.rows_last_tile =
        matrix.rows - (grid.tiles_r - 1) * grid.rows_per_tile;
    grid.cols_last_tile =
        matrix.cols - (grid.tiles_c - 1) * grid.logical_cols_per_tile;
    return grid;
}

std::int64_t
coreVxbSlots(const CimArchitecture &arch, const DimensionBinding &binding)
{
    const std::int64_t per_vxb =
        binding.bit_binding == XbarDim::kXB ? arch.cellsPerWeight() : 1;
    return arch.core.xbNumber() / per_vxb;
}

std::int64_t
coresPerReplica(const VxbGrid &grid, const CimArchitecture &arch)
{
    return ceilDiv(grid.physicalCrossbars(), arch.core.xbNumber());
}

std::int64_t
chipWeightCapacity(const CimArchitecture &arch)
{
    const std::int64_t cells_per_xb = arch.xbar.rows * arch.xbar.cols;
    const std::int64_t weights_per_xb =
        cells_per_xb / arch.cellsPerWeight();
    return weights_per_xb * arch.totalCrossbars();
}

} // namespace cimmlc
