/**
 * @file
 * The multi-level scheduling driver (Figure 3): applies CG-grained
 * optimization always, MVM-grained when the architecture exposes XBM or
 * WLM, and VVM-grained when it exposes WLM, then assembles the Schedule.
 */
#ifndef CIMMLC_SCHED_MULTI_LEVEL_H
#define CIMMLC_SCHED_MULTI_LEVEL_H

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/**
 * Compiles @p graph for @p arch under @p options.
 *
 * The architecture's computing mode bounds the deepest level applied;
 * options can disable levels below that bound (for ablations) but never
 * enable levels the programming interface does not expose.
 */
StatusOr<Schedule> scheduleGraph(const Graph &graph,
                                 const CimArchitecture &arch,
                                 const ScheduleOptions &options =
                                     ScheduleOptions::full());

} // namespace cimmlc

#endif // CIMMLC_SCHED_MULTI_LEVEL_H
