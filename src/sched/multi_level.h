/**
 * @file
 * The multi-level scheduling driver (Figure 3): applies CG-grained
 * optimization always, MVM-grained when the architecture exposes XBM or
 * WLM, and VVM-grained when it exposes WLM, then assembles the Schedule.
 */
#ifndef CIMMLC_SCHED_MULTI_LEVEL_H
#define CIMMLC_SCHED_MULTI_LEVEL_H

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/cg.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/**
 * Structural preconditions of the scheduling pipeline: beyond
 * Graph::validate(), every conv2d node must carry 4-D NCHW input and
 * output tensors — the cost model indexes spatial dims directly, so a
 * malformed graph must fail here with a Status rather than read out of
 * bounds downstream.
 */
Status validateGraphForScheduling(const Graph &graph);

/**
 * Recomputes per-segment peak-active-crossbar statistics for CM-only
 * chips (the MVM pass normally refreshes these; without XBM control
 * every crossbar of a running operator is active). Exposed for tests:
 * fails with kInternal when a segment references a node that has no
 * cost or decision record instead of dereferencing a bad iterator.
 */
Status refreshCmActivationStats(CgResult &cg, bool cg_pipeline);

/**
 * Compiles @p graph for @p arch under @p options.
 *
 * The architecture's computing mode bounds the deepest level applied;
 * options can disable levels below that bound (for ablations) but never
 * enable levels the programming interface does not expose. @p host is
 * the host-CPU cost model used when options.host_offload is set; the
 * default model keeps the schedule identical for non-offload requests.
 */
StatusOr<Schedule> scheduleGraph(const Graph &graph,
                                 const CimArchitecture &arch,
                                 const ScheduleOptions &options =
                                     ScheduleOptions::full(),
                                 const HostModel &host = HostModel{});

} // namespace cimmlc

#endif // CIMMLC_SCHED_MULTI_LEVEL_H
