/**
 * @file
 * The schedule produced by multi-level compilation: per-operator mapping
 * decisions (duplication, cores, VXB tiling, remap spread), the segment
 * structure from resource-adaptive graph segmentation, and the aggregate
 * latency / activation statistics the performance simulator refines.
 */
#ifndef CIMMLC_SCHED_SCHEDULE_H
#define CIMMLC_SCHED_SCHEDULE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "graph/node.h"
#include "sched/host_model.h"
#include "sched/mapping.h"
#include "sched/options.h"

namespace cimmlc {

class Graph;

/** Mapping and scheduling record for one graph node. */
struct OperatorMapping {
    NodeId node = kInvalidNode;
    bool is_cim = false;

    // ----- CG-grained results -------------------------------------------
    std::int64_t duplication = 1;       //!< D_Oi after CG optimization
    std::int64_t cores_per_replica = 0; //!< cores one copy occupies
    std::int64_t core_base = -1;        //!< first core id assigned
    std::int64_t segment = 0;           //!< pipeline segment index
    //! serial chunks when a single replica exceeds the whole chip
    std::int64_t chip_splits = 1;

    //! dual-mode: this node's segment is resident — its crossbars are
    //! programmed at init time and never reprogrammed (no reload, no
    //! per-inference write energy)
    bool resident = false;

    //! hybrid offload: this digital node runs on the host CPU; its
    //! latency (launch + link transfer + host compute) is folded into
    //! alu_cycles and its energy priced by the schedule's host model
    bool on_host = false;

    // ----- MVM-grained results ------------------------------------------
    VxbGrid grid;                       //!< weight tiling (CIM ops)
    std::int64_t mvm_duplication = 1;   //!< D'_Oi from Equation (1)
    bool mvm_pipelined = false;         //!< staggered activation applied

    // ----- VVM-grained results ------------------------------------------
    std::int64_t vvm_spread = 1; //!< row groups run in parallel via remap

    // ----- cost-model annotations ---------------------------------------
    std::int64_t windows = 0;          //!< MVM issues per inference
    double cycles_per_window = 0.0;    //!< after all applied levels
    double base_latency = 0.0;         //!< windows * cycles_per_window
    double stage_latency = 0.0;        //!< base_latency / total duplication
    double fill_fraction = 0.0;        //!< pipeline fill cost fraction
    double utilization = 1.0;          //!< busy fraction vs segment bottleneck
    double alu_cycles = 0.0;           //!< digital-node total cycles

    /** Total replicas including the MVM-grained update. */
    std::int64_t
    totalDuplication() const
    {
        return is_cim ? mvm_duplication : 1;
    }

    /** Physical crossbars across all replicas. */
    std::int64_t
    totalCrossbars() const
    {
        return is_cim ? grid.physicalCrossbars() * totalDuplication() : 0;
    }
};

/** One pipeline segment from resource-adaptive graph segmentation. */
struct Segment {
    std::vector<NodeId> nodes;       //!< members in topo order
    double latency_cycles = 0.0;     //!< per-inference latency
    double reload_cycles = 0.0;      //!< weight (re)programming before run
    double bottleneck_cycles = 0.0;  //!< slowest stage in the segment
    std::int64_t cores_used = 0;
    //! peak simultaneously-active crossbars while this segment runs
    std::int64_t peak_active_xbs = 0;
    //! dual-mode: cores permanently claimed at the top of the core
    //! space; weights programmed once at init, reload_cycles == 0
    bool resident = false;
};

/** One offloaded run of consecutive digital nodes (hybrid offload). */
struct HostRegion {
    std::vector<NodeId> nodes;    //!< members in topo order
    double host_cycles = 0.0;     //!< launch + transfer + host compute
    double chip_cycles = 0.0;     //!< the chip ALU time it replaced
    double transfer_bits = 0.0;   //!< boundary tensors over the host link
};

/** A complete multi-level schedule. */
struct Schedule {
    std::string graph_name;
    std::string arch_name;
    ComputeMode mode = ComputeMode::kCM;
    ScheduleOptions options;

    std::vector<OperatorMapping> ops;     //!< one per graph node
    std::map<NodeId, std::size_t> op_index;
    std::vector<Segment> segments;

    double total_latency_cycles = 0.0;
    double total_reload_cycles = 0.0;
    std::int64_t peak_active_xbs = 0; //!< max over segments

    //! hybrid offload: the offloaded regions (empty unless
    //! options.host_offload selected any) and the host model that
    //! priced them
    std::vector<HostRegion> host_regions;
    HostModel host_model;

    const OperatorMapping &
    mapping(NodeId node) const
    {
        return ops.at(op_index.at(node));
    }

    OperatorMapping &
    mapping(NodeId node)
    {
        return ops.at(op_index.at(node));
    }

    bool
    hasMapping(NodeId node) const
    {
        return op_index.count(node) > 0;
    }

    /** Human-readable schedule report. */
    std::string summary(const Graph &graph) const;
};

} // namespace cimmlc

#endif // CIMMLC_SCHED_SCHEDULE_H
