/**
 * @file
 * Cost-model-guided schedule auto-tuning: the design-space exploration
 * the paper performs by hand in Sections 5-6 (CG duplication/pipelining,
 * MVM duplication/pipelining, VVM remap, dimension binding), automated.
 *
 * The tuner enumerates every legal `ScheduleOptions x DimensionBinding`
 * point for an architecture — clamped by its ComputeMode exactly as
 * `scheduleGraph` clamps, so a CM chip never wastes candidates on
 * MVM/VVM knobs — prices each point through the staged CompilerSession
 * pipeline (schedule + perf stages; see compiler/session.h), and returns
 * the best configuration under a
 * selectable objective. Candidate evaluation fans out over the
 * work-stealing ThreadPool; results are independent of thread count
 * because every candidate owns a pre-assigned slot and ties break on the
 * stable option encoding.
 */
#ifndef CIMMLC_SCHED_AUTOTUNE_H
#define CIMMLC_SCHED_AUTOTUNE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/config.h"
#include "common/status.h"
#include "graph/graph.h"
#include "search/search_budget.h"
#include "sched/host_model.h"
#include "sched/options.h"

namespace cimmlc {

//! Candidate-encoding bits that are on/off optimization toggles (the
//! CG/MVM/VVM knobs) — the "enabled-knob set" dominance pruning orders
//! candidates by (search/dominance.h).
constexpr std::uint32_t kTuneKnobMask = 0x1Fu;
//! Encoding bits that are a choice, not a toggle (dimension binding,
//! the segmentation-cap field, dual-mode arrays, and host offload):
//! pruning only compares candidates that agree on them.
constexpr std::uint32_t kTuneContextMask = 0x3E0u;

/** What the tuner minimizes. */
enum class TuneObjective {
    kLatency, //!< total latency cycles (incl. reload)
    kEnergy,  //!< total energy, pJ
    kEdp,     //!< energy-delay product (cycles x pJ)
};

const char *tuneObjectiveName(TuneObjective objective);
StatusOr<TuneObjective> parseTuneObjective(const std::string &text);

/** One evaluated point of the schedule-option design space. */
struct TuneCandidate {
    //! stable identity: bit-packed option flags (see encodeOptions)
    std::uint32_t encoding = 0;
    ScheduleOptions options;
    Status status; //!< evaluation outcome; metrics valid iff OK
    double latency_cycles = 0.0;
    double energy_pj = 0.0;
    double edp = 0.0; //!< latency_cycles * energy_pj
    //! skipped by the budgeted search (dominance pruning or budget
    //! exhaustion); status carries the reason, metrics are invalid
    bool pruned = false;

    double objectiveValue(TuneObjective objective) const;
};

/** Outcome of one tuning run. */
struct TuneResult {
    TuneObjective objective = TuneObjective::kLatency;
    //! candidates in ascending encoding order (thread-count independent)
    std::vector<TuneCandidate> candidates;
    std::size_t best_index = 0;
    std::size_t default_index = 0; //!< ScheduleOptions{} defaults
    std::int64_t cache_hits = 0;   //!< memoized evaluations this run
    //! candidates actually evaluated (== candidates.size() when not
    //! budgeted; pruning can only ever shrink it)
    std::int64_t evaluated_count = 0;
    std::int64_t pruned_count = 0; //!< candidates skipped by the budget
    SearchBudget budget;           //!< the budget this run searched under

    const TuneCandidate &best() const { return candidates[best_index]; }
    const TuneCandidate &defaults() const
    {
        return candidates[default_index];
    }

    /** Objective improvement of best over the defaults (>= 1.0). */
    double speedupOverDefault() const;

    /** Per-candidate DSE report table (the paper's Figure-20d style). */
    std::string table() const;

    /** One-line verdict for CLI output. */
    std::string summary() const;
};

/**
 * Thread-safe memo of evaluated (graph, arch, options) points, so batch
 * sweeps that share a model x arch pair never re-evaluate a candidate.
 * Values are bit-identical to a fresh evaluation, which keeps cached and
 * uncached runs byte-identical.
 */
class TuneCache
{
  public:
    struct Entry {
        Status status;
        double latency_cycles = 0.0;
        double energy_pj = 0.0;
        double edp = 0.0;
    };

    std::optional<Entry> lookup(const std::string &key) const;
    void insert(const std::string &key, const Entry &entry);

    std::int64_t hits() const;
    std::size_t size() const;

    /**
     * Serializes the memo as a kvjson document (schema
     * "cimmlc.tunecache.v1"), keyed by the evaluation fingerprints, so
     * a sweep can persist across processes (`cimmlc --tune-cache`).
     */
    ConfigValue toConfig() const;

    /**
     * Replaces the memo with @p doc's entries. A malformed document
     * (wrong schema, truncated entry, bad status code) returns an error
     * and leaves the cache EMPTY — callers degrade to a cold cache with
     * a diagnostic instead of aborting the run.
     */
    Status loadFromConfig(const ConfigValue &doc);

    /** Atomically writes toConfig() as pretty kvjson to @p path
     * (temp file + rename, so a concurrent loadFromFile never sees a
     * torn document — the daemon snapshots a live cache). */
    Status saveToFile(const std::string &path) const;

    /** loadFromConfig over a kvjson file (same cold-cache-on-error
     * contract; a missing file is an error too). */
    Status loadFromFile(const std::string &path);

    /**
     * Memo key for one (graph, arch, options) evaluation. Covers every
     * cost-relevant Abs-arch parameter — crossbar/core/chip geometry,
     * NoC topologies and bandwidths, buffer sizes and bandwidths, cost
     * matrices, precisions — so a cache shared across architecture
     * candidates (the DSE explorer sweeps them) can never alias two
     * arch points that price differently.
     */
    /**
     * @param host_tag HostModel::cacheTag() of a non-default host model
     *   when the encoding enables host offload, "" otherwise. The
     *   default model's tag is empty so fingerprints (and persisted
     *   caches) from before hybrid offload stay valid verbatim.
     */
    static std::string fingerprint(const Graph &graph,
                                   const CimArchitecture &arch,
                                   std::uint32_t encoding,
                                   const SearchFidelity &fidelity = {},
                                   const std::string &host_tag = "");

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    mutable std::int64_t hits_ = 0;
};

/** Tuner configuration. */
struct AutoTuneConfig {
    TuneObjective objective = TuneObjective::kLatency;
    int threads = 0;          //!< 0 = hardware concurrency, 1 = serial
    TuneCache *cache = nullptr; //!< optional shared memo (not owned)
    /**
     * Evaluation budget. When enabled, candidates are evaluated in
     * deterministic waves (ascending enabled-knob count, then
     * encoding) with dominance pruning between waves — a candidate is
     * skipped when an evaluated configuration using a subset of its
     * knobs already regressed every objective component against its
     * own sub-configurations — and max_full_evals is a hard ceiling on
     * the total evaluations. One slot inside the cap stays reserved
     * for the default configuration, which is always evaluated so
     * speedup reporting keeps its baseline. The proxy-fidelity fields
     * of the budget are explorer-only; the tuner ignores them. Wave
     * decisions depend only on completed waves, so results stay
     * byte-identical across thread counts.
     */
    SearchBudget budget;
    //! host-CPU cost model used by candidates that enable host offload
    HostModel host_model;
};

/**
 * Exhaustive schedule auto-tuner.
 *
 * @code
 *   AutoTuner tuner({TuneObjective::kEdp});
 *   auto result = tuner.tune(models::resnet18(), presets::puma());
 *   CimCompiler compiler(arch, result.value().best().options);
 * @endcode
 */
class AutoTuner
{
  public:
    explicit AutoTuner(AutoTuneConfig config = {}) : config_(config) {}

    const AutoTuneConfig &config() const { return config_; }

    /**
     * Evaluates every legal candidate and selects the objective minimum.
     * Per-candidate failures (infeasible mapping) are recorded in the
     * candidate entry; the call fails only when the graph is invalid or
     * no candidate is feasible.
     */
    StatusOr<TuneResult> tune(const Graph &graph,
                              const CimArchitecture &arch) const;

    /**
     * The legal candidate set for @p mode, ascending by encoding. CM
     * chips only expose the CG knobs and the binding; XBM adds the MVM
     * knobs; WLM adds the VVM remap.
     */
    static std::vector<ScheduleOptions>
    enumerateCandidates(ComputeMode mode);

    /** Bit-packs the option flags into the stable candidate identity. */
    static std::uint32_t encodeOptions(const ScheduleOptions &options);

    /** Inverse of encodeOptions. */
    static ScheduleOptions decodeOptions(std::uint32_t encoding);

  private:
    AutoTuneConfig config_;
};

} // namespace cimmlc

#endif // CIMMLC_SCHED_AUTOTUNE_H
