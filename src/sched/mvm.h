/**
 * @file
 * MVM-grained optimization (Section 3.3.3, Figure 12): intra-core
 * duplication via Equation (1) and the staggered MVM computing pipeline
 * that lowers peak power.
 */
#ifndef CIMMLC_SCHED_MVM_H
#define CIMMLC_SCHED_MVM_H

#include <cstdint>

#include "arch/arch.h"
#include "sched/cg.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Per-node outcome of the MVM level. */
struct MvmDecision {
    //! D'_Oi: replicas after the Equation (1) update
    std::int64_t mvm_duplication = 1;
    //! staggered activation applied to this operator
    bool pipelined = false;
    //! concurrent crossbar activations of this op in steady state
    std::int64_t active_xbs = 0;
};

/**
 * Equation (1): D' = floor(cores_occupied * D * Core_VXB / num_VXB).
 *
 * @param cores_per_replica cores one replica occupies (num^Oi_core)
 * @param cg_duplication    D_Oi from the CG level
 * @param core_vxb_slots    VXBs available per core (Core_VXB)
 * @param vxbs_per_replica  VXBs one replica needs (num^Oi_VXB)
 */
std::int64_t mvmDuplicationUpdate(std::int64_t cores_per_replica,
                                  std::int64_t cg_duplication,
                                  std::int64_t core_vxb_slots,
                                  std::int64_t vxbs_per_replica);

/**
 * Applies the MVM level on top of a CG result, updating decisions and
 * segment statistics in place (stage latencies shrink by D'/D; activation
 * counts reflect the staggered pipeline when enabled).
 */
Status runMvmOptimization(const Graph &graph, const CimArchitecture &arch,
                          const ScheduleOptions &options, CgResult *cg);

} // namespace cimmlc

#endif // CIMMLC_SCHED_MVM_H
