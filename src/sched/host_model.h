/**
 * @file
 * Host-CPU cost model for hybrid host/CIM offload (TDO-CIM style).
 *
 * Not every node of a workload belongs on the crossbars: digital
 * operators on chips with weak (or busy) vector ALUs can run faster on
 * the host CPU, at the price of a kernel-launch overhead and moving the
 * region's boundary tensors across the host link. The scheduler prices
 * maximal runs of consecutive digital nodes against this model and
 * offloads a run when the host total (launch + transfer + compute) beats
 * the chip's ALU time (see runCgOptimization with
 * ScheduleOptions::host_offload).
 *
 * The model is deliberately first-order — a throughput, a link, a launch
 * cost, and an energy rate — mirroring the closed-form chip cost model
 * it competes with. Its parameters join cache fingerprints through
 * cacheTag(), so two compiles that price host regions differently can
 * never alias in the TuneCache / ArtifactCache.
 */
#ifndef CIMMLC_SCHED_HOST_MODEL_H
#define CIMMLC_SCHED_HOST_MODEL_H

#include <string>

#include "common/status.h"

namespace cimmlc {

/** First-order host-CPU execution model, in chip-cycle units. */
struct HostModel {
    //! elementwise ALU ops the host retires per chip cycle
    double alu_ops_per_cycle = 64.0;
    //! host-link bandwidth in bits per chip cycle (PCIe-ish, shared)
    double link_bits_per_cycle = 64.0;
    //! fixed cost of entering a host region (kernel launch + sync)
    double launch_overhead_cycles = 256.0;
    //! energy per host ALU op (CPUs pay more per op than the chip ALU)
    double energy_pj_per_op = 4.0;

    Status validate() const;

    /** Canonical parameter render, e.g. "alu64|link64|launch256|pj4". */
    std::string tag() const;

    /** Fingerprint tag: empty for the default-constructed model (the
     * implicit model every request uses unless it sets one), so cache
     * keys only grow when a non-default host model is in play. */
    std::string cacheTag() const;

    bool isDefault() const { return cacheTag().empty(); }
};

/** Host compute cycles for @p alu_ops elementwise ops (no overheads). */
double hostComputeCycles(const HostModel &model, double alu_ops);

/** Cycles to move @p bits across the host link. */
double hostTransferCycles(const HostModel &model, double bits);

} // namespace cimmlc

#endif // CIMMLC_SCHED_HOST_MODEL_H
