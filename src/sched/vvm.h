/**
 * @file
 * VVM-grained optimization (Section 3.3.4, Figure 14): the data
 * remapping strategy for wordline-mode CIMs.
 *
 * When only `parallel_row` wordlines can fire per cycle, an MVM whose
 * matrix occupies more rows needs ceil(rows/parallel_row) serial row
 * groups. The remap distributes the rows feeding one accumulation across
 * `spread` crossbars so groups run concurrently and the partial sums are
 * combined digitally — turning serial group activations into parallel
 * ones and tightening the inter-operator pipeline.
 */
#ifndef CIMMLC_SCHED_VVM_H
#define CIMMLC_SCHED_VVM_H

#include <cstdint>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/cg.h"
#include "sched/options.h"

namespace cimmlc {

/** Remap plan for one operator. */
struct VvmDecision {
    //! serial row groups before remapping
    std::int64_t row_groups = 1;
    //! crossbars one group-set is spread over (1 = no remap)
    std::int64_t spread = 1;
    //! serial row groups after remapping
    std::int64_t remapped_groups = 1;
};

/**
 * Picks the remap spread for one operator: bounded by the serial group
 * count (no point spreading further) and by the spare-crossbar ratio in
 * the cores the operator occupies.
 */
VvmDecision chooseVvmSpread(std::int64_t rows_used,
                            std::int64_t parallel_row,
                            std::int64_t used_xbs_per_core,
                            std::int64_t xbs_per_core);

/**
 * Applies the VVM level on top of CG+MVM results: recomputes per-window
 * cycles with the remap spread, then refreshes stage latencies, segment
 * latencies, and activation statistics.
 */
Status runVvmOptimization(const Graph &graph, const CimArchitecture &arch,
                          const ScheduleOptions &options, CgResult *cg);

} // namespace cimmlc

#endif // CIMMLC_SCHED_VVM_H
