#include "sched/cost_model.h"

#include <algorithm>
#include <cmath>

#include "arch/device.h"
#include "common/logging.h"
#include "common/mathutil.h"
#include "graph/analysis.h"

namespace cimmlc {

namespace {

/** Fill fraction of a conv stage: rows of input needed before the first
 * output over total output rows — roughly kernel/out_height. */
double
convFillFraction(const Graph &graph, const Node &node)
{
    const auto &out = graph.tensor(node.output).dims;
    // scheduleGraph validates 4-D NCHW conv tensors up front; a direct
    // caller with a malformed graph gets the conservative serializing
    // fill instead of an out-of-bounds read.
    if (out.size() != 4)
        return 1.0;
    const double out_h = static_cast<double>(out[2]);
    const double k = static_cast<double>(node.conv().kernel_h);
    return std::min(1.0, k / std::max(1.0, out_h));
}

} // namespace

NodeCost
computeNodeCost(const Graph &graph, NodeId node_id,
                const CimArchitecture &arch, std::int64_t vvm_spread,
                const DimensionBinding &binding)
{
    const Node &node = graph.node(node_id);
    NodeCost cost;
    cost.node = node_id;
    cost.is_cim = isCimMappable(node.kind);

    if (cost.is_cim) {
        const auto matrix = weightMatrixShape(graph, node_id);
        CIMMLC_CHECK(matrix.has_value());
        cost.grid = computeVxbGrid(*matrix, arch, binding);
        cost.windows = mvmCount(graph, node_id);

        // Serial row groups inside one crossbar: activation is limited to
        // parallel_row wordlines at a time. With the naive mapping each
        // vertical tile packs rows densely, so the fullest crossbar
        // serializes its full row count. The VVM remap balances all row
        // groups across the operator's vertical tiles (plus any borrowed
        // spread arrays) and fires groups on different arrays in the
        // same cycle (Figure 14).
        std::int64_t row_groups;
        if (vvm_spread >= 1) {
            const std::int64_t total_groups =
                ceilDiv(matrix->rows, arch.xbar.parallel_row);
            row_groups = ceilDiv(total_groups,
                                 cost.grid.tiles_r * vvm_spread);
        } else {
            const std::int64_t rows_used =
                std::min(matrix->rows, arch.xbar.rows);
            row_groups = ceilDiv(rows_used, arch.xbar.parallel_row);
        }

        const double device_read =
            deviceProfile(arch.xbar.cell_type).read_latency_cycles;
        cost.cycles_per_window =
            static_cast<double>(arch.dacCyclesPerActivation()) *
            static_cast<double>(row_groups) * device_read;
        cost.base_latency =
            static_cast<double>(cost.windows) * cost.cycles_per_window;

        cost.halo_reuse =
            node.kind == OpKind::kConv2d ? node.conv().kernel_w : 1;
        cost.cores_per_replica = coresPerReplica(cost.grid, arch);
        if (cost.cores_per_replica > arch.chip.coreNumber()) {
            // One replica exceeds the whole chip: execute in serial
            // chunks with reprogramming between them.
            cost.chip_splits = ceilDiv(cost.cores_per_replica,
                                       arch.chip.coreNumber());
            cost.cores_per_replica = arch.chip.coreNumber();
            cost.base_latency *= static_cast<double>(cost.chip_splits);
        }

        cost.is_stage = true;
        if (node.kind == OpKind::kConv2d) {
            cost.fill_fraction = convFillFraction(graph, node);
        } else {
            // A linear layer consumes the full upstream activation
            // before its first output vector.
            cost.fill_fraction = 1.0;
        }

        // Fresh operand traffic per window. Convolutions reuse the
        // sliding-window halo, so each window draws only one new patch
        // column (C_in * kh * stride pixels) from the shared buffer;
        // linear layers stream the whole row vector. Outputs forward
        // directly into the consumer's pipeline stage.
        if (node.kind == OpKind::kConv2d) {
            const auto &in = graph.tensor(node.inputs[0]).dims;
            cost.transfer_bits_per_window =
                static_cast<double>(in[1] * node.conv().kernel_h *
                                    node.conv().stride) *
                arch.activation_bits;
        } else {
            cost.transfer_bits_per_window =
                static_cast<double>(matrix->rows) * arch.activation_bits;
        }
        return cost;
    }

    // Digital nodes: stage latency from ALU throughput when the chip
    // declares one; "ideal" ALUs (0) execute for free, matching the
    // paper's "\" parameters. Elementwise digital work parallelizes
    // across the chip ALU plus every core-tier ALU (Figures 5 and 6
    // both carry an ALU entry).
    const std::int64_t alu_ops = aluOpCount(graph, node_id);
    const double alu_rate =
        arch.chip.alu_ops_per_cycle +
        arch.core.alu_ops_per_cycle *
            static_cast<double>(arch.chip.coreNumber());
    if (alu_ops > 0 && alu_rate > 0.0) {
        cost.alu_cycles = static_cast<double>(alu_ops) / alu_rate;
        cost.is_stage = true;
        cost.base_latency = cost.alu_cycles;
    }
    switch (node.kind) {
      case OpKind::kRelu:
      case OpKind::kGelu:
      case OpKind::kAdd:
      case OpKind::kConcat:
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
        // Streaming elementwise/windowed ops overlap almost entirely.
        cost.fill_fraction = 0.02;
        break;
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
        // Row-wise reductions: one token row must be complete.
        cost.fill_fraction = 0.05;
        break;
      case OpKind::kMatMul:
      case OpKind::kGlobalAvgPool:
        // Needs the full input operand.
        cost.fill_fraction = 1.0;
        break;
      default:
        cost.fill_fraction = 0.0;
        break;
    }
    return cost;
}

std::vector<NodeCost>
computeGraphCosts(const Graph &graph, const CimArchitecture &arch,
                  const DimensionBinding &binding)
{
    std::vector<NodeCost> costs;
    costs.reserve(graph.nodeCount());
    for (NodeId id : graph.topoOrder())
        costs.push_back(computeNodeCost(graph, id, arch, 0, binding));
    return costs;
}

SegmentLatency
segmentLatency(const std::vector<StageCost> &stages,
               double transfer_floor)
{
    SegmentLatency out;
    std::vector<double> effective(stages.size());
    for (std::size_t i = 0; i < stages.size(); ++i) {
        effective[i] = std::max(stages[i].stage_latency,
                                stages[i].floor);
        out.serial += effective[i];
        out.bottleneck = std::max(out.bottleneck, effective[i]);
    }
    // Streaming pipeline: every stage contributes its fill time; the
    // bottleneck stage then streams the remaining work. Fill of the
    // bottleneck itself is part of its full run — exclude exactly one
    // stage (ties still pay their own fills).
    double fill = 0.0;
    bool bottleneck_skipped = false;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (!bottleneck_skipped && effective[i] == out.bottleneck) {
            bottleneck_skipped = true;
            continue;
        }
        fill += effective[i] *
                std::clamp(stages[i].fill_fraction, 0.0, 1.0);
    }
    out.pipelined = out.bottleneck + fill;
    // A pipeline can never beat running the bottleneck alone nor lose to
    // fully serial execution.
    out.pipelined = std::min(out.pipelined, out.serial);
    // Shared-bandwidth roofline: all concurrently streaming stages share
    // the chip NoC / L0 port.
    out.pipelined = std::max(out.pipelined, transfer_floor);
    out.serial = std::max(out.serial, transfer_floor);
    return out;
}

double
stageFloorCycles(const NodeCost &cost, const CimArchitecture &arch)
{
    if (!cost.is_cim)
        return 0.0;
    const double limit_bw = chipBandwidthLimit(arch);
    if (limit_bw <= 0.0)
        return 0.0;
    return static_cast<double>(cost.windows) *
           cost.transfer_bits_per_window / limit_bw;
}

double
chipBandwidthLimit(const CimArchitecture &arch)
{
    double limit_bw = 0.0;
    if (arch.chip.l0_bandwidth > 0.0)
        limit_bw = arch.chip.l0_bandwidth;
    if (arch.chip.core_noc_bandwidth > 0.0) {
        limit_bw = limit_bw == 0.0
                       ? arch.chip.core_noc_bandwidth
                       : std::min(limit_bw, arch.chip.core_noc_bandwidth);
    }
    return limit_bw;
}

double
transferFloorCycles(const std::vector<const NodeCost *> &members,
                    const CimArchitecture &arch)
{
    const double limit_bw = chipBandwidthLimit(arch);
    if (limit_bw <= 0.0)
        return 0.0;
    double total_bits = 0.0;
    for (const NodeCost *cost : members) {
        if (cost->is_cim) {
            total_bits += static_cast<double>(cost->windows) *
                          cost->transfer_bits_per_window;
        }
    }
    return total_bits / limit_bw;
}

double
reloadCycles(const CimArchitecture &arch,
             std::int64_t max_rows_any_crossbar)
{
    const DeviceProfile &device = deviceProfile(arch.xbar.cell_type);
    return static_cast<double>(max_rows_any_crossbar) *
           device.write_latency_cycles;
}

double
segmentReloadCycles(const CimArchitecture &arch,
                    const std::vector<const NodeCost *> &members)
{
    std::int64_t bottleneck = 1;
    for (const NodeCost *cost : members) {
        if (cost == nullptr || !cost->is_cim
            || cost->cores_per_replica <= 0)
            continue;
        const std::int64_t xbs = cost->grid.physicalCrossbars();
        const std::int64_t per_core =
            (xbs + cost->cores_per_replica - 1) / cost->cores_per_replica;
        if (per_core > bottleneck)
            bottleneck = per_core;
    }
    return static_cast<double>(bottleneck) *
           reloadCycles(arch, arch.xbar.rows);
}

double
bandwidthBoundCyclesPerWindow(const NodeCost &cost,
                              const CimArchitecture &arch)
{
    const double limit_bw = chipBandwidthLimit(arch);
    if (limit_bw <= 0.0)
        return cost.cycles_per_window;
    const double transfer = cost.transfer_bits_per_window / limit_bw;
    return std::max(cost.cycles_per_window, transfer);
}

} // namespace cimmlc
