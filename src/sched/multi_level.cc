#include "sched/multi_level.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"
#include "sched/cg.h"
#include "sched/mvm.h"
#include "sched/vvm.h"

namespace cimmlc {

std::string
ScheduleOptions::toString() const
{
    std::vector<std::string> parts;
    if (cg_duplication)
        parts.push_back("cg-dup");
    if (cg_pipeline)
        parts.push_back("cg-pipe");
    if (mvm_duplication)
        parts.push_back("mvm-dup");
    if (mvm_pipeline)
        parts.push_back("mvm-pipe");
    if (vvm_remap)
        parts.push_back("vvm-remap");
    if (binding.bit_binding == XbarDim::kXB)
        parts.push_back("bits-to-xb");
    if (segment_max_nodes > 0)
        parts.push_back(strformat("seg<=%lld", static_cast<long long>(
                                                   segment_max_nodes)));
    if (dual_mode)
        parts.push_back("dual");
    if (host_offload)
        parts.push_back("host");
    return parts.empty() ? "none" : join(parts, "+");
}

Status
validateGraphForScheduling(const Graph &graph)
{
    for (const Node &node : graph.nodes()) {
        if (node.kind != OpKind::kConv2d)
            continue;
        if (node.inputs.empty()
            || graph.tensor(node.inputs[0]).dims.size() != 4) {
            return invalidArgument(
                "conv2d node '" + node.name
                + "' input must be a 4-D NCHW tensor");
        }
        if (graph.tensor(node.output).dims.size() != 4) {
            return invalidArgument(
                "conv2d node '" + node.name
                + "' output must be a 4-D NCHW tensor");
        }
    }
    return Status::ok();
}

Status
refreshCmActivationStats(CgResult &cg, bool cg_pipeline)
{
    std::map<NodeId, const NodeCost *> cost_by_node;
    for (const NodeCost &cost : cg.costs)
        cost_by_node[cost.node] = &cost;
    for (Segment &segment : cg.segments) {
        std::int64_t peak = 0;
        for (NodeId node : segment.nodes) {
            auto it = cost_by_node.find(node);
            if (it == cost_by_node.end())
                return internalError(strformat(
                    "segment references node %d with no cost record",
                    node));
            if (!it->second->is_cim)
                continue;
            auto dit = cg.decisions.find(node);
            if (dit == cg.decisions.end())
                return internalError(strformat(
                    "CIM node %d has no CG decision record", node));
            const std::int64_t xbs = it->second->grid.physicalCrossbars()
                                     * dit->second.duplication;
            if (cg_pipeline) {
                peak += xbs;
            } else {
                peak = std::max(peak, xbs);
            }
        }
        segment.peak_active_xbs = peak;
    }
    return Status::ok();
}

StatusOr<Schedule>
scheduleGraph(const Graph &graph, const CimArchitecture &arch,
              const ScheduleOptions &options, const HostModel &host)
{
    CIMMLC_RETURN_IF_ERROR(validateGraphForScheduling(graph));

    // Clamp options to the levels the programming interface exposes.
    ScheduleOptions effective = options;
    if (arch.mode == ComputeMode::kCM) {
        effective.mvm_duplication = false;
        effective.mvm_pipeline = false;
        effective.vvm_remap = false;
    } else if (arch.mode == ComputeMode::kXBM) {
        effective.vvm_remap = false;
    }

    CIMMLC_ASSIGN_OR_RETURN(
        CgResult cg, runCgOptimization(graph, arch, effective, host));
    if (arch.mode != ComputeMode::kCM) {
        CIMMLC_RETURN_IF_ERROR(
            runMvmOptimization(graph, arch, effective, &cg));
    } else {
        CIMMLC_RETURN_IF_ERROR(
            refreshCmActivationStats(cg, effective.cg_pipeline));
    }
    if (arch.mode == ComputeMode::kWLM) {
        CIMMLC_RETURN_IF_ERROR(
            runVvmOptimization(graph, arch, effective, &cg));
    }

    // Assemble the Schedule.
    Schedule schedule;
    schedule.graph_name = graph.name();
    schedule.arch_name = arch.name;
    schedule.mode = arch.mode;
    schedule.options = effective;
    schedule.segments = cg.segments;
    schedule.host_regions = std::move(cg.host_regions);
    schedule.host_model = host;

    for (const NodeCost &cost : cg.costs) {
        OperatorMapping mapping;
        mapping.node = cost.node;
        mapping.is_cim = cost.is_cim;
        mapping.windows = cost.windows;
        mapping.cycles_per_window = cost.cycles_per_window;
        mapping.base_latency = cost.base_latency;
        mapping.fill_fraction = cost.fill_fraction;
        mapping.alu_cycles = cost.alu_cycles;
        mapping.on_host = cost.on_host;
        mapping.grid = cost.grid;
        mapping.chip_splits = cost.chip_splits;

        auto it = cg.decisions.find(cost.node);
        if (it != cg.decisions.end()) {
            const CgDecision &decision = it->second;
            mapping.duplication = decision.cg_duplication;
            mapping.mvm_duplication = decision.duplication;
            mapping.cores_per_replica = decision.cores_per_replica;
            mapping.core_base = decision.core_base;
            mapping.segment = decision.segment;
            mapping.stage_latency = decision.stage_latency;
            mapping.resident = decision.resident;
        }
        auto vit = cg.vvm_spreads.find(cost.node);
        if (vit != cg.vvm_spreads.end())
            mapping.vvm_spread = vit->second;
        mapping.mvm_pipelined =
            effective.mvm_pipeline && arch.mode != ComputeMode::kCM;

        schedule.op_index[cost.node] = schedule.ops.size();
        schedule.ops.push_back(mapping);
    }

    // Stage utilizations against each segment bottleneck.
    for (const Segment &segment : schedule.segments) {
        for (NodeId node : segment.nodes) {
            OperatorMapping &mapping = schedule.mapping(node);
            if (segment.bottleneck_cycles > 0.0 &&
                mapping.stage_latency > 0.0) {
                mapping.utilization = std::clamp(
                    mapping.stage_latency / segment.bottleneck_cycles,
                    0.0, 1.0);
            }
        }
    }

    schedule.total_latency_cycles = 0.0;
    schedule.total_reload_cycles = 0.0;
    schedule.peak_active_xbs = 0;
    for (const Segment &segment : schedule.segments) {
        schedule.total_latency_cycles +=
            segment.latency_cycles + segment.reload_cycles;
        schedule.total_reload_cycles += segment.reload_cycles;
        schedule.peak_active_xbs =
            std::max(schedule.peak_active_xbs, segment.peak_active_xbs);
    }
    return schedule;
}

std::string
Schedule::summary(const Graph &graph) const
{
    std::ostringstream out;
    out << strformat(
        "schedule '%s' on '%s' [%s, %s]: %.3g cycles, %lld segments, "
        "peak %lld active crossbars\n",
        graph_name.c_str(), arch_name.c_str(), computeModeName(mode),
        options.toString().c_str(), total_latency_cycles,
        static_cast<long long>(segments.size()),
        static_cast<long long>(peak_active_xbs));
    for (std::size_t s = 0; s < segments.size(); ++s) {
        const Segment &segment = segments[s];
        out << strformat(
            "  segment %zu: %zu nodes, %lld cores, %.3g cycles "
            "(+%.3g reload)%s\n",
            s, segment.nodes.size(),
            static_cast<long long>(segment.cores_used),
            segment.latency_cycles, segment.reload_cycles,
            segment.resident ? " [resident]" : "");
    }
    for (std::size_t r = 0; r < host_regions.size(); ++r) {
        const HostRegion &region = host_regions[r];
        out << strformat(
            "  host region %zu: %zu nodes, %.3g host cycles "
            "(vs %.3g chip), %.3g transfer bits\n",
            r, region.nodes.size(), region.host_cycles,
            region.chip_cycles, region.transfer_bits);
    }
    for (const OperatorMapping &mapping : ops) {
        if (!mapping.is_cim)
            continue;
        const Node &node = graph.node(mapping.node);
        out << strformat(
            "    %-24s D=%lld (mvm %lld, spread %lld) cores=%lldx%lld "
            "vxbs=%lld win=%lld cpw=%.3g S=%.3g\n",
            node.name.c_str(),
            static_cast<long long>(mapping.duplication),
            static_cast<long long>(mapping.mvm_duplication),
            static_cast<long long>(mapping.vvm_spread),
            static_cast<long long>(mapping.duplication),
            static_cast<long long>(mapping.cores_per_replica),
            static_cast<long long>(mapping.grid.physicalCrossbars()),
            static_cast<long long>(mapping.windows),
            mapping.cycles_per_window, mapping.stage_latency);
    }
    return out.str();
}

} // namespace cimmlc
