#include "sched/mvm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "sched/cost_model.h"

namespace cimmlc {

std::int64_t
mvmDuplicationUpdate(std::int64_t cores_per_replica,
                     std::int64_t cg_duplication,
                     std::int64_t core_vxb_slots,
                     std::int64_t vxbs_per_replica)
{
    CIMMLC_CHECK_GT(vxbs_per_replica, 0);
    CIMMLC_CHECK_GE(cg_duplication, 1);
    const std::int64_t updated =
        (cores_per_replica * cg_duplication * core_vxb_slots) /
        vxbs_per_replica;
    // The update can only refine upward: allocated cores already hold
    // cg_duplication replicas.
    return std::max(updated, cg_duplication);
}

Status
runMvmOptimization(const Graph &graph, const CimArchitecture &arch,
                   const ScheduleOptions &options, CgResult *cg)
{
    (void)graph; // geometry already captured in the CG cost records
    const std::int64_t core_vxb = coreVxbSlots(arch, options.binding);
    if (core_vxb <= 0) {
        return failedPrecondition(
            "architecture has fewer crossbars per core than one VXB "
            "needs; MVM-grained scheduling is not applicable");
    }

    // Pass 1: per-node duplication update.
    for (const NodeCost &cost : cg->costs) {
        if (!cost.is_cim)
            continue;
        CgDecision &decision = cg->decisions.at(cost.node);
        std::int64_t updated = decision.duplication;
        if (options.mvm_duplication && cost.chip_splits == 1) {
            updated = mvmDuplicationUpdate(
                decision.cores_per_replica, decision.duplication,
                core_vxb, cost.grid.vxbCount());
        }
        // Intra-core replicas ride the sliding-window halo already in
        // L1, so their operand cost is ~1/halo_reuse of a cross-core
        // replica — but the shared chip port still bounds the total.
        const double limit_bw = chipBandwidthLimit(arch);
        if (limit_bw > 0.0 && cost.transfer_bits_per_window > 0.0 &&
            cost.cycles_per_window > 0.0) {
            const double per_replica_bw =
                cost.transfer_bits_per_window / cost.cycles_per_window /
                static_cast<double>(
                    std::max<std::int64_t>(cost.halo_reuse, 1));
            const std::int64_t bw_cap = static_cast<std::int64_t>(
                limit_bw / per_replica_bw);
            updated = std::min(
                updated,
                std::max(bw_cap, decision.cg_duplication));
        }
        // More replicas than windows cannot be fed.
        updated = std::min(updated, std::max<std::int64_t>(
                                        1, cost.windows));
        decision.duplication = updated;
        decision.stage_latency =
            static_cast<double>(cost.windows) * decision.effective_cpw *
            static_cast<double>(cost.chip_splits) /
            static_cast<double>(std::max<std::int64_t>(1, updated));
    }

    // Pass 2: recompute segment latencies and activation statistics with
    // the staggered-activation model. Without the MVM pipeline every
    // crossbar of every mapped operator can fire in the same cycle
    // (Figure 12(c)); with it, a stage only activates the crossbars its
    // current utilization needs (Figure 12(d)).
    for (std::size_t s = 0; s < cg->segments.size(); ++s) {
        Segment &segment = cg->segments[s];
        std::vector<StageCost> stages;
        for (NodeId node : segment.nodes) {
            const CgDecision &decision = cg->decisions.at(node);
            auto it = std::find_if(cg->costs.begin(), cg->costs.end(),
                                   [&](const NodeCost &c) {
                                       return c.node == node;
                                   });
            CIMMLC_CHECK(it != cg->costs.end());
            if (!it->is_stage)
                continue;
            StageCost stage;
            stage.node = node;
            stage.stage_latency = decision.stage_latency;
            // Finer MVM chunks shrink the fill: downstream operators
            // start once the first chunk arrives instead of the whole
            // stage output (the S20_0 / S20_1 halving of Figure 12).
            stage.fill_fraction = it->fill_fraction;
            if (options.mvm_pipeline && it->is_cim &&
                it->grid.vxbCount() > 1) {
                stage.fill_fraction /=
                    static_cast<double>(it->grid.tiles_c);
                // A linear stage still needs its whole input; the MVM
                // pipeline cannot break that dependence.
                if (it->fill_fraction >= 1.0)
                    stage.fill_fraction = 1.0;
            }
            stages.push_back(stage);
        }
        const SegmentLatency latency = segmentLatency(stages);
        segment.bottleneck_cycles = latency.bottleneck;
        segment.latency_cycles = options.cg_pipeline ? latency.pipelined
                                                     : latency.serial;

        // Activation statistics.
        std::int64_t peak = 0;
        for (NodeId node : segment.nodes) {
            auto it = std::find_if(cg->costs.begin(), cg->costs.end(),
                                   [&](const NodeCost &c) {
                                       return c.node == node;
                                   });
            if (!it->is_cim)
                continue;
            const CgDecision &decision = cg->decisions.at(node);
            const std::int64_t all_xbs =
                it->grid.physicalCrossbars() * decision.duplication;
            std::int64_t active = all_xbs;
            if (options.mvm_pipeline) {
                // Two staggering effects (Figure 12(d)):
                //  - utilization: a stage's crossbars fire only for the
                //    fraction of time it is busy vs the bottleneck;
                //  - phase stagger: inputs enter an operator's VXBs "in
                //    sequence", so within one multi-cycle window only a
                //    wavefront of crossbars is in its analog phase. The
                //    activation FSM pipelines a handful of phases.
                const double util =
                    segment.bottleneck_cycles > 0.0
                        ? decision.stage_latency /
                              segment.bottleneck_cycles
                        : 1.0;
                const std::int64_t stagger = clampInt(
                    static_cast<std::int64_t>(it->cycles_per_window), 1,
                    8);
                active = static_cast<std::int64_t>(std::ceil(
                    static_cast<double>(all_xbs) *
                    std::clamp(util, 0.0, 1.0) /
                    static_cast<double>(stagger)));
                active = std::max<std::int64_t>(active, 1);
            }
            if (options.cg_pipeline) {
                peak += active; // stages overlap
            } else {
                peak = std::max(peak, active); // one stage at a time
            }
        }
        segment.peak_active_xbs = peak;
    }
    return Status::ok();
}

} // namespace cimmlc
