#include "search/dominance.h"

#include <algorithm>
#include <limits>

namespace cimmlc {

bool
strictlyDominates(const MetricPoint &a, const MetricPoint &b)
{
    return a.latency_cycles <= b.latency_cycles
           && a.energy_pj <= b.energy_pj
           && (a.latency_cycles < b.latency_cycles
               || a.energy_pj < b.energy_pj);
}

void
DominancePruner::record(std::uint32_t encoding,
                        const MetricPoint &metrics, bool feasible)
{
    if (!feasible)
        return;
    // Condemnation is symmetric in arrival order: check the newcomer
    // against every chain partner below AND above it, so the verdict
    // depends only on the recorded set, never on recording order. The
    // bar is strict Pareto dominance by the sub-configuration — the
    // added knobs regressed at least one objective component without
    // improving any — so metric-identical no-op knobs never condemn.
    for (const auto &[other, other_metrics] : evaluated_) {
        if (order_.below(other, encoding)
            && strictlyDominates(other_metrics, metrics))
            condemned_.insert(encoding);
        if (order_.below(encoding, other)
            && strictlyDominates(metrics, other_metrics))
            condemned_.insert(other);
    }
    evaluated_.emplace(encoding, metrics);
}

std::optional<std::uint32_t>
DominancePruner::shouldPrune(std::uint32_t encoding) const
{
    // std::set iterates ascending, so the reported culprit is the
    // lowest condemned encoding below the candidate — stable output
    // for the provenance column regardless of recording interleaving.
    for (std::uint32_t condemned : condemned_) {
        if (order_.below(condemned, encoding))
            return condemned;
    }
    return std::nullopt;
}

std::vector<std::size_t>
paretoRanks(const std::vector<SearchPoint> &points)
{
    constexpr std::size_t kInfeasible =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> ranks(points.size(), kInfeasible);
    std::vector<bool> assigned(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            assigned[i] = true;
    }
    std::size_t rank = 0;
    for (;;) {
        std::vector<std::size_t> layer;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (std::size_t j = 0; j < points.size(); ++j) {
                if (j == i || assigned[j])
                    continue;
                if (strictlyDominates(points[j].metrics,
                                      points[i].metrics)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                layer.push_back(i);
        }
        if (layer.empty())
            break;
        for (std::size_t i : layer) {
            ranks[i] = rank;
            assigned[i] = true;
        }
        ++rank;
    }
    return ranks;
}

std::vector<std::size_t>
selectSurvivors(const std::vector<SearchPoint> &points, std::int64_t keep)
{
    const std::vector<std::size_t> ranks = paretoRanks(points);
    std::vector<std::size_t> order;
    order.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].feasible)
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&points, &ranks](std::size_t a, std::size_t b) {
                  if (ranks[a] != ranks[b])
                      return ranks[a] < ranks[b];
                  if (points[a].objective != points[b].objective)
                      return points[a].objective < points[b].objective;
                  const double edp_a = points[a].metrics.latency_cycles
                                       * points[a].metrics.energy_pj;
                  const double edp_b = points[b].metrics.latency_cycles
                                       * points[b].metrics.energy_pj;
                  if (edp_a != edp_b)
                      return edp_a < edp_b;
                  return points[a].id < points[b].id;
              });
    if (keep < 0)
        keep = 0;
    if (order.size() > static_cast<std::size_t>(keep))
        order.resize(static_cast<std::size_t>(keep));
    std::vector<std::size_t> survivors;
    survivors.reserve(order.size());
    for (std::size_t i : order)
        survivors.push_back(points[i].id);
    std::sort(survivors.begin(), survivors.end());
    return survivors;
}

} // namespace cimmlc
