/**
 * @file
 * Successive halving schedules: how a budgeted sweep splits its
 * candidates into rungs of cheap-proxy evaluation before promoting the
 * surviving fraction to full fidelity — the staged cheap-then-promote
 * strategy Timeloop-style mappers and MNSIM-style CIM frameworks use
 * to keep design-space exploration tractable.
 *
 * A schedule is a non-increasing sequence of rung sizes
 *
 *   total = n_0 > n_1 > ... > n_k = budget
 *
 * where rungs 0..k-1 evaluate their candidates on a proxy fidelity
 * (search/search_budget.h) and the final n_k survivors receive full
 * evaluation. Halving each step, clamped at the budget, so the proxy
 * work is O(total) while full-fidelity work is exactly the budget.
 */
#ifndef CIMMLC_SEARCH_HALVING_H
#define CIMMLC_SEARCH_HALVING_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "search/search_budget.h"

namespace cimmlc {

/** The rung ladder of one budgeted sweep. */
struct HalvingSchedule {
    //! rung sizes, non-increasing; front() = all candidates,
    //! back() = the full-evaluation count
    std::vector<std::int64_t> rungs;

    /** Rungs evaluated at proxy fidelity (all but the last). */
    std::size_t
    proxyRungCount() const
    {
        return rungs.size() <= 1 ? 0 : rungs.size() - 1;
    }

    /** Candidates promoted to full evaluation. */
    std::int64_t
    fullEvalCount() const
    {
        return rungs.empty() ? 0 : rungs.back();
    }

    /** "18 -> 9 -> full" style render. */
    std::string toString() const;
};

/**
 * Builds the rung ladder for @p total candidates under @p budget full
 * evaluations. A disabled budget (<= 0) or one at/above @p total
 * returns the single-rung exhaustive schedule {total}. Sizes halve
 * (rounding up) until they reach the budget.
 */
StatusOr<HalvingSchedule> makeHalvingSchedule(std::int64_t total,
                                              std::int64_t budget);

/**
 * The proxy fidelity rung @p rung of @p proxy_rungs evaluates at, for
 * a workload of @p compute_nodes non-input operators. With a prefix
 * fraction configured, earlier rungs see shorter topological prefixes
 * and later rungs approach the full workload, so promotion decisions
 * sharpen as the field narrows; without one every proxy rung prices
 * the whole graph (under forced `opt=none` when configured).
 *
 * @pre rung < proxy_rungs
 */
SearchFidelity proxyFidelity(const SearchBudget &budget,
                             std::int64_t compute_nodes, std::size_t rung,
                             std::size_t proxy_rungs);

} // namespace cimmlc

#endif // CIMMLC_SEARCH_HALVING_H
