#include "search/search_budget.h"

#include <cmath>

#include "common/strutil.h"

namespace cimmlc {

std::string
SearchFidelity::tag() const
{
    if (!isProxy())
        return "";
    return strformat("|proxy:pfx%lld:none%d",
                     static_cast<long long>(prefix_nodes),
                     forced_opt_none ? 1 : 0);
}

Status
SearchBudget::validate() const
{
    if (max_full_evals < 0)
        return invalidArgument("search budget 'evals' must be >= 0 "
                               "(0 disables budgeting)");
    if (!(proxy_prefix_fraction >= 0.0 && proxy_prefix_fraction <= 1.0))
        return invalidArgument(
            "search budget 'proxy_prefix_fraction' must be in [0, 1]");
    return Status::ok();
}

Status
SearchBudget::validateForHalving() const
{
    CIMMLC_RETURN_IF_ERROR(validate());
    if (enabled() && !proxy_opt_none && proxy_prefix_fraction <= 0.0)
        return invalidArgument(
            "search budget proxy stage must differ from full fidelity: "
            "enable proxy_opt_none or set proxy_prefix_fraction > 0");
    return Status::ok();
}

std::string
SearchBudget::toString() const
{
    if (!enabled())
        return "exhaustive";
    std::string proxy;
    if (proxy_opt_none)
        proxy = "opt=none";
    if (proxy_prefix_fraction > 0.0) {
        if (!proxy.empty())
            proxy += "+";
        proxy += strformat("prefix%.2g", proxy_prefix_fraction);
    }
    return strformat("evals<=%lld proxy[%s]",
                     static_cast<long long>(max_full_evals),
                     proxy.c_str());
}

StatusOr<SearchBudget>
searchBudgetFromConfig(const ConfigValue &doc)
{
    SearchBudget budget;
    if (doc.isNumber()) {
        // Range-check before the int64 cast: casting an
        // unrepresentable double is undefined behavior, and fuzzed
        // documents do produce 1e300-class values. 2^63 is exactly
        // representable, so `< 2^63` admits every valid int64.
        const double raw = doc.asNumber();
        if (!(raw >= 0.0) || raw >= 9223372036854775808.0
            || raw != std::floor(raw))
            return parseError("search budget must be a non-negative "
                              "integer evaluation count");
        budget.max_full_evals = static_cast<std::int64_t>(raw);
    } else if (doc.isObject()) {
        for (const auto &[key, value] : doc.asObject()) {
            (void)value;
            if (key != "evals" && key != "proxy_opt_none"
                && key != "proxy_prefix_fraction")
                return parseError("search budget has unknown key '" + key
                                  + "' (expected evals, proxy_opt_none, "
                                    "proxy_prefix_fraction)");
        }
        if (doc.has("evals")) {
            const ConfigValue evals = doc.get("evals").value();
            if (!evals.isNumber())
                return parseError(
                    "search budget 'evals' must be a number");
            CIMMLC_ASSIGN_OR_RETURN(const SearchBudget from_number,
                                    searchBudgetFromConfig(evals));
            budget.max_full_evals = from_number.max_full_evals;
        } else {
            return parseError("search budget object needs an 'evals' "
                              "count");
        }
        if (doc.has("proxy_opt_none")) {
            const ConfigValue flag = doc.get("proxy_opt_none").value();
            if (!flag.isBool())
                return parseError(
                    "search budget 'proxy_opt_none' must be a bool");
            budget.proxy_opt_none = flag.asBool();
        }
        if (doc.has("proxy_prefix_fraction")) {
            const ConfigValue fraction =
                doc.get("proxy_prefix_fraction").value();
            if (!fraction.isNumber())
                return parseError("search budget 'proxy_prefix_fraction' "
                                  "must be a number");
            budget.proxy_prefix_fraction = fraction.asNumber();
        }
    } else {
        return parseError("search budget must be a number (the full-"
                          "evaluation cap) or an object with an 'evals' "
                          "key");
    }
    CIMMLC_RETURN_IF_ERROR(budget.validate());
    return budget;
}

ConfigValue
searchBudgetToConfig(const SearchBudget &budget)
{
    ConfigValue::Object doc;
    doc["evals"] = ConfigValue::makeNumber(
        static_cast<double>(budget.max_full_evals));
    doc["proxy_opt_none"] = ConfigValue::makeBool(budget.proxy_opt_none);
    doc["proxy_prefix_fraction"] =
        ConfigValue::makeNumber(budget.proxy_prefix_fraction);
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
