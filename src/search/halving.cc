#include "search/halving.h"

#include <cmath>

#include "common/logging.h"
#include "common/strutil.h"

namespace cimmlc {

std::string
HalvingSchedule::toString() const
{
    std::string out;
    for (std::size_t i = 0; i < rungs.size(); ++i) {
        if (i > 0)
            out += " -> ";
        out += strformat("%lld", static_cast<long long>(rungs[i]));
    }
    if (rungs.size() > 1)
        out += " (full)";
    return out;
}

StatusOr<HalvingSchedule>
makeHalvingSchedule(std::int64_t total, std::int64_t budget)
{
    if (total < 0)
        return invalidArgument("halving schedule: candidate count must "
                               "be >= 0");
    HalvingSchedule schedule;
    schedule.rungs.push_back(total);
    if (budget <= 0 || budget >= total)
        return schedule;
    std::int64_t size = total;
    while (size > budget) {
        size = std::max(budget, (size + 1) / 2);
        schedule.rungs.push_back(size);
    }
    return schedule;
}

SearchFidelity
proxyFidelity(const SearchBudget &budget, std::int64_t compute_nodes,
              std::size_t rung, std::size_t proxy_rungs)
{
    CIMMLC_CHECK(rung < proxy_rungs)
        << "proxy fidelity requested for rung " << rung << " of "
        << proxy_rungs;
    SearchFidelity fidelity;
    fidelity.forced_opt_none = budget.proxy_opt_none;
    if (budget.proxy_prefix_fraction > 0.0 && compute_nodes > 0) {
        // Fidelity ladder: rung r sees fraction f + (1-f) * r / R of
        // the compute nodes, so the first rung is the configured
        // cheapest prefix and later rungs converge toward (but never
        // reach) the full workload.
        const double f = budget.proxy_prefix_fraction;
        const double fraction =
            f
            + (1.0 - f) * static_cast<double>(rung)
                  / static_cast<double>(proxy_rungs);
        std::int64_t nodes = static_cast<std::int64_t>(
            std::ceil(fraction * static_cast<double>(compute_nodes)));
        if (nodes < 1)
            nodes = 1;
        // A proxy must stay cheaper than full fidelity: ceil can round
        // a late rung up to the whole workload, which would pay full
        // session cost twice (tagged as proxy, then again at the final
        // rung). Hold the prefix strictly below the graph whenever the
        // graph has more than one compute node.
        if (nodes >= compute_nodes)
            nodes = compute_nodes > 1 ? compute_nodes - 1 : 1;
        fidelity.prefix_nodes = nodes;
    }
    return fidelity;
}

} // namespace cimmlc
