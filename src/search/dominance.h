/**
 * @file
 * Dominance primitives of the budgeted search engine: Pareto dominance
 * on (latency, energy) metric points, the enabled-knob subset order on
 * schedule-option encodings, the tuner's dominance pruner, and the
 * rank-based survivor selection successive halving promotes with.
 *
 * Everything here is deterministic and order-free: decisions depend
 * only on the recorded values, never on evaluation timing, which is
 * what lets the engines keep their byte-identical-across-thread-counts
 * contract while pruning.
 */
#ifndef CIMMLC_SEARCH_DOMINANCE_H
#define CIMMLC_SEARCH_DOMINANCE_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace cimmlc {

/** One evaluated point in objective space (both minimized). */
struct MetricPoint {
    double latency_cycles = 0.0;
    double energy_pj = 0.0;

    bool operator==(const MetricPoint &) const = default;
};

/** Strict Pareto dominance: <= in both components, < in at least one.
 * A strict partial order — irreflexive, transitive, antisymmetric.
 * Doubles as the pruner's evidence bar (see DominancePruner). */
bool strictlyDominates(const MetricPoint &a, const MetricPoint &b);

/**
 * The enabled-knob subset order on option encodings: `a` is below `b`
 * iff both agree on every context bit (knobs that are a choice, not a
 * toggle — e.g. the dimension binding and the segmentation-cap field)
 * and a's toggle bits are a proper subset of b's. A strict partial
 * order on encodings, used both by the pruner and the property tests.
 */
class KnobSubsetOrder
{
  public:
    KnobSubsetOrder(std::uint32_t knob_mask, std::uint32_t context_mask)
        : knob_mask_(knob_mask), context_mask_(context_mask)
    {
    }

    std::uint32_t knobMask() const { return knob_mask_; }
    std::uint32_t contextMask() const { return context_mask_; }

    /** True iff @p a is strictly below @p b in the subset order. */
    bool
    below(std::uint32_t a, std::uint32_t b) const
    {
        if ((a & context_mask_) != (b & context_mask_))
            return false;
        const std::uint32_t ka = a & knob_mask_;
        const std::uint32_t kb = b & knob_mask_;
        return ka != kb && (ka & kb) == ka;
    }

  private:
    std::uint32_t knob_mask_;
    std::uint32_t context_mask_;
};

/**
 * Dominance pruning for lattice searches (the AutoTuner).
 *
 * A recorded configuration A is *condemned* when another recorded
 * configuration C strictly below it (C ⊂ A in the knob order)
 * strictly Pareto-dominates it — no worse on any objective component
 * and strictly better on at least one, so the knobs A adds over C
 * demonstrably hurt (metric-identical no-op knobs never condemn). A
 * candidate B is pruned when any condemned A sits strictly below it:
 * B re-enables a knob set that already proved harmful, plus more.
 *
 * Pruning is sound bookkeeping, not an oracle: it can in principle
 * skip an interaction where further knobs redeem a harmful subset, so
 * the differential suite (tests/test_search_differential.cc) pins that
 * the selected best is unchanged on every preset workload x arch pair.
 * It can never *add* evaluations: the evaluated set under pruning is
 * always a subset of the exhaustive one.
 *
 * Not thread-safe; the engines record whole waves between decisions.
 */
class DominancePruner
{
  public:
    explicit DominancePruner(KnobSubsetOrder order) : order_(order) {}

    const KnobSubsetOrder &order() const { return order_; }

    /** Records one evaluation outcome. Infeasible points carry no
     * pruning evidence (more knobs may change feasibility). */
    void record(std::uint32_t encoding, const MetricPoint &metrics,
                bool feasible);

    /**
     * Returns the condemned configuration that proves @p encoding
     * skippable, or nullopt when it must be evaluated. Never condemns
     * on ties — only strict across-the-board regressions prune.
     */
    std::optional<std::uint32_t>
    shouldPrune(std::uint32_t encoding) const;

    std::size_t recordedCount() const { return evaluated_.size(); }
    std::size_t condemnedCount() const { return condemned_.size(); }

  private:
    KnobSubsetOrder order_;
    std::map<std::uint32_t, MetricPoint> evaluated_; //!< feasible only
    std::set<std::uint32_t> condemned_;
};

/** One candidate offered to survivor selection. */
struct SearchPoint {
    std::size_t id = 0; //!< caller-stable identity (e.g. sweep index)
    MetricPoint metrics;
    double objective = 0.0; //!< scalar ranking objective (minimized)
    bool feasible = true;
};

/**
 * Non-dominated sorting: rank 0 holds the Pareto-optimal feasible
 * points, rank 1 the front of the remainder, and so on (peeling).
 * Infeasible points get rank SIZE_MAX. Indices parallel @p points.
 */
std::vector<std::size_t>
paretoRanks(const std::vector<SearchPoint> &points);

/**
 * The @p keep points a halving rung promotes, ordered and chosen by
 * (Pareto rank, objective, EDP, id) ascending — multi-objective-aware
 * so a front spread across the latency/energy trade-off survives, with
 * the scalar objective breaking ties inside a rank. Infeasible points
 * are never selected. Returns ids, ascending by id.
 */
std::vector<std::size_t>
selectSurvivors(const std::vector<SearchPoint> &points,
                std::int64_t keep);

} // namespace cimmlc

#endif // CIMMLC_SEARCH_DOMINANCE_H
