/**
 * @file
 * Search budgets and evaluation fidelities — the shared vocabulary of
 * the budgeted search engine (search/halving.h, search/dominance.h)
 * that both the schedule AutoTuner and the architecture ArchExplorer
 * drive.
 *
 * A SearchBudget bounds how many *full-fidelity* evaluations a search
 * may spend; the engines stretch it with cheap proxies: the tuner
 * prunes lattice points whose enabled-knob subsets already proved
 * harmful (dominance pruning), the explorer runs successive halving —
 * every candidate is priced on a proxy stage first (forced `opt=none`
 * and/or a topological prefix of the workload) and only the surviving
 * fraction per rung is promoted to full evaluation.
 *
 * A SearchFidelity names how an evaluation was cheapened. It is part of
 * every TuneCache fingerprint, so a warm cache entry produced by a
 * halving rung can never alias a full evaluation of the same
 * (graph, arch, options) point.
 */
#ifndef CIMMLC_SEARCH_SEARCH_BUDGET_H
#define CIMMLC_SEARCH_SEARCH_BUDGET_H

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/status.h"

namespace cimmlc {

/**
 * How one evaluation was cheapened relative to full fidelity. The
 * default-constructed value means "full fidelity" and contributes
 * nothing to cache fingerprints, so existing keys stay stable.
 */
struct SearchFidelity {
    //! schedule/price only the first N compute nodes of the workload
    //! (0 = the whole graph)
    std::int64_t prefix_nodes = 0;
    //! the evaluation forced ScheduleOptions::none() regardless of the
    //! configuration under search
    bool forced_opt_none = false;

    bool isProxy() const { return prefix_nodes > 0 || forced_opt_none; }

    /** Cache-fingerprint suffix: empty at full fidelity, a "|proxy:…"
     * marker otherwise (see TuneCache::fingerprint). */
    std::string tag() const;

    bool operator==(const SearchFidelity &) const = default;
};

/**
 * Evaluation budget for one search run.
 *
 * `max_full_evals == 0` disables budgeting — both engines fall back to
 * their exhaustive paths, byte-identical to the pre-budget behaviour.
 * When enabled, the tuner treats it as a cap on candidate evaluations
 * (dominance pruning active) and the explorer as the number of sweep
 * points promoted to full fidelity (successive halving active).
 */
struct SearchBudget {
    //! maximum full-fidelity evaluations (0 = unlimited / exhaustive)
    std::int64_t max_full_evals = 0;

    //! proxy rungs evaluate a topological prefix of roughly this
    //! fraction of the workload's compute nodes (0 = the whole graph).
    //! The default half-workload prefix at the *same* opt level is the
    //! safer proxy: it preserves relative architecture ranking, where
    //! forcing opt=none misranks designs whose advantage only shows
    //! with the optimizations on (see the README fidelity caveats).
    double proxy_prefix_fraction = 0.5;

    //! proxy rungs force `opt=none` (cheapest schedule space point);
    //! off by default — combine with or substitute for the prefix only
    //! when the sweep's ranking is insensitive to the opt level
    bool proxy_opt_none = false;

    bool enabled() const { return max_full_evals > 0; }

    /** Range validation shared by every engine. The tuner only reads
     * max_full_evals, so the proxy fields are not constrained here —
     * halving callers add validateForHalving(). */
    Status validate() const;

    /**
     * The additional invariant of the successive-halving path: when
     * the budget is enabled, the proxy stage must actually be cheaper
     * than full fidelity (a prefix and/or forced opt=none), or every
     * "proxy" rung would silently run — and cache-key — full
     * evaluations. The ArchExplorer enforces this whenever a rung
     * ladder would run proxies, including budgets enabled late by the
     * `--search-budget` CLI override.
     */
    Status validateForHalving() const;

    /** "evals<=N proxy=none" style render for summaries and tables. */
    std::string toString() const;

    bool operator==(const SearchBudget &) const = default;
};

/**
 * Parses a `"budget"` kvjson value: either a bare number (the full-eval
 * cap, proxy defaults applied) or an object
 * @code
 *   {
 *     "evals": 9,                   # max full-fidelity evaluations
 *     "proxy_opt_none": true,       # proxy forces opt=none
 *     "proxy_prefix_fraction": 0.5  # proxy workload prefix (0 = whole)
 *   }
 * @endcode
 * Malformed documents return a Status error; they never abort.
 */
StatusOr<SearchBudget> searchBudgetFromConfig(const ConfigValue &doc);

/** Serializes @p budget for reports (inverse of the object form). */
ConfigValue searchBudgetToConfig(const SearchBudget &budget);

} // namespace cimmlc

#endif // CIMMLC_SEARCH_SEARCH_BUDGET_H
