#include "baselines/poly_schedule.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mathutil.h"
#include "sched/cost_model.h"

namespace cimmlc {

StatusOr<PolyResult>
polySchedule(const Graph &graph, const CimArchitecture &arch)
{
    CIMMLC_RETURN_IF_ERROR(graph.validate());
    CIMMLC_RETURN_IF_ERROR(arch.validate());

    PolyResult result;
    Schedule &schedule = result.schedule;
    schedule.graph_name = graph.name();
    schedule.arch_name = arch.name;
    schedule.mode = arch.mode;
    schedule.options = ScheduleOptions::none();
    schedule.options.cg_duplication = true; // greedy variant

    const std::vector<NodeCost> costs = computeGraphCosts(graph, arch);
    const std::int64_t budget = arch.chip.coreNumber();

    // Plain greedy segmentation: close a segment when the next operator
    // no longer fits.
    std::vector<std::vector<std::size_t>> segments;
    std::vector<std::size_t> current;
    std::int64_t used = 0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        const NodeCost &cost = costs[i];
        const std::int64_t need = cost.is_cim ? cost.cores_per_replica : 0;
        if (need > budget) {
            return resourceExhausted(
                "operator exceeds chip capacity even unduplicated");
        }
        if (used + need > budget && !current.empty()) {
            segments.push_back(std::move(current));
            current.clear();
            used = 0;
        }
        current.push_back(i);
        used += need;
    }
    if (!current.empty())
        segments.push_back(std::move(current));

    // Greedy duplication per segment: repeatedly replicate whichever
    // stage currently has the largest latency.
    for (std::size_t s = 0; s < segments.size(); ++s) {
        const auto &members = segments[s];
        std::vector<std::int64_t> dup(members.size(), 1);
        std::int64_t cores_used = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (costs[members[i]].is_cim)
                cores_used += costs[members[i]].cores_per_replica;
        }
        while (true) {
            double worst = 0.0;
            std::size_t worst_i = members.size();
            for (std::size_t i = 0; i < members.size(); ++i) {
                const NodeCost &cost = costs[members[i]];
                if (!cost.is_cim)
                    continue;
                const double lat =
                    cost.base_latency / static_cast<double>(dup[i]);
                if (lat > worst) {
                    worst = lat;
                    worst_i = i;
                }
            }
            if (worst_i == members.size())
                break;
            const std::int64_t need =
                costs[members[worst_i]].cores_per_replica;
            if (cores_used + need > budget)
                break;
            ++dup[worst_i];
            cores_used += need;
        }

        Segment segment;
        std::int64_t next_core = 0;
        double serial = 0.0;
        double bottleneck = 0.0;
        std::int64_t peak = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            const NodeCost &cost = costs[members[i]];
            OperatorMapping mapping;
            mapping.node = cost.node;
            mapping.is_cim = cost.is_cim;
            mapping.windows = cost.windows;
            mapping.cycles_per_window = cost.cycles_per_window;
            mapping.base_latency = cost.base_latency;
            mapping.fill_fraction = cost.fill_fraction;
            mapping.alu_cycles = cost.alu_cycles;
            mapping.grid = cost.grid;
            mapping.chip_splits = cost.chip_splits;
            mapping.segment = static_cast<std::int64_t>(s);
            if (cost.is_cim) {
                mapping.duplication = dup[i];
                mapping.mvm_duplication = dup[i];
                mapping.cores_per_replica = cost.cores_per_replica;
                mapping.core_base = next_core;
                next_core += dup[i] * cost.cores_per_replica;
                // Poly-Schedule assumes ample buffer bandwidth when it
                // duplicates ("these works assume there are ample memory
                // resources available"); the hardware disagrees, so the
                // evaluated stage latency floors at the streaming bound.
                mapping.stage_latency =
                    std::max(cost.base_latency /
                                 static_cast<double>(dup[i]),
                             stageFloorCycles(cost, arch));
                // Batch pipeline keeps every mapped crossbar hot.
                peak += mapping.totalCrossbars();
            } else {
                mapping.stage_latency = cost.alu_cycles;
            }
            if (cost.is_stage) {
                serial += mapping.stage_latency;
                bottleneck = std::max(bottleneck, mapping.stage_latency);
            }
            segment.nodes.push_back(cost.node);
            schedule.op_index[cost.node] = schedule.ops.size();
            schedule.ops.push_back(mapping);
        }
        segment.cores_used = next_core;
        // Per-image latency: layers are serial within one image (batch
        // pipelining overlaps *different* images).
        segment.latency_cycles = serial;
        segment.bottleneck_cycles = bottleneck;
        segment.peak_active_xbs = peak;
        // Same device physics as the CG scheduler: a core's shared write
        // drivers serialize the reprogramming of its own crossbars.
        if (s == 0) {
            segment.reload_cycles = 0.0;
        } else {
            std::vector<const NodeCost *> member_costs;
            member_costs.reserve(members.size());
            for (std::size_t idx : members)
                member_costs.push_back(&costs[idx]);
            segment.reload_cycles = segmentReloadCycles(arch, member_costs);
        }
        schedule.segments.push_back(std::move(segment));
        result.batch_interval_cycles += bottleneck;
    }

    schedule.total_latency_cycles = 0.0;
    for (const Segment &segment : schedule.segments) {
        schedule.total_latency_cycles +=
            segment.latency_cycles + segment.reload_cycles;
        schedule.total_reload_cycles += segment.reload_cycles;
        schedule.peak_active_xbs =
            std::max(schedule.peak_active_xbs, segment.peak_active_xbs);
    }
    return result;
}

} // namespace cimmlc
