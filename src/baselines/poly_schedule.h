/**
 * @file
 * Reimplementation of Poly-Schedule (Han et al., JETC'21 [22]) as
 * described in Section 4.2: operator duplication by a greedy
 * max-latency-first strategy plus a *batch* pipeline. The batch pipeline
 * overlaps different input images, so a single image still traverses the
 * layers serially — which is exactly the gap CIM-MLC's intra-image
 * MVM-grained pipeline exploits (Figure 20(d)).
 *
 * Differences from CIM-MLC, per the paper:
 *  - graph-level scheduling only: no MVM-grained duplication (Eq. 1),
 *    no staggered activation, no VVM remapping;
 *  - greedy duplication (iteratively replicate the currently slowest
 *    layer) instead of the balanced DP allocation;
 *  - assumes ample on-chip resources: segmentation is a plain greedy
 *    cut with no pop-back refinement.
 */
#ifndef CIMMLC_BASELINES_POLY_SCHEDULE_H
#define CIMMLC_BASELINES_POLY_SCHEDULE_H

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Poly-Schedule result: per-image latency plus batch throughput. */
struct PolyResult {
    Schedule schedule;
    //! steady-state cycles per image when a large batch streams through
    double batch_interval_cycles = 0.0;
};

/** Compiles @p graph with the Poly-Schedule policy. */
StatusOr<PolyResult> polySchedule(const Graph &graph,
                                  const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_BASELINES_POLY_SCHEDULE_H
