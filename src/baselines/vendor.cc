#include "baselines/vendor.h"

#include "sched/multi_level.h"

namespace cimmlc {

StatusOr<Schedule>
jiaVendorSchedule(const Graph &graph, const CimArchitecture &arch)
{
    return scheduleGraph(graph, arch, ScheduleOptions::none());
}

StatusOr<Schedule>
pumaVendorSchedule(const Graph &graph, const CimArchitecture &arch)
{
    ScheduleOptions options;
    options.cg_duplication = true;
    options.cg_pipeline = true;
    options.mvm_duplication = false;
    options.mvm_pipeline = false; // all-at-once crossbar activation
    options.vvm_remap = false;
    return scheduleGraph(graph, arch, options);
}

StatusOr<Schedule>
jainVendorSchedule(const Graph &graph, const CimArchitecture &arch)
{
    return scheduleGraph(graph, arch, ScheduleOptions::none());
}

StatusOr<Schedule>
noOptSchedule(const Graph &graph, const CimArchitecture &arch)
{
    return scheduleGraph(graph, arch, ScheduleOptions::none());
}

} // namespace cimmlc
