/**
 * @file
 * Vendor scheduling policies for the hardware-baseline comparisons of
 * Section 4.2: each published chip came with its own (hand-tuned or
 * compiler-assisted) deployment flow, reproduced here as scheduler
 * configurations over the same cost model so CIM-MLC's gains are
 * attributable to scheduling alone.
 */
#ifndef CIMMLC_BASELINES_VENDOR_H
#define CIMMLC_BASELINES_VENDOR_H

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/schedule.h"

namespace cimmlc {

/**
 * Jia et al. [29] deploy layer-by-layer with a fixed manual mapping:
 * no duplication, no inter-layer pipeline (Figure 20(a) baseline).
 */
StatusOr<Schedule> jiaVendorSchedule(const Graph &graph,
                                     const CimArchitecture &arch);

/**
 * PUMA's compiler [4] performs graph-level optimization with inter-layer
 * pipelining and duplication, but activates all crossbars of an MVM at
 * once — no MVM-grained staggering (Figure 20(b) baseline).
 */
StatusOr<Schedule> pumaVendorSchedule(const Graph &graph,
                                      const CimArchitecture &arch);

/**
 * Jain et al.'s macro [27] runs operators serially with naive row-group
 * order and no remapping (Figure 20(c) baseline).
 */
StatusOr<Schedule> jainVendorSchedule(const Graph &graph,
                                      const CimArchitecture &arch);

/** The "w/o optimization" reference of Figure 20(d). */
StatusOr<Schedule> noOptSchedule(const Graph &graph,
                                 const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_BASELINES_VENDOR_H
