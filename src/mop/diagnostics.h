/**
 * @file
 * Diagnostic records shared by the structural validator and the
 * dataflow analyzer ("mopcheck"). Unlike the first-error Status
 * convention used elsewhere, a lint run accumulates every finding so
 * one pass over a flow reports all problems at once.
 */
#ifndef CIMMLC_MOP_DIAGNOSTICS_H
#define CIMMLC_MOP_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"

namespace cimmlc {

/** Finding severity. Errors mean the flow is unsound as emitted. */
enum class DiagSeverity {
    kWarning, //!< suspicious but executable (dead store, unused xbar)
    kError,   //!< unsound: races, use-before-def, capacity overflow
};

/** "warning" / "error". */
const char *diagSeverityName(DiagSeverity severity);

/**
 * One analyzer/validator finding.
 *
 * `check` is a stable kebab-case identifier (e.g. "race-write-write",
 * "use-before-def-xbar", "capacity-l0", "struct-addr") so tests and
 * tooling can match findings without parsing messages. `stmt_index` is
 * the pre-order statement index inside `section` ("init"/"compute");
 * findings inside a `parallel {}` block are anchored at the block
 * statement itself so they are invariant under arm reordering.
 */
struct MopDiagnostic {
    DiagSeverity severity = DiagSeverity::kError;
    std::string check;
    std::string section;          //!< "init", "compute", or "" (program)
    std::int64_t stmt_index = -1; //!< -1 for program-wide findings
    StatusCode code = StatusCode::kFailedPrecondition;
    std::string message;

    /** "compute:12", "init:0", or "program". */
    std::string location() const;

    /** "error[race-write-write] compute:12: ...". */
    std::string toString() const;

    /** The finding as a first-error style Status. */
    Status toStatus() const { return Status(code, message); }
};

std::int64_t countDiagnostics(const std::vector<MopDiagnostic> &diags,
                              DiagSeverity severity);

/** First error-severity finding as a Status; OK when there is none. */
Status firstError(const std::vector<MopDiagnostic> &diags);

/** Renders findings as a severity|check|loc|message text table. */
std::string
renderDiagnosticsTable(const std::vector<MopDiagnostic> &diags);

/** Serializes findings for the report.v1 "lint" section. */
ConfigValue
diagnosticsToConfig(const std::vector<MopDiagnostic> &diags);

} // namespace cimmlc

#endif // CIMMLC_MOP_DIAGNOSTICS_H
