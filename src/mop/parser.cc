#include "mop/parser.h"

#include <map>
#include <vector>

#include "common/strutil.h"

namespace cimmlc {

namespace {

/** Splits "a, b, [c, d], e" on top-level commas only. */
std::vector<std::string>
splitArgs(std::string_view text)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string current;
    for (char c : text) {
        if (c == '[' || c == '{' || c == '(') {
            ++depth;
        } else if (c == ']' || c == '}' || c == ')') {
            --depth;
        }
        if (c == ',' && depth == 0) {
            out.emplace_back(trim(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!trim(current).empty())
        out.emplace_back(trim(current));
    return out;
}

StatusOr<BufAddr>
parseBufAddr(std::string_view text)
{
    BufAddr addr;
    std::string_view rest = text;
    if (startsWith(rest, "L0[")) {
        addr.space = MemSpace::kL0;
        rest.remove_prefix(3);
    } else if (startsWith(rest, "L1c")) {
        addr.space = MemSpace::kL1;
        rest.remove_prefix(3);
        const std::size_t bracket = rest.find('[');
        if (bracket == std::string_view::npos)
            return parseError("malformed buffer address: " +
                              std::string(text));
        std::int64_t core = 0;
        if (!parseInt64(rest.substr(0, bracket), &core))
            return parseError("malformed L1 core in: " + std::string(text));
        addr.core = core;
        rest.remove_prefix(bracket + 1);
    } else {
        return parseError("unknown buffer space in: " + std::string(text));
    }
    if (rest.empty() || rest.back() != ']')
        return parseError("missing ']' in: " + std::string(text));
    rest.remove_suffix(1);
    std::int64_t offset = 0;
    if (!parseInt64(rest, &offset))
        return parseError("malformed offset in: " + std::string(text));
    addr.offset = offset;
    return addr;
}

/** Parses "c3.x1" or "c3.x1.r16" into core/xb/row fields. */
Status
parseXbAddr(std::string_view text, MetaOp *op)
{
    const std::vector<std::string> parts = split(text, '.');
    if (parts.size() < 2 || parts[0].empty() || parts[0][0] != 'c' ||
        parts[1].empty() || parts[1][0] != 'x') {
        return parseError("malformed crossbar address: " +
                          std::string(text));
    }
    if (!parseInt64(std::string_view(parts[0]).substr(1), &op->core))
        return parseError("bad core index in: " + std::string(text));
    if (!parseInt64(std::string_view(parts[1]).substr(1), &op->xb))
        return parseError("bad crossbar index in: " + std::string(text));
    if (parts.size() >= 3) {
        if (parts[2].empty() || parts[2][0] != 'r')
            return parseError("bad row field in: " + std::string(text));
        if (!parseInt64(std::string_view(parts[2]).substr(1), &op->row))
            return parseError("bad row index in: " + std::string(text));
    }
    return Status::ok();
}

/** Parses "[32, 64]" into a rows/cols pair (payload shape). */
Status
parseShape(std::string_view text, std::int64_t *rows, std::int64_t *cols)
{
    std::string_view rest = trim(text);
    if (rest.size() < 2 || rest.front() != '[' || rest.back() != ']')
        return parseError("malformed shape: " + std::string(text));
    rest = rest.substr(1, rest.size() - 2);
    if (trim(rest).empty()) {
        *rows = 0;
        *cols = 0;
        return Status::ok();
    }
    const std::vector<std::string> parts = split(rest, ',');
    if (parts.size() == 1) {
        if (!parseInt64(parts[0], rows))
            return parseError("malformed shape: " + std::string(text));
        *cols = 1;
        return Status::ok();
    }
    // Higher-rank payloads (conv weights) collapse to rows x rest.
    if (!parseInt64(parts[0], rows))
        return parseError("malformed shape: " + std::string(text));
    std::int64_t rest_product = 1;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        std::int64_t d = 0;
        if (!parseInt64(parts[i], &d))
            return parseError("malformed shape: " + std::string(text));
        rest_product *= d;
    }
    *cols = rest_product;
    return Status::ok();
}

struct ParsedArgs {
    std::vector<std::string> positional;
    std::map<std::string, std::string> keyed;
};

ParsedArgs
classifyArgs(const std::vector<std::string> &args)
{
    ParsedArgs out;
    for (const std::string &arg : args) {
        // A '=' at depth zero marks a keyed argument; shapes like
        // "[32, 64]" never contain '=' so a plain find suffices.
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
            out.positional.push_back(std::string(trim(arg)));
        } else {
            out.keyed[std::string(trim(arg.substr(0, eq)))] =
                std::string(trim(arg.substr(eq + 1)));
        }
    }
    return out;
}

Status
keyedInt(const ParsedArgs &args, const std::string &key, std::int64_t *out)
{
    auto it = args.keyed.find(key);
    if (it == args.keyed.end())
        return Status::ok(); // optional; keep default
    if (!parseInt64(it->second, out))
        return parseError("malformed integer for '" + key + "'");
    return Status::ok();
}

Status
keyedBuf(const ParsedArgs &args, const std::string &key, BufAddr *out)
{
    auto it = args.keyed.find(key);
    if (it == args.keyed.end())
        return Status::ok();
    CIMMLC_ASSIGN_OR_RETURN(*out, parseBufAddr(it->second));
    return Status::ok();
}

Status
fillCoreParams(const ParsedArgs &args, MetaOp *op)
{
    if (!args.positional.empty()) {
        op->core_params.is_conv = args.positional[0] == "conv";
    }
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "cin", &op->core_params.in_channels));
    CIMMLC_RETURN_IF_ERROR(keyedInt(args, "h", &op->core_params.in_h));
    CIMMLC_RETURN_IF_ERROR(keyedInt(args, "w", &op->core_params.in_w));
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "cout", &op->core_params.out_channels));
    CIMMLC_RETURN_IF_ERROR(keyedInt(args, "k", &op->core_params.kernel));
    CIMMLC_RETURN_IF_ERROR(keyedInt(args, "s", &op->core_params.stride));
    CIMMLC_RETURN_IF_ERROR(keyedInt(args, "p", &op->core_params.padding));
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "fin", &op->core_params.in_features));
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "fout", &op->core_params.out_features));
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "wb", &op->core_params.win_begin));
    CIMMLC_RETURN_IF_ERROR(
        keyedInt(args, "we", &op->core_params.win_end));
    return Status::ok();
}

} // namespace

StatusOr<MetaOp>
parseOpLine(const std::string &line)
{
    const std::string_view text = trim(line);
    const std::size_t open = text.find('(');
    if (open == std::string_view::npos || text.back() != ')')
        return parseError("op line must be name(args): " +
                          std::string(text));
    const std::string name(trim(text.substr(0, open)));
    const ParsedArgs args = classifyArgs(
        splitArgs(text.substr(open + 1, text.size() - open - 2)));

    MetaOp op;
    auto xbaddr = [&](const char *key) -> Status {
        auto it = args.keyed.find(key);
        if (it == args.keyed.end())
            return parseError(std::string("missing ") + key + " in " +
                              name);
        return parseXbAddr(it->second, &op);
    };

    if (name == "cim.readcore") {
        op.kind = MetaOpKind::kReadCore;
        CIMMLC_RETURN_IF_ERROR(fillCoreParams(args, &op));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "coreaddr", &op.core));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "dst", &op.dst));
    } else if (name == "cim.writecore") {
        op.kind = MetaOpKind::kWriteCore;
        CIMMLC_RETURN_IF_ERROR(fillCoreParams(args, &op));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "coreaddr", &op.core));
        if (args.keyed.count("weights")) {
            CIMMLC_RETURN_IF_ERROR(
                parseShape(args.keyed.at("weights"), &op.rows, &op.cols));
        }
    } else if (name == "cim.readxb") {
        op.kind = MetaOpKind::kReadXb;
        CIMMLC_RETURN_IF_ERROR(xbaddr("xbaddr"));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "len", &op.len));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "rows", &op.rows));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "cols", &op.cols));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "dst", &op.dst));
    } else if (name == "cim.writexb") {
        op.kind = MetaOpKind::kWriteXb;
        CIMMLC_RETURN_IF_ERROR(xbaddr("xbaddr"));
        if (args.keyed.count("mat")) {
            CIMMLC_RETURN_IF_ERROR(
                parseShape(args.keyed.at("mat"), &op.rows, &op.cols));
        }
    } else if (name == "cim.readrow") {
        op.kind = MetaOpKind::kReadRow;
        CIMMLC_RETURN_IF_ERROR(xbaddr("rowaddr"));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "len", &op.len));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "cols", &op.cols));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "dst", &op.dst));
    } else if (name == "cim.writerow") {
        op.kind = MetaOpKind::kWriteRow;
        CIMMLC_RETURN_IF_ERROR(xbaddr("rowaddr"));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "len", &op.len));
        if (args.keyed.count("value")) {
            CIMMLC_RETURN_IF_ERROR(
                parseShape(args.keyed.at("value"), &op.rows, &op.cols));
        }
    } else if (name == "mov") {
        op.kind = MetaOpKind::kMov;
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "dst", &op.dst));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "len", &op.len));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "count", &op.count));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "sstride", &op.src_stride));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "dstride", &op.dst_stride));
        std::int64_t host = 0;
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "host", &host));
        op.host = host != 0;
    } else {
        // Anything else is a DCOM function.
        op.kind = MetaOpKind::kDcom;
        op.func = name;
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src1", &op.src));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "src2", &op.src2));
        CIMMLC_RETURN_IF_ERROR(keyedBuf(args, "dst", &op.dst));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "len", &op.len));
        std::int64_t shift = 0;
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "shift", &shift));
        op.dcom_params.shift = static_cast<int>(shift);
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "k", &op.dcom_params.kernel));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "s", &op.dcom_params.stride));
        CIMMLC_RETURN_IF_ERROR(
            keyedInt(args, "p", &op.dcom_params.padding));
        CIMMLC_RETURN_IF_ERROR(
            keyedInt(args, "c", &op.dcom_params.channels));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "h", &op.dcom_params.in_h));
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "w", &op.dcom_params.in_w));
        std::int64_t host = 0;
        CIMMLC_RETURN_IF_ERROR(keyedInt(args, "host", &host));
        op.host = host != 0;
    }
    return op;
}

namespace {

struct LineCursor {
    std::vector<std::string> lines;
    std::size_t pos = 0;

    bool done() const { return pos >= lines.size(); }
    const std::string &peek() const { return lines[pos]; }
    void advance() { ++pos; }
};

StatusOr<Stmt> parseStmt(LineCursor *cursor);

StatusOr<std::vector<Stmt>>
parseBlockBody(LineCursor *cursor)
{
    std::vector<Stmt> body;
    while (!cursor->done()) {
        const std::string line(trim(cursor->peek()));
        if (line == "}") {
            cursor->advance();
            return body;
        }
        CIMMLC_ASSIGN_OR_RETURN(Stmt stmt, parseStmt(cursor));
        body.push_back(std::move(stmt));
    }
    return parseError("unterminated block (missing '}')");
}

StatusOr<Stmt>
parseStmt(LineCursor *cursor)
{
    const std::string line(trim(cursor->peek()));
    cursor->advance();
    if (line == "parallel {") {
        CIMMLC_ASSIGN_OR_RETURN(std::vector<Stmt> body,
                                parseBlockBody(cursor));
        return Stmt::makeParallel(std::move(body));
    }
    if (startsWith(line, "repeat ")) {
        std::string_view rest = std::string_view(line).substr(7);
        const std::size_t brace = rest.find('{');
        if (brace == std::string_view::npos)
            return parseError("repeat without '{': " + line);
        std::int64_t count = 0;
        if (!parseInt64(rest.substr(0, brace), &count))
            return parseError("malformed repeat count: " + line);
        CIMMLC_ASSIGN_OR_RETURN(std::vector<Stmt> body,
                                parseBlockBody(cursor));
        return Stmt::makeRepeat(count, std::move(body));
    }
    CIMMLC_ASSIGN_OR_RETURN(MetaOp op, parseOpLine(line));
    return Stmt::makeOp(std::move(op));
}

} // namespace

StatusOr<MopProgram>
parseProgram(const std::string &text)
{
    LineCursor cursor;
    for (const std::string &raw : split(text, '\n')) {
        const std::string line(trim(raw));
        if (line.empty() || startsWith(line, "//") ||
            startsWith(line, "#")) {
            continue;
        }
        cursor.lines.push_back(line);
    }

    MopProgram program("parsed", "unknown");
    std::vector<Stmt> *section = &program.compute();
    while (!cursor.done()) {
        const std::string &line = cursor.peek();
        if (line == "init:") {
            section = &program.init();
            cursor.advance();
            continue;
        }
        if (line == "compute:") {
            section = &program.compute();
            cursor.advance();
            continue;
        }
        CIMMLC_ASSIGN_OR_RETURN(Stmt stmt, parseStmt(&cursor));
        section->push_back(std::move(stmt));
    }
    return program;
}

} // namespace cimmlc
