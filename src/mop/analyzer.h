/**
 * @file
 * "mopcheck": dataflow static analysis over meta-operator programs.
 *
 * Walks the sequential / `parallel {}` / `repeat N {}` structure of a
 * MopProgram and checks properties the structural validator cannot see
 * because they span statements:
 *
 *  - def-before-use on buffer regions (use-before-def-buffer), crossbar
 *    weights (use-before-def-xbar, xbar-overwrite) and core state
 *    (use-before-def-core);
 *  - races across the arms of a `parallel {}` block: overlapping
 *    write-write / read-write buffer ranges (race-write-write,
 *    race-read-write), conflicting crossbar programming (race-xbar) and
 *    core-state updates (race-core). CIM reads accumulate commutatively
 *    (`dst[j] += ...` in the functional simulator), so overlapping
 *    accumulates across arms are legal;
 *  - capacity: peak live elements per buffer — live ranges run from
 *    first def to last use — against the architecture's l0/l1 sizes
 *    (capacity-l0, capacity-l1);
 *  - warnings: stores fully overwritten before any read (dead-store),
 *    programmed crossbars that are never activated (xbar-unused-write),
 *    core state replaced before use (core-overwrite).
 *
 * Every finding is reported (std::vector<MopDiagnostic>), unlike
 * validateProgram's first-error Status. Diagnostics are deterministic
 * and invariant under permutation of parallel arms: findings inside a
 * block are anchored at the block's statement index and canonically
 * ordered.
 *
 * Compressed flows (CodegenResult::executable == false) emit one
 * representative window inside `repeat` blocks and only activate the
 * representative replica's crossbars, so reads are under-approximated
 * and no "never read / never written" conclusion is provable. Set
 * AnalyzeOptions::executable = false to restrict the analysis to the
 * sound subset: races, crossbar/core use-before-def, capacity and
 * structure stay on; buffer use-before-def, dead-store,
 * xbar-overwrite / core-overwrite and the unused-programming warnings
 * are suppressed.
 *
 * ValidateOptions::enforce_l0_capacity gates both the structural L0
 * address bound and the capacity-l0 finding: emitted flows address a
 * virtual L0 space (see ValidateOptions), so the lint stage disables
 * it while hand-built programs keep the physical bound. Peak-live
 * statistics are recorded either way.
 */
#ifndef CIMMLC_MOP_ANALYZER_H
#define CIMMLC_MOP_ANALYZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "mop/diagnostics.h"
#include "mop/program.h"
#include "mop/validator.h"

namespace cimmlc {

/** A buffer region defined before the program runs (e.g. a graph input
 * loaded by the host, or a scratch area owned by the caller). */
struct LiveInRegion {
    MemSpace space = MemSpace::kL0;
    std::int64_t core = 0; //!< L1 bank (ignored for L0)
    std::int64_t begin = 0;
    std::int64_t end = 0; //!< exclusive, elements
};

/** Analyzer knobs. */
struct AnalyzeOptions {
    //! regions externally initialized before execution
    std::vector<LiveInRegion> live_in;
    //! the flow is unrolled/executable: enables the buffer-region
    //! use-before-def, dead-store and unused-crossbar checks
    bool executable = true;
    //! run the structural validator first ("struct-*" findings)
    bool structural = true;
    //! options for the structural pass
    ValidateOptions validate;
};

/** Everything one analyzer run learned about a program. */
struct AnalyzeResult {
    std::vector<MopDiagnostic> diagnostics;
    std::int64_t statements = 0; //!< statement nodes in both sections
    std::int64_t ops = 0;        //!< op statements in both sections
    std::int64_t l0_peak_live_elems = 0;
    std::int64_t l1_peak_live_elems = 0; //!< max over cores
    std::int64_t crossbars_programmed = 0;

    std::int64_t errors() const;
    std::int64_t warnings() const;
    bool clean() const { return diagnostics.empty(); }

    /** One-line "mopcheck: ..." statistics string. */
    std::string summary() const;
    /** Findings as a severity|check|loc|message table. */
    std::string table() const;
};

/** Runs mopcheck on @p program against @p arch. */
AnalyzeResult analyzeProgram(const MopProgram &program,
                             const CimArchitecture &arch,
                             const AnalyzeOptions &options = {});

} // namespace cimmlc

#endif // CIMMLC_MOP_ANALYZER_H
