/**
 * @file
 * Structural validation of meta-operator flows against a target
 * architecture: address ranges, row/column bounds, parallel-row limits,
 * computing-mode legality, and device write policy.
 */
#ifndef CIMMLC_MOP_VALIDATOR_H
#define CIMMLC_MOP_VALIDATOR_H

#include "arch/arch.h"
#include "common/status.h"
#include "mop/program.h"

namespace cimmlc {

/** Validation knobs. */
struct ValidateOptions {
    //! reject runtime crossbar writes on weights-stationary devices
    bool enforce_write_policy = true;
    //! reject ops below the architecture's computing-mode granularity
    bool enforce_mode = true;
};

/**
 * Checks @p program against @p arch. The first violation is returned;
 * OK means the flow is structurally executable on the architecture.
 */
Status validateProgram(const MopProgram &program,
                       const CimArchitecture &arch,
                       const ValidateOptions &options = {});

} // namespace cimmlc

#endif // CIMMLC_MOP_VALIDATOR_H
