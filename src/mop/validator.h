/**
 * @file
 * Structural validation of meta-operator flows against a target
 * architecture: address ranges, row/column bounds, parallel-row limits,
 * computing-mode legality, and device write policy.
 *
 * Two entry points over the same traversal:
 *  - collectProgramDiagnostics() reports every violation as a
 *    MopDiagnostic ("struct-*" check ids) — used by the mopcheck lint
 *    stage;
 *  - validateProgram() keeps the historical first-error Status
 *    contract as a thin wrapper.
 */
#ifndef CIMMLC_MOP_VALIDATOR_H
#define CIMMLC_MOP_VALIDATOR_H

#include <vector>

#include "arch/arch.h"
#include "common/status.h"
#include "mop/diagnostics.h"
#include "mop/program.h"

namespace cimmlc {

/** Validation knobs. */
struct ValidateOptions {
    //! reject runtime crossbar writes on weights-stationary devices
    bool enforce_write_policy = true;
    //! reject ops below the architecture's computing-mode granularity
    bool enforce_mode = true;
    /**
     * Treat l0_size_kib as a hard address bound. Hand-built flows
     * address physical L0; codegen, however, assigns tensor offsets in
     * a virtual L0 space (the global buffer is backed by off-chip
     * memory, and l0_size_kib prices bandwidth/energy), so the lint
     * stage disables this for emitted programs. L1 bounds are always
     * enforced — per-core scratchpads are physically addressed.
     */
    bool enforce_l0_capacity = true;
};

/**
 * Collect-all mode: every structural violation in @p program, in
 * traversal order (init section before compute, pre-order within a
 * section). Per op, only the first violation is reported — follow-on
 * checks on an already-broken op would cascade misleadingly. All
 * structural findings are error severity.
 */
std::vector<MopDiagnostic>
collectProgramDiagnostics(const MopProgram &program,
                          const CimArchitecture &arch,
                          const ValidateOptions &options = {});

/**
 * Checks @p program against @p arch. The first violation is returned;
 * OK means the flow is structurally executable on the architecture.
 */
Status validateProgram(const MopProgram &program,
                       const CimArchitecture &arch,
                       const ValidateOptions &options = {});

} // namespace cimmlc

#endif // CIMMLC_MOP_VALIDATOR_H
