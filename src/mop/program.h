/**
 * @file
 * Meta-operator programs: the statement tree (sequence / parallel /
 * repeat) that code generation emits and the simulators consume.
 */
#ifndef CIMMLC_MOP_PROGRAM_H
#define CIMMLC_MOP_PROGRAM_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mop/metaop.h"

namespace cimmlc {

/** A statement: one op, or a structured block of statements. */
struct Stmt {
    enum class Kind { kOp, kParallel, kRepeat };

    Kind kind = Kind::kOp;
    MetaOp op;               //!< valid when kind == kOp
    std::vector<Stmt> body;  //!< valid for kParallel / kRepeat
    std::int64_t repeat = 1; //!< valid for kRepeat

    static Stmt
    makeOp(MetaOp op)
    {
        Stmt s;
        s.kind = Kind::kOp;
        s.op = std::move(op);
        return s;
    }

    static Stmt
    makeParallel(std::vector<Stmt> body)
    {
        Stmt s;
        s.kind = Kind::kParallel;
        s.body = std::move(body);
        return s;
    }

    static Stmt
    makeRepeat(std::int64_t count, std::vector<Stmt> body)
    {
        Stmt s;
        s.kind = Kind::kRepeat;
        s.repeat = count;
        s.body = std::move(body);
        return s;
    }
};

/** Aggregate op counts of a program (reported by `summary()`). */
struct MopCounts {
    std::int64_t cim_reads = 0;
    std::int64_t cim_writes = 0;
    std::int64_t dcom = 0;
    std::int64_t mov = 0;
    std::int64_t parallel_blocks = 0;

    std::int64_t
    total() const
    {
        return cim_reads + cim_writes + dcom + mov;
    }
};

/**
 * A compiled meta-operator flow.
 *
 * Mirrors the Figure 16 structure: an `init` section programs weights
 * (cim.writexb / cim.writerow), a `compute` section carries the steady-
 * state flow.
 */
class MopProgram
{
  public:
    MopProgram() = default;
    MopProgram(std::string name, std::string mode)
        : name_(std::move(name)), mode_(std::move(mode))
    {
    }

    const std::string &name() const { return name_; }
    const std::string &mode() const { return mode_; }

    std::vector<Stmt> &init() { return init_; }
    const std::vector<Stmt> &init() const { return init_; }
    std::vector<Stmt> &compute() { return compute_; }
    const std::vector<Stmt> &compute() const { return compute_; }

    /** Appends a single op to the compute section. */
    void
    emit(MetaOp op)
    {
        compute_.push_back(Stmt::makeOp(std::move(op)));
    }

    /** Appends a single op to the init section. */
    void
    emitInit(MetaOp op)
    {
        init_.push_back(Stmt::makeOp(std::move(op)));
    }

    /** Counts ops across both sections, expanding repeats. */
    MopCounts counts() const;

    /** Visits every op in execution order, expanding repeat blocks. */
    void forEachOp(const std::function<void(const MetaOp &)> &fn) const;

    /** One-line statistics string. */
    std::string summary() const;

  private:
    std::string name_;
    std::string mode_;
    std::vector<Stmt> init_;
    std::vector<Stmt> compute_;
};

} // namespace cimmlc

#endif // CIMMLC_MOP_PROGRAM_H
