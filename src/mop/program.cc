#include "mop/program.h"

#include "common/strutil.h"

namespace cimmlc {

const char *
metaOpKindName(MetaOpKind kind)
{
    switch (kind) {
      case MetaOpKind::kReadCore: return "cim.readcore";
      case MetaOpKind::kWriteCore: return "cim.writecore";
      case MetaOpKind::kReadXb: return "cim.readxb";
      case MetaOpKind::kWriteXb: return "cim.writexb";
      case MetaOpKind::kReadRow: return "cim.readrow";
      case MetaOpKind::kWriteRow: return "cim.writerow";
      case MetaOpKind::kDcom: return "dcom";
      case MetaOpKind::kMov: return "mov";
    }
    return "?";
}

bool
isCimMetaOp(MetaOpKind kind)
{
    switch (kind) {
      case MetaOpKind::kReadCore:
      case MetaOpKind::kWriteCore:
      case MetaOpKind::kReadXb:
      case MetaOpKind::kWriteXb:
      case MetaOpKind::kReadRow:
      case MetaOpKind::kWriteRow:
        return true;
      default:
        return false;
    }
}

std::string
bufAddrToString(const BufAddr &addr)
{
    if (addr.space == MemSpace::kL0)
        return strformat("L0[%lld]", static_cast<long long>(addr.offset));
    return strformat("L1c%lld[%lld]", static_cast<long long>(addr.core),
                     static_cast<long long>(addr.offset));
}

namespace {

std::string
coreParamsToString(const CoreOpParams &p)
{
    std::string win;
    if (p.win_begin != 0 || p.win_end != 0) {
        win = strformat(", wb=%lld, we=%lld",
                        static_cast<long long>(p.win_begin),
                        static_cast<long long>(p.win_end));
    }
    if (p.is_conv) {
        return strformat(
            "conv, cin=%lld, h=%lld, w=%lld, cout=%lld, k=%lld, s=%lld, "
            "p=%lld%s",
            static_cast<long long>(p.in_channels),
            static_cast<long long>(p.in_h),
            static_cast<long long>(p.in_w),
            static_cast<long long>(p.out_channels),
            static_cast<long long>(p.kernel),
            static_cast<long long>(p.stride),
            static_cast<long long>(p.padding), win.c_str());
    }
    return strformat("linear, fin=%lld, fout=%lld%s",
                     static_cast<long long>(p.in_features),
                     static_cast<long long>(p.out_features), win.c_str());
}

std::string
payloadShapeToString(const std::shared_ptr<const Int8Tensor> &payload)
{
    return payload ? payload->shape().toString() : "[]";
}

} // namespace

std::string
MetaOp::toString() const
{
    switch (kind) {
      case MetaOpKind::kReadCore:
        return strformat(
            "cim.readcore(%s, coreaddr=%lld, src=%s, dst=%s)",
            coreParamsToString(core_params).c_str(),
            static_cast<long long>(core), bufAddrToString(src).c_str(),
            bufAddrToString(dst).c_str());
      case MetaOpKind::kWriteCore:
        return strformat("cim.writecore(%s, coreaddr=%lld, weights=%s)",
                         coreParamsToString(core_params).c_str(),
                         static_cast<long long>(core),
                         payloadShapeToString(payload).c_str());
      case MetaOpKind::kReadXb:
        return strformat(
            "cim.readxb(xbaddr=c%lld.x%lld, len=%lld, rows=%lld, "
            "cols=%lld, src=%s, dst=%s)",
            static_cast<long long>(core), static_cast<long long>(xb),
            static_cast<long long>(len), static_cast<long long>(rows),
            static_cast<long long>(cols), bufAddrToString(src).c_str(),
            bufAddrToString(dst).c_str());
      case MetaOpKind::kWriteXb:
        return strformat("cim.writexb(xbaddr=c%lld.x%lld, mat=%s)",
                         static_cast<long long>(core),
                         static_cast<long long>(xb),
                         payloadShapeToString(payload).c_str());
      case MetaOpKind::kReadRow:
        return strformat(
            "cim.readrow(rowaddr=c%lld.x%lld.r%lld, len=%lld, cols=%lld, "
            "src=%s, dst=%s)",
            static_cast<long long>(core), static_cast<long long>(xb),
            static_cast<long long>(row), static_cast<long long>(len),
            static_cast<long long>(cols), bufAddrToString(src).c_str(),
            bufAddrToString(dst).c_str());
      case MetaOpKind::kWriteRow:
        return strformat(
            "cim.writerow(rowaddr=c%lld.x%lld.r%lld, len=%lld, value=%s)",
            static_cast<long long>(core), static_cast<long long>(xb),
            static_cast<long long>(row), static_cast<long long>(len),
            payloadShapeToString(payload).c_str());
      case MetaOpKind::kDcom: {
        std::string extras;
        if (func == dcomfunc::kRequant) {
            extras = strformat(", shift=%d", dcom_params.shift);
        } else if (func == dcomfunc::kMaxPool ||
                   func == dcomfunc::kAvgPool ||
                   func == dcomfunc::kGlobalAvgPool) {
            extras = strformat(
                ", k=%lld, s=%lld, p=%lld, c=%lld, h=%lld, w=%lld",
                static_cast<long long>(dcom_params.kernel),
                static_cast<long long>(dcom_params.stride),
                static_cast<long long>(dcom_params.padding),
                static_cast<long long>(dcom_params.channels),
                static_cast<long long>(dcom_params.in_h),
                static_cast<long long>(dcom_params.in_w));
        } else if (func == dcomfunc::kSoftmax ||
                   func == dcomfunc::kLayerNorm) {
            extras = strformat(", w=%lld",
                               static_cast<long long>(dcom_params.in_w));
        }
        if (host)
            extras += ", host=1";
        if (func == dcomfunc::kAdd || func == dcomfunc::kMatMul) {
            return strformat("%s(src1=%s, src2=%s, dst=%s, len=%lld%s)",
                             func.c_str(), bufAddrToString(src).c_str(),
                             bufAddrToString(src2).c_str(),
                             bufAddrToString(dst).c_str(),
                             static_cast<long long>(len), extras.c_str());
        }
        return strformat("%s(src=%s, dst=%s, len=%lld%s)", func.c_str(),
                         bufAddrToString(src).c_str(),
                         bufAddrToString(dst).c_str(),
                         static_cast<long long>(len), extras.c_str());
      }
      case MetaOpKind::kMov: {
        const char *host_tag = host ? ", host=1" : "";
        if (count > 1) {
            return strformat(
                "mov(src=%s, dst=%s, len=%lld, count=%lld, sstride=%lld, "
                "dstride=%lld%s)",
                bufAddrToString(src).c_str(),
                bufAddrToString(dst).c_str(), static_cast<long long>(len),
                static_cast<long long>(count),
                static_cast<long long>(src_stride),
                static_cast<long long>(dst_stride), host_tag);
        }
        return strformat("mov(src=%s, dst=%s, len=%lld%s)",
                         bufAddrToString(src).c_str(),
                         bufAddrToString(dst).c_str(),
                         static_cast<long long>(len), host_tag);
      }
    }
    return "?";
}

namespace {

void
countStmt(const Stmt &stmt, std::int64_t multiplier, MopCounts *counts)
{
    switch (stmt.kind) {
      case Stmt::Kind::kOp: {
        const MetaOp &op = stmt.op;
        switch (op.kind) {
          case MetaOpKind::kReadCore:
          case MetaOpKind::kReadXb:
          case MetaOpKind::kReadRow:
            counts->cim_reads += multiplier;
            break;
          case MetaOpKind::kWriteCore:
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kWriteRow:
            counts->cim_writes += multiplier;
            break;
          case MetaOpKind::kDcom:
            counts->dcom += multiplier;
            break;
          case MetaOpKind::kMov:
            counts->mov += multiplier;
            break;
        }
        break;
      }
      case Stmt::Kind::kParallel:
        counts->parallel_blocks += multiplier;
        for (const Stmt &child : stmt.body)
            countStmt(child, multiplier, counts);
        break;
      case Stmt::Kind::kRepeat:
        for (const Stmt &child : stmt.body)
            countStmt(child, multiplier * stmt.repeat, counts);
        break;
    }
}

void
visitStmt(const Stmt &stmt, const std::function<void(const MetaOp &)> &fn)
{
    switch (stmt.kind) {
      case Stmt::Kind::kOp:
        fn(stmt.op);
        break;
      case Stmt::Kind::kParallel:
        for (const Stmt &child : stmt.body)
            visitStmt(child, fn);
        break;
      case Stmt::Kind::kRepeat:
        for (std::int64_t i = 0; i < stmt.repeat; ++i) {
            for (const Stmt &child : stmt.body)
                visitStmt(child, fn);
        }
        break;
    }
}

} // namespace

MopCounts
MopProgram::counts() const
{
    MopCounts out;
    for (const Stmt &stmt : init_)
        countStmt(stmt, 1, &out);
    for (const Stmt &stmt : compute_)
        countStmt(stmt, 1, &out);
    return out;
}

void
MopProgram::forEachOp(const std::function<void(const MetaOp &)> &fn) const
{
    for (const Stmt &stmt : init_)
        visitStmt(stmt, fn);
    for (const Stmt &stmt : compute_)
        visitStmt(stmt, fn);
}

std::string
MopProgram::summary() const
{
    const MopCounts c = counts();
    return strformat(
        "%s [%s]: %lld ops (%lld cim-read, %lld cim-write, %lld dcom, "
        "%lld mov), %lld parallel blocks",
        name_.c_str(), mode_.c_str(), static_cast<long long>(c.total()),
        static_cast<long long>(c.cim_reads),
        static_cast<long long>(c.cim_writes),
        static_cast<long long>(c.dcom), static_cast<long long>(c.mov),
        static_cast<long long>(c.parallel_blocks));
}

} // namespace cimmlc
