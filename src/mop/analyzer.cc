#include "mop/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strutil.h"
#include "common/table.h"
#include "tensor/shape.h"

namespace cimmlc {

namespace {

namespace check {
inline constexpr const char *kUbdBuffer = "use-before-def-buffer";
inline constexpr const char *kUbdXbar = "use-before-def-xbar";
inline constexpr const char *kUbdCore = "use-before-def-core";
inline constexpr const char *kRaceWriteWrite = "race-write-write";
inline constexpr const char *kRaceReadWrite = "race-read-write";
inline constexpr const char *kRaceXbar = "race-xbar";
inline constexpr const char *kRaceCore = "race-core";
inline constexpr const char *kCapacityL0 = "capacity-l0";
inline constexpr const char *kCapacityL1 = "capacity-l1";
inline constexpr const char *kDeadStore = "dead-store";
inline constexpr const char *kXbarOverwrite = "xbar-overwrite";
inline constexpr const char *kXbarUnused = "xbar-unused-write";
inline constexpr const char *kCoreOverwrite = "core-overwrite";
inline constexpr const char *kCoreUnused = "core-unused-write";
} // namespace check

struct Interval {
    std::int64_t begin = 0;
    std::int64_t end = 0;
};

/** A sorted set of disjoint half-open element intervals. */
class IntervalSet
{
  public:
    void
    add(std::int64_t begin, std::int64_t end)
    {
        if (begin >= end)
            return;
        // Find the run of intervals overlapping or adjacent to [b, e).
        const std::size_t lo = static_cast<std::size_t>(
            std::lower_bound(iv_.begin(), iv_.end(), begin,
                             [](const Interval &i, std::int64_t p) {
                                 return i.end < p;
                             }) -
            iv_.begin());
        std::size_t hi = lo;
        while (hi < iv_.size() && iv_[hi].begin <= end) {
            begin = std::min(begin, iv_[hi].begin);
            end = std::max(end, iv_[hi].end);
            ++hi;
        }
        if (hi == lo + 1) { // merged into one slot: no tail shuffle
            iv_[lo] = Interval{begin, end};
            return;
        }
        iv_.erase(iv_.begin() + static_cast<std::ptrdiff_t>(lo),
                  iv_.begin() + static_cast<std::ptrdiff_t>(hi));
        iv_.insert(iv_.begin() + static_cast<std::ptrdiff_t>(lo),
                   Interval{begin, end});
    }

    void
    addSet(const IntervalSet &other)
    {
        for (const Interval &i : other.iv_)
            add(i.begin, i.end);
    }

    void
    subtract(std::int64_t begin, std::int64_t end)
    {
        if (begin >= end)
            return;
        std::vector<Interval> out;
        out.reserve(iv_.size() + 1);
        for (const Interval &i : iv_) {
            if (i.end <= begin || i.begin >= end) {
                out.push_back(i);
                continue;
            }
            if (i.begin < begin)
                out.push_back(Interval{i.begin, begin});
            if (i.end > end)
                out.push_back(Interval{end, i.end});
        }
        iv_ = std::move(out);
    }

    bool
    intersects(std::int64_t begin, std::int64_t end) const
    {
        if (begin >= end)
            return false;
        const auto it = firstReaching(begin);
        return it != iv_.end() && it->begin < end;
    }

    /** First overlapping interval with @p other, if any. */
    std::optional<Interval>
    firstOverlap(const IntervalSet &other) const
    {
        std::size_t a = 0, b = 0;
        while (a < iv_.size() && b < other.iv_.size()) {
            const Interval &x = iv_[a];
            const Interval &y = other.iv_[b];
            const std::int64_t lo = std::max(x.begin, y.begin);
            const std::int64_t hi = std::min(x.end, y.end);
            if (lo < hi)
                return Interval{lo, hi};
            if (x.end < y.end)
                ++a;
            else
                ++b;
        }
        return std::nullopt;
    }

    /** Parts of [begin, end) not covered by this set. */
    IntervalSet
    uncovered(std::int64_t begin, std::int64_t end) const
    {
        IntervalSet missing;
        if (begin >= end)
            return missing;
        std::int64_t cursor = begin;
        for (auto it = firstReaching(begin);
             it != iv_.end() && it->begin < end; ++it) {
            if (it->begin > cursor)
                missing.iv_.push_back(Interval{cursor, it->begin});
            cursor = std::max(cursor, it->end);
            if (cursor >= end)
                break;
        }
        if (cursor < end)
            missing.iv_.push_back(Interval{cursor, end});
        return missing;
    }

    void
    subtractSet(const IntervalSet &other)
    {
        for (const Interval &i : other.iv_)
            subtract(i.begin, i.end);
    }

    bool empty() const { return iv_.empty(); }
    const std::vector<Interval> &intervals() const { return iv_; }

    Interval
    first() const
    {
        return iv_.empty() ? Interval{} : iv_.front();
    }

  private:
    /** First interval whose end extends past @p pos (they are sorted
     * and disjoint, so this is the only one that can cover pos). */
    std::vector<Interval>::const_iterator
    firstReaching(std::int64_t pos) const
    {
        return std::lower_bound(iv_.begin(), iv_.end(), pos,
                                [](const Interval &i, std::int64_t p) {
                                    return i.end <= p;
                                });
    }

    std::vector<Interval> iv_;
};

/** Buffer identity: the L0 global buffer or one core's L1 bank. */
struct BufKey {
    MemSpace space = MemSpace::kL0;
    std::int64_t core = 0; //!< 0 for L0

    bool
    operator<(const BufKey &other) const
    {
        if (space != other.space)
            return space < other.space;
        return core < other.core;
    }
    bool operator==(const BufKey &) const = default;
};

BufKey
keyOf(const BufAddr &addr)
{
    BufKey key;
    key.space = addr.space;
    key.core = addr.space == MemSpace::kL1 ? addr.core : 0;
    return key;
}

std::string
bufKeyName(const BufKey &key)
{
    if (key.space == MemSpace::kL0)
        return "L0";
    return strformat("L1c%lld", static_cast<long long>(key.core));
}

std::string
regionName(const BufKey &key, const Interval &i)
{
    return strformat("%s[%lld, %lld)", bufKeyName(key).c_str(),
                     static_cast<long long>(i.begin),
                     static_cast<long long>(i.end));
}

std::string
xbName(std::int64_t core, std::int64_t xb)
{
    return strformat("c%lld.x%lld", static_cast<long long>(core),
                     static_cast<long long>(xb));
}

/** One buffer-region access of an op. */
struct RegionRef {
    BufKey key;
    std::int64_t begin = 0;
    std::int64_t end = 0;
};

/** One crossbar row-range access of an op. */
struct XbRef {
    std::int64_t core = 0;
    std::int64_t xb = 0;
    std::int64_t begin = 0;
    std::int64_t end = 0;
};

/**
 * The memory footprint of one op, mirroring the functional simulator's
 * semantics (funcsim/simulator.cc): CIM reads *accumulate* into their
 * destination, kReadCore assigns per-window strided intervals, kMov is
 * a strided block copy, DCOM extents are per-function.
 */
struct OpEffects {
    std::vector<RegionRef> reads;
    std::vector<RegionRef> writes; //!< plain assignments
    std::vector<RegionRef> accums; //!< commutative read-modify-write
    std::vector<XbRef> xb_reads;
    std::vector<XbRef> xb_writes;
    std::vector<std::int64_t> core_reads;  //!< core-state uses
    std::vector<std::int64_t> core_writes; //!< core-state installs
};

void
addRegion(std::vector<RegionRef> *out, const BufAddr &addr,
          std::int64_t begin, std::int64_t end)
{
    if (addr.offset < 0 || begin >= end)
        return;
    out->push_back(RegionRef{keyOf(addr), addr.offset + begin,
                             addr.offset + end});
}

void
addExtent(std::vector<RegionRef> *out, const BufAddr &addr,
          std::int64_t extent)
{
    addRegion(out, addr, 0, extent);
}

//! strided movs beyond this many blocks fall back to their hull
constexpr std::int64_t kMaxMovBlocks = 1024;

void
addStrided(std::vector<RegionRef> *out, const BufAddr &addr,
           std::int64_t len, std::int64_t count, std::int64_t stride)
{
    if (len <= 0 || count <= 0)
        return;
    if (count <= kMaxMovBlocks && stride >= 0) {
        for (std::int64_t b = 0; b < count; ++b) {
            BufAddr block = addr;
            block.offset += b * stride;
            addExtent(out, block, len);
        }
        return;
    }
    const std::int64_t span = stride * (count - 1);
    const std::int64_t lo = std::min<std::int64_t>(0, span);
    const std::int64_t hi = std::max<std::int64_t>(0, span) + len;
    addRegion(out, addr, lo, hi);
}

OpEffects
computeEffects(const MetaOp &op, const CimArchitecture &arch)
{
    OpEffects fx;
    switch (op.kind) {
      case MetaOpKind::kWriteCore:
        fx.core_writes.push_back(op.core);
        break;
      case MetaOpKind::kReadCore: {
        fx.core_reads.push_back(op.core);
        const CoreOpParams &p = op.core_params;
        if (p.is_conv) {
            const std::int64_t OH =
                convOutDim(p.in_h, p.kernel, p.stride, p.padding);
            const std::int64_t OW =
                convOutDim(p.in_w, p.kernel, p.stride, p.padding);
            if (OH <= 0 || OW <= 0)
                break;
            addExtent(&fx.reads, op.src,
                      p.in_channels * p.in_h * p.in_w);
            const std::int64_t w0 = p.win_begin;
            const std::int64_t w1 = p.win_end > 0 ? p.win_end : OH;
            for (std::int64_t o = 0; o < p.out_channels; ++o) {
                addRegion(&fx.writes, op.dst, (o * OH + w0) * OW,
                          (o * OH + w1) * OW);
            }
        } else {
            const std::int64_t w0 = p.win_begin;
            const std::int64_t w1 = p.win_end > 0 ? p.win_end : 1;
            addRegion(&fx.reads, op.src, w0 * p.in_features,
                      w1 * p.in_features);
            addRegion(&fx.writes, op.dst, w0 * p.out_features,
                      w1 * p.out_features);
        }
        break;
      }
      case MetaOpKind::kReadXb: {
        fx.xb_reads.push_back(XbRef{op.core, op.xb, 0, op.rows});
        addExtent(&fx.reads, op.src, op.rows);
        addExtent(&fx.accums, op.dst, op.cols);
        break;
      }
      case MetaOpKind::kReadRow: {
        fx.xb_reads.push_back(
            XbRef{op.core, op.xb, op.row, op.row + op.len});
        addExtent(&fx.reads, op.src, op.len);
        addExtent(&fx.accums, op.dst, op.cols);
        break;
      }
      case MetaOpKind::kWriteXb:
      case MetaOpKind::kWriteRow: {
        const std::int64_t row_base =
            op.kind == MetaOpKind::kWriteRow ? op.row : 0;
        // With a payload the programmed rows are its rows; compressed
        // flows omit payloads, so fall back to the op's row count.
        std::int64_t rows = op.len;
        if (op.payload && op.payload->shape().rank() > 0)
            rows = op.payload->shape().dim(0);
        if (rows > 0) {
            fx.xb_writes.push_back(
                XbRef{op.core, op.xb, row_base, row_base + rows});
        }
        break;
      }
      case MetaOpKind::kDcom: {
        const DcomParams &p = op.dcom_params;
        if (op.func == dcomfunc::kZero) {
            addExtent(&fx.writes, op.dst, op.len);
        } else if (op.func == dcomfunc::kRelu ||
                   op.func == dcomfunc::kRequant ||
                   op.func == dcomfunc::kSoftmax ||
                   op.func == dcomfunc::kLayerNorm ||
                   op.func == dcomfunc::kGelu) {
            addExtent(&fx.reads, op.src, op.len);
            addExtent(&fx.writes, op.dst, op.len);
        } else if (op.func == dcomfunc::kAdd) {
            addExtent(&fx.reads, op.src, op.len);
            addExtent(&fx.reads, op.src2, op.len);
            addExtent(&fx.writes, op.dst, op.len);
        } else if (op.func == dcomfunc::kMaxPool ||
                   op.func == dcomfunc::kAvgPool) {
            addExtent(&fx.reads, op.src,
                      p.channels * p.in_h * p.in_w);
            const std::int64_t oh =
                convOutDim(p.in_h, p.kernel, p.stride, p.padding);
            const std::int64_t ow =
                convOutDim(p.in_w, p.kernel, p.stride, p.padding);
            if (oh > 0 && ow > 0)
                addExtent(&fx.writes, op.dst, p.channels * oh * ow);
        } else if (op.func == dcomfunc::kGlobalAvgPool) {
            addExtent(&fx.reads, op.src,
                      p.channels * p.in_h * p.in_w);
            addExtent(&fx.writes, op.dst, p.channels);
        } else if (op.func == dcomfunc::kMatMul) {
            const std::int64_t m = p.in_h, k = p.in_w, n = p.channels;
            addExtent(&fx.reads, op.src, m * k);
            addExtent(&fx.reads, op.src2, k * n);
            addExtent(&fx.writes, op.dst, m * n);
        }
        // Unknown functions are reported by the structural pass.
        break;
      }
      case MetaOpKind::kMov: {
        addStrided(&fx.reads, op.src, op.len, op.count, op.src_stride);
        addStrided(&fx.writes, op.dst, op.len, op.count, op.dst_stride);
        break;
      }
    }
    (void)arch;
    return fx;
}

/** Aggregated accesses of one parallel arm, for race detection. */
struct ArmSummary {
    struct Access {
        BufKey key;
        IntervalSet set;
        std::string op; //!< representative rendering per op
    };
    struct XbAccess {
        std::int64_t core = 0, xb = 0;
        IntervalSet set;
        std::string op;
    };
    std::vector<Access> reads, writes, accums;
    std::vector<XbAccess> xb_reads, xb_writes;
    std::vector<std::pair<std::int64_t, std::string>> core_reads;
    std::vector<std::pair<std::int64_t, std::string>> core_writes;
};

/** The per-section statement numbering and node counts. */
struct Numbering {
    std::map<const Stmt *, std::int64_t> index;
    std::int64_t statements = 0;
    std::int64_t ops = 0;
};

void
numberStmts(const std::vector<Stmt> &stmts, std::int64_t *next,
            Numbering *out)
{
    for (const Stmt &stmt : stmts) {
        out->index[&stmt] = (*next)++;
        ++out->statements;
        if (stmt.kind == Stmt::Kind::kOp)
            ++out->ops;
        else
            numberStmts(stmt.body, next, out);
    }
}

class Analyzer
{
  public:
    Analyzer(const CimArchitecture &arch, const AnalyzeOptions &options)
        : arch_(arch), options_(options)
    {
    }

    void
    run(const MopProgram &program, AnalyzeResult *result)
    {
        std::int64_t next = 0;
        numberStmts(program.init(), &next, &numbering_);
        next = 0;
        numberStmts(program.compute(), &next, &numbering_);

        for (const LiveInRegion &region : options_.live_in) {
            BufKey key;
            key.space = region.space;
            key.core = region.space == MemSpace::kL1 ? region.core : 0;
            defined_[key].add(region.begin, region.end);
            if (region.begin < region.end) {
                events_[key].push_back(Event{-1, true, region.begin,
                                             region.end, "", -1});
            }
        }

        section_ = "init";
        walkStmts(program.init());
        section_ = "compute";
        walkStmts(program.compute());

        finish(result);
    }

  private:
    struct Event {
        std::int64_t t = 0;
        bool is_def = false;
        std::int64_t begin = 0, end = 0;
        std::string section;
        std::int64_t index = -1;
    };

    /** A plain write whose value is not yet fully overwritten. The
     * still-pending element ranges live in the per-buffer slice map;
     * the store just counts them so retirement is O(overlap). */
    struct PendingStore {
        std::int64_t remaining = 0; //!< pending elements left
        bool any_read = false;
        std::string op;
        std::string section;
        std::int64_t index = -1;
    };

    /** Contiguous pending range [map key, end) owned by one store. */
    struct StoreSlice {
        std::int64_t end = 0;
        std::size_t store = 0; //!< index into store_pool_
    };

    struct XbStore {
        IntervalSet pending; //!< programmed rows not yet overwritten
        bool any_read = false;
        std::string op;
        std::string section;
        std::int64_t index = -1;
    };

    struct CoreStore {
        bool any_read = false;
        std::string op;
        std::string section;
        std::int64_t index = -1;
    };

    /** Snapshot-based definition view for parallel arms: reads check
     * the pre-block state plus the arm's own defs, never a sibling's. */
    struct ArmCtx {
        const std::map<BufKey, IntervalSet> *base_defined = nullptr;
        std::map<BufKey, IntervalSet> *arm_defined = nullptr;
        const std::map<std::pair<std::int64_t, std::int64_t>,
                       IntervalSet> *base_xb = nullptr;
        std::map<std::pair<std::int64_t, std::int64_t>, IntervalSet>
            *arm_xb = nullptr;
        const std::set<std::int64_t> *base_cores = nullptr;
        std::set<std::int64_t> *arm_cores = nullptr;
        std::int64_t anchor = -1;
    };

    void
    walkStmts(const std::vector<Stmt> &stmts)
    {
        for (const Stmt &stmt : stmts) {
            switch (stmt.kind) {
              case Stmt::Kind::kOp:
                processOp(stmt.op, numbering_.index[&stmt], nullptr);
                ++time_;
                break;
              case Stmt::Kind::kParallel:
                walkParallel(stmt);
                break;
              case Stmt::Kind::kRepeat: {
                // Two passes expose loop-carried dataflow (a store at
                // the end of the body read at the start of the next
                // iteration) without unrolling; findings dedup.
                const int passes = stmt.repeat > 1 ? 2 : 1;
                for (int p = 0; p < passes; ++p)
                    walkStmts(stmt.body);
                break;
              }
            }
        }
    }

    void
    walkArm(const Stmt &stmt, ArmCtx *ctx)
    {
        switch (stmt.kind) {
          case Stmt::Kind::kOp:
            processOp(stmt.op, numbering_.index[&stmt], ctx);
            break;
          case Stmt::Kind::kParallel: // structurally rejected; recurse
          case Stmt::Kind::kRepeat:
            for (const Stmt &sub : stmt.body)
                walkArm(sub, ctx);
            break;
        }
    }

    void
    summarizeArm(const Stmt &stmt, ArmSummary *out)
    {
        if (stmt.kind != Stmt::Kind::kOp) {
            for (const Stmt &sub : stmt.body)
                summarizeArm(sub, out);
            return;
        }
        const MetaOp &op = stmt.op;
        const OpEffects fx = computeEffects(op, arch_);
        const std::string text = op.toString();
        auto addAccesses = [&](const std::vector<RegionRef> &refs,
                               std::vector<ArmSummary::Access> *dst) {
            for (const RegionRef &r : refs) {
                ArmSummary::Access access;
                access.key = r.key;
                access.set.add(r.begin, r.end);
                access.op = text;
                // Merge consecutive accesses of the same op+key so a
                // strided mov stays one record.
                if (!dst->empty() && dst->back().op == text &&
                    dst->back().key == r.key) {
                    dst->back().set.add(r.begin, r.end);
                } else {
                    dst->push_back(std::move(access));
                }
            }
        };
        addAccesses(fx.reads, &out->reads);
        addAccesses(fx.writes, &out->writes);
        addAccesses(fx.accums, &out->accums);
        for (const XbRef &x : fx.xb_reads) {
            ArmSummary::XbAccess access;
            access.core = x.core;
            access.xb = x.xb;
            access.set.add(x.begin, x.end);
            access.op = text;
            out->xb_reads.push_back(std::move(access));
        }
        for (const XbRef &x : fx.xb_writes) {
            ArmSummary::XbAccess access;
            access.core = x.core;
            access.xb = x.xb;
            access.set.add(x.begin, x.end);
            access.op = text;
            out->xb_writes.push_back(std::move(access));
        }
        for (std::int64_t core : fx.core_reads)
            out->core_reads.emplace_back(core, text);
        for (std::int64_t core : fx.core_writes)
            out->core_writes.emplace_back(core, text);
    }

    // ----- diagnostics plumbing ---------------------------------------

    void
    finalize(MopDiagnostic diag)
    {
        const std::string dedup_key =
            strformat("%d|%s|%s|%lld|%s",
                      static_cast<int>(diag.severity), diag.check.c_str(),
                      diag.section.c_str(),
                      static_cast<long long>(diag.stmt_index),
                      diag.message.c_str());
        if (!seen_.insert(dedup_key).second)
            return;
        diags_.push_back(std::move(diag));
    }

    void
    record(MopDiagnostic diag)
    {
        if (block_diags_ != nullptr)
            block_diags_->push_back(std::move(diag));
        else
            finalize(std::move(diag));
    }

    MopDiagnostic
    makeDiag(DiagSeverity severity, const char *check_id, StatusCode code,
             std::int64_t index, std::string message)
    {
        MopDiagnostic diag;
        diag.severity = severity;
        diag.check = check_id;
        diag.section = section_;
        diag.stmt_index = index;
        diag.code = code;
        diag.message = std::move(message);
        return diag;
    }

    // ----- per-op dataflow --------------------------------------------

    /** Split the slice straddling @p pos so no slice crosses it. */
    static void
    splitSliceAt(std::map<std::int64_t, StoreSlice> &slices,
                 std::int64_t pos)
    {
        auto it = slices.upper_bound(pos);
        if (it == slices.begin())
            return;
        --it;
        if (it->first >= pos || it->second.end <= pos)
            return;
        StoreSlice tail = it->second;
        it->second.end = pos;
        slices.emplace(pos, tail);
    }

    void
    processOp(const MetaOp &op, std::int64_t own_index, ArmCtx *ctx)
    {
        const OpEffects fx = computeEffects(op, arch_);
        const std::int64_t at = ctx != nullptr ? ctx->anchor : own_index;
        const std::string text = op.toString();

        // 1. use-before-def on buffer regions (executable flows only:
        //    compressed templates only show window 0, so cross-window
        //    region dataflow is not statically meaningful).
        if (options_.executable) {
            auto checkDefined = [&](const RegionRef &r,
                                    const char *verb) {
                IntervalSet missing = definedView(r, ctx);
                if (missing.empty())
                    return;
                record(makeDiag(
                    DiagSeverity::kError, check::kUbdBuffer,
                    StatusCode::kFailedPrecondition, at,
                    strformat("%s %s %s which is never written",
                              text.c_str(), verb,
                              regionName(r.key, missing.first())
                                  .c_str())));
            };
            for (const RegionRef &r : fx.reads)
                checkDefined(r, "reads");
            for (const RegionRef &r : fx.accums)
                checkDefined(r, "accumulates into");
        }

        // 2. use-before-def on crossbar weights.
        for (const XbRef &x : fx.xb_reads) {
            IntervalSet missing = xbView(x, ctx);
            if (!missing.empty()) {
                const Interval gap = missing.first();
                record(makeDiag(
                    DiagSeverity::kError, check::kUbdXbar,
                    StatusCode::kFailedPrecondition, at,
                    strformat("%s activates rows [%lld, %lld) of "
                              "crossbar %s but rows [%lld, %lld) were "
                              "never programmed",
                              text.c_str(),
                              static_cast<long long>(x.begin),
                              static_cast<long long>(x.end),
                              xbName(x.core, x.xb).c_str(),
                              static_cast<long long>(gap.begin),
                              static_cast<long long>(gap.end))));
            }
            // The read consumes pending programming.
            auto stores = xb_stores_.find({x.core, x.xb});
            if (stores != xb_stores_.end()) {
                for (XbStore &store : stores->second) {
                    if (store.pending.intersects(x.begin, x.end))
                        store.any_read = true;
                }
            }
        }

        // 3. use-before-def on core state.
        for (std::int64_t core : fx.core_reads) {
            const bool programmed =
                ctx != nullptr
                    ? (ctx->base_cores->count(core) > 0 ||
                       ctx->arm_cores->count(core) > 0)
                    : cores_programmed_.count(core) > 0;
            if (!programmed) {
                record(makeDiag(
                    DiagSeverity::kError, check::kUbdCore,
                    StatusCode::kFailedPrecondition, at,
                    strformat("%s runs on core %lld whose weights were "
                              "never installed",
                              text.c_str(),
                              static_cast<long long>(core))));
            }
            auto it = core_stores_.find(core);
            if (it != core_stores_.end())
                it->second.any_read = true;
        }

        // 4. dead-store bookkeeping: reads acquit pending stores,
        //    plain writes retire them. The slice maps keep every
        //    operation proportional to the ranges actually overlapped.
        if (options_.executable) {
            auto markReads = [&](const std::vector<RegionRef> &refs) {
                for (const RegionRef &r : refs) {
                    auto it = stores_.find(r.key);
                    if (it == stores_.end())
                        continue;
                    auto &slices = it->second;
                    auto s = slices.upper_bound(r.begin);
                    if (s != slices.begin() &&
                        std::prev(s)->second.end > r.begin)
                        --s;
                    for (; s != slices.end() && s->first < r.end; ++s)
                        store_pool_[s->second.store].any_read = true;
                }
            };
            markReads(fx.reads);
            markReads(fx.accums);
            for (const RegionRef &w : fx.writes) {
                auto it = stores_.find(w.key);
                if (it == stores_.end())
                    continue;
                auto &slices = it->second;
                splitSliceAt(slices, w.begin);
                splitSliceAt(slices, w.end);
                auto s = slices.lower_bound(w.begin);
                while (s != slices.end() && s->first < w.end) {
                    PendingStore &store = store_pool_[s->second.store];
                    store.remaining -= s->second.end - s->first;
                    if (store.remaining == 0 && !store.any_read) {
                        MopDiagnostic diag;
                        diag.severity = DiagSeverity::kWarning;
                        diag.check = check::kDeadStore;
                        diag.section = store.section;
                        diag.stmt_index = store.index;
                        diag.code = StatusCode::kFailedPrecondition;
                        diag.message = strformat(
                            "%s is fully overwritten by %s before any "
                            "read",
                            store.op.c_str(), text.c_str());
                        record(std::move(diag));
                    }
                    s = slices.erase(s);
                }
            }
            // Each plain write opens a pending store per buffer.
            std::map<BufKey, IntervalSet> written;
            for (const RegionRef &w : fx.writes)
                written[w.key].add(w.begin, w.end);
            for (auto &[key, set] : written) {
                PendingStore store;
                for (const Interval &iv : set.intervals())
                    store.remaining += iv.end - iv.begin;
                store.op = text;
                store.section = section_;
                store.index = at;
                const std::size_t id = store_pool_.size();
                store_pool_.push_back(std::move(store));
                auto &slices = stores_[key];
                for (const Interval &iv : set.intervals())
                    slices.insert_or_assign(iv.begin,
                                            StoreSlice{iv.end, id});
            }
        }

        // 5. writes and accumulates define their regions.
        {
            auto *defs = ctx != nullptr ? ctx->arm_defined : &defined_;
            for (const RegionRef &w : fx.writes)
                (*defs)[w.key].add(w.begin, w.end);
            for (const RegionRef &a : fx.accums)
                (*defs)[a.key].add(a.begin, a.end);
        }

        // 6. crossbar programming: retire older unread programming of
        //    the same rows (weights replaced between program and use).
        for (const XbRef &x : fx.xb_writes) {
            xbars_programmed_count_.insert({x.core, x.xb});
            std::vector<XbStore> &list = xb_stores_[{x.core, x.xb}];
            for (XbStore &store : list) {
                if (!store.pending.intersects(x.begin, x.end))
                    continue;
                store.pending.subtract(x.begin, x.end);
                // Compressed templates only activate the representative
                // replica's crossbars, so "never used" is only provable
                // on executable flows.
                if (options_.executable && store.pending.empty() &&
                    !store.any_read) {
                    MopDiagnostic diag;
                    diag.severity = DiagSeverity::kError;
                    diag.check = check::kXbarOverwrite;
                    diag.section = store.section;
                    diag.stmt_index = store.index;
                    diag.code = StatusCode::kFailedPrecondition;
                    diag.message = strformat(
                        "%s programs crossbar %s but is overwritten by "
                        "%s before the weights are ever used",
                        store.op.c_str(), xbName(x.core, x.xb).c_str(),
                        text.c_str());
                    record(std::move(diag));
                }
            }
            list.erase(std::remove_if(list.begin(), list.end(),
                                      [](const XbStore &s) {
                                          return s.pending.empty();
                                      }),
                       list.end());
            XbStore store;
            store.pending.add(x.begin, x.end);
            store.op = text;
            store.section = section_;
            store.index = at;
            list.push_back(std::move(store));

            auto *xb = ctx != nullptr ? ctx->arm_xb : &xb_programmed_;
            (*xb)[{x.core, x.xb}].add(x.begin, x.end);
        }

        // 7. core-state installs.
        for (std::int64_t core : fx.core_writes) {
            auto it = core_stores_.find(core);
            if (options_.executable && it != core_stores_.end() &&
                !it->second.any_read) {
                MopDiagnostic diag;
                diag.severity = DiagSeverity::kWarning;
                diag.check = check::kCoreOverwrite;
                diag.section = it->second.section;
                diag.stmt_index = it->second.index;
                diag.code = StatusCode::kFailedPrecondition;
                diag.message = strformat(
                    "%s installs weights on core %lld that %s replaces "
                    "before any use",
                    it->second.op.c_str(), static_cast<long long>(core),
                    text.c_str());
                record(std::move(diag));
            }
            CoreStore store;
            store.op = text;
            store.section = section_;
            store.index = at;
            core_stores_[core] = std::move(store);
            if (ctx != nullptr)
                ctx->arm_cores->insert(core);
            else
                cores_programmed_.insert(core);
        }

        // 8. capacity events: defs and uses at this op's timestamp.
        for (const RegionRef &w : fx.writes)
            events_[w.key].push_back(
                Event{time_, true, w.begin, w.end, section_, at});
        for (const RegionRef &a : fx.accums) {
            events_[a.key].push_back(
                Event{time_, true, a.begin, a.end, section_, at});
            events_[a.key].push_back(
                Event{time_, false, a.begin, a.end, section_, at});
        }
        for (const RegionRef &r : fx.reads)
            events_[r.key].push_back(
                Event{time_, false, r.begin, r.end, section_, at});
    }

    /** Missing parts of a read region given the active definition view. */
    IntervalSet
    definedView(const RegionRef &r, const ArmCtx *ctx) const
    {
        const auto &base = ctx != nullptr ? *ctx->base_defined : defined_;
        IntervalSet missing;
        auto it = base.find(r.key);
        if (it != base.end())
            missing = it->second.uncovered(r.begin, r.end);
        else
            missing.add(r.begin, r.end);
        if (ctx != nullptr) {
            auto own = ctx->arm_defined->find(r.key);
            if (own != ctx->arm_defined->end())
                missing.subtractSet(own->second);
        }
        return missing;
    }

    /** Missing rows of a crossbar read given the active view. */
    IntervalSet
    xbView(const XbRef &x, const ArmCtx *ctx) const
    {
        const auto &base = ctx != nullptr ? *ctx->base_xb : xb_programmed_;
        IntervalSet missing;
        auto it = base.find({x.core, x.xb});
        if (it != base.end())
            missing = it->second.uncovered(x.begin, x.end);
        else
            missing.add(x.begin, x.end);
        if (ctx != nullptr) {
            auto own = ctx->arm_xb->find({x.core, x.xb});
            if (own != ctx->arm_xb->end())
                missing.subtractSet(own->second);
        }
        return missing;
    }

    // ----- parallel blocks --------------------------------------------

    /** Access category for the conflict sweep. */
    enum class Cat { kWrite, kAccum, kRead };

    /** One interval endpoint in the conflict sweep. */
    struct SweepEv {
        std::int64_t pos = 0;
        int delta = 0; //!< +1 opens an interval, -1 closes it
        int arm = 0;
        Cat cat = Cat::kRead;
    };

    /**
     * True if any two records from different arms overlap in a racy
     * combination: write/write, write/accum, write/read, accum/read
     * (accum/accum commutes, read/read is harmless). Endpoint sweep
     * with closes ordered before opens, so half-open adjacency does
     * not count as overlap.
     */
    static bool
    sweepConflict(std::vector<SweepEv> &evs)
    {
        std::sort(evs.begin(), evs.end(),
                  [](const SweepEv &a, const SweepEv &b) {
                      if (a.pos != b.pos)
                          return a.pos < b.pos;
                      return a.delta < b.delta;
                  });
        std::map<int, int> w, a, r; // arm -> open interval count
        auto touch = [](std::map<int, int> &m, int arm, int d) {
            auto it = m.emplace(arm, 0).first;
            it->second += d;
            if (it->second == 0)
                m.erase(it);
        };
        for (const SweepEv &ev : evs) {
            switch (ev.cat) {
              case Cat::kWrite: touch(w, ev.arm, ev.delta); break;
              case Cat::kAccum: touch(a, ev.arm, ev.delta); break;
              case Cat::kRead: touch(r, ev.arm, ev.delta); break;
            }
            if (ev.delta < 0)
                continue; // state can only turn racy on an open
            if (w.size() >= 2)
                return true;
            if (w.size() == 1) {
                const int warm = w.begin()->first;
                if (!a.empty() &&
                    (a.size() >= 2 || a.begin()->first != warm))
                    return true;
                if (!r.empty() &&
                    (r.size() >= 2 || r.begin()->first != warm))
                    return true;
            } else if (!a.empty() && !r.empty()) {
                if (a.size() >= 2 || r.size() >= 2 ||
                    a.begin()->first != r.begin()->first)
                    return true;
            }
        }
        return false;
    }

    /** Whether any pair of arms has a racy overlap anywhere: buffer
     * regions, crossbar rows, or core state. Detection only — the
     * pairwise pass renders the actual diagnostics. */
    static bool
    mayConflict(const std::vector<ArmSummary> &summaries)
    {
        std::map<BufKey, std::vector<SweepEv>> buf;
        std::map<std::pair<std::int64_t, std::int64_t>,
                 std::vector<SweepEv>>
            xb;
        std::map<std::int64_t, std::set<int>> core_w, core_r;
        for (std::size_t i = 0; i < summaries.size(); ++i) {
            const int arm = static_cast<int>(i);
            const ArmSummary &s = summaries[i];
            auto addBuf = [&](const std::vector<ArmSummary::Access> &as,
                              Cat cat) {
                for (const ArmSummary::Access &acc : as) {
                    auto &evs = buf[acc.key];
                    for (const Interval &iv : acc.set.intervals()) {
                        evs.push_back(SweepEv{iv.begin, 1, arm, cat});
                        evs.push_back(SweepEv{iv.end, -1, arm, cat});
                    }
                }
            };
            addBuf(s.writes, Cat::kWrite);
            addBuf(s.accums, Cat::kAccum);
            addBuf(s.reads, Cat::kRead);
            auto addXb = [&](const std::vector<ArmSummary::XbAccess> &xs,
                             Cat cat) {
                for (const ArmSummary::XbAccess &acc : xs) {
                    auto &evs = xb[{acc.core, acc.xb}];
                    for (const Interval &iv : acc.set.intervals()) {
                        evs.push_back(SweepEv{iv.begin, 1, arm, cat});
                        evs.push_back(SweepEv{iv.end, -1, arm, cat});
                    }
                }
            };
            addXb(s.xb_writes, Cat::kWrite);
            addXb(s.xb_reads, Cat::kRead);
            for (const auto &[core, op] : s.core_writes)
                core_w[core].insert(arm);
            for (const auto &[core, op] : s.core_reads)
                core_r[core].insert(arm);
        }
        for (const auto &[core, writers] : core_w) {
            if (writers.size() >= 2)
                return true;
            const auto readers = core_r.find(core);
            if (readers != core_r.end() &&
                (readers->second.size() >= 2 ||
                 *readers->second.begin() != *writers.begin()))
                return true;
        }
        for (auto &[key, evs] : buf) {
            if (sweepConflict(evs))
                return true;
        }
        for (auto &[key, evs] : xb) {
            if (sweepConflict(evs))
                return true;
        }
        return false;
    }

    void
    walkParallel(const Stmt &block)
    {
        const std::int64_t anchor = numbering_.index.at(&block);
        std::vector<MopDiagnostic> local;
        std::vector<MopDiagnostic> *saved = block_diags_;
        block_diags_ = &local;

        // Race detection over aggregated arm footprints. A linear
        // endpoint sweep decides whether any conflicting overlap
        // exists at all; only then does the quadratic pairwise pass
        // run to produce the canonical (arm-order-invariant) report.
        // Clean blocks — the overwhelming majority — stay O(E log E).
        std::vector<ArmSummary> summaries(block.body.size());
        for (std::size_t i = 0; i < block.body.size(); ++i)
            summarizeArm(block.body[i], &summaries[i]);
        if (mayConflict(summaries)) {
            for (std::size_t i = 0; i < summaries.size(); ++i) {
                for (std::size_t j = i + 1; j < summaries.size(); ++j)
                    checkArmPair(summaries[i], summaries[j], anchor);
            }
        }

        // Dataflow per arm against the pre-block state: arms may
        // execute in any order, so no arm may depend on a sibling.
        // Sibling defs are staged and merged only after every arm has
        // run, so the global maps stay the pre-block view throughout
        // (no per-block snapshot copies).
        std::map<BufKey, IntervalSet> merged_defined;
        std::map<std::pair<std::int64_t, std::int64_t>, IntervalSet>
            merged_xb;
        std::set<std::int64_t> merged_cores;
        for (const Stmt &arm : block.body) {
            std::map<BufKey, IntervalSet> arm_defined;
            std::map<std::pair<std::int64_t, std::int64_t>, IntervalSet>
                arm_xb;
            std::set<std::int64_t> arm_cores;
            ArmCtx ctx;
            ctx.base_defined = &defined_;
            ctx.arm_defined = &arm_defined;
            ctx.base_xb = &xb_programmed_;
            ctx.arm_xb = &arm_xb;
            ctx.base_cores = &cores_programmed_;
            ctx.arm_cores = &arm_cores;
            ctx.anchor = anchor;
            walkArm(arm, &ctx);
            for (auto &[key, set] : arm_defined)
                merged_defined[key].addSet(set);
            for (auto &[key, set] : arm_xb)
                merged_xb[key].addSet(set);
            merged_cores.insert(arm_cores.begin(), arm_cores.end());
        }
        for (auto &[key, set] : merged_defined)
            defined_[key].addSet(set);
        for (auto &[key, set] : merged_xb)
            xb_programmed_[key].addSet(set);
        cores_programmed_.insert(merged_cores.begin(),
                                 merged_cores.end());
        ++time_; // all arms share one timestamp

        // Canonical order: findings inside a block are invariant under
        // arm permutation.
        block_diags_ = saved;
        std::sort(local.begin(), local.end(),
                  [](const MopDiagnostic &a, const MopDiagnostic &b) {
                      return std::tie(a.check, a.message, a.section,
                                      a.stmt_index) <
                             std::tie(b.check, b.message, b.section,
                                      b.stmt_index);
                  });
        for (MopDiagnostic &diag : local)
            record(std::move(diag));
    }

    /** Lexicographically smallest conflict message between two arms'
     * access lists, so the report is arm-order invariant. */
    template <typename A, typename B, typename Render>
    std::optional<std::string>
    bestConflict(const std::vector<A> &lhs, const std::vector<B> &rhs,
                 const Render &render) const
    {
        std::optional<std::string> best;
        for (const A &a : lhs) {
            for (const B &b : rhs) {
                std::optional<std::string> message = render(a, b);
                if (message && (!best || *message < *best))
                    best = std::move(message);
            }
        }
        return best;
    }

    void
    checkArmPair(const ArmSummary &a, const ArmSummary &b,
                 std::int64_t anchor)
    {
        auto regionConflict = [&](const ArmSummary::Access &x,
                                  const ArmSummary::Access &y,
                                  const char *what)
            -> std::optional<std::string> {
            if (!(x.key == y.key))
                return std::nullopt;
            auto overlap = x.set.firstOverlap(y.set);
            if (!overlap)
                return std::nullopt;
            const std::string &lo = std::min(x.op, y.op);
            const std::string &hi = std::max(x.op, y.op);
            return strformat("parallel arms %s on %s: %s vs %s", what,
                             regionName(x.key, *overlap).c_str(),
                             lo.c_str(), hi.c_str());
        };
        auto raceDiag = [&](const char *check_id, std::string message) {
            record(makeDiag(DiagSeverity::kError, check_id,
                            StatusCode::kInvalidArgument, anchor,
                            std::move(message)));
        };

        // Plain writes conflict with everything except reads they do
        // not overlap; accumulates commute with each other but not
        // with plain writes or reads.
        auto ww = [&](const ArmSummary::Access &x,
                      const ArmSummary::Access &y) {
            return regionConflict(x, y, "overlapping writes");
        };
        auto wa = [&](const ArmSummary::Access &x,
                      const ArmSummary::Access &y) {
            return regionConflict(x, y, "write vs accumulate");
        };
        auto wr = [&](const ArmSummary::Access &x,
                      const ArmSummary::Access &y) {
            return regionConflict(x, y, "write vs read");
        };
        auto ar = [&](const ArmSummary::Access &x,
                      const ArmSummary::Access &y) {
            return regionConflict(x, y, "accumulate vs read");
        };
        if (auto m = bestConflict(a.writes, b.writes, ww))
            raceDiag(check::kRaceWriteWrite, std::move(*m));
        if (auto m = bestConflict(a.writes, b.accums, wa))
            raceDiag(check::kRaceWriteWrite, std::move(*m));
        if (auto m = bestConflict(a.accums, b.writes, wa))
            raceDiag(check::kRaceWriteWrite, std::move(*m));
        if (auto m = bestConflict(a.writes, b.reads, wr))
            raceDiag(check::kRaceReadWrite, std::move(*m));
        if (auto m = bestConflict(a.reads, b.writes, wr))
            raceDiag(check::kRaceReadWrite, std::move(*m));
        if (auto m = bestConflict(a.accums, b.reads, ar))
            raceDiag(check::kRaceReadWrite, std::move(*m));
        if (auto m = bestConflict(a.reads, b.accums, ar))
            raceDiag(check::kRaceReadWrite, std::move(*m));

        auto xbConflict = [&](const ArmSummary::XbAccess &x,
                              const ArmSummary::XbAccess &y,
                              const char *what)
            -> std::optional<std::string> {
            if (x.core != y.core || x.xb != y.xb)
                return std::nullopt;
            auto overlap = x.set.firstOverlap(y.set);
            if (!overlap)
                return std::nullopt;
            const std::string &lo = std::min(x.op, y.op);
            const std::string &hi = std::max(x.op, y.op);
            return strformat(
                "parallel arms %s on crossbar %s rows [%lld, %lld): %s "
                "vs %s",
                what, xbName(x.core, x.xb).c_str(),
                static_cast<long long>(overlap->begin),
                static_cast<long long>(overlap->end), lo.c_str(),
                hi.c_str());
        };
        auto xww = [&](const ArmSummary::XbAccess &x,
                       const ArmSummary::XbAccess &y) {
            return xbConflict(x, y, "both program");
        };
        auto xwr = [&](const ArmSummary::XbAccess &x,
                       const ArmSummary::XbAccess &y) {
            return xbConflict(x, y, "program vs activate");
        };
        if (auto m = bestConflict(a.xb_writes, b.xb_writes, xww))
            raceDiag(check::kRaceXbar, std::move(*m));
        if (auto m = bestConflict(a.xb_writes, b.xb_reads, xwr))
            raceDiag(check::kRaceXbar, std::move(*m));
        if (auto m = bestConflict(a.xb_reads, b.xb_writes, xwr))
            raceDiag(check::kRaceXbar, std::move(*m));

        using CoreRec = std::pair<std::int64_t, std::string>;
        auto coreConflict = [&](const CoreRec &x, const CoreRec &y,
                                const char *what)
            -> std::optional<std::string> {
            if (x.first != y.first)
                return std::nullopt;
            const std::string &lo = std::min(x.second, y.second);
            const std::string &hi = std::max(x.second, y.second);
            return strformat("parallel arms %s core %lld state: %s vs %s",
                             what, static_cast<long long>(x.first),
                             lo.c_str(), hi.c_str());
        };
        auto cww = [&](const CoreRec &x, const CoreRec &y) {
            return coreConflict(x, y, "both install");
        };
        auto cwr = [&](const CoreRec &x, const CoreRec &y) {
            return coreConflict(x, y, "install vs use of");
        };
        if (auto m = bestConflict(a.core_writes, b.core_writes, cww))
            raceDiag(check::kRaceCore, std::move(*m));
        if (auto m = bestConflict(a.core_writes, b.core_reads, cwr))
            raceDiag(check::kRaceCore, std::move(*m));
        if (auto m = bestConflict(a.core_reads, b.core_writes, cwr))
            raceDiag(check::kRaceCore, std::move(*m));
    }

    // ----- end-of-program reporting -----------------------------------

    void
    finish(AnalyzeResult *result)
    {
        // Unused programming: only meaningful for executable flows —
        // compressed templates activate just the representative
        // replica's crossbars.
        if (options_.executable) {
            for (const auto &[xbkey, list] : xb_stores_) {
                for (const XbStore &store : list) {
                    if (store.any_read)
                        continue;
                    MopDiagnostic diag;
                    diag.severity = DiagSeverity::kWarning;
                    diag.check = check::kXbarUnused;
                    diag.section = store.section;
                    diag.stmt_index = store.index;
                    diag.code = StatusCode::kFailedPrecondition;
                    diag.message = strformat(
                        "%s programs crossbar %s but it is never "
                        "activated",
                        store.op.c_str(),
                        xbName(xbkey.first, xbkey.second).c_str());
                    finalize(std::move(diag));
                }
            }
            for (const auto &[core, store] : core_stores_) {
                if (store.any_read)
                    continue;
                MopDiagnostic diag;
                diag.severity = DiagSeverity::kWarning;
                diag.check = check::kCoreUnused;
                diag.section = store.section;
                diag.stmt_index = store.index;
                diag.code = StatusCode::kFailedPrecondition;
                diag.message = strformat(
                    "%s installs weights on core %lld but it never "
                    "computes",
                    store.op.c_str(), static_cast<long long>(core));
                finalize(std::move(diag));
            }
        }

        sweepCapacity(result);
        result->crossbars_programmed =
            static_cast<std::int64_t>(xbars_programmed_count_.size());
        result->statements = numbering_.statements;
        result->ops = numbering_.ops;
        for (MopDiagnostic &diag : diags_)
            result->diagnostics.push_back(std::move(diag));
    }

    /** Live-range sweep: per buffer, a region is live from each def to
     * its last use before the next def (defs with no later use stay
     * live to the end — program outputs are read externally). Streamed
     * through an interval map of open def chains, so cost scales with
     * the event count, not with region widths. */
    void
    sweepCapacity(AnalyzeResult *result)
    {
        const std::int64_t t_end = time_ + 1;
        // One open def chain per maximal element range with uniform
        // state; the map key is the range begin.
        struct Chain {
            std::int64_t end = 0;       //!< element range end
            std::int64_t def_t = 0;     //!< defining timestamp
            std::int64_t last_use = -2; //!< latest use, < def_t if none
            std::size_t ev = 0;         //!< defining event (diag anchor)
        };
        struct Delta {
            std::int64_t t;
            std::int64_t amount;
            std::size_t ev; //!< defining event (for +)
        };
        for (const auto &[key, events] : events_) {
            std::map<std::int64_t, Chain> open;
            std::vector<Delta> deltas;
            const auto splitAt = [&open](std::int64_t pos) {
                auto it = open.upper_bound(pos);
                if (it == open.begin())
                    return;
                --it;
                if (it->first >= pos || it->second.end <= pos)
                    return;
                Chain tail = it->second;
                it->second.end = pos;
                open.emplace(pos, tail);
            };
            const auto closeChain = [&deltas](std::int64_t begin,
                                              const Chain &c) {
                const std::int64_t width = c.end - begin;
                const std::int64_t live_end =
                    c.last_use >= c.def_t ? c.last_use : c.def_t;
                deltas.push_back(Delta{c.def_t, width, c.ev});
                deltas.push_back(Delta{live_end + 1, -width, c.ev});
            };
            for (std::size_t e = 0; e < events.size(); ++e) {
                const Event &ev = events[e];
                if (ev.begin >= ev.end)
                    continue;
                splitAt(ev.begin);
                splitAt(ev.end);
                if (!ev.is_def) {
                    // Uses outside any chain are use-before-def —
                    // reported elsewhere, ignored here.
                    for (auto it = open.lower_bound(ev.begin);
                         it != open.end() && it->first < ev.end; ++it)
                        it->second.last_use = ev.t;
                    continue;
                }
                std::int64_t cursor = ev.begin;
                std::vector<std::pair<std::int64_t, std::int64_t>> gaps;
                for (auto it = open.lower_bound(ev.begin);
                     it != open.end() && it->first < ev.end; ++it) {
                    if (it->first > cursor)
                        gaps.emplace_back(cursor, it->first);
                    cursor = it->second.end;
                    // Defs at the same timestamp (parallel arms)
                    // extend the same chain; a later def closes it and
                    // opens a fresh one over the overlap.
                    if (it->second.def_t == ev.t)
                        continue;
                    closeChain(it->first, it->second);
                    it->second.def_t = ev.t;
                    it->second.last_use = -2;
                    it->second.ev = e;
                }
                if (cursor < ev.end)
                    gaps.emplace_back(cursor, ev.end);
                for (const auto &gap : gaps)
                    open.emplace(gap.first,
                                 Chain{gap.second, ev.t, -2, e});
            }
            // Chains never redefined stay live to the program end.
            for (const auto &[begin, chain] : open) {
                deltas.push_back(
                    Delta{chain.def_t, chain.end - begin, chain.ev});
                deltas.push_back(
                    Delta{t_end + 1, begin - chain.end, chain.ev});
            }

            std::sort(deltas.begin(), deltas.end(),
                      [](const Delta &a, const Delta &b) {
                          if (a.t != b.t)
                              return a.t < b.t;
                          return a.amount < b.amount; // frees first
                      });
            std::int64_t live = 0, peak = 0;
            std::size_t peak_ev = 0;
            bool have_peak = false;
            for (const Delta &d : deltas) {
                live += d.amount;
                if (live > peak) {
                    peak = live;
                    peak_ev = d.ev;
                    have_peak = true;
                }
            }

            std::int64_t capacity = 0;
            const char *check_id = check::kCapacityL0;
            double size_kib = 0.0;
            if (key.space == MemSpace::kL0) {
                size_kib = arch_.chip.l0_size_kib;
                result->l0_peak_live_elems =
                    std::max(result->l0_peak_live_elems, peak);
            } else {
                size_kib = arch_.core.l1_size_kib;
                check_id = check::kCapacityL1;
                result->l1_peak_live_elems =
                    std::max(result->l1_peak_live_elems, peak);
            }
            if (size_kib > 0)
                capacity =
                    static_cast<std::int64_t>(size_kib * 1024.0 / 4.0);
            // The L0 footprint check follows the same knob as the
            // structural L0 address bound: emitted flows address a
            // virtual L0 space (see ValidateOptions).
            const bool enforce =
                key.space != MemSpace::kL0
                || options_.validate.enforce_l0_capacity;
            if (enforce && capacity > 0 && peak > capacity
                && have_peak) {
                const Event &ev = events[peak_ev];
                MopDiagnostic diag;
                diag.severity = DiagSeverity::kError;
                diag.check = check_id;
                diag.section = ev.section;
                diag.stmt_index = ev.index;
                diag.code = StatusCode::kResourceExhausted;
                diag.message = strformat(
                    "peak live %s footprint %lld elems (%lld bytes) "
                    "exceeds capacity %lld elems (%.5g KiB)",
                    bufKeyName(key).c_str(),
                    static_cast<long long>(peak),
                    static_cast<long long>(peak * 4),
                    static_cast<long long>(capacity), size_kib);
                finalize(std::move(diag));
            }
        }
    }

    const CimArchitecture &arch_;
    AnalyzeOptions options_;
    Numbering numbering_;
    std::string section_;
    std::int64_t time_ = 0;

    std::vector<MopDiagnostic> diags_;
    std::vector<MopDiagnostic> *block_diags_ = nullptr;
    std::set<std::string> seen_;

    std::map<BufKey, IntervalSet> defined_;
    std::vector<PendingStore> store_pool_;
    std::map<BufKey, std::map<std::int64_t, StoreSlice>> stores_;
    std::map<std::pair<std::int64_t, std::int64_t>, IntervalSet>
        xb_programmed_;
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<XbStore>>
        xb_stores_;
    std::set<std::pair<std::int64_t, std::int64_t>>
        xbars_programmed_count_;
    std::map<std::int64_t, CoreStore> core_stores_;
    std::set<std::int64_t> cores_programmed_;
    std::map<BufKey, std::vector<Event>> events_;
};

} // namespace

std::int64_t
AnalyzeResult::errors() const
{
    return countDiagnostics(diagnostics, DiagSeverity::kError);
}

std::int64_t
AnalyzeResult::warnings() const
{
    return countDiagnostics(diagnostics, DiagSeverity::kWarning);
}

std::string
AnalyzeResult::summary() const
{
    const std::string stats = strformat(
        "%lld statements, peak live L0 %lld / L1 %lld elems, "
        "%lld crossbars programmed",
        static_cast<long long>(statements),
        static_cast<long long>(l0_peak_live_elems),
        static_cast<long long>(l1_peak_live_elems),
        static_cast<long long>(crossbars_programmed));
    if (clean())
        return "mopcheck: clean (" + stats + ")";
    return strformat("mopcheck: %lld errors, %lld warnings (%s)",
                     static_cast<long long>(errors()),
                     static_cast<long long>(warnings()), stats.c_str());
}

std::string
AnalyzeResult::table() const
{
    return renderDiagnosticsTable(diagnostics);
}

AnalyzeResult
analyzeProgram(const MopProgram &program, const CimArchitecture &arch,
               const AnalyzeOptions &options)
{
    AnalyzeResult result;
    if (options.structural) {
        result.diagnostics =
            collectProgramDiagnostics(program, arch, options.validate);
    }
    Analyzer analyzer(arch, options);
    analyzer.run(program, &result);
    return result;
}

} // namespace cimmlc
