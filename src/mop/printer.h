/**
 * @file
 * Pretty-printer for meta-operator flows in the Figure 16 surface syntax
 * (BNF of Figure 10).
 */
#ifndef CIMMLC_MOP_PRINTER_H
#define CIMMLC_MOP_PRINTER_H

#include <string>

#include "mop/program.h"

namespace cimmlc {

/** Printer options. */
struct PrintOptions {
    //! truncate each section after this many statements (0 = no limit)
    std::int64_t max_statements = 0;
    //! include the header comment with the program summary
    bool header = true;
};

/** Renders @p program as indented text. */
std::string printProgram(const MopProgram &program,
                         const PrintOptions &options = {});

/** Renders a statement list at @p indent (used for section excerpts). */
std::string printStatements(const std::vector<Stmt> &stmts, int indent,
                            std::int64_t max_statements = 0);

} // namespace cimmlc

#endif // CIMMLC_MOP_PRINTER_H
