#include "mop/printer.h"

#include <sstream>

#include "common/strutil.h"

namespace cimmlc {

namespace {

void
printStmt(const Stmt &stmt, int indent, std::ostringstream *out,
          std::int64_t *budget)
{
    if (*budget == 0)
        return;
    const std::string pad(static_cast<std::size_t>(indent) * 4, ' ');
    switch (stmt.kind) {
      case Stmt::Kind::kOp:
        *out << pad << stmt.op.toString() << "\n";
        if (*budget > 0)
            --*budget;
        break;
      case Stmt::Kind::kParallel:
        *out << pad << "parallel {\n";
        if (*budget > 0)
            --*budget;
        for (const Stmt &child : stmt.body)
            printStmt(child, indent + 1, out, budget);
        *out << pad << "}\n";
        break;
      case Stmt::Kind::kRepeat:
        *out << pad << "repeat " << stmt.repeat << " {\n";
        if (*budget > 0)
            --*budget;
        for (const Stmt &child : stmt.body)
            printStmt(child, indent + 1, out, budget);
        *out << pad << "}\n";
        break;
    }
}

} // namespace

std::string
printStatements(const std::vector<Stmt> &stmts, int indent,
                std::int64_t max_statements)
{
    std::ostringstream out;
    std::int64_t budget = max_statements == 0 ? -1 : max_statements;
    for (const Stmt &stmt : stmts) {
        if (budget == 0) {
            out << std::string(static_cast<std::size_t>(indent) * 4, ' ')
                << "... (truncated)\n";
            break;
        }
        printStmt(stmt, indent, &out, &budget);
    }
    return out.str();
}

std::string
printProgram(const MopProgram &program, const PrintOptions &options)
{
    std::ostringstream out;
    if (options.header)
        out << "// " << program.summary() << "\n";
    if (!program.init().empty()) {
        out << "init:\n";
        out << printStatements(program.init(), 1,
                               options.max_statements);
    }
    out << "compute:\n";
    out << printStatements(program.compute(), 1, options.max_statements);
    return out.str();
}

} // namespace cimmlc
