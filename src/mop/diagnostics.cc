#include "mop/diagnostics.h"

#include "common/strutil.h"
#include "common/table.h"

namespace cimmlc {

const char *
diagSeverityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::kWarning:
        return "warning";
      case DiagSeverity::kError:
        return "error";
    }
    return "unknown";
}

std::string
MopDiagnostic::location() const
{
    if (section.empty() || stmt_index < 0)
        return "program";
    return strformat("%s:%lld", section.c_str(),
                     static_cast<long long>(stmt_index));
}

std::string
MopDiagnostic::toString() const
{
    return strformat("%s[%s] %s: %s", diagSeverityName(severity),
                     check.c_str(), location().c_str(), message.c_str());
}

std::int64_t
countDiagnostics(const std::vector<MopDiagnostic> &diags,
                 DiagSeverity severity)
{
    std::int64_t count = 0;
    for (const MopDiagnostic &diag : diags)
        if (diag.severity == severity)
            ++count;
    return count;
}

Status
firstError(const std::vector<MopDiagnostic> &diags)
{
    for (const MopDiagnostic &diag : diags)
        if (diag.severity == DiagSeverity::kError)
            return diag.toStatus();
    return Status::ok();
}

std::string
renderDiagnosticsTable(const std::vector<MopDiagnostic> &diags)
{
    TextTable table({"severity", "check", "loc", "message"});
    for (const MopDiagnostic &diag : diags) {
        table.addRow({diagSeverityName(diag.severity), diag.check,
                      diag.location(), diag.message});
    }
    return table.render();
}

ConfigValue
diagnosticsToConfig(const std::vector<MopDiagnostic> &diags)
{
    ConfigValue::Array entries;
    entries.reserve(diags.size());
    for (const MopDiagnostic &diag : diags) {
        ConfigValue::Object entry;
        entry["severity"] =
            ConfigValue::makeString(diagSeverityName(diag.severity));
        entry["check"] = ConfigValue::makeString(diag.check);
        entry["loc"] = ConfigValue::makeString(diag.location());
        entry["code"] =
            ConfigValue::makeString(statusCodeName(diag.code));
        entry["message"] = ConfigValue::makeString(diag.message);
        entries.push_back(ConfigValue::makeObject(std::move(entry)));
    }
    return ConfigValue::makeArray(std::move(entries));
}

} // namespace cimmlc
