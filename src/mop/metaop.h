/**
 * @file
 * The CIM meta-operator set (Section 3.3, Figures 10/11/13/15).
 *
 * Three CIM families — MOP_CM (cim.readcore), MOP_XBM (cim.readxb /
 * cim.writexb), MOP_WLM (cim.readrow / cim.writerow) — plus DCOM (digital
 * compute on the tier ALUs) and DMOV (data movement). Statements compose
 * sequentially, inside `parallel { }` blocks, or inside `repeat N { }`
 * blocks (our compression of the paper's "256 similar code segments",
 * Section 3.4).
 *
 * Executable extension: the paper's surface syntax leaves the
 * input/output binding of CIM reads implicit; every op here carries
 * explicit src/dst buffer operands so the functional simulator can replay
 * a flow bit-exactly (see DESIGN.md "Key design decisions").
 */
#ifndef CIMMLC_MOP_METAOP_H
#define CIMMLC_MOP_METAOP_H

#include <cstdint>
#include <memory>
#include <string>

#include "graph/node.h"
#include "tensor/tensor.h"

namespace cimmlc {

/** Meta-operator opcodes. */
enum class MetaOpKind {
    kReadCore,  //!< MOP_CM: run one DNN operator on a core
    kWriteCore, //!< MOP_CM extension: install operator weights on a core
    kReadXb,    //!< MOP_XBM: activate crossbar(s) for an MVM
    kWriteXb,   //!< MOP_XBM: program a weight matrix into a crossbar
    kReadRow,   //!< MOP_WLM: activate a row group of a crossbar
    kWriteRow,  //!< MOP_WLM: program specific rows of a crossbar
    kDcom,      //!< digital compute (relu, add, pool, requant, ...)
    kMov,       //!< data movement between/within buffers
};

const char *metaOpKindName(MetaOpKind kind);

/** True for MOP_* CIM ops (not DCOM/DMOV). */
bool isCimMetaOp(MetaOpKind kind);

/** Buffer spaces addressable by meta-operators. */
enum class MemSpace {
    kL0, //!< chip-tier global buffer
    kL1, //!< core-tier local buffer (core field selects which)
};

/** An element-addressed buffer location. */
struct BufAddr {
    MemSpace space = MemSpace::kL0;
    std::int64_t core = 0;   //!< owning core for L1
    std::int64_t offset = 0; //!< element offset

    bool operator==(const BufAddr &) const = default;
};

/** Renders like "L0[4096]" or "L1c3[128]". */
std::string bufAddrToString(const BufAddr &addr);

/** Operator geometry carried by kReadCore / kWriteCore. */
struct CoreOpParams {
    bool is_conv = true;
    // conv view
    std::int64_t in_channels = 0;
    std::int64_t in_h = 0;
    std::int64_t in_w = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 1;
    std::int64_t stride = 1;
    std::int64_t padding = 0;
    // linear view
    std::int64_t in_features = 0;
    std::int64_t out_features = 0;
    // Window range this invocation computes (operator duplication splits
    // the window space across replicas): conv output rows [begin, end),
    // or input rows for linear. 0/0 means "all windows".
    std::int64_t win_begin = 0;
    std::int64_t win_end = 0;

    bool operator==(const CoreOpParams &) const = default;
};

/** Geometry for windowed / scaling DCOM functions. */
struct DcomParams {
    std::int64_t channels = 0;
    std::int64_t in_h = 0;
    std::int64_t in_w = 0;
    std::int64_t kernel = 1;
    std::int64_t stride = 1;
    std::int64_t padding = 0;
    int shift = 0; //!< requantization right-shift

    bool operator==(const DcomParams &) const = default;
};

/**
 * One meta-operator instance. Field usage by kind:
 *
 *  kReadCore:  core, core_params, src (L0 in), dst (L0 out, int32 acc)
 *  kWriteCore: core, core_params, payload (weights)
 *  kReadXb:    core, xb, len (#crossbars), rows (input length),
 *              cols (outputs produced), src (L1 in), dst (L1 acc)
 *  kWriteXb:   core, xb, payload ([rows x logical-cols] weights)
 *  kReadRow:   core, xb, row, len (#rows), cols, src, dst
 *  kWriteRow:  core, xb, row, len, payload
 *  kDcom:      func, src, src2 (binary funcs), dst, len, dcom_params
 *  kMov:       src, dst, len, count/src_stride/dst_stride (strided block)
 */
struct MetaOp {
    MetaOpKind kind = MetaOpKind::kMov;

    std::int64_t core = 0;
    std::int64_t xb = 0;
    std::int64_t row = 0;
    std::int64_t len = 1;
    std::int64_t rows = 0;
    std::int64_t cols = 0;

    BufAddr src;
    BufAddr src2;
    BufAddr dst;

    std::string func; //!< DCOM function name ("relu", "add", ...)
    CoreOpParams core_params;
    DcomParams dcom_params;

    // Strided block-copy extension for kMov: copies `count` blocks of
    // `len` elements, advancing src/dst by the strides between blocks.
    std::int64_t count = 1;
    std::int64_t src_stride = 0;
    std::int64_t dst_stride = 0;

    //! weight payload for write ops (shared: flows can be large)
    std::shared_ptr<const Int8Tensor> payload;

    //! graph node this op was generated from (traceability)
    NodeId origin = kInvalidNode;

    //! hybrid offload: this kDcom/kMov executes on the host CPU. The
    //! numerics are identical to the chip ALU path — the flag only
    //! changes where the op is priced, so funcsim replays it unchanged.
    bool host = false;

    /** One-line rendering in the Figure 16 surface syntax. */
    std::string toString() const;
};

/** DCOM function names understood by the simulator and validator. */
namespace dcomfunc {
inline constexpr const char *kZero = "zero";
inline constexpr const char *kRelu = "relu";
inline constexpr const char *kAdd = "add";
inline constexpr const char *kRequant = "requant";
inline constexpr const char *kMaxPool = "maxpool";
inline constexpr const char *kAvgPool = "avgpool";
inline constexpr const char *kGlobalAvgPool = "gap";
inline constexpr const char *kSoftmax = "softmax";
inline constexpr const char *kLayerNorm = "layernorm";
inline constexpr const char *kGelu = "gelu";
inline constexpr const char *kMatMul = "matmul";
} // namespace dcomfunc

} // namespace cimmlc

#endif // CIMMLC_MOP_METAOP_H
