#include "mop/validator.h"

#include <set>
#include <string>

#include "common/strutil.h"

namespace cimmlc {

namespace {

/** Per-mode op legality: which CIM meta-ops each interface exposes. */
bool
opAllowedInMode(MetaOpKind kind, ComputeMode mode)
{
    switch (kind) {
      case MetaOpKind::kReadCore:
      case MetaOpKind::kWriteCore:
        // Core-granularity ops exist on every interface.
        return true;
      case MetaOpKind::kReadXb:
      case MetaOpKind::kWriteXb:
        return mode == ComputeMode::kXBM || mode == ComputeMode::kWLM;
      case MetaOpKind::kReadRow:
      case MetaOpKind::kWriteRow:
        return mode == ComputeMode::kWLM;
      case MetaOpKind::kDcom:
      case MetaOpKind::kMov:
        return true;
    }
    return false;
}

bool
knownDcomFunc(const std::string &func)
{
    static const std::set<std::string> known = {
        dcomfunc::kZero,    dcomfunc::kRelu,
        dcomfunc::kAdd,     dcomfunc::kRequant,
        dcomfunc::kMaxPool, dcomfunc::kAvgPool,   dcomfunc::kGlobalAvgPool,
        dcomfunc::kSoftmax, dcomfunc::kLayerNorm, dcomfunc::kGelu,
        dcomfunc::kMatMul,
    };
    return known.count(func) > 0;
}

class Validator
{
  public:
    Validator(const CimArchitecture &arch, const ValidateOptions &options)
        : arch_(arch), options_(options)
    {
    }

    Status
    run(const MopProgram &program)
    {
        CIMMLC_RETURN_IF_ERROR(section(program.init(), /*in_init=*/true,
                                       /*in_parallel=*/false));
        CIMMLC_RETURN_IF_ERROR(section(program.compute(), false, false));
        return Status::ok();
    }

  private:
    Status
    section(const std::vector<Stmt> &stmts, bool in_init, bool in_parallel)
    {
        for (const Stmt &stmt : stmts) {
            switch (stmt.kind) {
              case Stmt::Kind::kOp:
                CIMMLC_RETURN_IF_ERROR(checkOp(stmt.op, in_init));
                break;
              case Stmt::Kind::kParallel:
                if (in_parallel) {
                    return invalidArgument(
                        "nested parallel blocks are not supported");
                }
                CIMMLC_RETURN_IF_ERROR(
                    section(stmt.body, in_init, /*in_parallel=*/true));
                break;
              case Stmt::Kind::kRepeat:
                if (stmt.repeat <= 0) {
                    return invalidArgument(strformat(
                        "repeat count must be positive, got %lld",
                        static_cast<long long>(stmt.repeat)));
                }
                CIMMLC_RETURN_IF_ERROR(
                    section(stmt.body, in_init, in_parallel));
                break;
            }
        }
        return Status::ok();
    }

    Status
    checkBufAddr(const BufAddr &addr, std::int64_t extent,
                 const MetaOp &op)
    {
        if (addr.offset < 0 || extent < 0) {
            return outOfRange("negative buffer address in " +
                              op.toString());
        }
        if (addr.space == MemSpace::kL1) {
            if (addr.core < 0 || addr.core >= arch_.chip.coreNumber()) {
                return outOfRange("L1 core out of range in " +
                                  op.toString());
            }
            // Element size is int32 in the executable model.
            if (arch_.core.l1_size_kib > 0) {
                const std::int64_t capacity = static_cast<std::int64_t>(
                    arch_.core.l1_size_kib * 1024.0 / 4.0);
                if (addr.offset + extent > capacity) {
                    return outOfRange(strformat(
                        "L1 overflow (%lld > %lld elems) in %s",
                        static_cast<long long>(addr.offset + extent),
                        static_cast<long long>(capacity),
                        op.toString().c_str()));
                }
            }
        } else if (arch_.chip.l0_size_kib > 0) {
            const std::int64_t capacity = static_cast<std::int64_t>(
                arch_.chip.l0_size_kib * 1024.0 / 4.0);
            if (addr.offset + extent > capacity) {
                return outOfRange(strformat(
                    "L0 overflow (%lld > %lld elems) in %s",
                    static_cast<long long>(addr.offset + extent),
                    static_cast<long long>(capacity),
                    op.toString().c_str()));
            }
        }
        return Status::ok();
    }

    Status
    checkOp(const MetaOp &op, bool in_init)
    {
        if (options_.enforce_mode &&
            !opAllowedInMode(op.kind, arch_.mode)) {
            return failedPrecondition(strformat(
                "%s is not exposed by the %s programming interface",
                metaOpKindName(op.kind), computeModeName(arch_.mode)));
        }
        if (isCimMetaOp(op.kind)) {
            if (op.core < 0 || op.core >= arch_.chip.coreNumber()) {
                return outOfRange(strformat(
                    "core %lld out of range [0, %lld) in %s",
                    static_cast<long long>(op.core),
                    static_cast<long long>(arch_.chip.coreNumber()),
                    op.toString().c_str()));
            }
        }
        switch (op.kind) {
          case MetaOpKind::kReadXb:
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kReadRow:
          case MetaOpKind::kWriteRow: {
            if (op.xb < 0 || op.xb >= arch_.core.xbNumber()) {
                return outOfRange(strformat(
                    "crossbar %lld out of range [0, %lld) in %s",
                    static_cast<long long>(op.xb),
                    static_cast<long long>(arch_.core.xbNumber()),
                    op.toString().c_str()));
            }
            break;
          }
          default:
            break;
        }
        switch (op.kind) {
          case MetaOpKind::kReadXb: {
            if (op.xb + op.len > arch_.core.xbNumber()) {
                return outOfRange("readxb len exceeds crossbars in " +
                                  op.toString());
            }
            if (op.rows > arch_.xbar.rows) {
                return outOfRange("readxb rows exceed crossbar rows in " +
                                  op.toString());
            }
            if (op.cols > arch_.logicalColsPerCrossbar() * op.len) {
                return outOfRange("readxb cols exceed capacity in " +
                                  op.toString());
            }
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.src, op.rows, op));
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.dst, op.cols, op));
            break;
          }
          case MetaOpKind::kReadRow: {
            if (op.row < 0 || op.row + op.len > arch_.xbar.rows) {
                return outOfRange("readrow range exceeds crossbar in " +
                                  op.toString());
            }
            if (op.len > arch_.xbar.parallel_row) {
                return outOfRange(strformat(
                    "readrow activates %lld rows but parallel_row is "
                    "%lld in %s",
                    static_cast<long long>(op.len),
                    static_cast<long long>(arch_.xbar.parallel_row),
                    op.toString().c_str()));
            }
            if (op.cols > arch_.logicalColsPerCrossbar()) {
                return outOfRange("readrow cols exceed capacity in " +
                                  op.toString());
            }
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.src, op.len, op));
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.dst, op.cols, op));
            break;
          }
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kWriteRow: {
            if (!in_init && options_.enforce_write_policy &&
                arch_.weightsStationary()) {
                return failedPrecondition(strformat(
                    "%s devices freeze weights after init; runtime "
                    "write in %s",
                    cellTypeName(arch_.xbar.cell_type),
                    op.toString().c_str()));
            }
            if (op.kind == MetaOpKind::kWriteRow &&
                (op.row < 0 || op.row + op.len > arch_.xbar.rows)) {
                return outOfRange("writerow range exceeds crossbar in " +
                                  op.toString());
            }
            if (op.payload) {
                const std::int64_t prows = op.payload->shape().dim(0);
                const std::int64_t pcols =
                    op.payload->shape().rank() > 1
                        ? op.payload->shape().dim(1) : 1;
                if (op.kind == MetaOpKind::kWriteXb &&
                    (prows > arch_.xbar.rows ||
                     pcols > arch_.logicalColsPerCrossbar())) {
                    return outOfRange("writexb payload exceeds crossbar "
                                      "in " + op.toString());
                }
                if (op.kind == MetaOpKind::kWriteRow &&
                    (prows > op.len ||
                     pcols > arch_.logicalColsPerCrossbar())) {
                    return outOfRange("writerow payload exceeds range "
                                      "in " + op.toString());
                }
            }
            break;
          }
          case MetaOpKind::kDcom: {
            if (!knownDcomFunc(op.func)) {
                return invalidArgument("unknown DCOM function '" +
                                       op.func + "'");
            }
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.src, op.len, op));
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.dst, 0, op));
            break;
          }
          case MetaOpKind::kMov: {
            if (op.len <= 0 || op.count <= 0) {
                return invalidArgument("mov len/count must be positive "
                                       "in " + op.toString());
            }
            const std::int64_t src_extent =
                op.src_stride * (op.count - 1) + op.len;
            const std::int64_t dst_extent =
                op.dst_stride * (op.count - 1) + op.len;
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.src, src_extent, op));
            CIMMLC_RETURN_IF_ERROR(checkBufAddr(op.dst, dst_extent, op));
            break;
          }
          case MetaOpKind::kReadCore:
          case MetaOpKind::kWriteCore:
            break;
        }
        return Status::ok();
    }

    const CimArchitecture &arch_;
    ValidateOptions options_;
};

} // namespace

Status
validateProgram(const MopProgram &program, const CimArchitecture &arch,
                const ValidateOptions &options)
{
    Validator validator(arch, options);
    return validator.run(program);
}

} // namespace cimmlc
