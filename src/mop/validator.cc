#include "mop/validator.h"

#include <set>
#include <string>
#include <utility>

#include "common/strutil.h"

namespace cimmlc {

namespace {

/** Per-mode op legality: which CIM meta-ops each interface exposes. */
bool
opAllowedInMode(MetaOpKind kind, ComputeMode mode)
{
    switch (kind) {
      case MetaOpKind::kReadCore:
      case MetaOpKind::kWriteCore:
        // Core-granularity ops exist on every interface.
        return true;
      case MetaOpKind::kReadXb:
      case MetaOpKind::kWriteXb:
        return mode == ComputeMode::kXBM || mode == ComputeMode::kWLM;
      case MetaOpKind::kReadRow:
      case MetaOpKind::kWriteRow:
        return mode == ComputeMode::kWLM;
      case MetaOpKind::kDcom:
      case MetaOpKind::kMov:
        return true;
    }
    return false;
}

bool
knownDcomFunc(const std::string &func)
{
    static const std::set<std::string> known = {
        dcomfunc::kZero,    dcomfunc::kRelu,
        dcomfunc::kAdd,     dcomfunc::kRequant,
        dcomfunc::kMaxPool, dcomfunc::kAvgPool,   dcomfunc::kGlobalAvgPool,
        dcomfunc::kSoftmax, dcomfunc::kLayerNorm, dcomfunc::kGelu,
        dcomfunc::kMatMul,
    };
    return known.count(func) > 0;
}

namespace check {
inline constexpr const char *kParallelNest = "struct-parallel-nest";
inline constexpr const char *kRepeatCount = "struct-repeat-count";
inline constexpr const char *kMode = "struct-mode";
inline constexpr const char *kCoreRange = "struct-core-range";
inline constexpr const char *kXbarRange = "struct-xbar-range";
inline constexpr const char *kGeometry = "struct-geometry";
inline constexpr const char *kWritePolicy = "struct-write-policy";
inline constexpr const char *kDcomFunc = "struct-dcom-func";
inline constexpr const char *kMov = "struct-mov";
inline constexpr const char *kAddr = "struct-addr";
} // namespace check

class Validator
{
  public:
    Validator(const CimArchitecture &arch, const ValidateOptions &options)
        : arch_(arch), options_(options)
    {
    }

    std::vector<MopDiagnostic>
    run(const MopProgram &program)
    {
        section_ = "init";
        next_index_ = 0;
        walk(program.init(), /*in_init=*/true, /*in_parallel=*/false);
        section_ = "compute";
        next_index_ = 0;
        walk(program.compute(), false, false);
        return std::move(diags_);
    }

  private:
    void
    walk(const std::vector<Stmt> &stmts, bool in_init, bool in_parallel)
    {
        for (const Stmt &stmt : stmts) {
            const std::int64_t index = next_index_++;
            switch (stmt.kind) {
              case Stmt::Kind::kOp:
                checkOp(stmt.op, in_init, index);
                break;
              case Stmt::Kind::kParallel:
                if (in_parallel) {
                    add(index, check::kParallelNest,
                        StatusCode::kInvalidArgument,
                        "nested parallel blocks are not supported");
                }
                walk(stmt.body, in_init, /*in_parallel=*/true);
                break;
              case Stmt::Kind::kRepeat:
                if (stmt.repeat <= 0) {
                    add(index, check::kRepeatCount,
                        StatusCode::kInvalidArgument,
                        strformat(
                            "repeat count must be positive, got %lld",
                            static_cast<long long>(stmt.repeat)));
                }
                walk(stmt.body, in_init, in_parallel);
                break;
            }
        }
    }

    void
    add(std::int64_t index, const char *check_id, StatusCode code,
        std::string message)
    {
        MopDiagnostic diag;
        diag.severity = DiagSeverity::kError;
        diag.check = check_id;
        diag.section = section_;
        diag.stmt_index = index;
        diag.code = code;
        diag.message = std::move(message);
        diags_.push_back(std::move(diag));
    }

    bool
    checkBufAddr(const BufAddr &addr, std::int64_t extent,
                 const MetaOp &op, std::int64_t index)
    {
        if (addr.offset < 0 || extent < 0) {
            add(index, check::kAddr, StatusCode::kOutOfRange,
                "negative buffer address in " + op.toString());
            return false;
        }
        if (addr.space == MemSpace::kL1) {
            if (addr.core < 0 || addr.core >= arch_.chip.coreNumber()) {
                add(index, check::kAddr, StatusCode::kOutOfRange,
                    "L1 core out of range in " + op.toString());
                return false;
            }
            // Element size is int32 in the executable model.
            if (arch_.core.l1_size_kib > 0) {
                const std::int64_t capacity = static_cast<std::int64_t>(
                    arch_.core.l1_size_kib * 1024.0 / 4.0);
                if (addr.offset + extent > capacity) {
                    add(index, check::kAddr, StatusCode::kOutOfRange,
                        strformat(
                            "L1 overflow (%lld > %lld elems) in %s",
                            static_cast<long long>(addr.offset + extent),
                            static_cast<long long>(capacity),
                            op.toString().c_str()));
                    return false;
                }
            }
        } else if (options_.enforce_l0_capacity
                   && arch_.chip.l0_size_kib > 0) {
            const std::int64_t capacity = static_cast<std::int64_t>(
                arch_.chip.l0_size_kib * 1024.0 / 4.0);
            if (addr.offset + extent > capacity) {
                add(index, check::kAddr, StatusCode::kOutOfRange,
                    strformat("L0 overflow (%lld > %lld elems) in %s",
                              static_cast<long long>(addr.offset + extent),
                              static_cast<long long>(capacity),
                              op.toString().c_str()));
                return false;
            }
        }
        return true;
    }

    // Mirrors the historical first-error semantics per op: after a
    // finding, the remaining checks on the same op are skipped (they
    // would cascade misleadingly); the walk continues with the next
    // statement.
    void
    checkOp(const MetaOp &op, bool in_init, std::int64_t index)
    {
        if (options_.enforce_mode &&
            !opAllowedInMode(op.kind, arch_.mode)) {
            add(index, check::kMode, StatusCode::kFailedPrecondition,
                strformat(
                    "%s is not exposed by the %s programming interface",
                    metaOpKindName(op.kind), computeModeName(arch_.mode)));
            return;
        }
        if (isCimMetaOp(op.kind)) {
            if (op.core < 0 || op.core >= arch_.chip.coreNumber()) {
                add(index, check::kCoreRange, StatusCode::kOutOfRange,
                    strformat("core %lld out of range [0, %lld) in %s",
                              static_cast<long long>(op.core),
                              static_cast<long long>(
                                  arch_.chip.coreNumber()),
                              op.toString().c_str()));
                return;
            }
        }
        switch (op.kind) {
          case MetaOpKind::kReadXb:
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kReadRow:
          case MetaOpKind::kWriteRow: {
            if (op.xb < 0 || op.xb >= arch_.core.xbNumber()) {
                add(index, check::kXbarRange, StatusCode::kOutOfRange,
                    strformat(
                        "crossbar %lld out of range [0, %lld) in %s",
                        static_cast<long long>(op.xb),
                        static_cast<long long>(arch_.core.xbNumber()),
                        op.toString().c_str()));
                return;
            }
            break;
          }
          default:
            break;
        }
        switch (op.kind) {
          case MetaOpKind::kReadXb: {
            if (op.xb + op.len > arch_.core.xbNumber()) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "readxb len exceeds crossbars in " + op.toString());
                return;
            }
            if (op.rows > arch_.xbar.rows) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "readxb rows exceed crossbar rows in " +
                        op.toString());
                return;
            }
            if (op.cols > arch_.logicalColsPerCrossbar() * op.len) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "readxb cols exceed capacity in " + op.toString());
                return;
            }
            if (!checkBufAddr(op.src, op.rows, op, index))
                return;
            checkBufAddr(op.dst, op.cols, op, index);
            break;
          }
          case MetaOpKind::kReadRow: {
            if (op.row < 0 || op.row + op.len > arch_.xbar.rows) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "readrow range exceeds crossbar in " + op.toString());
                return;
            }
            if (op.len > arch_.xbar.parallel_row) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    strformat("readrow activates %lld rows but "
                              "parallel_row is %lld in %s",
                              static_cast<long long>(op.len),
                              static_cast<long long>(
                                  arch_.xbar.parallel_row),
                              op.toString().c_str()));
                return;
            }
            if (op.cols > arch_.logicalColsPerCrossbar()) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "readrow cols exceed capacity in " + op.toString());
                return;
            }
            if (!checkBufAddr(op.src, op.len, op, index))
                return;
            checkBufAddr(op.dst, op.cols, op, index);
            break;
          }
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kWriteRow: {
            if (!in_init && options_.enforce_write_policy &&
                arch_.weightsStationary()) {
                add(index, check::kWritePolicy,
                    StatusCode::kFailedPrecondition,
                    strformat("%s devices freeze weights after init; "
                              "runtime write in %s",
                              cellTypeName(arch_.xbar.cell_type),
                              op.toString().c_str()));
                return;
            }
            if (op.kind == MetaOpKind::kWriteRow &&
                (op.row < 0 || op.row + op.len > arch_.xbar.rows)) {
                add(index, check::kGeometry, StatusCode::kOutOfRange,
                    "writerow range exceeds crossbar in " +
                        op.toString());
                return;
            }
            if (op.payload && op.payload->shape().rank() > 0) {
                const std::int64_t prows = op.payload->shape().dim(0);
                const std::int64_t pcols =
                    op.payload->shape().rank() > 1
                        ? op.payload->shape().dim(1) : 1;
                if (op.kind == MetaOpKind::kWriteXb &&
                    (prows > arch_.xbar.rows ||
                     pcols > arch_.logicalColsPerCrossbar())) {
                    add(index, check::kGeometry, StatusCode::kOutOfRange,
                        "writexb payload exceeds crossbar in " +
                            op.toString());
                    return;
                }
                if (op.kind == MetaOpKind::kWriteRow &&
                    (prows > op.len ||
                     pcols > arch_.logicalColsPerCrossbar())) {
                    add(index, check::kGeometry, StatusCode::kOutOfRange,
                        "writerow payload exceeds range in " +
                            op.toString());
                    return;
                }
            }
            break;
          }
          case MetaOpKind::kDcom: {
            if (!knownDcomFunc(op.func)) {
                add(index, check::kDcomFunc,
                    StatusCode::kInvalidArgument,
                    "unknown DCOM function '" + op.func + "'");
                return;
            }
            if (!checkBufAddr(op.src, op.len, op, index))
                return;
            checkBufAddr(op.dst, 0, op, index);
            break;
          }
          case MetaOpKind::kMov: {
            if (op.len <= 0 || op.count <= 0) {
                add(index, check::kMov, StatusCode::kInvalidArgument,
                    "mov len/count must be positive in " + op.toString());
                return;
            }
            const std::int64_t src_extent =
                op.src_stride * (op.count - 1) + op.len;
            const std::int64_t dst_extent =
                op.dst_stride * (op.count - 1) + op.len;
            if (!checkBufAddr(op.src, src_extent, op, index))
                return;
            checkBufAddr(op.dst, dst_extent, op, index);
            break;
          }
          case MetaOpKind::kReadCore:
          case MetaOpKind::kWriteCore:
            break;
        }
    }

    const CimArchitecture &arch_;
    ValidateOptions options_;
    std::string section_;
    std::int64_t next_index_ = 0;
    std::vector<MopDiagnostic> diags_;
};

} // namespace

std::vector<MopDiagnostic>
collectProgramDiagnostics(const MopProgram &program,
                          const CimArchitecture &arch,
                          const ValidateOptions &options)
{
    Validator validator(arch, options);
    return validator.run(program);
}

Status
validateProgram(const MopProgram &program, const CimArchitecture &arch,
                const ValidateOptions &options)
{
    return firstError(collectProgramDiagnostics(program, arch, options));
}

} // namespace cimmlc
