/**
 * @file
 * Parser for the printed meta-operator syntax, enabling round-trip tests
 * and flow inspection from text. Weight payload *data* is not part of the
 * surface syntax (the printer shows only shapes), so parsed write ops
 * carry null payloads with the shape recorded in rows/cols.
 */
#ifndef CIMMLC_MOP_PARSER_H
#define CIMMLC_MOP_PARSER_H

#include <string>

#include "common/status.h"
#include "mop/program.h"

namespace cimmlc {

/** Parses a full program (init/compute sections, nested blocks). */
StatusOr<MopProgram> parseProgram(const std::string &text);

/** Parses a single op line like "mov(src=L0[0], dst=L1c0[0], len=27)". */
StatusOr<MetaOp> parseOpLine(const std::string &line);

} // namespace cimmlc

#endif // CIMMLC_MOP_PARSER_H
