/**
 * @file
 * The CIM functional simulator (Section 4.1): executes a compiled
 * meta-operator flow against explicit crossbar, L0, and L1 state, so a
 * schedule's correctness can be checked bit-for-bit against the
 * reference executor (the paper verifies against PyTorch).
 *
 * State model:
 *  - L0/L1 buffers hold one 32-bit value per element (int8 activations
 *    occupy one slot; CIM accumulators use the full width);
 *  - each crossbar holds its *logical* weight matrix (one int8 weight per
 *    logical column — bit-slicing across `cellsPerWeight` physical cells
 *    is a latency/energy concern handled by the performance simulator,
 *    not a functional one);
 *  - cim.read* ops multiply a buffer slice with stored weights and
 *    accumulate into the destination; DCOM ops reuse the exact reference
 *    kernels from tensor/ops.h, guaranteeing bit-equality by
 *    construction.
 */
#ifndef CIMMLC_FUNCSIM_SIMULATOR_H
#define CIMMLC_FUNCSIM_SIMULATOR_H

#include <cstdint>
#include <map>
#include <vector>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "mop/program.h"
#include "sched/codegen.h"
#include "tensor/tensor.h"

namespace cimmlc {

/** Execution statistics of one functional run. */
struct FuncSimStats {
    std::int64_t ops_executed = 0;
    std::int64_t cim_reads = 0;
    std::int64_t cim_writes = 0;
    std::int64_t macs = 0;
    std::int64_t buffer_reads = 0;
    std::int64_t buffer_writes = 0;
};

/** Executes compiled flows on simulated CIM hardware state. */
class FunctionalSimulator
{
  public:
    FunctionalSimulator(const CimArchitecture &arch,
                        const CodegenResult &code);

    /** Loads a graph input tensor into its L0 region. */
    Status loadInput(const Graph &graph, TensorId tensor,
                     const Int8Tensor &value);

    /** Executes the program's init then compute sections. */
    Status run();

    /** Reads a tensor's L0 region back as int8. */
    StatusOr<Int8Tensor> readTensor(const Graph &graph,
                                    TensorId tensor) const;

    const FuncSimStats &stats() const { return stats_; }

    /** Direct L0 access for white-box tests. */
    std::int32_t l0At(std::int64_t offset) const;

  private:
    Status execStmts(const std::vector<Stmt> &stmts);
    Status execOp(const MetaOp &op);
    Status execCimRead(const MetaOp &op);
    Status execReadCore(const MetaOp &op);
    Status execDcom(const MetaOp &op);
    Status execMov(const MetaOp &op);

    StatusOr<std::int32_t *> bufPtr(const BufAddr &addr,
                                    std::int64_t extent);
    StatusOr<const std::int32_t *> bufPtrConst(const BufAddr &addr,
                                               std::int64_t extent) const;

    const CimArchitecture &arch_;
    const CodegenResult &code_;

    std::vector<std::int32_t> l0_;
    std::vector<std::vector<std::int32_t>> l1_;
    //! logical weight state per crossbar, indexed core * xbN + xb
    std::vector<std::vector<std::int8_t>> xbars_;
    std::int64_t xb_logical_cols_ = 0;

    //! CM-mode weights installed per core by cim.writecore
    struct CoreState {
        CoreOpParams params;
        Int8Tensor weights;
        bool valid = false;
    };
    std::map<std::int64_t, CoreState> cores_;

    FuncSimStats stats_;
};

} // namespace cimmlc

#endif // CIMMLC_FUNCSIM_SIMULATOR_H
