#include "funcsim/verify.h"

#include "common/rng.h"
#include "common/strutil.h"
#include "funcsim/simulator.h"
#include "graph/reference.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"

namespace cimmlc {

StatusOr<VerifyReport>
verifyCompiledFlow(const Graph &graph, const CimArchitecture &arch,
                   const ScheduleOptions &options,
                   const std::map<TensorId, Int8Tensor> &inputs)
{
    // 1. Reference run with shift calibration.
    CIMMLC_ASSIGN_OR_RETURN(ReferenceResult reference,
                            runReference(graph, inputs));

    // 2. Compile with the calibrated shifts.
    CIMMLC_ASSIGN_OR_RETURN(Schedule schedule,
                            scheduleGraph(graph, arch, options));
    CodegenOptions codegen_options;
    codegen_options.unroll = true;
    codegen_options.shifts = reference.shifts;
    CIMMLC_ASSIGN_OR_RETURN(
        CodegenResult code,
        generateProgram(graph, arch, schedule, codegen_options));

    // 3. Execute the flow.
    FunctionalSimulator simulator(arch, code);
    for (const auto &[tensor, value] : inputs)
        CIMMLC_RETURN_IF_ERROR(simulator.loadInput(graph, tensor, value));
    CIMMLC_RETURN_IF_ERROR(simulator.run());

    // 4. Compare marked outputs.
    VerifyReport report;
    report.flow_ops = code.program.counts().total();
    for (TensorId out : graph.outputs()) {
        CIMMLC_ASSIGN_OR_RETURN(Int8Tensor actual,
                                simulator.readTensor(graph, out));
        auto it = reference.tensors.find(out);
        if (it == reference.tensors.end())
            return internalError("reference did not compute an output");
        const Int8Tensor &expected = it->second;
        ++report.outputs_checked;
        report.elements_checked += expected.numel();
        for (std::int64_t i = 0; i < expected.numel(); ++i) {
            if (actual[i] != expected[i]) {
                ++report.mismatches;
                if (report.first_mismatch.empty()) {
                    report.first_mismatch = strformat(
                        "tensor %d ('%s') element %lld: flow=%d "
                        "reference=%d",
                        out, graph.tensor(out).name.c_str(),
                        static_cast<long long>(i),
                        static_cast<int>(actual[i]),
                        static_cast<int>(expected[i]));
                }
            }
        }
    }
    report.match = report.mismatches == 0;
    return report;
}

StatusOr<VerifyReport>
verifyWithRandomStimulus(const Graph &graph, const CimArchitecture &arch,
                         const ScheduleOptions &options,
                         std::uint64_t seed)
{
    Graph stimulated = graph;
    Rng rng(seed);
    stimulated.randomizeWeights(rng);
    std::map<TensorId, Int8Tensor> inputs;
    for (TensorId in : stimulated.inputs()) {
        Int8Tensor tensor(TensorShape(stimulated.tensor(in).dims));
        tensor.fillRandom(rng, -16, 16);
        inputs.emplace(in, std::move(tensor));
    }
    return verifyCompiledFlow(stimulated, arch, options, inputs);
}

} // namespace cimmlc
