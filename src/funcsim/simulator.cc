#include "funcsim/simulator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

namespace cimmlc {

namespace {

/** Scale shared with the reference executor's float DCOM path. */
constexpr float kFloatScale = 1.0f / 16.0f;

/** Extracts `len` int8 values from an int32 buffer region. */
Int8Tensor
regionToInt8(const std::int32_t *src, TensorShape shape)
{
    Int8Tensor out(std::move(shape));
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        out[i] = static_cast<std::int8_t>(
            clampInt(src[i], -128, 127));
    }
    return out;
}

void
int8ToRegion(const Int8Tensor &value, std::int32_t *dst)
{
    for (std::int64_t i = 0; i < value.numel(); ++i)
        dst[i] = value[i];
}

} // namespace

FunctionalSimulator::FunctionalSimulator(const CimArchitecture &arch,
                                         const CodegenResult &code)
    : arch_(arch), code_(code)
{
    l0_.assign(static_cast<std::size_t>(std::max<std::int64_t>(
                   code.l0_elements, 1)),
               0);
    l1_.assign(static_cast<std::size_t>(arch.chip.coreNumber()),
               std::vector<std::int32_t>(
                   static_cast<std::size_t>(
                       std::max<std::int64_t>(code.l1_elements, 1)),
                   0));
    xb_logical_cols_ = arch.logicalColsPerCrossbar();
    xbars_.assign(static_cast<std::size_t>(arch.totalCrossbars()),
                  std::vector<std::int8_t>(
                      static_cast<std::size_t>(arch.xbar.rows *
                                               xb_logical_cols_),
                      0));
}

Status
FunctionalSimulator::loadInput(const Graph &graph, TensorId tensor,
                               const Int8Tensor &value)
{
    auto it = code_.tensor_offsets.find(tensor);
    if (it == code_.tensor_offsets.end())
        return notFound(strformat("tensor %d has no L0 region", tensor));
    const std::int64_t expected = graph.tensor(tensor).numel();
    if (value.numel() != expected) {
        return invalidArgument(strformat(
            "input %d element count mismatch: got %lld want %lld", tensor,
            static_cast<long long>(value.numel()),
            static_cast<long long>(expected)));
    }
    for (std::int64_t i = 0; i < value.numel(); ++i)
        l0_[static_cast<std::size_t>(it->second + i)] = value[i];
    return Status::ok();
}

Status
FunctionalSimulator::run()
{
    if (!code_.executable) {
        return failedPrecondition(
            "program was emitted compressed; re-generate with unroll");
    }
    CIMMLC_RETURN_IF_ERROR(execStmts(code_.program.init()));
    CIMMLC_RETURN_IF_ERROR(execStmts(code_.program.compute()));
    return Status::ok();
}

StatusOr<Int8Tensor>
FunctionalSimulator::readTensor(const Graph &graph, TensorId tensor) const
{
    auto it = code_.tensor_offsets.find(tensor);
    if (it == code_.tensor_offsets.end())
        return notFound(strformat("tensor %d has no L0 region", tensor));
    const ValueInfo &info = graph.tensor(tensor);
    const std::int64_t count = info.numel();
    if (it->second + count > static_cast<std::int64_t>(l0_.size()))
        return outOfRange("tensor region exceeds L0");
    return regionToInt8(l0_.data() + it->second, TensorShape(info.dims));
}

std::int32_t
FunctionalSimulator::l0At(std::int64_t offset) const
{
    CIMMLC_CHECK(offset >= 0 &&
                 offset < static_cast<std::int64_t>(l0_.size()));
    return l0_[static_cast<std::size_t>(offset)];
}

Status
FunctionalSimulator::execStmts(const std::vector<Stmt> &stmts)
{
    for (const Stmt &stmt : stmts) {
        switch (stmt.kind) {
          case Stmt::Kind::kOp:
            CIMMLC_RETURN_IF_ERROR(execOp(stmt.op));
            break;
          case Stmt::Kind::kParallel:
            // Parallel ops accumulate commutatively; sequential
            // execution yields the same result.
            CIMMLC_RETURN_IF_ERROR(execStmts(stmt.body));
            break;
          case Stmt::Kind::kRepeat:
            for (std::int64_t i = 0; i < stmt.repeat; ++i)
                CIMMLC_RETURN_IF_ERROR(execStmts(stmt.body));
            break;
        }
    }
    return Status::ok();
}

StatusOr<std::int32_t *>
FunctionalSimulator::bufPtr(const BufAddr &addr, std::int64_t extent)
{
    auto result = bufPtrConst(addr, extent);
    if (!result.isOk())
        return result.status();
    return const_cast<std::int32_t *>(result.value());
}

StatusOr<const std::int32_t *>
FunctionalSimulator::bufPtrConst(const BufAddr &addr,
                                 std::int64_t extent) const
{
    if (addr.offset < 0 || extent < 0)
        return outOfRange("negative buffer address");
    if (addr.space == MemSpace::kL0) {
        if (addr.offset + extent > static_cast<std::int64_t>(l0_.size()))
            return outOfRange(strformat(
                "L0 access [%lld, %lld) exceeds %zu",
                static_cast<long long>(addr.offset),
                static_cast<long long>(addr.offset + extent),
                l0_.size()));
        return l0_.data() + addr.offset;
    }
    if (addr.core < 0 ||
        addr.core >= static_cast<std::int64_t>(l1_.size()))
        return outOfRange("L1 core out of range");
    const auto &bank = l1_[static_cast<std::size_t>(addr.core)];
    if (addr.offset + extent > static_cast<std::int64_t>(bank.size()))
        return outOfRange("L1 access exceeds bank");
    return bank.data() + addr.offset;
}

Status
FunctionalSimulator::execOp(const MetaOp &op)
{
    ++stats_.ops_executed;
    switch (op.kind) {
      case MetaOpKind::kWriteCore: {
        if (!op.payload)
            return failedPrecondition("writecore without payload");
        CoreState &state = cores_[op.core];
        state.params = op.core_params;
        state.weights = *op.payload;
        state.valid = true;
        ++stats_.cim_writes;
        return Status::ok();
      }
      case MetaOpKind::kReadCore:
        ++stats_.cim_reads;
        return execReadCore(op);
      case MetaOpKind::kWriteXb:
      case MetaOpKind::kWriteRow: {
        if (!op.payload)
            return failedPrecondition("crossbar write without payload");
        const std::int64_t index =
            op.core * arch_.core.xbNumber() + op.xb;
        if (index < 0 ||
            index >= static_cast<std::int64_t>(xbars_.size()))
            return outOfRange("crossbar index out of range");
        auto &cells = xbars_[static_cast<std::size_t>(index)];
        const Int8Tensor &payload = *op.payload;
        const std::int64_t prows = payload.shape().dim(0);
        const std::int64_t pcols = payload.shape().rank() > 1
                                       ? payload.shape().dim(1) : 1;
        const std::int64_t row_base =
            op.kind == MetaOpKind::kWriteRow ? op.row : 0;
        if (row_base + prows > arch_.xbar.rows ||
            pcols > xb_logical_cols_)
            return outOfRange("crossbar write payload exceeds array");
        for (std::int64_t r = 0; r < prows; ++r) {
            for (std::int64_t c = 0; c < pcols; ++c) {
                cells[static_cast<std::size_t>(
                    (row_base + r) * xb_logical_cols_ + c)] =
                    payload.at2(r, c);
            }
        }
        ++stats_.cim_writes;
        return Status::ok();
      }
      case MetaOpKind::kReadXb:
      case MetaOpKind::kReadRow:
        ++stats_.cim_reads;
        return execCimRead(op);
      case MetaOpKind::kDcom:
        return execDcom(op);
      case MetaOpKind::kMov:
        return execMov(op);
    }
    return internalError("unhandled meta-op kind");
}

Status
FunctionalSimulator::execCimRead(const MetaOp &op)
{
    const std::int64_t index = op.core * arch_.core.xbNumber() + op.xb;
    if (index < 0 || index >= static_cast<std::int64_t>(xbars_.size()))
        return outOfRange("crossbar index out of range");
    const auto &cells = xbars_[static_cast<std::size_t>(index)];

    const std::int64_t rows =
        op.kind == MetaOpKind::kReadXb ? op.rows : op.len;
    const std::int64_t row_base =
        op.kind == MetaOpKind::kReadRow ? op.row : 0;
    if (op.kind == MetaOpKind::kReadRow &&
        op.len > arch_.xbar.parallel_row) {
        return failedPrecondition(strformat(
            "readrow activates %lld rows > parallel_row %lld",
            static_cast<long long>(op.len),
            static_cast<long long>(arch_.xbar.parallel_row)));
    }

    CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                            bufPtrConst(op.src, rows));
    CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst, bufPtr(op.dst, op.cols));
    for (std::int64_t i = 0; i < rows; ++i) {
        const std::int32_t activation = src[i];
        if (activation == 0)
            continue;
        const std::int8_t *weight_row =
            cells.data() + (row_base + i) * xb_logical_cols_;
        for (std::int64_t j = 0; j < op.cols; ++j)
            dst[j] += activation * static_cast<std::int32_t>(
                                       weight_row[j]);
    }
    stats_.macs += rows * op.cols;
    stats_.buffer_reads += rows;
    stats_.buffer_writes += op.cols;
    return Status::ok();
}

Status
FunctionalSimulator::execReadCore(const MetaOp &op)
{
    auto it = cores_.find(op.core);
    if (it == cores_.end() || !it->second.valid) {
        return failedPrecondition(strformat(
            "readcore on core %lld without installed weights",
            static_cast<long long>(op.core)));
    }
    const CoreState &state = it->second;
    const CoreOpParams &p = op.core_params;

    if (p.is_conv) {
        const std::int64_t OH =
            convOutDim(p.in_h, p.kernel, p.stride, p.padding);
        const std::int64_t OW =
            convOutDim(p.in_w, p.kernel, p.stride, p.padding);
        const std::int64_t in_elems = p.in_channels * p.in_h * p.in_w;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, in_elems));
        CIMMLC_ASSIGN_OR_RETURN(
            std::int32_t *dst,
            bufPtr(op.dst, p.out_channels * OH * OW));

        const std::int64_t w0 = p.win_begin;
        const std::int64_t w1 = p.win_end > 0 ? p.win_end : OH;
        const Int8Tensor &w = state.weights;
        for (std::int64_t o = 0; o < p.out_channels; ++o) {
            for (std::int64_t oh = w0; oh < w1; ++oh) {
                for (std::int64_t ow = 0; ow < OW; ++ow) {
                    std::int32_t acc = 0;
                    for (std::int64_t c = 0; c < p.in_channels; ++c) {
                        for (std::int64_t kh = 0; kh < p.kernel; ++kh) {
                            const std::int64_t ih =
                                oh * p.stride + kh - p.padding;
                            if (ih < 0 || ih >= p.in_h)
                                continue;
                            for (std::int64_t kw = 0; kw < p.kernel;
                                 ++kw) {
                                const std::int64_t iw =
                                    ow * p.stride + kw - p.padding;
                                if (iw < 0 || iw >= p.in_w)
                                    continue;
                                acc += src[(c * p.in_h + ih) * p.in_w +
                                           iw] *
                                       static_cast<std::int32_t>(
                                           w.at4(o, c, kh, kw));
                            }
                        }
                    }
                    dst[(o * OH + oh) * OW + ow] = acc;
                }
            }
        }
        stats_.macs += (w1 - w0) * OW * p.out_channels *
                       p.in_channels * p.kernel * p.kernel;
        return Status::ok();
    }

    // linear over input rows [win_begin, win_end)
    const std::int64_t w0 = p.win_begin;
    const std::int64_t w1 = p.win_end > 0 ? p.win_end : 1;
    CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                            bufPtrConst(op.src, w1 * p.in_features));
    CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                            bufPtr(op.dst, w1 * p.out_features));
    const Int8Tensor &w = state.weights;
    for (std::int64_t row = w0; row < w1; ++row) {
        for (std::int64_t o = 0; o < p.out_features; ++o) {
            std::int32_t acc = 0;
            for (std::int64_t f = 0; f < p.in_features; ++f) {
                acc += src[row * p.in_features + f] *
                       static_cast<std::int32_t>(w.at2(o, f));
            }
            dst[row * p.out_features + o] = acc;
        }
    }
    stats_.macs += (w1 - w0) * p.out_features * p.in_features;
    return Status::ok();
}

Status
FunctionalSimulator::execDcom(const MetaOp &op)
{
    const DcomParams &p = op.dcom_params;
    if (op.func == dcomfunc::kZero) {
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, op.len));
        std::fill(dst, dst + op.len, 0);
        return Status::ok();
    }
    if (op.func == dcomfunc::kRelu) {
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, op.len));
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, op.len));
        for (std::int64_t i = 0; i < op.len; ++i)
            dst[i] = std::max(src[i], 0);
        return Status::ok();
    }
    if (op.func == dcomfunc::kRequant) {
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, op.len));
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, op.len));
        for (std::int64_t i = 0; i < op.len; ++i) {
            dst[i] = clampInt(shiftRound(src[i], p.shift), -128, 127);
        }
        return Status::ok();
    }
    if (op.func == dcomfunc::kAdd) {
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *a,
                                bufPtrConst(op.src, op.len));
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *b,
                                bufPtrConst(op.src2, op.len));
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, op.len));
        for (std::int64_t i = 0; i < op.len; ++i)
            dst[i] = clampInt(a[i] + b[i], -128, 127);
        return Status::ok();
    }
    if (op.func == dcomfunc::kMaxPool || op.func == dcomfunc::kAvgPool) {
        const std::int64_t in_elems = p.channels * p.in_h * p.in_w;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, in_elems));
        Int8Tensor input = regionToInt8(
            src, TensorShape({1, p.channels, p.in_h, p.in_w}));
        const Int8Tensor pooled =
            op.func == dcomfunc::kMaxPool
                ? ops::maxPool2d(input, p.kernel, p.stride, p.padding)
                : ops::avgPool2d(input, p.kernel, p.stride, p.padding);
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, pooled.numel()));
        int8ToRegion(pooled, dst);
        return Status::ok();
    }
    if (op.func == dcomfunc::kGlobalAvgPool) {
        const std::int64_t in_elems = p.channels * p.in_h * p.in_w;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, in_elems));
        Int8Tensor input = regionToInt8(
            src, TensorShape({1, p.channels, p.in_h, p.in_w}));
        const Int8Tensor pooled = ops::globalAvgPool(input);
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, pooled.numel()));
        int8ToRegion(pooled, dst);
        return Status::ok();
    }
    if (op.func == dcomfunc::kSoftmax ||
        op.func == dcomfunc::kLayerNorm || op.func == dcomfunc::kGelu) {
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *src,
                                bufPtrConst(op.src, op.len));
        const std::int64_t cols =
            p.in_w > 0 ? p.in_w : op.len; // row width for reductions
        if (op.len % cols != 0)
            return invalidArgument("DCOM row width does not divide len");
        Int8Tensor input =
            regionToInt8(src, TensorShape({op.len / cols, cols}));
        FloatTensor f = dequantize(input, kFloatScale);
        if (op.func == dcomfunc::kSoftmax) {
            f = ops::softmax(f);
        } else if (op.func == dcomfunc::kLayerNorm) {
            f = ops::layerNorm(f);
        } else {
            f = ops::gelu(f);
        }
        const Int8Tensor q = quantizeFloat(f, kFloatScale);
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, op.len));
        int8ToRegion(q, dst);
        return Status::ok();
    }
    if (op.func == dcomfunc::kMatMul) {
        const std::int64_t M = p.in_h, K = p.in_w, N = p.channels;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *a,
                                bufPtrConst(op.src, M * K));
        const bool transpose = p.kernel != 0;
        const std::int64_t b_elems = K * N;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *b,
                                bufPtrConst(op.src2, b_elems));
        Int8Tensor lhs = regionToInt8(a, TensorShape({M, K}));
        Int8Tensor rhs = regionToInt8(
            b, transpose ? TensorShape({N, K}) : TensorShape({K, N}));
        const Int32Tensor acc = transpose ? ops::linear(lhs, rhs)
                                          : ops::matmul(lhs, rhs);
        const Int8Tensor q =
            requantize(acc, RequantParams{p.shift});
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *dst,
                                bufPtr(op.dst, M * N));
        int8ToRegion(q, dst);
        return Status::ok();
    }
    return unimplemented("DCOM function '" + op.func + "'");
}

Status
FunctionalSimulator::execMov(const MetaOp &op)
{
    for (std::int64_t block = 0; block < op.count; ++block) {
        BufAddr src = op.src;
        BufAddr dst = op.dst;
        src.offset += block * op.src_stride;
        dst.offset += block * op.dst_stride;
        CIMMLC_ASSIGN_OR_RETURN(const std::int32_t *s,
                                bufPtrConst(src, op.len));
        CIMMLC_ASSIGN_OR_RETURN(std::int32_t *d, bufPtr(dst, op.len));
        std::copy(s, s + op.len, d);
        stats_.buffer_reads += op.len;
        stats_.buffer_writes += op.len;
    }
    return Status::ok();
}

} // namespace cimmlc
