/**
 * @file
 * End-to-end functional verification: compile a graph with the
 * multi-level scheduler, execute the generated meta-operator flow on the
 * functional simulator, and compare every marked output bit-for-bit
 * against the reference executor (the paper's PyTorch check).
 */
#ifndef CIMMLC_FUNCSIM_VERIFY_H
#define CIMMLC_FUNCSIM_VERIFY_H

#include <cstdint>
#include <map>
#include <string>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "sched/options.h"
#include "tensor/tensor.h"

namespace cimmlc {

/** Outcome of one verification run. */
struct VerifyReport {
    bool match = false;
    std::int64_t outputs_checked = 0;
    std::int64_t elements_checked = 0;
    std::int64_t mismatches = 0;
    std::string first_mismatch; //!< description of the first divergence
    std::int64_t flow_ops = 0;  //!< size of the executed flow
};

/**
 * Compiles and verifies @p graph on @p arch.
 *
 * Weights must be installed; inputs map graph input tensors to values.
 * The reference run calibrates per-node requantization shifts which the
 * generated flow then reuses, so both sides compute identical integer
 * pipelines.
 */
StatusOr<VerifyReport>
verifyCompiledFlow(const Graph &graph, const CimArchitecture &arch,
                   const ScheduleOptions &options,
                   const std::map<TensorId, Int8Tensor> &inputs);

/**
 * Convenience entry for the session pipeline's verify stage: copies
 * @p graph, installs seeded random weights (in [-8, 8]) and graph
 * inputs (in [-16, 16]) drawn from one SplitMix64 stream, and runs
 * verifyCompiledFlow. The same seed always produces the same stimulus.
 */
StatusOr<VerifyReport>
verifyWithRandomStimulus(const Graph &graph, const CimArchitecture &arch,
                         const ScheduleOptions &options,
                         std::uint64_t seed = 1234);

} // namespace cimmlc

#endif // CIMMLC_FUNCSIM_VERIFY_H
