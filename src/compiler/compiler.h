/**
 * @file
 * CimCompiler: the legacy one-call facade over the stack.
 *
 * @deprecated New code should use the staged session API in
 * compiler/session.h (CompileRequest -> CompilerSession ->
 * CompileArtifacts), which this facade now delegates to. CimCompiler
 * remains as a thin shim so existing callers keep working; it offers
 * no access to per-stage timings, auto-tuning, verification, or the
 * kvjson report.
 *
 * @code
 *   CimArchitecture arch = presets::isaacBaseline();
 *   CimCompiler compiler(arch);
 *   auto result = compiler.compile(models::resnet18());
 *   std::cout << result.value().perf.toString() << "\n";
 * @endcode
 */
#ifndef CIMMLC_COMPILER_COMPILER_H
#define CIMMLC_COMPILER_COMPILER_H

#include "arch/arch.h"
#include "common/status.h"
#include "compiler/session.h"
#include "graph/graph.h"
#include "mop/program.h"
#include "perfsim/perf_model.h"
#include "sched/codegen.h"
#include "sched/multi_level.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Everything one compilation produces. */
struct CompileResult {
    Schedule schedule;
    CodegenResult code;
    PerfReport perf;
};

/** Facade over scheduling, code generation, and evaluation.
 * @deprecated Thin shim over CompilerSession; see compiler/session.h. */
class CimCompiler
{
  public:
    explicit CimCompiler(CimArchitecture arch,
                         ScheduleOptions options = ScheduleOptions::full())
        : arch_(std::move(arch)), options_(options)
    {
    }

    const CimArchitecture &arch() const { return arch_; }
    const ScheduleOptions &options() const { return options_; }
    void setOptions(const ScheduleOptions &options) { options_ = options; }

    /**
     * Compiles @p graph: schedule + meta-operator flow + perf report.
     * Codegen defaults to compressed emission (repeat blocks); pass
     * custom @p codegen options with unroll=true for executable flows.
     */
    StatusOr<CompileResult>
    compile(const Graph &graph,
            const CodegenOptions &codegen = compressedCodegen()) const;

    /** Schedule-only entry point (no codegen), cheaper for sweeps. */
    StatusOr<Schedule> scheduleOnly(const Graph &graph) const;

    /** Default compressed codegen options (the session API's default). */
    static CodegenOptions
    compressedCodegen()
    {
        return compressedCodegenOptions();
    }

  private:
    CimArchitecture arch_;
    ScheduleOptions options_;
};

} // namespace cimmlc

#endif // CIMMLC_COMPILER_COMPILER_H
