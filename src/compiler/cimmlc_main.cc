/**
 * @file
 * `cimmlc` — the command-line driver over the compilation stack.
 *
 * A thin client of the staged session API (compiler/session.h): flags
 * are folded into one CompileRequest, CompilerSession runs the
 * load -> validate -> tune? -> schedule -> codegen -> perf -> verify?
 * pipeline, and the driver renders the resulting CompileArtifacts —
 * as the classic text report or, with `--report json`, as the kvjson
 * document a compile service would return.
 *
 * Usage:
 *   cimmlc --model resnet18 --arch isaac-baseline [options]
 *   cimmlc --model-file net.json --arch-file chip.json [options]
 *   cimmlc --batch sweep.json [--threads N] [--serial]
 *   cimmlc --arch-dse spec.json [--objective NAME] [--report json]
 *
 * Options:
 *   --model NAME        built-in model (see --list-models)
 *   --model-file PATH   kvjson graph description
 *   --arch NAME         architecture preset (see --list-archs)
 *   --arch-file PATH    kvjson Abs-arch description
 *   --opt LEVEL         none | cg | cg+mvm | full      (default full)
 *   --autotune          search the schedule-option space and compile
 *                       with the best configuration found
 *   --objective NAME    tuning/ranking objective: latency | energy | edp
 *   --autotune-verbose  print the per-candidate DSE report table
 *   --print-flow [N]    print the meta-operator flow (first N stmts)
 *   --print-schedule    print the per-operator mapping report
 *   --verify            unroll, execute, and check against the oracle
 *   --lint              run mopcheck (dataflow static analysis) over
 *                       the emitted flow and print the findings
 *   --lint-strict       like --lint, but any error-severity finding
 *                       fails the compile (nonzero exit)
 *   --perf-engine NAME  performance engine: closed_form (default,
 *                       analytic) | event (discrete-event simulation
 *                       with resource contention); applies to single
 *                       compiles, --batch sweeps, and --arch-dse full
 *                       evaluations
 *   --report FORMAT     text (default) | json — json serializes the
 *                       full CompileArtifacts / DSE record as kvjson
 *   --batch PATH        compile a models x archs sweep concurrently
 *   --arch-dse PATH     sweep Abs-arch parameters for one workload and
 *                       report the latency/energy Pareto front
 *   --tune-cache PATH   persist evaluated candidates across invocations
 *                       (kvjson memo; --autotune and --arch-dse)
 *   --shard I/N         (--batch / --arch-dse) evaluate only the work
 *                       units whose enumeration index satisfies
 *                       index %% N == I and write the slice's results
 *                       to --shard-out; N such processes cover the
 *                       sweep exactly once
 *   --shard-out PATH    destination shard file (required with --shard)
 *   --merge-shards LIST comma-separated shard files from the same spec;
 *                       merges them and prints the aggregate report,
 *                       byte-identical to the single-process run
 *   --search-budget N   cap full-fidelity evaluations: the tuner prunes
 *                       dominated knob supersets, the DSE explorer runs
 *                       successive halving over cheap proxies
 *                       (--autotune, --arch-dse, and tuned --batch)
 *   --threads N         worker threads for --batch / --autotune /
 *                       --arch-dse (0 = hardware concurrency)
 *   --serial            force the serial path (reference/debug)
 *   --check-kvjson PATH parse a kvjson file and exit 0/1 (CI helper)
 *   --connect SOCK      submit the compile to a running cimmlcd over
 *                       its Unix-domain socket instead of compiling
 *                       in-process; streams per-stage events to stderr
 *                       and prints the daemon's report (byte-identical
 *                       to the in-process --report json document,
 *                       timing fields aside)
 *   --connect-tcp H:P   like --connect over localhost TCP
 *   --daemon-stats      (client mode) print the daemon's cimmlc.stats.v1
 *                       snapshot: queue depth, cache hit rates, and
 *                       per-stage latency histograms
 *   --daemon-shutdown   (client mode) ask the daemon to drain and exit
 *   --version           print the compiler version and exit
 *   --list-models / --list-archs
 *   --help / -h
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/presets.h"
#include "common/config.h"
#include "common/strutil.h"
#include "common/version.h"
#include "compiler/batch.h"
#include "compiler/session.h"
#include "compiler/shard.h"
#include "daemon/client.h"
#include "dse/arch_explorer.h"
#include "graph/models.h"
#include "sched/autotune.h"

using namespace cimmlc;

namespace {

struct CliArgs {
    std::string model;
    std::string model_file;
    std::string arch = "isaac-baseline";
    bool arch_explicit = false;
    std::string arch_file;
    std::string opt = "full";
    bool opt_explicit = false;
    bool dual_mode = false;    //!< force per-segment dual-mode arrays on
    bool host_offload = false; //!< force host/CIM hybrid offload on
    std::string batch_file;
    std::string arch_dse_file;
    std::string tune_cache_file;
    std::string shard;        //!< "i/N" — run one slice of the sweep
    std::string shard_out;    //!< where the slice's shard file goes
    std::string merge_shards; //!< comma-separated shard file paths
    std::int64_t search_budget = -1; //!< -1 = not set (exhaustive)
    std::string check_kvjson;
    std::string report = "text";
    int threads = -1; //!< -1 = use the sweep file's setting
    bool serial = false;
    bool autotune = false;
    bool autotune_explicit = false; //!< --autotune[-verbose] was spelled out
    bool autotune_verbose = false;
    std::string objective = "latency";
    bool objective_explicit = false;
    bool print_flow = false;
    std::int64_t flow_limit = 40;
    bool print_schedule = false;
    bool verify = false;
    bool lint = false;
    bool lint_strict = false;
    std::string perf_engine = "closed_form";
    bool perf_engine_explicit = false;
    std::string connect;     //!< daemon unix socket ("" = in-process)
    std::string connect_tcp; //!< daemon HOST:PORT ("" = unix/in-process)
    bool daemon_stats = false;
    bool daemon_shutdown = false;
};

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s --model NAME | --model-file PATH\n"
        "          [--arch NAME | --arch-file PATH] [--opt LEVEL]\n"
        "          [--dual-mode] [--host-offload]\n"
        "          [--autotune [--objective latency|energy|edp] "
        "[--autotune-verbose]]\n"
        "          [--search-budget N] [--threads N] [--serial]\n"
        "          [--print-flow [N]] [--print-schedule] [--verify]\n"
        "          [--lint | --lint-strict] "
        "[--perf-engine closed_form|event]\n"
        "          [--report text|json]\n"
        "       %s --batch SWEEP.json [--opt LEVEL] [--dual-mode] "
        "[--host-offload]\n"
        "          [--autotune] [--objective NAME]\n"
        "          [--search-budget N] [--threads N] [--serial] "
        "[--lint | --lint-strict]\n"
        "          [--perf-engine closed_form|event]\n"
        "          [--shard I/N --shard-out PATH | "
        "--merge-shards P1,P2,...]\n"
        "       %s --arch-dse SPEC.json [--objective NAME] "
        "[--tune-cache PATH] [--lint]\n"
        "          [--search-budget N] [--threads N] [--serial] "
        "[--report text|json]\n"
        "          [--perf-engine closed_form|event]\n"
        "          [--shard I/N --shard-out PATH | "
        "--merge-shards P1,P2,...]\n"
        "       %s --connect SOCK | --connect-tcp HOST:PORT\n"
        "          [--model NAME | --model-file PATH] [compile flags]\n"
        "          [--daemon-stats] [--daemon-shutdown]\n"
        "          [--check-kvjson PATH]\n"
        "          [--list-models] [--list-archs] [--version] [--help]\n",
        argv0, argv0, argv0, argv0);
}

int
usage(const char *argv0)
{
    printUsage(stderr, argv0);
    return 2;
}

/** Parses a flag value as a non-negative integer or exits with 2. */
bool
parseNonNegativeInt(const char *flag, const char *value,
                    std::int64_t *out)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "%s expects a non-negative integer, got '%s'\n",
                     flag, value);
        return false;
    }
    *out = parsed;
    return true;
}

/** Parses --perf-engine into the enum, reporting errors to stderr. */
bool
parsePerfEngineFlag(const CliArgs &args, PerfEngineKind *kind)
{
    auto parsed = parsePerfEngineKind(args.perf_engine);
    if (!parsed.isOk()) {
        std::fprintf(stderr, "%s\n",
                     parsed.status().toString().c_str());
        return false;
    }
    *kind = parsed.value();
    return true;
}

int
runBatch(const CliArgs &args)
{
    auto sweep = sweepFromFile(args.batch_file);
    if (!sweep.isOk()) {
        std::fprintf(stderr, "sweep load failed: %s\n",
                     sweep.status().toString().c_str());
        return 1;
    }
    ScheduleOptions options = sweep.value().options;
    if (args.opt_explicit) {
        auto overridden = scheduleOptionsByName(args.opt);
        if (!overridden.isOk()) {
            std::fprintf(stderr, "%s\n",
                         overridden.status().toString().c_str());
            return 1;
        }
        options = overridden.value();
    }
    if (args.dual_mode)
        options.dual_mode = true;
    if (args.host_offload)
        options.host_offload = true;
    int threads = args.threads >= 0 ? args.threads : sweep.value().threads;
    if (args.serial)
        threads = 1;

    const bool tune = args.autotune || sweep.value().tune;
    if (tune && args.opt_explicit) {
        std::fprintf(stderr,
                     "note: --opt is ignored when tuning — the tuner "
                     "searches the whole option space\n");
    }
    TuneObjective objective = sweep.value().objective;
    if (args.objective_explicit) {
        auto parsed = parseTuneObjective(args.objective);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 1;
        }
        objective = parsed.value();
    }

    SearchBudget budget = sweep.value().budget;
    if (args.search_budget >= 0)
        budget.max_full_evals = args.search_budget;
    if (budget.enabled() && !tune) {
        std::fprintf(stderr,
                     "--search-budget/'budget' only applies to tuned "
                     "sweeps; set \"tune\": true or pass --autotune\n");
        return 1;
    }

    PerfEngineKind perf_engine = sweep.value().perf_engine;
    if (args.perf_engine_explicit
        && !parsePerfEngineFlag(args, &perf_engine))
        return 1;

    // The sweep every process (shard, merge, or single) agrees on:
    // shard files carry its digest, so slices of differently-flagged
    // invocations can never be combined.
    BatchSweep resolved = sweep.value();
    resolved.options = options;
    resolved.threads = threads;
    resolved.tune = tune;
    resolved.objective = objective;
    resolved.budget = budget;
    resolved.lint = args.lint || sweep.value().lint;
    resolved.lint_strict = args.lint_strict || sweep.value().lint_strict;
    resolved.perf_engine = perf_engine;

    const auto render = [&](const BatchResult &result) {
        if (tune) {
            std::printf("batch: %zu jobs, %lld ok, tuned per job "
                        "(objective=%s), threads=%d\n",
                        result.entries.size(),
                        static_cast<long long>(result.okCount()),
                        tuneObjectiveName(objective), threads);
        } else {
            std::printf("batch: %zu jobs, %lld ok, opt=%s, threads=%d\n",
                        result.entries.size(),
                        static_cast<long long>(result.okCount()),
                        options.toString().c_str(), threads);
        }
        std::fputs(result.table().c_str(), stdout);
        return result.okCount()
                       == static_cast<std::int64_t>(result.entries.size())
                   ? 0
                   : 1;
    };

    if (!args.merge_shards.empty()) {
        auto merged =
            mergeBatchShards(resolved, split(args.merge_shards, ','));
        if (!merged.isOk()) {
            std::fprintf(stderr, "shard merge failed: %s\n",
                         merged.status().toString().c_str());
            return 1;
        }
        return render(merged.value());
    }

    ShardSpec shard;
    std::vector<std::size_t> owned;
    std::vector<BatchJob> slice = resolved.jobs;
    if (!args.shard.empty()) {
        auto parsed = parseShardSpec(args.shard);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 1;
        }
        shard = parsed.value();
        slice.clear();
        for (std::size_t i = 0; i < resolved.jobs.size(); ++i) {
            if (shard.owns(i)) {
                owned.push_back(i);
                slice.push_back(resolved.jobs[i]);
            }
        }
    }

    BatchCompiler batch(options, threads);
    batch.setTuning(tune, objective);
    batch.setSearchBudget(budget);
    batch.setLint(resolved.lint, resolved.lint_strict);
    batch.setPerfEngine(perf_engine);
    auto result = batch.run(slice);
    if (!result.isOk()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }

    if (shard.enabled() || !args.shard_out.empty()) {
        const Status saved = saveConfigFile(
            args.shard_out,
            batchShardToConfig(resolved, shard, owned,
                               result.value().entries));
        if (!saved.isOk()) {
            std::fprintf(stderr, "cannot write shard file: %s\n",
                         saved.toString().c_str());
            return 1;
        }
        std::printf("batch shard %d/%d: %zu of %zu jobs, %lld ok -> %s\n",
                    shard.index, shard.count, slice.size(),
                    resolved.jobs.size(),
                    static_cast<long long>(result.value().okCount()),
                    args.shard_out.c_str());
        return result.value().okCount()
                       == static_cast<std::int64_t>(slice.size())
                   ? 0
                   : 1;
    }
    return render(result.value());
}

/** CI helper: parse a kvjson document (e.g. a --report json output)
 * back through the reader and report success. */
int
runCheckKvjson(const std::string &path)
{
    auto doc = loadConfigFile(path);
    if (!doc.isOk()) {
        std::fprintf(stderr, "kvjson check failed: %s\n",
                     doc.status().toString().c_str());
        return 1;
    }
    std::printf("kvjson OK: %s (%zu top-level keys)\n", path.c_str(),
                doc.value().isObject() ? doc.value().asObject().size()
                                       : 0);
    return 0;
}

/**
 * Warms @p cache from --tune-cache. A missing/corrupt/stale file is a
 * diagnostic, not an error: the run proceeds with a cold cache.
 */
void
loadTuneCache(const std::string &path, TuneCache &cache)
{
    const Status loaded = cache.loadFromFile(path);
    if (!loaded.isOk()) {
        std::fprintf(stderr,
                     "note: %s — starting with a cold tune cache\n",
                     loaded.toString().c_str());
    }
}

void
saveTuneCache(const std::string &path, const TuneCache &cache)
{
    const Status saved = cache.saveToFile(path);
    if (!saved.isOk()) {
        std::fprintf(stderr, "warning: could not save tune cache: %s\n",
                     saved.toString().c_str());
    }
}

int
runDse(const CliArgs &args)
{
    auto spec = dseSpecFromFile(args.arch_dse_file);
    if (!spec.isOk()) {
        std::fprintf(stderr, "DSE spec load failed: %s\n",
                     spec.status().toString().c_str());
        return 1;
    }
    if (args.objective_explicit) {
        auto objective = parseTuneObjective(args.objective);
        if (!objective.isOk()) {
            std::fprintf(stderr, "%s\n",
                         objective.status().toString().c_str());
            return 1;
        }
        spec.value().objective = objective.value();
    }
    if (args.threads >= 0)
        spec.value().threads = args.threads;
    if (args.serial)
        spec.value().threads = 1;
    // DSE lint is always strict per candidate: a flow with error
    // findings marks that design infeasible.
    if (args.lint)
        spec.value().lint = true;
    // The flag overrides the spec's evaluation cap but keeps its proxy
    // fidelity settings, so a spec can pin e.g. opt=none proxies while
    // CI varies the budget.
    if (args.search_budget >= 0)
        spec.value().budget.max_full_evals = args.search_budget;
    if (args.perf_engine_explicit
        && !parsePerfEngineFlag(args, &spec.value().perf_engine))
        return 1;

    const auto render = [&](const DseResult &result) {
        if (args.report == "json") {
            std::printf("%s\n", result.toConfig().dump(true).c_str());
        } else {
            std::printf("%s\n", result.summary().c_str());
            std::fputs(result.table().c_str(), stdout);
        }
        return 0;
    };

    if (!args.merge_shards.empty()) {
        auto merged = mergeDseShards(spec.value(),
                                     split(args.merge_shards, ','));
        if (!merged.isOk()) {
            std::fprintf(stderr, "shard merge failed: %s\n",
                         merged.status().toString().c_str());
            return 1;
        }
        return render(merged.value());
    }

    // One memo for the whole sweep; --tune-cache persists it so a
    // repeated invocation reuses every evaluation.
    TuneCache cache;
    if (!args.tune_cache_file.empty())
        loadTuneCache(args.tune_cache_file, cache);

    if (!args.shard.empty()) {
        auto parsed = parseShardSpec(args.shard);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 1;
        }
        const Status shardable =
            validateDseSpecForSharding(spec.value());
        if (!shardable.isOk()) {
            std::fprintf(stderr, "%s\n", shardable.toString().c_str());
            return 1;
        }
        ArchExplorer explorer(std::move(spec).value());
        const Status restricted = explorer.restrictToShard(
            parsed.value().index, parsed.value().count);
        if (!restricted.isOk()) {
            std::fprintf(stderr, "%s\n",
                         restricted.toString().c_str());
            return 1;
        }
        auto result = explorer.explore(&cache);
        if (!result.isOk()) {
            std::fprintf(stderr, "%s\n",
                         result.status().toString().c_str());
            return 1;
        }
        if (!args.tune_cache_file.empty())
            saveTuneCache(args.tune_cache_file, cache);
        const Status saved = saveConfigFile(
            args.shard_out,
            dseShardToConfig(explorer.spec(), parsed.value(),
                             result.value()));
        if (!saved.isOk()) {
            std::fprintf(stderr, "cannot write shard file: %s\n",
                         saved.toString().c_str());
            return 1;
        }
        std::size_t owned = 0;
        for (const DseCandidate &candidate : result.value().candidates)
            if (parsed.value().owns(candidate.index))
                ++owned;
        std::printf("arch-dse shard %d/%d: %zu of %zu candidates -> %s\n",
                    parsed.value().index, parsed.value().count, owned,
                    result.value().candidates.size(),
                    args.shard_out.c_str());
        return 0;
    }

    const ArchExplorer explorer(std::move(spec).value());
    auto result = explorer.explore(&cache);
    if (!result.isOk()) {
        std::fprintf(stderr, "%s\n", result.status().toString().c_str());
        return 1;
    }
    if (!args.tune_cache_file.empty())
        saveTuneCache(args.tune_cache_file, cache);

    return render(result.value());
}

int
runSingle(const CliArgs &args)
{
    const bool json = args.report == "json";

    CompileRequest request;
    request.model = args.model;
    request.model_file = args.model_file;
    // Set every arch source the user actually gave, so an explicit
    // --arch combined with --arch-file hits the request's
    // conflicting-sources check instead of one silently winning.
    request.arch_file = args.arch_file;
    if (args.arch_explicit || args.arch_file.empty())
        request.arch = args.arch;
    request.opt = args.opt;
    if (!parsePerfEngineFlag(args, &request.perf_engine))
        return 1;
    if ((args.dual_mode || args.host_offload) && !args.autotune) {
        // Overlay the flags on the named level; request.options wins
        // over the string opt inside the session.
        auto base = scheduleOptionsByName(args.opt);
        if (!base.isOk()) {
            std::fprintf(stderr, "%s\n",
                         base.status().toString().c_str());
            return 1;
        }
        ScheduleOptions overlay = base.value();
        overlay.dual_mode = args.dual_mode;
        overlay.host_offload = args.host_offload;
        request.options = overlay;
    }

    TuneCache tune_cache;
    if (args.autotune) {
        if (args.opt_explicit) {
            std::fprintf(stderr,
                         "note: --opt is ignored with --autotune — the "
                         "tuner searches the whole option space\n");
        }
        if (args.dual_mode || args.host_offload) {
            std::fprintf(stderr,
                         "note: --dual-mode/--host-offload are ignored "
                         "with --autotune — the tuner searches both "
                         "knobs automatically\n");
        }
        auto objective = parseTuneObjective(args.objective);
        if (!objective.isOk()) {
            std::fprintf(stderr, "%s\n",
                         objective.status().toString().c_str());
            return 1;
        }
        request.tune = true;
        request.objective = objective.value();
        request.threads = args.serial ? 1 : std::max(args.threads, 0);
        request.tune_cache = &tune_cache;
        if (args.search_budget >= 0)
            request.search_budget.max_full_evals = args.search_budget;
        if (!args.tune_cache_file.empty())
            loadTuneCache(args.tune_cache_file, tune_cache);
    }

    request.outputs.schedule_report = args.print_schedule;
    request.outputs.flow_text = args.print_flow;
    request.outputs.flow_limit = args.flow_limit;
    request.outputs.verify = args.verify;
    request.lint = args.lint;
    request.lint_strict = args.lint_strict;

    CompilerSession session(std::move(request));
    if (!json) {
        // Stream the header and tuning report as the stages complete,
        // so slow runs show progress instead of buffering everything.
        session.setObserver([&args](const StageTrace &trace,
                                    const CompileArtifacts &artifacts) {
            if (trace.stage == CompileStage::kLint
                && artifacts.lint.has_value()) {
                // Printed before the status check so a --lint-strict
                // failure still shows what mopcheck found.
                std::printf("lint: %s\n",
                            artifacts.lint->summary().c_str());
                if (!artifacts.lint->diagnostics.empty())
                    std::fputs(artifacts.lint->table().c_str(), stdout);
            }
            if (!trace.status.isOk())
                return;
            if (trace.stage == CompileStage::kLoad) {
                std::fputs(artifacts.arch_text.c_str(), stdout);
                std::printf(
                    "workload: %s (%lld nodes, %lld weights)\n\n",
                    artifacts.workload.c_str(),
                    static_cast<long long>(artifacts.nodes),
                    static_cast<long long>(artifacts.weights));
            } else if (trace.stage == CompileStage::kTune) {
                if (args.autotune_verbose)
                    std::fputs(artifacts.tune->table().c_str(), stdout);
                std::printf("%s\n", artifacts.tune->summary().c_str());
            }
        });
    }

    auto result = session.run();
    if (args.autotune && !args.tune_cache_file.empty())
        saveTuneCache(args.tune_cache_file, tune_cache);
    if (!result.isOk()) {
        std::fprintf(stderr, "%s\n",
                     result.status().toString().c_str());
        return 1;
    }
    const CompileArtifacts &artifacts = result.value();
    const bool mismatch =
        artifacts.verify.has_value() && !artifacts.verify->match;

    if (json) {
        // Keep stdout pure kvjson; the verbose DSE table goes to stderr.
        if (args.autotune_verbose && artifacts.tune.has_value())
            std::fputs(artifacts.tune->table().c_str(), stderr);
        std::printf("%s\n", artifacts.toConfig().dump(true).c_str());
        return mismatch ? 1 : 0;
    }

    if (args.print_schedule)
        std::fputs(artifacts.schedule_report.c_str(), stdout);
    std::printf("perf: %s\n", artifacts.perf->toString().c_str());
    std::printf("flow: %s\n",
                artifacts.code->program.summary().c_str());
    if (args.print_flow)
        std::fputs(artifacts.flow_text.c_str(), stdout);

    if (artifacts.verify.has_value()) {
        const VerifyReport &report = *artifacts.verify;
        std::printf("verify: %s (%lld elements, %lld flow ops)\n",
                    report.match ? "BIT-EXACT MATCH" : "MISMATCH",
                    static_cast<long long>(report.elements_checked),
                    static_cast<long long>(report.flow_ops));
        if (!report.match) {
            std::fprintf(stderr, "  first mismatch: %s\n",
                         report.first_mismatch.c_str());
            return 1;
        }
    }
    return 0;
}

/** Reads a whole file as text (for inlining --model-file/--arch-file
 * into an rpc request — the daemon never sees client paths). */
bool
readFileText(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

/** Client mode: route the request to a running cimmlcd. */
int
runClient(const CliArgs &args)
{
    StatusOr<DaemonClient> connected = [&]() -> StatusOr<DaemonClient> {
        if (!args.connect.empty())
            return DaemonClient::connectUnixSocket(args.connect);
        const auto colon = args.connect_tcp.rfind(':');
        std::int64_t port = 0;
        if (colon == std::string::npos
            || !parseInt64(args.connect_tcp.substr(colon + 1), &port))
            return invalidArgument("--connect-tcp expects HOST:PORT, got '"
                                   + args.connect_tcp + "'");
        return DaemonClient::connectTcpSocket(
            args.connect_tcp.substr(0, colon), static_cast<int>(port));
    }();
    if (!connected.isOk()) {
        std::fprintf(stderr, "%s\n",
                     connected.status().toString().c_str());
        return 1;
    }
    DaemonClient client = std::move(connected).value();
    if (client.versionSkew()) {
        std::fprintf(stderr,
                     "warning: daemon is cimmlc %s, this client is %s "
                     "(reports may differ)\n",
                     client.serverVersion().c_str(), cimmlcVersion());
    }

    if (args.daemon_shutdown) {
        const Status bye = client.shutdownServer();
        if (!bye.isOk()) {
            std::fprintf(stderr, "%s\n", bye.toString().c_str());
            return 1;
        }
        std::printf("daemon shutdown requested\n");
        return 0;
    }
    if (args.daemon_stats) {
        auto stats = client.stats();
        if (!stats.isOk()) {
            std::fprintf(stderr, "%s\n",
                         stats.status().toString().c_str());
            return 1;
        }
        std::printf("%s\n", stats.value().dump(true).c_str());
        return 0;
    }

    RpcCompileRequest request;
    request.model = args.model;
    if (!args.model_file.empty()
        && !readFileText(args.model_file, &request.model_text))
        return 1;
    if (!args.arch_file.empty()
        && !readFileText(args.arch_file, &request.arch_text))
        return 1;
    // Both sources are forwarded when both were spelled out, so the
    // daemon rejects the conflict exactly like the in-process path.
    if (args.arch_explicit || args.arch_file.empty())
        request.arch = args.arch;
    request.opt = args.opt;
    request.dual_mode = args.dual_mode;
    request.host_offload = args.host_offload;
    request.tune = args.autotune;
    request.objective = args.objective;
    request.search_budget = args.search_budget;
    request.perf_engine = args.perf_engine;
    request.lint = args.lint;
    request.lint_strict = args.lint_strict;
    request.verify = args.verify;

    const bool json = args.report == "json";
    auto response = client.compile(
        request, [json](const std::string &stage,
                        const std::string &status, double wall_ms,
                        const std::string &detail) {
            // Progress goes to stderr so stdout stays a pure report.
            std::fprintf(stderr, "[%s] %s %.2f ms%s%s\n", stage.c_str(),
                         status.c_str(), wall_ms,
                         detail.empty() ? "" : " - ", detail.c_str());
        });
    if (!response.isOk()) {
        std::fprintf(stderr, "%s\n",
                     response.status().toString().c_str());
        return 1;
    }
    if (json) {
        std::printf("%s\n", response.value().report_json.c_str());
        return 0;
    }
    auto report = parseConfig(response.value().report_json);
    if (!report.isOk()) {
        std::fprintf(stderr, "daemon sent an unparseable report: %s\n",
                     report.status().toString().c_str());
        return 1;
    }
    const ConfigValue &doc = report.value();
    if (response.value().cached)
        std::printf("(served from the daemon's artifact memo)\n");
    if (doc.has("workload")) {
        const ConfigValue workload = doc.get("workload").value();
        std::printf("workload: %s (%lld nodes, %lld weights)\n",
                    workload.getStringOr("name", "?").c_str(),
                    static_cast<long long>(workload.getIntOr("nodes", 0)),
                    static_cast<long long>(
                        workload.getIntOr("weights", 0)));
    }
    if (doc.has("perf"))
        std::printf("perf: %s\n",
                    doc.get("perf").value().getStringOr("text", "?")
                        .c_str());
    if (doc.has("flow"))
        std::printf("flow: %s\n",
                    doc.get("flow").value().getStringOr("summary", "?")
                        .c_str());
    if (doc.has("verify")) {
        const ConfigValue verify = doc.get("verify").value();
        std::printf("verify: %s (%lld elements)\n",
                    verify.getBoolOr("match", false) ? "BIT-EXACT MATCH"
                                                     : "MISMATCH",
                    static_cast<long long>(
                        verify.getIntOr("elements_checked", 0)));
        if (!verify.getBoolOr("match", false))
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--help" || flag == "-h") {
            printUsage(stdout, argv[0]);
            return 0;
        }
        if (flag == "--version") {
            std::printf("cimmlc %s\n", cimmlcVersion());
            return 0;
        }
        if (flag == "--list-models") {
            for (const std::string &name : models::availableModels())
                std::puts(name.c_str());
            return 0;
        }
        if (flag == "--list-archs") {
            for (const std::string &name : presets::availablePresets())
                std::puts(name.c_str());
            return 0;
        }
        if (flag == "--model") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.model = v;
        } else if (flag == "--model-file") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.model_file = v;
        } else if (flag == "--arch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.arch = v;
            args.arch_explicit = true;
        } else if (flag == "--arch-file") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.arch_file = v;
        } else if (flag == "--opt") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.opt = v;
            args.opt_explicit = true;
        } else if (flag == "--dual-mode") {
            args.dual_mode = true;
        } else if (flag == "--host-offload") {
            args.host_offload = true;
        } else if (flag == "--batch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.batch_file = v;
        } else if (flag == "--arch-dse") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.arch_dse_file = v;
        } else if (flag == "--tune-cache") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.tune_cache_file = v;
        } else if (flag == "--shard") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.shard = v;
        } else if (flag == "--shard-out") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.shard_out = v;
        } else if (flag == "--merge-shards") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.merge_shards = v;
        } else if (flag == "--search-budget") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            if (!parseNonNegativeInt("--search-budget", v,
                                     &args.search_budget))
                return 2;
        } else if (flag == "--check-kvjson") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.check_kvjson = v;
        } else if (flag == "--report") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.report = v;
            if (args.report != "text" && args.report != "json") {
                std::fprintf(stderr,
                             "--report expects 'text' or 'json', got "
                             "'%s'\n",
                             v);
                return 2;
            }
        } else if (flag == "--threads") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            std::int64_t parsed = 0;
            if (!parseNonNegativeInt("--threads", v, &parsed))
                return 2;
            args.threads = static_cast<int>(parsed);
        } else if (flag == "--serial") {
            args.serial = true;
        } else if (flag == "--autotune") {
            args.autotune = true;
            args.autotune_explicit = true;
        } else if (flag == "--autotune-verbose") {
            args.autotune = true;
            args.autotune_explicit = true;
            args.autotune_verbose = true;
        } else if (flag == "--objective") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.objective = v;
            args.objective_explicit = true;
            args.autotune = true;
        } else if (flag == "--print-flow") {
            args.print_flow = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                // Optional limit; reject garbage instead of letting
                // atoll() silently turn it into a limit of 0.
                if (!parseNonNegativeInt("--print-flow", argv[++i],
                                         &args.flow_limit))
                    return 2;
            }
        } else if (flag == "--print-schedule") {
            args.print_schedule = true;
        } else if (flag == "--verify") {
            args.verify = true;
        } else if (flag == "--lint") {
            args.lint = true;
        } else if (flag == "--lint-strict") {
            args.lint = true;
            args.lint_strict = true;
        } else if (flag == "--perf-engine") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.perf_engine = v;
            args.perf_engine_explicit = true;
        } else if (flag == "--connect") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.connect = v;
        } else if (flag == "--connect-tcp") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.connect_tcp = v;
        } else if (flag == "--daemon-stats") {
            args.daemon_stats = true;
        } else if (flag == "--daemon-shutdown") {
            args.daemon_shutdown = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return usage(argv[0]);
        }
    }
    if (!args.check_kvjson.empty())
        return runCheckKvjson(args.check_kvjson);
    // Mode-conflict checks run before dispatch, so misused flags are
    // hard errors instead of being silently dropped by the mode that
    // does not read them.
    const bool batch_mode = !args.batch_file.empty();
    const bool dse_mode = !args.arch_dse_file.empty();
    const bool client_mode =
        !args.connect.empty() || !args.connect_tcp.empty();
    if (!args.connect.empty() && !args.connect_tcp.empty()) {
        std::fprintf(stderr,
                     "--connect and --connect-tcp are exclusive\n");
        return usage(argv[0]);
    }
    if ((args.daemon_stats || args.daemon_shutdown) && !client_mode) {
        std::fprintf(stderr, "--daemon-stats/--daemon-shutdown need "
                             "--connect or --connect-tcp\n");
        return usage(argv[0]);
    }
    if (client_mode) {
        // The daemon owns scheduling, caching, and rendering; flags
        // that only make sense in-process are hard errors here.
        if (batch_mode || dse_mode || !args.tune_cache_file.empty()
            || !args.shard.empty() || !args.shard_out.empty()
            || !args.merge_shards.empty()
            || args.threads >= 0 || args.serial || args.print_flow
            || args.print_schedule || args.autotune_verbose) {
            std::fprintf(stderr,
                         "--connect/--connect-tcp submits one compile "
                         "to a daemon; --batch, --arch-dse, "
                         "--tune-cache, --threads, --serial, "
                         "--print-flow, --print-schedule, and "
                         "--autotune-verbose stay local\n");
            return usage(argv[0]);
        }
        if (!args.daemon_stats && !args.daemon_shutdown
            && args.model.empty() && args.model_file.empty())
            return usage(argv[0]);
        return runClient(args);
    }
    if (batch_mode && dse_mode) {
        std::fprintf(stderr,
                     "--batch and --arch-dse are exclusive modes\n");
        return usage(argv[0]);
    }
    if ((!args.shard.empty() || !args.shard_out.empty()
         || !args.merge_shards.empty())
        && !batch_mode && !dse_mode) {
        std::fprintf(stderr,
                     "--shard/--shard-out/--merge-shards apply to "
                     "--batch and --arch-dse modes\n");
        return usage(argv[0]);
    }
    if (!args.shard.empty() && !args.merge_shards.empty()) {
        std::fprintf(stderr,
                     "--shard and --merge-shards are exclusive\n");
        return usage(argv[0]);
    }
    if (args.shard.empty() != args.shard_out.empty()) {
        std::fprintf(stderr, "--shard I/N and --shard-out PATH go "
                             "together\n");
        return usage(argv[0]);
    }
    if (!args.shard.empty() && args.report != "text") {
        std::fprintf(stderr, "a --shard run writes its results to "
                             "--shard-out; --report applies to the "
                             "merge\n");
        return usage(argv[0]);
    }
    if (batch_mode && args.report != "text") {
        std::fprintf(stderr,
                     "--report json is not supported with --batch\n");
        return usage(argv[0]);
    }
    if (!args.tune_cache_file.empty() && !dse_mode
        && (batch_mode || !args.autotune)) {
        std::fprintf(stderr, "--tune-cache only applies to --autotune "
                             "and --arch-dse modes\n");
        return usage(argv[0]);
    }
    if (args.search_budget >= 0 && !dse_mode && !batch_mode
        && !args.autotune) {
        std::fprintf(stderr, "--search-budget only applies to "
                             "--autotune, --batch, and --arch-dse "
                             "modes\n");
        return usage(argv[0]);
    }
    if (dse_mode
        && (!args.model.empty() || !args.model_file.empty()
            || args.arch_explicit || !args.arch_file.empty()
            || args.opt_explicit || args.dual_mode || args.host_offload
            || args.autotune_explicit
            || args.print_flow || args.print_schedule || args.verify)) {
        std::fprintf(stderr,
                     "--arch-dse reads the workload, base arch, opt "
                     "level (including dual_mode/host_offload), and "
                     "tuning from the spec file; drop the conflicting "
                     "flags\n");
        return usage(argv[0]);
    }
    if (batch_mode)
        return runBatch(args);
    if (dse_mode)
        return runDse(args);
    if ((args.threads >= 0 || args.serial) && !args.autotune) {
        std::fprintf(stderr, "--threads/--serial only apply to --batch, "
                             "--arch-dse, and --autotune modes\n");
        return usage(argv[0]);
    }
    if (args.model.empty() && args.model_file.empty())
        return usage(argv[0]);
    return runSingle(args);
}
