/**
 * @file
 * `cimmlc` — the command-line driver over the compilation stack.
 *
 * Usage:
 *   cimmlc --model resnet18 --arch isaac-baseline [options]
 *   cimmlc --model-file net.json --arch-file chip.json [options]
 *   cimmlc --batch sweep.json [--threads N] [--serial]
 *
 * Options:
 *   --model NAME        built-in model (see --list-models)
 *   --model-file PATH   kvjson graph description
 *   --arch NAME         architecture preset (see --list-archs)
 *   --arch-file PATH    kvjson Abs-arch description
 *   --opt LEVEL         none | cg | cg+mvm | full      (default full)
 *   --autotune          search the schedule-option space and compile
 *                       with the best configuration found
 *   --objective NAME    tuning objective: latency | energy | edp
 *   --autotune-verbose  print the per-candidate DSE report table
 *   --print-flow [N]    print the meta-operator flow (first N stmts)
 *   --print-schedule    print the per-operator mapping report
 *   --verify            unroll, execute, and check against the oracle
 *   --batch PATH        compile a models x archs sweep concurrently
 *   --threads N         worker threads for --batch / --autotune
 *                       (0 = hardware concurrency)
 *   --serial            force the serial path (reference/debug)
 *   --list-models / --list-archs
 *   --help / -h
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/presets.h"
#include "arch/serialize.h"
#include "common/rng.h"
#include "compiler/batch.h"
#include "compiler/compiler.h"
#include "funcsim/verify.h"
#include "sched/autotune.h"
#include "graph/models.h"
#include "graph/serialize.h"
#include "mop/printer.h"

using namespace cimmlc;

namespace {

struct CliArgs {
    std::string model;
    std::string model_file;
    std::string arch = "isaac-baseline";
    std::string arch_file;
    std::string opt = "full";
    bool opt_explicit = false;
    std::string batch_file;
    int threads = -1; //!< -1 = use the sweep file's setting
    bool serial = false;
    bool autotune = false;
    bool autotune_verbose = false;
    std::string objective = "latency";
    bool objective_explicit = false;
    bool print_flow = false;
    std::int64_t flow_limit = 40;
    bool print_schedule = false;
    bool verify = false;
};

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s --model NAME | --model-file PATH\n"
        "          [--arch NAME | --arch-file PATH] [--opt LEVEL]\n"
        "          [--autotune [--objective latency|energy|edp] "
        "[--autotune-verbose]]\n"
        "          [--threads N] [--serial]\n"
        "          [--print-flow [N]] [--print-schedule] [--verify]\n"
        "       %s --batch SWEEP.json [--opt LEVEL] [--autotune] "
        "[--objective NAME]\n"
        "          [--threads N] [--serial]\n"
        "          [--list-models] [--list-archs] [--help]\n",
        argv0, argv0);
}

int
usage(const char *argv0)
{
    printUsage(stderr, argv0);
    return 2;
}

int
runBatch(const CliArgs &args)
{
    auto sweep = sweepFromFile(args.batch_file);
    if (!sweep.isOk()) {
        std::fprintf(stderr, "sweep load failed: %s\n",
                     sweep.status().toString().c_str());
        return 1;
    }
    ScheduleOptions options = sweep.value().options;
    if (args.opt_explicit) {
        auto overridden = scheduleOptionsByName(args.opt);
        if (!overridden.isOk()) {
            std::fprintf(stderr, "%s\n",
                         overridden.status().toString().c_str());
            return 1;
        }
        options = overridden.value();
    }
    int threads = args.threads >= 0 ? args.threads : sweep.value().threads;
    if (args.serial)
        threads = 1;

    const bool tune = args.autotune || sweep.value().tune;
    if (tune && args.opt_explicit) {
        std::fprintf(stderr,
                     "note: --opt is ignored when tuning — the tuner "
                     "searches the whole option space\n");
    }
    TuneObjective objective = sweep.value().objective;
    if (args.objective_explicit) {
        auto parsed = parseTuneObjective(args.objective);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 1;
        }
        objective = parsed.value();
    }

    BatchCompiler batch(options, threads);
    batch.setTuning(tune, objective);
    auto result = batch.run(sweep.value().jobs);
    if (!result.isOk()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    if (tune) {
        std::printf("batch: %zu jobs, %lld ok, tuned per job "
                    "(objective=%s), threads=%d\n",
                    result.value().entries.size(),
                    static_cast<long long>(result.value().okCount()),
                    tuneObjectiveName(objective), threads);
    } else {
        std::printf("batch: %zu jobs, %lld ok, opt=%s, threads=%d\n",
                    result.value().entries.size(),
                    static_cast<long long>(result.value().okCount()),
                    options.toString().c_str(), threads);
    }
    std::fputs(result.value().table().c_str(), stdout);
    return result.value().okCount()
                   == static_cast<std::int64_t>(
                          result.value().entries.size())
               ? 0
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--help" || flag == "-h") {
            printUsage(stdout, argv[0]);
            return 0;
        }
        if (flag == "--list-models") {
            for (const std::string &name : models::availableModels())
                std::puts(name.c_str());
            return 0;
        }
        if (flag == "--list-archs") {
            for (const std::string &name : presets::availablePresets())
                std::puts(name.c_str());
            return 0;
        }
        if (flag == "--model") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.model = v;
        } else if (flag == "--model-file") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.model_file = v;
        } else if (flag == "--arch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.arch = v;
        } else if (flag == "--arch-file") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.arch_file = v;
        } else if (flag == "--opt") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.opt = v;
            args.opt_explicit = true;
        } else if (flag == "--batch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.batch_file = v;
        } else if (flag == "--threads") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            char *end = nullptr;
            const long parsed = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || parsed < 0) {
                std::fprintf(stderr,
                             "--threads expects a non-negative integer, "
                             "got '%s'\n",
                             v);
                return 2;
            }
            args.threads = static_cast<int>(parsed);
        } else if (flag == "--serial") {
            args.serial = true;
        } else if (flag == "--autotune") {
            args.autotune = true;
        } else if (flag == "--autotune-verbose") {
            args.autotune = true;
            args.autotune_verbose = true;
        } else if (flag == "--objective") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            args.objective = v;
            args.objective_explicit = true;
            args.autotune = true;
        } else if (flag == "--print-flow") {
            args.print_flow = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                args.flow_limit = std::atoll(argv[++i]);
            }
        } else if (flag == "--print-schedule") {
            args.print_schedule = true;
        } else if (flag == "--verify") {
            args.verify = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return usage(argv[0]);
        }
    }
    if (!args.batch_file.empty())
        return runBatch(args);
    if ((args.threads >= 0 || args.serial) && !args.autotune) {
        std::fprintf(stderr, "--threads/--serial only apply to --batch "
                             "and --autotune modes\n");
        return usage(argv[0]);
    }
    if (args.model.empty() && args.model_file.empty())
        return usage(argv[0]);

    // ----- load the workload ---------------------------------------------
    Graph graph("unset");
    if (!args.model_file.empty()) {
        auto loaded = graphFromFile(args.model_file);
        if (!loaded.isOk()) {
            std::fprintf(stderr, "model load failed: %s\n",
                         loaded.status().toString().c_str());
            return 1;
        }
        graph = std::move(loaded).value();
    } else {
        graph = models::byName(args.model);
    }

    // ----- load the architecture -------------------------------------------
    CimArchitecture arch;
    if (!args.arch_file.empty()) {
        auto loaded = archFromFile(args.arch_file);
        if (!loaded.isOk()) {
            std::fprintf(stderr, "arch load failed: %s\n",
                         loaded.status().toString().c_str());
            return 1;
        }
        arch = std::move(loaded).value();
    } else {
        auto preset = presets::byName(args.arch);
        if (!preset.isOk()) {
            std::fprintf(stderr, "%s\n",
                         preset.status().toString().c_str());
            return 1;
        }
        arch = std::move(preset).value();
    }

    auto options = scheduleOptionsByName(args.opt);
    if (!options.isOk()) {
        std::fprintf(stderr, "%s\n", options.status().toString().c_str());
        return 1;
    }
    ScheduleOptions chosen = options.value();

    // ----- compile ---------------------------------------------------------
    std::fputs(arch.toString().c_str(), stdout);
    std::printf("workload: %s (%zu nodes, %lld weights)\n\n",
                graph.name().c_str(), graph.nodeCount(),
                static_cast<long long>(graph.totalWeights()));

    // ----- optional schedule auto-tuning ------------------------------------
    if (args.autotune) {
        if (args.opt_explicit) {
            std::fprintf(stderr,
                         "note: --opt is ignored with --autotune — the "
                         "tuner searches the whole option space\n");
        }
        auto objective = parseTuneObjective(args.objective);
        if (!objective.isOk()) {
            std::fprintf(stderr, "%s\n",
                         objective.status().toString().c_str());
            return 1;
        }
        AutoTuneConfig config;
        config.objective = objective.value();
        config.threads = args.serial ? 1 : std::max(args.threads, 0);
        const AutoTuner tuner(config);
        auto tuned = tuner.tune(graph, arch);
        if (!tuned.isOk()) {
            std::fprintf(stderr, "autotune failed: %s\n",
                         tuned.status().toString().c_str());
            return 1;
        }
        if (args.autotune_verbose)
            std::fputs(tuned.value().table().c_str(), stdout);
        std::printf("%s\n", tuned.value().summary().c_str());
        chosen = tuned.value().best().options;
    }

    CimCompiler compiler(arch, chosen);
    auto result = compiler.compile(graph);
    if (!result.isOk()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    const CompileResult &compiled = result.value();

    if (args.print_schedule)
        std::fputs(compiled.schedule.summary(graph).c_str(), stdout);
    std::printf("perf: %s\n", compiled.perf.toString().c_str());
    std::printf("flow: %s\n", compiled.code.program.summary().c_str());

    if (args.print_flow) {
        PrintOptions print;
        print.max_statements = args.flow_limit;
        std::fputs(printProgram(compiled.code.program, print).c_str(),
                   stdout);
    }

    // ----- optional functional verification ---------------------------------
    if (args.verify) {
        Rng rng(1234);
        graph.randomizeWeights(rng);
        std::map<TensorId, Int8Tensor> inputs;
        for (TensorId in : graph.inputs()) {
            Int8Tensor t(TensorShape(graph.tensor(in).dims));
            t.fillRandom(rng, -16, 16);
            inputs.emplace(in, std::move(t));
        }
        auto report = verifyCompiledFlow(graph, arch, chosen, inputs);
        if (!report.isOk()) {
            std::fprintf(stderr, "verification failed to run: %s\n",
                         report.status().toString().c_str());
            return 1;
        }
        std::printf("verify: %s (%lld elements, %lld flow ops)\n",
                    report.value().match ? "BIT-EXACT MATCH"
                                         : "MISMATCH",
                    static_cast<long long>(
                        report.value().elements_checked),
                    static_cast<long long>(report.value().flow_ops));
        if (!report.value().match) {
            std::fprintf(stderr, "  first mismatch: %s\n",
                         report.value().first_mismatch.c_str());
            return 1;
        }
    }
    return 0;
}
